"""Docs-consistency: the atlas and README cannot drift from the registry.

Registry-derived inventories (the same pattern as
``test_examples_smoke.py``): every registered experiment must appear in
``docs/experiment-atlas.md`` and in README's scenario-matrix table, every
CLI invocation the atlas prints must name a real experiment with real
parameters, and every benchmark file the atlas cites must exist.  Runs on
the ordinary verify job, so a registry edit without a docs edit fails CI.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.api import get_experiment, list_experiments
from repro.fleet import STATE_DESCRIPTIONS

REPO_ROOT = Path(__file__).resolve().parent.parent
ATLAS = REPO_ROOT / "docs" / "experiment-atlas.md"
ARCHITECTURE = REPO_ROOT / "docs" / "architecture.md"
README = REPO_ROOT / "README.md"

EXPERIMENTS = [spec.name for spec in list_experiments()]


def _mentions(name: str, text: str) -> bool:
    """Whole-name match: 'bias-sweep' is not satisfied by
    'bias-sweep-digraph' (same idiom as test_examples_smoke)."""
    return re.search(rf"(?<![\w-]){re.escape(name)}(?![\w-])", text) is not None


def _scenario_matrix(readme: str) -> str:
    """The scenario-matrix table section of README."""
    match = re.search(r"### Scenario matrix\n(.*?)\n## ", readme, re.DOTALL)
    assert match, "README lost its '### Scenario matrix' section"
    return match.group(1)


@pytest.mark.parametrize("name", EXPERIMENTS)
def test_every_experiment_in_atlas(name):
    assert _mentions(name, ATLAS.read_text()), (
        f"registered experiment {name!r} is missing from {ATLAS.name}; "
        "add it to the atlas (figure mapping or the beyond-figures table)"
    )


@pytest.mark.parametrize("name", EXPERIMENTS)
def test_every_experiment_in_readme_matrix(name):
    assert _mentions(name, _scenario_matrix(README.read_text())), (
        f"registered experiment {name!r} is missing from README's "
        "scenario-matrix table"
    )


def test_readme_matrix_lists_every_declared_param():
    """Each experiment's row (the matrix line naming it in a code span)
    must mention every declared parameter — the drift this PR fixed."""
    matrix = _scenario_matrix(README.read_text())
    rows = [line for line in matrix.splitlines() if line.startswith("|")]
    for spec in list_experiments():
        own_rows = [r for r in rows if _mentions(spec.name, r)]
        assert own_rows, f"no matrix row names {spec.name!r}"
        missing = [
            param.name
            for param in spec.params
            if not any(_mentions(param.name, row) for row in own_rows)
        ]
        assert not missing, (
            f"README matrix row for {spec.name!r} omits declared "
            f"param(s) {missing}"
        )


def test_atlas_cli_invocations_are_valid():
    """Every `python -m repro run <name> --param k=v` the atlas prints
    must resolve against the live registry."""
    text = ATLAS.read_text()
    commands = re.findall(
        r"python -m repro run ([\w-]+)((?: --param [\w-]+=[^\s`|]+)*)", text
    )
    assert commands, "atlas has no run invocations to validate"
    for name, params_blob in commands:
        spec = get_experiment(name)  # raises UnknownExperimentError on drift
        declared = {param.name for param in spec.params}
        used = set(re.findall(r"--param ([\w-]+)=", params_blob))
        unknown = used - declared
        assert not unknown, (
            f"atlas invocation for {name!r} uses undeclared param(s) "
            f"{sorted(unknown)}; declared: {sorted(declared)}"
        )


def test_atlas_benchmark_files_exist():
    text = ATLAS.read_text()
    cited = set(re.findall(r"test_[\w]+\.py", text))
    assert cited, "atlas cites no benchmark files"
    missing = sorted(
        name for name in cited
        if not (REPO_ROOT / "benchmarks" / name).exists()
        and not (REPO_ROOT / "tests" / name).exists()
    )
    assert not missing, f"atlas cites nonexistent benchmark files: {missing}"


def test_architecture_names_every_layer_package():
    """The layer map must cover every src/repro subpackage."""
    text = ARCHITECTURE.read_text()
    packages = sorted(
        p.name
        for p in (REPO_ROOT / "src" / "repro").iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    )
    missing = [name for name in packages if f"repro/{name}/" not in text]
    assert not missing, (
        f"docs/architecture.md layer map is missing package(s): {missing}"
    )


def test_readme_documents_fleet_states():
    """README's fleet section and the fleet-status --help epilog draw on
    the same state vocabulary."""
    readme = README.read_text()
    for state in STATE_DESCRIPTIONS:
        assert _mentions(state, readme), (
            f"README never mentions fleet shard state {state!r}"
        )
    assert "fleet-status" in readme and "--help" in readme, (
        "README lost the fleet-status --help cross-link"
    )


def test_readme_documents_warehouse():
    readme = README.read_text()
    assert "## Results warehouse & sweeps" in readme
    for needle in ("runs.jsonl", "fingerprint", "store report", "sweep"):
        assert needle in readme, f"warehouse section lost {needle!r}"
