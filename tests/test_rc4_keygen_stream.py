"""Key derivation and the seekable keystream view."""

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.rc4 import KeystreamKeySource, RC4Stream, derive_keys, rc4_keystream


class TestKeySource:
    def test_shape_and_dtype(self):
        source = KeystreamKeySource(b"worker-1")
        keys = source.next_keys(100)
        assert keys.shape == (100, 16) and keys.dtype == np.uint8

    def test_sequential_batches_differ(self):
        source = KeystreamKeySource(b"worker-1")
        a, b = source.next_keys(10), source.next_keys(10)
        assert not np.array_equal(a, b)

    def test_same_seed_same_stream(self):
        a = KeystreamKeySource(b"w").next_keys(20)
        b = KeystreamKeySource(b"w").next_keys(20)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = KeystreamKeySource(b"w1").next_keys(20)
        b = KeystreamKeySource(b"w2").next_keys(20)
        assert not np.array_equal(a, b)

    def test_cryptographic_mode_deterministic(self):
        a = KeystreamKeySource(b"c", cryptographic=True).next_keys(9)
        b = KeystreamKeySource(b"c", cryptographic=True).next_keys(9)
        assert np.array_equal(a, b)

    def test_cryptographic_mode_roughly_uniform(self):
        keys = KeystreamKeySource(b"u", cryptographic=True).next_keys(4096)
        mean = keys.astype(np.float64).mean()
        assert 120.0 < mean < 135.0  # uniform mean is 127.5

    def test_bad_keylen_rejected(self):
        with pytest.raises(ValueError):
            KeystreamKeySource(b"x", keylen=0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            KeystreamKeySource(b"x").next_keys(-1)


class TestDeriveKeys:
    def test_label_separation(self):
        config = ReproConfig(seed=7)
        a = derive_keys(config, "label-a", 16)
        b = derive_keys(config, "label-b", 16)
        assert not np.array_equal(a, b)

    def test_seed_determinism(self):
        a = derive_keys(ReproConfig(seed=7), "l", 16)
        b = derive_keys(ReproConfig(seed=7), "l", 16)
        assert np.array_equal(a, b)


class TestRc4Stream:
    def test_matches_keystream(self):
        stream = RC4Stream(b"seek")
        ref = rc4_keystream(b"seek", 64)
        assert stream.byte(1) == ref[0]
        assert stream.byte(64) == ref[63]
        assert stream.bytes(10, 20) == ref[9:29]

    def test_revisiting_positions(self):
        stream = RC4Stream(b"revisit")
        first = stream.byte(50)
        stream.byte(200)
        assert stream.byte(50) == first

    def test_one_indexing_enforced(self):
        with pytest.raises(IndexError):
            RC4Stream(b"x").byte(0)

    def test_getitem(self):
        stream = RC4Stream(b"item")
        assert stream[3] == rc4_keystream(b"item", 3)[2]
