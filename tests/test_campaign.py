"""Campaign simulator: populations, grouping, multi-template identity.

The load-bearing property is that the shared-keystream multi-template
capture is *bit-identical* to running each victim alone: every victim's
counters from a group capture must equal a single-template capture with
the group's label, cell for cell, on both engine backends.  On top of
that: per-victim sampling is order-independent (pinned with
hypothesis), campaigns resume mid-flight bit-exactly from a checkpoint
directory, and the success surface fits a calibrated binomial
reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    assert_within_ci,
    check_surface_within_ci,
    surface_table,
)
from repro.campaign import (
    CampaignResult,
    Population,
    VictimOutcome,
    plan_https_groups,
    plan_tkip_groups,
    run_https_campaign,
    run_tkip_campaign,
    split_population,
)
from repro.capture import HttpsCaptureSource, TkipCaptureSource, run_capture
from repro.config import ReproConfig
from repro.errors import CampaignError
from repro.rc4 import _native


@pytest.fixture(params=["numpy", "native"])
def backend(request, monkeypatch):
    """Run the test body under each engine backend."""
    if request.param == "native":
        if not _native.available():
            pytest.skip("native backend unavailable (no C compiler?)")
    else:
        monkeypatch.setattr(_native, "available", lambda: False)
    return request.param


@pytest.fixture
def population(config):
    return Population.sample(config, 6, label="test-pop")


# --------------------------------------------------------------------------
# Population sampling
# --------------------------------------------------------------------------


class TestPopulation:
    def test_sampling_is_deterministic(self, config):
        a = Population.sample(config, 8, label="p")
        b = Population.sample(config, 8, label="p")
        assert a == b

    def test_victims_depend_only_on_their_index(self, config):
        """Truncating or extending the fleet never changes a victim."""
        small = Population.sample(config, 3, label="p")
        large = Population.sample(config, 9, label="p")
        assert large.victims[:3] == small.victims

    def test_victim_seeds_are_distinct(self, config):
        pop = Population.sample(config, 32, label="p")
        seeds = {spec.seed for spec in pop}
        assert len(seeds) == 32

    def test_axes_are_validated(self, config):
        with pytest.raises(CampaignError):
            Population.sample(config, 2, browsers=("netscape",))
        with pytest.raises(CampaignError):
            Population.sample(config, 2, charsets=("ebcdic",))
        with pytest.raises(CampaignError):
            Population.sample(config, 2, reconnect_regimes=(0,))
        with pytest.raises(CampaignError):
            Population.sample(config, 2, budgets=())
        with pytest.raises(CampaignError):
            Population.sample(config, -1)
        with pytest.raises(CampaignError):
            Population.sample(config, 2, label="")


class TestSplitPopulation:
    def test_empty_population_yields_no_groups(self):
        assert split_population([], 4) == []
        assert split_population([], 0) == []

    def test_population_smaller_than_group_count(self):
        """Fewer victims than groups: fewer groups, never empty ones."""
        groups = split_population(list(range(3)), 8)
        assert len(groups) == 3
        assert all(groups)
        assert [v for g in groups for v in g] == [0, 1, 2]

    def test_groups_are_near_even_and_ordered(self):
        groups = split_population(list(range(10)), 3)
        sizes = [len(g) for g in groups]
        assert max(sizes) - min(sizes) <= 1
        assert [v for g in groups for v in g] == list(range(10))

    def test_negative_group_count_rejected(self):
        with pytest.raises(CampaignError):
            split_population([1], -1)


# --------------------------------------------------------------------------
# Multi-template capture == N single-template captures, cell for cell
# --------------------------------------------------------------------------


def _single_https_stats(config, group, spec):
    """Re-capture one group member alone, with the group's label."""
    source = HttpsCaptureSource(
        config=config,
        layout=group.source.layout,
        plaintext=group.sims[spec.victim_id].campaign.request_plaintext(),
        num_requests=group.source.num_requests,
        batch_size=group.source.batch_size,
        reconnect_every=group.source.reconnect_every,
        max_gap=group.source.max_gap,
        label=group.source.label,
    )
    return run_capture(source)


class TestMultiTemplateIdentity:
    def test_https_group_matches_independent_captures(
        self, config, population, backend
    ):
        groups = plan_https_groups(
            config, population, num_requests=150, batch_size=64,
            cookie_len=2, max_gap=4, group_size=8,
        )
        assert sum(len(g.specs) for g in groups) == len(population)
        for group in groups:
            stats = run_capture(group.source)
            for spec in group.specs:
                mine = stats.victim(spec.victim_id)
                alone = _single_https_stats(config, group, spec)
                assert mine.num_requests == alone.num_requests
                assert np.array_equal(mine.fm_counts, alone.fm_counts)
                assert list(mine.absab_counts) == list(alone.absab_counts)
                for key in alone.absab_counts:
                    assert np.array_equal(
                        mine.absab_counts[key], alone.absab_counts[key]
                    ), key

    def test_tkip_group_matches_independent_captures(
        self, config, population, backend
    ):
        groups = plan_tkip_groups(
            config, population, tsc_values=[0, 1], batch_size=64,
            group_size=8,
        )
        for group in groups:
            stats = run_capture(group.source)
            for spec, plaintext in zip(group.specs, group.source.plaintexts):
                single = TkipCaptureSource(
                    config=config,
                    plaintext=plaintext,
                    tsc_values=group.source.tsc_values,
                    packets_per_tsc=group.source.packets_per_tsc,
                    batch_size=group.source.batch_size,
                    label=group.source.label,
                )
                alone = run_capture(single)
                mine = stats.victim_capture_set(spec.victim_id)
                assert mine.num_captured == alone.num_captured
                assert sorted(mine.counts) == sorted(alone.counts)
                for tsc in alone.counts:
                    assert np.array_equal(
                        mine.counts[tsc], alone.counts[tsc]
                    ), tsc


# --------------------------------------------------------------------------
# Order independence (hypothesis)
# --------------------------------------------------------------------------


class TestOrderIndependence:
    @settings(deadline=None, max_examples=5)
    @given(order=st.permutations(list(range(5))))
    def test_permuting_population_never_changes_any_victim(self, order):
        """Grouping is canonical: outcomes are a per-victim function."""
        config = ReproConfig(seed=1234)
        pop = Population.sample(config, 5, label="perm")
        permuted = Population(
            label=pop.label,
            victims=tuple(pop.victims[i] for i in order),
        )
        kwargs = dict(num_requests=192, cookie_len=2, num_candidates=16,
                      batch_size=64, group_size=2)
        base = run_https_campaign(config, pop, **kwargs)
        alt = run_https_campaign(config, permuted, **kwargs)
        by_id = {o.victim_id: o for o in alt.outcomes}
        assert [by_id[o.victim_id] for o in base.outcomes] == base.outcomes
        assert alt.num_groups == base.num_groups


# --------------------------------------------------------------------------
# Checkpoint / resume
# --------------------------------------------------------------------------


class _AbortAfter:
    """Progress callback that kills the capture after a few batches."""

    def __init__(self, batches):
        self.remaining = batches

    def __call__(self, progress):
        self.remaining -= 1
        if self.remaining <= 0:
            raise KeyboardInterrupt("simulated operator abort")


class TestCampaignResume:
    def _kwargs(self):
        return dict(num_requests=300, cookie_len=2, num_candidates=16,
                    batch_size=64, group_size=3, checkpoint_every=1)

    def test_resume_mid_campaign_is_bit_exact(self, config, tmp_path):
        pop = Population.sample(config, 5, label="resume")
        reference = run_https_campaign(config, pop, **self._kwargs())

        ckpt = tmp_path / "campaign"
        with pytest.raises(KeyboardInterrupt):
            run_https_campaign(
                config, pop, checkpoint_dir=ckpt,
                progress=_AbortAfter(7), **self._kwargs(),
            )
        resumed = run_https_campaign(
            config, pop, checkpoint_dir=ckpt, **self._kwargs(),
        )
        assert resumed.outcomes == reference.outcomes

    def test_finished_groups_are_not_recaptured(self, config, tmp_path):
        pop = Population.sample(config, 4, label="resume")
        ckpt = tmp_path / "campaign"
        first = run_https_campaign(
            config, pop, checkpoint_dir=ckpt, **self._kwargs(),
        )

        def explode(progress):
            raise AssertionError("capture ran despite finished groups")

        again = run_https_campaign(
            config, pop, checkpoint_dir=ckpt, progress=explode,
            **self._kwargs(),
        )
        assert again.outcomes == first.outcomes

    def test_mismatched_checkpoint_dir_is_rejected(self, config, tmp_path):
        pop = Population.sample(config, 3, label="resume")
        ckpt = tmp_path / "campaign"
        run_https_campaign(config, pop, checkpoint_dir=ckpt, **self._kwargs())
        kwargs = self._kwargs() | {"num_requests": 360}
        with pytest.raises(CampaignError):
            run_https_campaign(
                config, pop, checkpoint_dir=ckpt, **kwargs,
            )

    def test_distributed_excludes_checkpoint_dir(self, config, tmp_path):
        pop = Population.sample(config, 2, label="resume")
        with pytest.raises(CampaignError):
            run_https_campaign(
                config, pop, num_requests=128, distributed=2,
                checkpoint_dir=tmp_path,
            )


# --------------------------------------------------------------------------
# Campaign results and surfaces
# --------------------------------------------------------------------------


class TestCampaignResults:
    def test_empty_population_yields_empty_result(self, config):
        empty = Population.sample(config, 0, label="empty")
        for result in (
            run_https_campaign(config, empty, num_requests=128),
            run_tkip_campaign(config, empty, num_tsc=2, keys_per_tsc=64),
        ):
            assert result.trials == 0
            assert result.successes == 0
            assert result.num_groups == 0
            assert result.success_surface() == {}
            assert result.surface_fit().ok

    def test_tkip_campaign_cells_track_budgets(self, config):
        pop = Population.sample(config, 4, label="tkip", budgets=(64, 128))
        result = run_tkip_campaign(
            config, pop, num_tsc=2, keys_per_tsc=64, group_size=2,
            max_candidates=8,
        )
        assert [o.victim_id for o in result.outcomes] == [
            s.victim_id for s in pop
        ]
        for outcome, spec in zip(result.outcomes, pop):
            assert outcome.cell == (spec.packets_per_tsc,)
            assert outcome.num_samples == 2 * spec.packets_per_tsc

    def test_success_surface_matches_calibrated_reference(self, config):
        """The hex-alphabet cells recover reliably at tiny scale (256
        cookie values, 256 candidates); base64 cells lag.  The pooled
        rate was calibrated once at this exact seed/scale and the
        deterministic rerun must stay inside a z=4 binomial CI."""
        pop = Population.sample(
            config, 12, label="fit", charsets=("hex", "base64"),
        )
        result = run_https_campaign(
            config, pop, num_requests=4096, cookie_len=2,
            num_candidates=256, group_size=8,
        )
        hex_cells = {
            k: v for k, v in result.success_surface().items()
            if k[1] == "hex"
        }
        assert hex_cells
        for cell in hex_cells.values():
            assert cell["rate"] == 1.0
        assert_within_ci(
            result.successes, result.trials, 0.5, z=4.0,
            label="campaign success rate",
        )
        fit = result.surface_fit(0.5)
        assert set(fit.cells) == {
            "/".join(str(v) for v in key)
            for key in result.success_surface()
        }

    def test_successful_outcomes_carry_recovery_time(self, config):
        pop = Population.sample(config, 4, label="t", charsets=("hex",))
        result = run_https_campaign(
            config, pop, num_requests=4096, cookie_len=2,
            num_candidates=256,
        )
        for outcome in result.outcomes:
            if outcome.success:
                assert outcome.hours is not None and outcome.hours > 0
                assert outcome.rank is not None
            else:
                assert outcome.hours is None

    def test_outcome_json_roundtrip(self):
        outcome = VictimOutcome(
            victim_id="victim-00001", cell=("chrome", "hex", 16),
            success=True, rank=3, num_samples=100, hours=1.5,
        )
        restored = VictimOutcome.from_jsonable(outcome.to_jsonable())
        assert restored == outcome

    def test_result_jsonable_is_complete(self):
        result = CampaignResult(
            kind="https", label="x", axes=("a",), outcomes=[], num_groups=0,
        )
        data = result.to_jsonable()
        assert data["trials"] == 0 and data["outcomes"] == []


# --------------------------------------------------------------------------
# Surface statistics and rendering
# --------------------------------------------------------------------------


class TestSurfaceStatistics:
    def test_degenerate_references_are_point_masses(self):
        check = check_surface_within_ci(
            {"a": (5, 5, 1.0), "b": (0, 4, 0.0)}
        )
        assert check.ok

    def test_degenerate_mismatch_fails(self):
        check = check_surface_within_ci({"a": (4, 5, 1.0)})
        assert not check.ok
        assert check.worst_label == "a"

    def test_out_of_range_reference_rejected(self):
        with pytest.raises(ValueError):
            check_surface_within_ci({"a": (1, 2, 1.5)})

    def test_empty_surface_passes_vacuously(self):
        check = check_surface_within_ci({})
        assert check.ok and check.worst_label is None

    def test_surface_table_renders_heat_cells(self):
        table = surface_table(
            {("hex", "1"): 1.0, ("hex", "16"): 0.5, ("b64", "1"): 0.0},
            row_label="charset", col_label="reconnect", fmt="{:.2f}",
        )
        assert "charset \\ reconnect" in table
        assert "1.00 @" in table
        assert "-" in table  # the missing (b64, 16) cell

    def test_surface_table_rejects_empty(self):
        with pytest.raises(ValueError):
            surface_table({})
