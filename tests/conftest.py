"""Shared fixtures: deterministic config and RNG for every test module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ReproConfig


@pytest.fixture
def config() -> ReproConfig:
    """A fixed-seed configuration so tests are reproducible."""
    return ReproConfig(seed=1234)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator independent of the config streams."""
    return np.random.default_rng(987654321)
