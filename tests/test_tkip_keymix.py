"""TKIP per-packet key mixing and the S-box construction."""

import numpy as np
import pytest

from repro.errors import TkipError
from repro.tkip import (
    per_packet_key,
    phase1,
    phase2,
    public_key_bytes,
    simplified_key_batch,
    simplified_per_packet_key,
    tkip_s,
    tsc_split,
)
from repro.tkip.sbox import AES_SBOX, TKIP_SBOX, build_aes_sbox

TA = bytes.fromhex("105fb0e09f60")
TK = bytes(range(16))


class TestSbox:
    def test_aes_sbox_anchors(self):
        assert AES_SBOX[0x00] == 0x63
        assert AES_SBOX[0x01] == 0x7C
        assert AES_SBOX[0x53] == 0xED
        assert AES_SBOX[0xFF] == 0x16

    def test_aes_sbox_is_permutation(self):
        assert sorted(AES_SBOX) == list(range(256))

    def test_tkip_sbox_derivation(self):
        # SBOX[k] = (2*s << 8) | (3*s) in GF(2^8); anchor from the standard.
        assert TKIP_SBOX[0] == 0xC6A5

    def test_tkip_s_combines_halves(self):
        # S(v) = SBOX[lo] ^ swap16(SBOX[hi]); check against manual compute.
        v = 0xBEEF
        lo, hi = v & 0xFF, v >> 8
        expected = TKIP_SBOX[lo] ^ (
            ((TKIP_SBOX[hi] & 0xFF) << 8) | (TKIP_SBOX[hi] >> 8)
        )
        assert tkip_s(v) == expected

    def test_sbox_rebuild_deterministic(self):
        assert tuple(build_aes_sbox()) == AES_SBOX


class TestTscHandling:
    def test_split(self):
        assert tsc_split(0x0123456789AB) == (0x01234567, 0x89AB)

    def test_public_bytes_formula(self):
        k0, k1, k2 = public_key_bytes(0x0123456789AB)
        tsc1, tsc0 = 0x89, 0xAB
        assert k0 == tsc1
        assert k1 == (tsc1 | 0x20) & 0x7F
        assert k2 == tsc0

    def test_weak_bit_clamp(self):
        # K1 always has bit 5 set and bit 7 clear - the WEP countermeasure.
        for tsc in range(0, 1 << 16, 997):
            _, k1, _ = public_key_bytes(tsc)
            assert k1 & 0x20
            assert not k1 & 0x80

    def test_out_of_range(self):
        with pytest.raises(TkipError):
            tsc_split(1 << 48)


class TestKeyMixing:
    def test_key_structure(self):
        key = per_packet_key(TA, TK, 0x0123456789AB)
        assert len(key) == 16
        k0, k1, k2 = public_key_bytes(0x0123456789AB)
        assert key[0] == k0 and key[1] == k1 and key[2] == k2

    def test_deterministic(self):
        assert per_packet_key(TA, TK, 42) == per_packet_key(TA, TK, 42)

    def test_tsc_sensitivity(self):
        assert per_packet_key(TA, TK, 1) != per_packet_key(TA, TK, 2)

    def test_tk_sensitivity(self):
        other_tk = bytes(range(1, 17))
        assert per_packet_key(TA, TK, 1) != per_packet_key(TA, other_tk, 1)

    def test_ta_sensitivity(self):
        other_ta = bytes.fromhex("105fb0e09f61")
        assert per_packet_key(TA, TK, 1) != per_packet_key(other_ta, TK, 1)

    def test_phase1_only_depends_on_upper_tsc(self):
        iv32_a, _ = tsc_split(0x0001_0000_2222)
        iv32_b, _ = tsc_split(0x0001_0000_3333)
        assert iv32_a == iv32_b
        assert phase1(TK, TA, iv32_a) == phase1(TK, TA, iv32_b)

    def test_phase2_words_in_range(self):
        ttak = phase1(TK, TA, 0xDEADBEEF)
        key = phase2(TK, ttak, 0x1234)
        assert all(0 <= b < 256 for b in key)

    def test_tail_roughly_uniform_across_tsc(self):
        """The paper's modelling assumption (§2.2): the 13 non-public key
        bytes behave like uniform random bytes across packets."""
        tails = np.array(
            [list(per_packet_key(TA, TK, tsc)[3:]) for tsc in range(2048)]
        )
        mean = tails.mean()
        assert 119.0 < mean < 136.0
        # Every byte position should take many distinct values.
        for col in range(13):
            assert len(np.unique(tails[:, col])) > 200

    def test_validation(self):
        with pytest.raises(TkipError):
            per_packet_key(b"short", TK, 1)
        with pytest.raises(TkipError):
            per_packet_key(TA, b"short", 1)
        with pytest.raises(TkipError):
            per_packet_key(TA, TK, -1)


class TestSimplifiedModel:
    def test_public_prefix(self, rng):
        key = simplified_per_packet_key(0xABCD, rng)
        assert (key[0], key[1], key[2]) == public_key_bytes(0xABCD)

    def test_batch_shape_and_prefix(self, rng):
        keys = simplified_key_batch(0x1234, 64, rng)
        assert keys.shape == (64, 16)
        k0, k1, k2 = public_key_bytes(0x1234)
        assert np.all(keys[:, 0] == k0)
        assert np.all(keys[:, 1] == k1)
        assert np.all(keys[:, 2] == k2)

    def test_batch_tails_vary(self, rng):
        keys = simplified_key_batch(0x1234, 64, rng)
        assert len(np.unique(keys[:, 3])) > 1
