"""Mantin ABSAB bias model: alpha(g), distributions, gap enumeration."""

import numpy as np
import pytest

from repro.biases import (
    MAX_GAP,
    absab_alpha,
    absab_relative_bias,
    differential_distribution,
    usable_gaps,
)


class TestAlpha:
    def test_formula_at_zero_gap(self):
        expected = 2.0**-16 * (1 + 2.0**-8 * np.exp(-4.0 / 256.0))
        assert absab_alpha(0) == pytest.approx(expected)

    def test_decreasing_in_gap(self):
        alphas = [absab_alpha(g) for g in range(0, 200, 10)]
        assert all(a > b for a, b in zip(alphas, alphas[1:]))

    def test_always_above_uniform(self):
        assert all(absab_alpha(g) > 2.0**-16 for g in range(0, 512, 25))

    def test_vectorised(self):
        gaps = np.array([0, 10, 100])
        out = absab_alpha(gaps)
        assert out.shape == (3,)
        assert out[0] == pytest.approx(absab_alpha(0))

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            absab_alpha(-1)

    def test_relative_bias_scale(self):
        # At g=0 the relative bias is ~2^-8; at g=128 it has decayed by e^-4.
        assert absab_relative_bias(0) == pytest.approx(
            2.0**-8 * np.exp(-4.0 / 256.0)
        )
        ratio = absab_relative_bias(128) / absab_relative_bias(0)
        assert ratio == pytest.approx(np.exp(-8.0 * 128.0 / 256.0), rel=1e-6)


class TestDifferentialDistribution:
    def test_normalised_and_peaked_at_zero(self):
        dist = differential_distribution(16)
        assert dist.shape == (65536,)
        assert dist.sum() == pytest.approx(1.0)
        assert dist[0] == pytest.approx(absab_alpha(16))
        assert np.all(dist[1:] == dist[1])


class TestUsableGaps:
    def test_middle_of_cookie_both_sides(self):
        """A digraph deep inside the unknown region pairs with known
        digraphs on both sides once the gap is large enough."""
        # Unknown span 300..315 (16 bytes), stream of 700.
        gaps = usable_gaps(307, (300, 315), 700, max_gap=MAX_GAP)
        after = [g for g, side in gaps if side == "after"]
        before = [g for g, side in gaps if side == "before"]
        # After: partner first position 307+2+g > 315 -> g >= 7.
        assert min(after) == 7
        # Before: partner positions r-2-g, r-1-g fully below 300 -> g >= 7.
        assert min(before) == 7
        assert max(after) == MAX_GAP and max(before) == MAX_GAP

    def test_boundary_transition_gets_gap_zero(self):
        # r = 99 is the (known, first-unknown) transition; the digraph at
        # 101.. partners from gap 0 upward once beyond the unknown end.
        gaps = usable_gaps(115, (100, 115), 400, max_gap=8)
        after = [g for g, side in gaps if side == "after"]
        assert 0 in after

    def test_stream_end_limits_after_gaps(self):
        gaps = usable_gaps(100, (100, 103), 110, max_gap=128)
        after = [g for g, side in gaps if side == "after"]
        # partner second position r+3+g <= 110 -> g <= 7.
        assert max(after) == 7

    def test_stream_start_limits_before_gaps(self):
        gaps = usable_gaps(10, (10, 13), 400, max_gap=128)
        before = [g for g, side in gaps if side == "before"]
        # partner first position r-2-g >= 1 -> g <= 7.
        assert before and max(before) == 7

    def test_empirical_detection_at_small_gap(self, config):
        """The ABSAB pattern is measurable in real keystream at small
        gaps with modest samples when pooled over many positions."""
        from repro.rc4 import batch_keystream
        from repro.rc4.keygen import derive_keys

        gap = 0
        keys = derive_keys(config, "absab-meas", 24)
        stream = batch_keystream(keys, 8192, drop=1024).astype(np.int32)
        a = (stream[:, :-3] << 8) | stream[:, 1:-2]
        b = (stream[:, 2:-1] << 8) | stream[:, 3:]
        matches = int((a == b).sum())
        trials = a.size
        expected_biased = trials * absab_alpha(gap)
        expected_uniform = trials * 2.0**-16
        sigma = np.sqrt(expected_uniform)
        # ~190k trials per key set: the model must at least be consistent.
        assert abs(matches - expected_biased) < 6 * sigma
