"""Smoke tests: every example script must run cleanly at reduced scale.

Examples are user-facing documentation; breaking one is a release
blocker, so they are executed as subprocesses exactly as a user would.
The inventory is derived from the experiment registry, not a hand-kept
list: every scenario-level experiment (everything except the raw
``dataset-*`` kinds, which are library plumbing the API tests cover)
must be narrated by at least one example script, and every script on
disk must reference a registered experiment.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import list_experiments

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _run(name: str, scale: str = "0.25") -> subprocess.CompletedProcess:
    env = dict(os.environ, REPRO_SCALE=scale, REPRO_SEED="314159")
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )


def _example_sources() -> dict[str, str]:
    return {name: (EXAMPLES_DIR / name).read_text() for name in ALL_EXAMPLES}


def _mentions(experiment: str, text: str) -> bool:
    """Whole-name match, so 'bias-sweep' is not satisfied by a file that
    only mentions 'bias-sweep-digraph'."""
    return re.search(rf"(?<![\w-]){re.escape(experiment)}(?![\w-])", text) is not None


def test_every_scenario_experiment_has_an_example():
    """Registry-driven inventory: adding a scenario experiment without an
    example (or deleting an example) fails here, with no list to keep."""
    sources = _example_sources()
    missing = [
        spec.name
        for spec in list_experiments()
        if not spec.name.startswith("dataset-")
        and not any(_mentions(spec.name, text) for text in sources.values())
    ]
    assert not missing, (
        f"registered scenario experiments with no example narrating them: "
        f"{missing}"
    )


def test_every_example_references_a_registered_experiment():
    registered = {spec.name for spec in list_experiments()}
    for name, text in _example_sources().items():
        assert any(_mentions(exp, text) for exp in registered), (
            f"{name} does not reference any registered experiment"
        )


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs(name):
    result = _run(name)
    assert result.returncode == 0, result.stdout + result.stderr


def test_tkip_example_recovers_key():
    result = _run("wpa_tkip_attack.py")
    assert "correct: True" in result.stdout
    assert "victim accepted forged TCP packet" in result.stdout


def test_https_example_recovers_cookie():
    result = _run("https_cookie_attack.py")
    assert "recovered cookie:" in result.stdout


def test_quickstart_recovers_byte():
    result = _run("quickstart.py", scale="1.0")
    assert "recovered (argmax):    0x42" in result.stdout


def test_scenario_matrix_walks_all_scenarios():
    result = _run("scenario_matrix.py")
    assert result.returncode == 0, result.stdout + result.stderr
    out = result.stdout
    assert "key recovered=True" in out
    assert "accepted=True" in out
    for browser in ("generic", "firefox", "curl"):
        assert browser in out
    assert "Z2=0x00" in out
