"""Smoke tests: every example script must run cleanly at reduced scale.

Examples are user-facing documentation; breaking one is a release
blocker, so they are executed as subprocesses exactly as a user would.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _run(name: str, scale: str = "0.25") -> subprocess.CompletedProcess:
    env = dict(os.environ, REPRO_SCALE=scale, REPRO_SEED="314159")
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )


def test_example_inventory():
    """The README promises at least these runnable examples."""
    expected = {
        "quickstart.py",
        "wpa_tkip_attack.py",
        "https_cookie_attack.py",
        "bias_hunting.py",
        "absab_gap_study.py",
    }
    assert expected <= set(ALL_EXAMPLES)


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs(name):
    result = _run(name)
    assert result.returncode == 0, result.stdout + result.stderr


def test_tkip_example_recovers_key():
    result = _run("wpa_tkip_attack.py")
    assert "correct: True" in result.stdout
    assert "victim accepted forged TCP packet" in result.stdout


def test_https_example_recovers_cookie():
    result = _run("https_cookie_attack.py")
    assert "recovered cookie:" in result.stdout


def test_quickstart_recovers_byte():
    result = _run("quickstart.py", scale="1.0")
    assert "recovered (argmax):    0x42" in result.stdout
