"""Sufficient-statistic samplers, timing models, and simulation glue."""

import numpy as np
import pytest

from repro.errors import DistributionError
from repro.simulate import (
    AttackTimeline,
    sample_absab_differential_counts,
    sample_digraph_counts,
    sample_single_byte_counts,
    sampled_capture,
    tkip_timeline,
    tls_timeline,
)
from repro.tkip import default_tsc_space, generate_per_tsc


class TestSingleByteSampler:
    def test_total_preserved(self, rng):
        dist = np.full(256, 1 / 256)
        counts = sample_single_byte_counts(dist, 5000, 7, seed=rng)
        assert counts.sum() == 5000

    def test_bias_lands_on_shifted_cell(self):
        """A keystream peak at k means a ciphertext peak at k ^ plaintext."""
        dist = np.full(256, 1e-9)
        dist[5] = 1.0
        dist /= dist.sum()
        counts = sample_single_byte_counts(dist, 1000, 0x42, seed=0)
        assert counts.argmax() == 5 ^ 0x42

    def test_poisson_mode_close_to_multinomial_mean(self):
        dist = np.full(256, 1 / 256)
        counts = sample_single_byte_counts(
            dist, 1 << 20, 0, seed=1, method="poisson"
        )
        assert counts.mean() == pytest.approx((1 << 20) / 256, rel=0.05)

    def test_validation(self, rng):
        with pytest.raises(DistributionError):
            sample_single_byte_counts(np.full(10, 0.1), 10, 0, seed=rng)
        with pytest.raises(DistributionError):
            sample_single_byte_counts(np.full(256, 1 / 256), 10, 300, seed=rng)


class TestDigraphSampler:
    def test_shape_and_total(self, rng):
        dist = np.full((256, 256), 1 / 65536)
        counts = sample_digraph_counts(dist, 4000, (1, 2), seed=rng)
        assert counts.shape == (256, 256)
        assert counts.sum() == 4000

    def test_peak_shifted_by_both_bytes(self):
        dist = np.full((256, 256), 1e-12)
        dist[3, 4] = 1.0
        dist /= dist.sum()
        counts = sample_digraph_counts(dist, 100, (0x10, 0x20), seed=0)
        peak = np.unravel_index(counts.argmax(), counts.shape)
        assert peak == (3 ^ 0x10, 4 ^ 0x20)


class TestAbsabSampler:
    def test_biased_cell_is_plaintext_differential(self):
        counts = sample_absab_differential_counts(0, 1 << 24, (7, 9), seed=3)
        assert counts.sum() == 1 << 24
        # cell (7,9) should be among the very top cells
        idx = (7 << 8) | 9
        rank = int((counts > counts[idx]).sum())
        assert rank < 65536 // 4

    def test_validation(self):
        with pytest.raises(DistributionError):
            sample_absab_differential_counts(0, 10, (300, 0), seed=1)


class TestSampledCapture:
    def test_equivalence_shape(self, config):
        per_tsc = generate_per_tsc(
            config, default_tsc_space(4), keys_per_tsc=512, length=8
        )
        capture = sampled_capture(
            per_tsc, b"\x01" * 8, range(1, 9), packets_per_tsc=100,
            seed=config.rng("sc"),
        )
        assert capture.num_captured == 400
        assert set(capture.counts) == set(per_tsc.tsc_values)
        for table in capture.counts.values():
            assert np.all(table.sum(axis=1) == 100)

    def test_position_out_of_range(self, config):
        per_tsc = generate_per_tsc(config, [0], keys_per_tsc=128, length=4)
        with pytest.raises(DistributionError):
            sampled_capture(
                per_tsc, b"\x00" * 8, range(1, 9), packets_per_tsc=10,
                seed=config.rng("x"),
            )


class TestTimelines:
    def test_paper_tkip_hour(self):
        timeline = tkip_timeline()
        assert 1.0 < timeline.capture_hours < 1.25

    def test_paper_tls_75_hours(self):
        timeline = tls_timeline()
        assert 74.0 < timeline.capture_hours < 77.0
        assert timeline.search_seconds < 7 * 60

    def test_total_includes_search(self):
        timeline = AttackTimeline(
            samples=3600, capture_rate=1.0, search_candidates=7200, search_rate=2.0
        )
        assert timeline.total_hours == pytest.approx(2.0)
