"""The vectorized candidate-recovery engine against its scalar references.

Four equivalence layers:

1. **Golden ordering** — the rewritten Algorithm 2 (pooled selection,
   packed backpointers, vectorized backtrack) against a pinned copy of
   the seed per-row argpartition decoder, bit-identical scores *and*
   plaintexts on continuous inputs (where the seed's tie handling is
   immaterial), charset-restricted and full-alphabet, across memory
   budgets that force chunking and segmented selection.
2. **Ground truth** — hypothesis property tests against
   :meth:`PlaintextHmm.brute_force` on tiny alphabets, including
   integer-valued likelihoods that force exact score ties.
3. **Streams** — ``lazy_candidate_blocks`` against ``lazy_candidates``
   against ``algorithm1``.
4. **Accounting** — the batched oracle/pruner walk
   (:meth:`BruteForceOracle.search_matrix`) against the scalar
   generator pipeline ``search(pruner.filter(...))``: same attempts,
   same pruned counts, same errors, for hits, budgets and exhaustion.
"""

from __future__ import annotations

from itertools import islice

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ReproConfig, ConfigError
from repro.core import (
    CandidateMatrix,
    PlaintextHmm,
    algorithm1,
    algorithm2,
    lazy_candidate_blocks,
    lazy_candidates,
)
from repro.core.candidates.viterbi import (
    _initial_pool_width,
    _plan_chunk,
    _select_desc,
)
from repro.errors import AttackError, CandidateError
from repro.tls.bruteforce import BruteForceOracle, CandidatePruner

# --------------------------------------------------------------------------
# Seed reference: the pre-vectorization Algorithm 2 (per-row argpartition
# over the full A*K extension, per-candidate Python backtrack), pinned
# here as the golden ordering oracle.
# --------------------------------------------------------------------------

_SEED_CHUNK = 16


def _seed_top_k_desc(values: np.ndarray, k: int) -> np.ndarray:
    n = values.shape[1]
    if k >= n:
        return np.argsort(-values, axis=1, kind="stable")
    part = np.argpartition(-values, k - 1, axis=1)[:, :k]
    part_vals = np.take_along_axis(values, part, axis=1)
    order = np.lexsort((part, -part_vals), axis=1)
    return np.take_along_axis(part, order, axis=1)


def seed_algorithm2(
    log_likelihoods: np.ndarray,
    first_byte: int,
    last_byte: int,
    num_candidates: int,
    *,
    charset: bytes | None = None,
) -> tuple[list[bytes], np.ndarray]:
    lam = np.asarray(log_likelihoods, dtype=np.float64)
    num_steps = lam.shape[0]
    if charset is None:
        alphabet = np.arange(256, dtype=np.intp)
    else:
        alphabet = np.asarray(sorted(set(charset)), dtype=np.intp)
    a_size = alphabet.size

    scores = lam[0, first_byte, alphabet][:, None]
    back: list[np.ndarray | None] = [None]
    for step in range(1, num_steps - 1):
        k_prev = scores.shape[1]
        trans = lam[step][np.ix_(alphabet, alphabet)]
        k_new = min(num_candidates, a_size * k_prev)
        new_scores = np.empty((a_size, k_new), dtype=np.float64)
        new_back = np.empty((a_size, k_new, 2), dtype=np.int32)
        flat_prev = scores.reshape(-1)
        for start in range(0, a_size, _SEED_CHUNK):
            stop = min(start + _SEED_CHUNK, a_size)
            ext = flat_prev[None, :] + np.repeat(
                trans[:, start:stop].T, k_prev, axis=1
            )
            top = _seed_top_k_desc(ext, k_new)
            new_scores[start:stop] = np.take_along_axis(ext, top, axis=1)
            new_back[start:stop, :, 0], new_back[start:stop, :, 1] = np.divmod(
                top, k_prev
            )
        scores = new_scores
        back.append(new_back)

    k_prev = scores.shape[1]
    trans_last = lam[num_steps - 1][alphabet, last_byte]
    ext = (scores + trans_last[:, None]).reshape(-1)
    k_final = min(num_candidates, ext.size)
    top = _seed_top_k_desc(ext[None, :], k_final)[0]
    final_scores = ext[top]
    from_idx, rank = np.divmod(top, k_prev)

    plaintexts: list[bytes] = []
    alphabet_bytes = alphabet.astype(np.uint8)
    for f_idx, f_rank in zip(from_idx, rank):
        chars = bytearray()
        idx, rnk = int(f_idx), int(f_rank)
        for step in range(num_steps - 2, 0, -1):
            chars.append(alphabet_bytes[idx])
            pointer = back[step]
            idx, rnk = int(pointer[idx, rnk, 0]), int(pointer[idx, rnk, 1])
        chars.append(alphabet_bytes[idx])
        plaintexts.append(bytes(reversed(chars)))
    return plaintexts, final_scores


_COOKIE_CHARSET = bytes(
    sorted(
        set(range(0x21, 0x7F)) - {0x22, 0x2C, 0x3B, 0x5C}
    )
)


def _assert_matches_seed(lam, first, last, n, charset, mem_budget=None):
    ref_p, ref_s = seed_algorithm2(lam, first, last, n, charset=charset)
    got = algorithm2(lam, first, last, n, charset=charset, mem_budget=mem_budget)
    assert isinstance(got, CandidateMatrix)
    np.testing.assert_array_equal(got.log_likelihoods, ref_s)
    assert list(got.plaintexts) == ref_p


class TestGoldenOrdering:
    """Bit-identical to the seed decoder on continuous (tie-free) data."""

    def test_charset_restricted_n4096(self, rng):
        lam = rng.normal(size=(5, 256, 256))
        _assert_matches_seed(lam, 0x41, 0x3B, 1 << 12, _COOKIE_CHARSET)

    def test_full_alphabet_n1024(self, rng):
        lam = rng.normal(size=(4, 256, 256))
        _assert_matches_seed(lam, 7, 201, 1 << 10, None)

    def test_single_unknown_byte(self, rng):
        lam = rng.normal(size=(2, 256, 256))
        _assert_matches_seed(lam, 1, 2, 100, _COOKIE_CHARSET)

    def test_list_larger_than_space(self, rng):
        lam = rng.normal(size=(4, 256, 256))
        _assert_matches_seed(lam, 0, 255, 10_000, b"abcde")

    def test_tiny_memory_budget_forces_chunking(self, rng):
        """A starved budget (chunked rows + segmented selection) changes
        the shape of every intermediate but not a single output bit."""
        lam = rng.normal(size=(5, 256, 256))
        _assert_matches_seed(
            lam, 0x41, 0x3B, 512, _COOKIE_CHARSET, mem_budget=20_000
        )

    def test_mem_budget_from_config(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_CANDIDATE_MEM", "40000")
        lam = rng.normal(size=(4, 256, 256))
        got = algorithm2(lam, 3, 9, 256, charset=_COOKIE_CHARSET)
        ref = algorithm2(lam, 3, 9, 256, charset=_COOKIE_CHARSET, mem_budget=1 << 31)
        np.testing.assert_array_equal(got.log_likelihoods, ref.log_likelihoods)
        np.testing.assert_array_equal(got.matrix, ref.matrix)


# --------------------------------------------------------------------------
# Ground truth on tiny alphabets, including exact ties.
# --------------------------------------------------------------------------


def _assert_matches_brute_force(hmm: PlaintextHmm, n: int) -> None:
    ref = hmm.brute_force()
    got = hmm.n_best(n)
    k = min(n, len(ref))
    assert len(got) == k
    ref_scores = np.asarray(ref.log_likelihoods)[:k]
    np.testing.assert_array_equal(np.asarray(got.log_likelihoods), ref_scores)
    # Ordering within an exactly-tied score group is implementation
    # defined, so compare group-wise: every group entirely inside the
    # truncated list must match as a set; the group cut by the
    # truncation boundary must be a subset of the reference group.
    ref_all = list(zip(ref.plaintexts, np.asarray(ref.log_likelihoods)))
    got_all = list(zip(got.plaintexts, np.asarray(got.log_likelihoods)))
    i = 0
    while i < k:
        score = got_all[i][1]
        group = {p for p, s in got_all if s == score}
        ref_group = {p for p, s in ref_all if s == score}
        assert group <= ref_group
        i += len(group)
    for plaintext, score in got_all:
        assert hmm.sequence_log_likelihood(plaintext) == pytest.approx(score)


@st.composite
def _tiny_hmm(draw, *, integer_scores: bool):
    length = draw(st.integers(min_value=1, max_value=4))
    a_size = draw(st.integers(min_value=2, max_value=5))
    charset = bytes(range(65, 65 + a_size))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    if integer_scores:
        lam = rng.integers(0, 3, size=(length + 1, 256, 256)).astype(np.float64)
    else:
        lam = rng.normal(size=(length + 1, 256, 256))
    first = draw(st.integers(min_value=0, max_value=255))
    last = draw(st.integers(min_value=0, max_value=255))
    n = draw(st.integers(min_value=1, max_value=50))
    return PlaintextHmm(lam, first, last, charset=charset), n


class TestBruteForceGroundTruth:
    @settings(max_examples=25, deadline=None)
    @given(_tiny_hmm(integer_scores=False))
    def test_continuous_scores(self, case):
        hmm, n = case
        _assert_matches_brute_force(hmm, n)

    @settings(max_examples=25, deadline=None)
    @given(_tiny_hmm(integer_scores=True))
    def test_exact_ties(self, case):
        hmm, n = case
        _assert_matches_brute_force(hmm, n)


# --------------------------------------------------------------------------
# Streaming equivalence.
# --------------------------------------------------------------------------


class TestLazyBlocks:
    def test_blocks_concat_equals_per_item(self, rng):
        lam = rng.normal(size=(5, 256))
        items = list(islice(lazy_candidates(lam), 500))
        rows = []
        scores = []
        for block, block_scores in lazy_candidate_blocks(lam, block_size=17):
            rows.extend(r.tobytes() for r in block)
            scores.extend(block_scores.tolist())
            if len(rows) >= 500:
                break
        assert rows[:500] == [p for p, _ in items]
        assert scores[:500] == [s for _, s in items]

    def test_matches_algorithm1(self, rng):
        lam = rng.normal(size=(4, 256))
        cands, scores = algorithm1(lam, 300)
        lazy = list(islice(lazy_candidates(lam), 300))
        assert [p for p, _ in lazy] == list(cands)
        np.testing.assert_allclose([s for _, s in lazy], scores, rtol=0, atol=1e-9)

    def test_exhausts_tiny_space(self):
        lam = np.zeros((1, 256))
        lam[0, :3] = [5.0, 4.0, 3.0]
        total = sum(
            block.shape[0] for block, _ in lazy_candidate_blocks(lam, block_size=100)
        )
        assert total == 256

    def test_block_size_validated(self, rng):
        with pytest.raises(CandidateError):
            next(lazy_candidate_blocks(rng.normal(size=(2, 256)), block_size=0))


# --------------------------------------------------------------------------
# Batched oracle/pruner accounting parity.
# --------------------------------------------------------------------------


def _matrix_from(rows: list[bytes]) -> np.ndarray:
    return np.frombuffer(b"".join(rows), dtype=np.uint8).reshape(
        len(rows), len(rows[0]) if rows else 0
    )


def _run_scalar(rows, secret, charset, cookie_len, budget):
    oracle = BruteForceOracle(secret=secret)
    pruner = CandidatePruner(cookie_len=cookie_len, charset=charset)
    try:
        cookie, attempts = oracle.search(
            pruner.filter(r for r in rows), budget=budget
        )
        return ("hit", cookie, attempts, oracle.attempts, pruner.pruned)
    except AttackError as exc:
        return ("fail", str(exc), oracle.attempts, pruner.pruned)


def _run_batched(rows, secret, charset, cookie_len, budget, block_size):
    oracle = BruteForceOracle(secret=secret)
    pruner = CandidatePruner(cookie_len=cookie_len, charset=charset)
    matrix = _matrix_from(rows)
    try:
        cookie, attempts, rank = oracle.search_matrix(
            matrix, pruner=pruner, budget=budget, block_size=block_size
        )
        assert rows[rank] == cookie
        return ("hit", cookie, attempts, oracle.attempts, pruner.pruned)
    except AttackError as exc:
        return ("fail", str(exc), oracle.attempts, pruner.pruned)


class TestBatchedOracleParity:
    CHARSET = b"abcdef"

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_accounting_matches_scalar(self, data):
        rng = np.random.default_rng(
            data.draw(st.integers(min_value=0, max_value=2**31 - 1))
        )
        n = data.draw(st.integers(min_value=0, max_value=40))
        cookie_len = 3
        # ~half the rows inadmissible ('z' outside the pruner charset).
        rows = [
            bytes(
                rng.choice(np.frombuffer(self.CHARSET + b"z", dtype=np.uint8), 3)
            )
            for _ in range(n)
        ]
        secret = (
            rows[data.draw(st.integers(min_value=0, max_value=n - 1))]
            if n and data.draw(st.booleans())
            else b"xyz"
        )
        budget = data.draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=12))
        )
        block_size = data.draw(st.integers(min_value=1, max_value=16))
        scalar = _run_scalar(rows, secret, self.CHARSET, cookie_len, budget)
        batched = _run_batched(
            rows, secret, self.CHARSET, cookie_len, budget, block_size
        )
        assert batched == scalar

    def test_budget_zero(self):
        rows = [b"zzz", b"aaa"]
        scalar = _run_scalar(rows, b"aaa", self.CHARSET, 3, 0)
        batched = _run_batched(rows, b"aaa", self.CHARSET, 3, 0, 1)
        assert batched == scalar
        assert scalar[0] == "fail" and "after 0 attempts" in scalar[1]
        # The scalar stream consumed the drop in front of the first
        # admitted candidate before breaking; so must the batched walk.
        assert scalar[3] == 1 and batched[3] == 1

    def test_length_mismatch_never_hits(self):
        rows = [b"ab", b"cd"]
        oracle = BruteForceOracle(secret=b"abc")
        with pytest.raises(AttackError, match="after 2 attempts"):
            oracle.search_matrix(_matrix_from(rows))
        assert oracle.attempts == 2

    def test_admit_mask_matches_admits(self, rng):
        pruner = CandidatePruner(cookie_len=4, charset=self.CHARSET)
        rows = rng.integers(0, 256, size=(64, 4)).astype(np.uint8)
        rows[:8] = rng.choice(np.frombuffer(self.CHARSET, dtype=np.uint8), (8, 4))
        mask = pruner.admit_mask(rows)
        assert pruner.pruned == 0
        expected = [pruner.admits(r.tobytes()) for r in rows]
        assert mask.tolist() == expected

    def test_admit_mask_wrong_width(self):
        pruner = CandidatePruner(cookie_len=4, charset=self.CHARSET)
        assert not pruner.admit_mask(np.zeros((3, 5), dtype=np.uint8)).any()

    def test_pruner_drops_true_cookie(self):
        """Regression: when the pruner rejects the real cookie, the
        batched walk must fail exactly like the scalar stream did —
        not report a bogus hit or a rank from a second list walk."""
        rows = [b"abcd", b"ZZZZ", b"fedc"]
        secret = b"ZZZZ"  # outside the pruner charset
        scalar = _run_scalar(rows, secret, self.CHARSET, 4, None)
        batched = _run_batched(rows, secret, self.CHARSET, 4, None, 2)
        assert batched == scalar
        assert scalar[0] == "fail" and "after 2 attempts" in scalar[1]
        assert scalar[3] == 1  # the dropped true cookie was counted


# --------------------------------------------------------------------------
# Selection / planning internals pinned at their boundaries.
# --------------------------------------------------------------------------


class TestSelectionInternals:
    def test_plan_chunk_boundaries(self):
        per_row = 90 * 64 * 24  # a_size=90, pool=64
        assert _plan_chunk(90, 64, per_row * 7) == 7
        assert _plan_chunk(90, 64, per_row * 7 - 1) == 6
        assert _plan_chunk(90, 64, 1) == 1  # floor: never zero rows
        assert _plan_chunk(90, 64, 1 << 40) == 90  # cap: a_size rows

    def test_initial_pool_width(self):
        assert _initial_pool_width(256, 90, 4096) == 6  # ceil(256/90)*2
        assert _initial_pool_width(1, 90, 4096) == 2
        assert _initial_pool_width(4096, 2, 64) == 64  # capped at k_prev

    def test_select_desc_canonical_ties(self):
        neg = np.array([[1.0, 3.0, 1.0, 2.0, 1.0]])
        idx = np.arange(5)
        sel_idx, sel_neg = _select_desc(neg, idx, 2, 1 << 20)
        # Three entries tie at the best (negated) value 1.0: the
        # canonical order keeps the lowest original indices.
        assert sel_idx.tolist() == [[0, 2]]
        assert sel_neg.tolist() == [[1.0, 1.0]]

    def test_select_desc_segmented_equals_direct(self, rng):
        neg = -rng.normal(size=(1, 5000))
        idx = np.arange(5000)
        direct = _select_desc(neg, idx, 64, 1 << 30)
        # Budget small enough that the row is processed in segments.
        seg = _select_desc(neg, idx, 64, 64 * 24 * 4)
        np.testing.assert_array_equal(direct[0], seg[0])
        np.testing.assert_array_equal(direct[1], seg[1])


# --------------------------------------------------------------------------
# REPRO_CANDIDATE_MEM parsing.
# --------------------------------------------------------------------------


class TestCandidateMemConfig:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CANDIDATE_MEM", raising=False)
        from repro.config import env_candidate_mem, DEFAULT_CANDIDATE_MEM

        assert env_candidate_mem() == DEFAULT_CANDIDATE_MEM

    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("123456", 123456),
            ("64K", 64 << 10),
            ("256M", 256 << 20),
            ("2G", 2 << 30),
            ("1.5G", int(1.5 * (1 << 30))),
        ],
    )
    def test_suffixes(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_CANDIDATE_MEM", raw)
        from repro.config import env_candidate_mem

        assert env_candidate_mem() == expected

    @pytest.mark.parametrize("raw", ["zero", "-1", "0", "12Q", ""])
    def test_rejects_garbage(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CANDIDATE_MEM", raw)
        from repro.config import env_candidate_mem

        if raw == "":
            from repro.config import DEFAULT_CANDIDATE_MEM

            assert env_candidate_mem() == DEFAULT_CANDIDATE_MEM
        else:
            with pytest.raises(ConfigError):
                env_candidate_mem()

    def test_dataclass_validation(self):
        with pytest.raises(ConfigError):
            ReproConfig(candidate_mem=0)
