"""Cross-cutting property-based tests on the core invariants.

These pin down the algebra the attacks rely on: XOR-equivariance of
likelihoods, order-invariance of statistics, linear-prefix structure of
the CRC, and completeness/order properties of candidate lists.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import single_byte_log_likelihoods
from repro.core.likelihood.absab import absab_log_likelihoods
from repro.core.candidates.single_list import algorithm1
from repro.simulate import sample_single_byte_counts
from repro.tkip.crc import Crc32, crc32, icv
from repro.tkip.michael import MichaelState, message_words, michael, recover_key
from repro.tls.attack import CookieLayout
from repro.tls.bruteforce import CandidatePruner
from repro.tls.http import BROWSER_PROFILES


class TestLikelihoodEquivariance:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31), shift=st.integers(0, 255))
    def test_xor_relabelling_shifts_argmax(self, seed, shift):
        """Encrypting plaintext mu under keystream Z gives the same counts
        as plaintext mu^s under keystream Z^s: likelihoods must commute
        with XOR relabelling of the ciphertext axis."""
        rng = np.random.default_rng(seed)
        dist = rng.dirichlet(np.ones(256) * 50.0)
        counts = rng.integers(0, 40, 256).astype(np.float64)
        base = single_byte_log_likelihoods(counts, dist)
        shifted_counts = np.empty_like(counts)
        shifted_counts[np.arange(256) ^ shift] = counts
        shifted = single_byte_log_likelihoods(shifted_counts, dist)
        assert np.allclose(base, shifted[np.arange(256) ^ shift])

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_likelihood_scale_invariance_of_ranking(self, seed):
        """Doubling every count preserves the candidate ordering."""
        rng = np.random.default_rng(seed)
        dist = rng.dirichlet(np.ones(256) * 20.0)
        counts = rng.integers(0, 30, 256).astype(np.float64)
        a = single_byte_log_likelihoods(counts, dist)
        b = single_byte_log_likelihoods(counts * 2, dist)
        assert np.array_equal(np.argsort(a), np.argsort(b))

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        k1=st.integers(0, 255),
        k2=st.integers(0, 255),
    )
    def test_absab_known_plaintext_shift(self, seed, k1, k2):
        """Changing the known plaintext bytes permutes the ABSAB
        likelihood matrix by XOR, nothing else."""
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, 20, 65536).astype(np.float64)
        base = absab_log_likelihoods(counts, 4, (0, 0))
        moved = absab_log_likelihoods(counts, 4, (k1, k2))
        idx = np.arange(256)
        assert np.allclose(base, moved[np.ix_(idx ^ k1, idx ^ k2)])


class TestSamplerStatistics:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31), plaintext=st.integers(0, 255))
    def test_sampled_counts_recover_plaintext_distribution(self, seed, plaintext):
        """XOR-shifting sampled ciphertext counts by the plaintext must
        recover the keystream distribution in expectation."""
        rng = np.random.default_rng(seed)
        dist = rng.dirichlet(np.ones(256))
        counts = sample_single_byte_counts(dist, 1 << 16, plaintext, seed=seed)
        recovered = counts[np.arange(256) ^ plaintext] / counts.sum()
        assert np.abs(recovered - dist).max() < 0.02


class TestCrcAlgebra:
    @settings(max_examples=20, deadline=None)
    @given(prefix=st.binary(max_size=60), a=st.binary(max_size=20))
    def test_incremental_prefix_consistency(self, prefix, a):
        state = Crc32().update(prefix)
        assert state.copy().update(a).value == crc32(prefix + a)

    @settings(max_examples=20, deadline=None)
    @given(data=st.binary(min_size=1, max_size=50))
    def test_appending_icv_yields_residue(self, data):
        """CRC of data || ICV(data) is the fixed CRC-32 residue — the
        self-checking property receivers use."""
        assert crc32(data + icv(data)) == 0x2144DF1C

    @settings(max_examples=20, deadline=None)
    @given(
        data=st.binary(min_size=1, max_size=40),
        flip=st.integers(0, 7),
    )
    def test_single_bit_flip_always_detected(self, data, flip):
        corrupted = bytes([data[0] ^ (1 << flip)]) + data[1:]
        assert crc32(corrupted) != crc32(data)


class TestMichaelAvalanche:
    @settings(max_examples=20, deadline=None)
    @given(
        key=st.binary(min_size=8, max_size=8),
        msg=st.binary(min_size=1, max_size=40),
        pos=st.integers(0, 39),
        bit=st.integers(0, 7),
    )
    def test_message_bit_flip_changes_mic(self, key, msg, pos, bit):
        pos %= len(msg)
        corrupted = (
            msg[:pos] + bytes([msg[pos] ^ (1 << bit)]) + msg[pos + 1:]
        )
        assert michael(key, corrupted) != michael(key, msg)

    @settings(max_examples=20, deadline=None)
    @given(
        key=st.binary(min_size=8, max_size=8),
        msg=st.binary(max_size=32),
        bit=st.integers(0, 63),
    )
    def test_key_bit_flip_changes_mic(self, key, msg, bit):
        flipped = bytearray(key)
        flipped[bit // 8] ^= 1 << (bit % 8)
        assert michael(bytes(flipped), msg) != michael(key, msg)


class TestMichaelInversion:
    @settings(max_examples=30, deadline=None)
    @given(
        key=st.binary(min_size=8, max_size=8),
        msg=st.binary(max_size=64),
    )
    def test_recover_key_round_trips_michael(self, key, msg):
        """Every Michael step is invertible, so key -> MIC -> key is the
        identity for any key and message — the §2.2 attack's premise."""
        assert recover_key(msg, michael(key, msg)) == key

    @settings(max_examples=30, deadline=None)
    @given(
        left=st.integers(0, 2**32 - 1),
        right=st.integers(0, 2**32 - 1),
        word=st.integers(0, 2**32 - 1),
    )
    def test_state_mix_unmix_inverse(self, left, right, word):
        state = MichaelState(left, right)
        state.mix(word).unmix(word)
        assert (state.left, state.right) == (left, right)

    @settings(max_examples=20, deadline=None)
    @given(msg=st.binary(max_size=48))
    def test_padding_marker_and_word_alignment(self, msg):
        words = message_words(msg)
        padded_len = 4 * len(words)
        assert padded_len % 4 == 0
        # 0x5a marker right after the message, then >= 4 zero bytes.
        assert padded_len >= len(msg) + 5


class TestBrowserLayouts:
    @settings(max_examples=20, deadline=None)
    @given(
        profile=st.sampled_from(sorted(BROWSER_PROFILES)),
        cookie_len=st.integers(1, 32),
        host=st.from_regex(r"[a-z]{1,12}\.com", fullmatch=True),
    )
    def test_cookie_offset_matches_layout_metadata(
        self, profile, cookie_len, host
    ):
        """Every browser template's built request must carry the cookie
        exactly where the layout metadata used by the pruner says."""
        template = BROWSER_PROFILES[profile].template(host)
        layout = CookieLayout.from_template(template, cookie_len)
        start, end = layout.cookie_span
        assert start == len(template.prefix()) + 1
        assert end - start + 1 == cookie_len == layout.cookie_len
        cookie = bytes(range(65, 65 + min(cookie_len, 26)))
        cookie = (cookie * (cookie_len // len(cookie) + 1))[:cookie_len]
        request = template.build(cookie)
        assert request[start - 1 : end] == cookie
        assert len(request) == layout.request_len

    @settings(max_examples=20, deadline=None)
    @given(
        profile=st.sampled_from(sorted(BROWSER_PROFILES)),
        cookie_len=st.integers(1, 16),
        data=st.data(),
    )
    def test_pruner_admits_exactly_layout_consistent_values(
        self, profile, cookie_len, data
    ):
        charset = BROWSER_PROFILES[profile].cookie_charset
        layout = CookieLayout.from_template(
            BROWSER_PROFILES[profile].template("site.com"), cookie_len
        )
        pruner = CandidatePruner.for_layout(layout, charset)
        good = bytes(
            data.draw(st.sampled_from(charset)) for _ in range(cookie_len)
        )
        assert pruner.admits(good)
        assert not pruner.admits(good + good[:1])  # wrong length
        forbidden = data.draw(
            st.integers(0, 255).filter(lambda b: b not in set(charset))
        )
        bad = bytes([forbidden]) + good[1:]
        assert not pruner.admits(bad)
        kept = list(pruner.filter([good, bad, good]))
        assert kept == [good, good]
        assert pruner.pruned == 1


class TestCandidateCompleteness:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_algorithm1_full_space_is_permutation(self, seed):
        """Asking for the whole space must enumerate every plaintext
        exactly once, in non-increasing score order."""
        rng = np.random.default_rng(seed)
        lam = np.full((2, 256), -np.inf)
        values = [3, 200]
        lam[0, values] = rng.normal(size=2)
        lam[1, values] = rng.normal(size=2)
        # Restrict effective alphabet via -inf elsewhere; enumerate all 4.
        cands, scores = algorithm1(lam, 4)
        finite = [c for c, s in zip(cands, scores) if np.isfinite(s)]
        assert len(set(finite)) == len(finite) == 4
        assert all(
            set(c) <= set(values) for c in finite
        )
