"""Candidate enumeration: Algorithm 1, lazy variant, Algorithm 2, HMM."""

from itertools import islice

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PlaintextHmm, algorithm1, algorithm2, lazy_candidates
from repro.errors import CandidateError


class TestAlgorithm1:
    def test_scores_non_increasing(self, rng):
        lam = rng.normal(size=(5, 256))
        _, scores = algorithm1(lam, 200)
        assert np.all(np.diff(scores) <= 1e-12)

    def test_no_duplicate_candidates(self, rng):
        lam = rng.normal(size=(3, 256))
        cands, _ = algorithm1(lam, 500)
        assert len(set(cands)) == len(cands)

    def test_top_candidate_is_argmax(self, rng):
        lam = rng.normal(size=(6, 256))
        cands, _ = algorithm1(lam, 1)
        expected = bytes(int(v) for v in lam.argmax(axis=1))
        assert cands[0] == expected

    def test_scores_match_sum_of_loglik(self, rng):
        lam = rng.normal(size=(4, 256))
        cands, scores = algorithm1(lam, 64)
        for cand, score in zip(cands, scores):
            manual = sum(lam[r, b] for r, b in enumerate(cand))
            assert score == pytest.approx(manual)

    def test_exhaustive_small_space(self, rng):
        """Against brute force on a single position (256 candidates)."""
        lam = rng.normal(size=(1, 256))
        cands, scores = algorithm1(lam, 256)
        expected = sorted(range(256), key=lambda mu: -lam[0, mu])
        assert [c[0] for c in cands] == expected

    def test_space_smaller_than_n(self, rng):
        lam = rng.normal(size=(1, 256))
        cands, _ = algorithm1(lam, 10_000)
        assert len(cands) == 256

    def test_validation(self, rng):
        with pytest.raises(CandidateError):
            algorithm1(rng.normal(size=(3, 255)), 10)
        with pytest.raises(CandidateError):
            algorithm1(rng.normal(size=(3, 256)), 0)


class TestLazyEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31), length=st.integers(1, 5))
    def test_lazy_matches_algorithm1_scores(self, seed, length):
        lam = np.random.default_rng(seed).normal(size=(length, 256))
        n = 100
        _, scores = algorithm1(lam, n)
        lazy_scores = [s for _, s in islice(lazy_candidates(lam), n)]
        assert np.allclose(scores, lazy_scores)

    def test_lazy_candidates_unique(self, rng):
        lam = rng.normal(size=(3, 256))
        seen = [c for c, _ in islice(lazy_candidates(lam), 2000)]
        assert len(set(seen)) == len(seen)

    def test_lazy_streams_without_limit(self, rng):
        lam = rng.normal(size=(2, 256))
        gen = lazy_candidates(lam)
        first = next(gen)
        second = next(gen)
        assert first[1] >= second[1]


class TestAlgorithm2:
    def _hmm(self, rng, unknown, charset):
        lam = rng.normal(size=(unknown + 1, 256, 256))
        return PlaintextHmm(lam, first_byte=61, last_byte=59, charset=charset)

    def test_matches_brute_force_scores(self, rng):
        hmm = self._hmm(rng, unknown=3, charset=bytes([5, 9, 77, 200]))
        brute = hmm.brute_force(50)
        nbest = hmm.n_best(50)
        assert np.allclose(brute.log_likelihoods, nbest.log_likelihoods)

    def test_candidate_scores_are_path_likelihoods(self, rng):
        hmm = self._hmm(rng, unknown=4, charset=bytes([1, 2, 3, 4, 5]))
        nbest = hmm.n_best(25)
        for cand, score in nbest:
            assert hmm.sequence_log_likelihood(cand) == pytest.approx(score)

    def test_respects_charset(self, rng):
        charset = bytes([65, 66, 67])
        hmm = self._hmm(rng, unknown=4, charset=charset)
        for cand, _ in hmm.n_best(30):
            assert all(b in charset for b in cand)

    def test_scores_non_increasing(self, rng):
        hmm = self._hmm(rng, unknown=5, charset=bytes(range(40, 60)))
        nbest = hmm.n_best(200)
        assert np.all(np.diff(nbest.log_likelihoods) <= 1e-9)

    def test_no_duplicates(self, rng):
        hmm = self._hmm(rng, unknown=4, charset=bytes(range(30, 45)))
        nbest = hmm.n_best(500)
        assert len(set(nbest.plaintexts)) == len(nbest)

    def test_full_256_alphabet(self, rng):
        lam = rng.normal(size=(2, 256, 256))
        result = algorithm2(lam, 10, 20, 5)
        # One unknown byte: score = lam[0,10,mu] + lam[1,mu,20].
        combined = lam[0, 10, :] + lam[1, :, 20]
        expected = np.argsort(-combined)[:5]
        assert [c[0] for c in result.plaintexts] == list(expected)

    def test_rank_of(self, rng):
        hmm = self._hmm(rng, unknown=3, charset=bytes([7, 8, 9]))
        nbest = hmm.n_best(27)
        assert nbest.rank_of(nbest.plaintexts[13]) == 13
        assert nbest.rank_of(b"\x00\x00\x00") is None

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_property_brute_force_agreement(self, seed):
        rng = np.random.default_rng(seed)
        charset = bytes(sorted(rng.choice(256, size=4, replace=False)))
        lam = rng.normal(size=(4, 256, 256))
        hmm = PlaintextHmm(lam, first_byte=0, last_byte=255, charset=charset)
        brute = hmm.brute_force(30)
        nbest = hmm.n_best(30)
        assert np.allclose(brute.log_likelihoods, nbest.log_likelihoods)
        assert brute.plaintexts[0] == nbest.plaintexts[0]

    def test_validation(self, rng):
        with pytest.raises(CandidateError):
            algorithm2(rng.normal(size=(1, 256, 256)), 0, 0, 5)
        with pytest.raises(CandidateError):
            algorithm2(rng.normal(size=(3, 256, 256)), 0, 0, 0)
        with pytest.raises(CandidateError):
            algorithm2(rng.normal(size=(3, 256, 256)), 0, 0, 5, charset=b"")
        with pytest.raises(CandidateError):
            algorithm2(rng.normal(size=(3, 256, 255)), 0, 0, 5)


class TestHmmModel:
    def test_viterbi_is_top_candidate(self, rng):
        lam = rng.normal(size=(4, 256, 256))
        hmm = PlaintextHmm(lam, 1, 2, charset=bytes(range(10)))
        best_seq, best_score = hmm.viterbi()
        nbest = hmm.n_best(3)
        assert best_seq == nbest.plaintexts[0]
        assert best_score == pytest.approx(float(nbest.log_likelihoods[0]))

    def test_brute_force_guard(self, rng):
        lam = rng.normal(size=(17, 256, 256))
        hmm = PlaintextHmm(lam, 0, 0, charset=bytes(range(64)))
        with pytest.raises(CandidateError):
            hmm.brute_force()

    def test_sequence_length_check(self, rng):
        lam = rng.normal(size=(3, 256, 256))
        hmm = PlaintextHmm(lam, 0, 0)
        with pytest.raises(CandidateError):
            hmm.sequence_log_likelihood(b"toolong")
