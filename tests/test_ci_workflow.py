"""Structural dry-run of .github/workflows/ci.yml.

`act` is not available in the offline environment, so this is the
equivalent gate: parse the workflow and assert the properties the repo
relies on — the REPRO_NATIVE matrix, `make verify`, the compile cache
keyed on _native.c's hash, the thread-determinism matrix, the lint job,
and the soft-fail regression step.  A workflow edit that breaks any of
these fails the tier-1 suite locally instead of failing silently on the
first push.
"""

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = (
    Path(__file__).resolve().parent.parent / ".github" / "workflows" / "ci.yml"
)


@pytest.fixture(scope="module")
def workflow():
    data = yaml.safe_load(WORKFLOW.read_text())
    assert isinstance(data, dict), "ci.yml did not parse to a mapping"
    return data


def _steps(job: dict) -> list[dict]:
    steps = job.get("steps")
    assert isinstance(steps, list) and steps, "job has no steps"
    return steps


def _run_lines(job: dict) -> str:
    return "\n".join(s.get("run", "") for s in _steps(job))


def test_workflow_exists_and_triggers(workflow):
    # pyyaml parses the bare key `on:` as boolean True (YAML 1.1).
    triggers = workflow.get("on", workflow.get(True))
    assert "pull_request" in triggers
    assert "push" in triggers


def test_verify_job_runs_make_verify_in_both_native_modes(workflow):
    job = workflow["jobs"]["verify"]
    matrix = job["strategy"]["matrix"]
    assert sorted(matrix["native"]) == ["0", "1"]
    assert job["env"]["REPRO_NATIVE"] == "${{ matrix.native }}"
    assert "make verify" in _run_lines(job)


def test_verify_job_covers_simd_dispatch_leg(workflow):
    """The verify matrix must run the compiled backend with the AVX2 tier
    both enabled and disabled (REPRO_NATIVE_SIMD={0,1}), so the
    interleaved/scalar tiers below the SIMD dispatch stay exercised even
    on SIMD-capable runners.  The knob is meaningless on the numpy leg,
    so that combination is excluded rather than run twice."""
    job = workflow["jobs"]["verify"]
    matrix = job["strategy"]["matrix"]
    assert sorted(matrix["simd"]) == ["0", "1"]
    assert {"native": "0", "simd": "0"} in matrix.get("exclude", [])
    assert job["env"]["REPRO_NATIVE_SIMD"] == "${{ matrix.simd }}"


def test_verify_job_caches_native_build_keyed_on_source_hash(workflow):
    job = workflow["jobs"]["verify"]
    cache_steps = [
        s for s in _steps(job) if "actions/cache" in str(s.get("uses", ""))
    ]
    assert cache_steps, "verify job must cache ~/.cache/repro-rc4"
    cache = cache_steps[0]["with"]
    assert "repro-rc4" in cache["path"]
    assert "hashFiles('src/repro/rc4/_native.c')" in cache["key"]


def test_verify_job_smokes_the_experiment_api(workflow):
    """CI must exercise the registry CLI: list + a tiny run --json."""
    runs = _run_lines(workflow["jobs"]["verify"])
    assert "python -m repro list" in runs
    assert "python -m repro" in runs and " run " in runs
    assert "--json" in runs
    assert "ExperimentResult" in runs, "the emitted JSON must be validated"


def test_verify_job_smokes_the_scenario_matrix(workflow):
    """CI must run every scenario-matrix registry entry at tiny scale on
    both legs of the REPRO_NATIVE matrix (the step lives inside the
    matrixed verify job), validating each emitted record."""
    job = workflow["jobs"]["verify"]
    assert sorted(job["strategy"]["matrix"]["native"]) == ["0", "1"]
    runs = _run_lines(job)
    for experiment in ("attack-michael", "bias-sweep", "bias-sweep-digraph"):
        assert experiment in runs, f"scenario smoke must run {experiment}"
    assert "browser=firefox" in runs, "a non-default browser layout must run"
    scenario_steps = [
        s for s in _steps(job) if "attack-michael" in s.get("run", "")
    ]
    assert "ExperimentResult" in scenario_steps[0]["run"], (
        "scenario smoke must validate the emitted JSON records"
    )


def test_verify_job_smokes_capture_equivalence_on_both_native_legs(workflow):
    """The capture-engine equivalence suite must run inside the matrixed
    verify job, so both REPRO_NATIVE={0,1} legs assert the batched
    capture == per-request reference bit-exactness."""
    job = workflow["jobs"]["verify"]
    assert sorted(job["strategy"]["matrix"]["native"]) == ["0", "1"]
    runs = _run_lines(job)
    assert "test_capture_equivalence" in runs, (
        "verify job must smoke tests/test_capture_equivalence.py"
    )


def test_verify_job_smokes_fleet_crash_recovery_on_both_native_legs(workflow):
    """The fleet fault-injection suite (worker SIGKILL mid-shard, shard
    NPZ truncation, stale-lease reclaim, retry-budget exhaustion, each
    diffed against the uninterrupted single-process capture) must run
    inside the matrixed verify job so both REPRO_NATIVE legs assert
    crash-recovery exactness."""
    job = workflow["jobs"]["verify"]
    assert sorted(job["strategy"]["matrix"]["native"]) == ["0", "1"]
    runs = _run_lines(job)
    assert "test_fleet_faults" in runs, (
        "verify job must smoke tests/test_fleet_faults.py"
    )


def test_verify_job_smokes_warehouse_sweep_and_docs_consistency(workflow):
    """The verify job must sweep into a store, prove the rerun skips
    everything (crash-tolerant resume), report from stored runs, and run
    the warehouse + docs-consistency suites on both REPRO_NATIVE legs."""
    job = workflow["jobs"]["verify"]
    assert sorted(job["strategy"]["matrix"]["native"]) == ["0", "1"]
    runs = _run_lines(job)
    assert "python -m repro" in runs and " sweep " in runs
    assert "store report" in runs
    assert "'skipped': 2" in runs, (
        "the second sweep must assert everything was skipped (resume path)"
    )
    assert "test_warehouse" in runs
    assert "test_docs_consistency" in runs, (
        "docs-consistency must gate the verify job"
    )


def test_verify_job_smokes_the_campaign_simulator(workflow):
    """The verify job must run a tiny heterogeneous campaign-https
    population through the shared-keystream multi-template path on both
    REPRO_NATIVE legs: --json round-trip, a warehouse append, and the
    campaign test suite."""
    job = workflow["jobs"]["verify"]
    assert sorted(job["strategy"]["matrix"]["native"]) == ["0", "1"]
    runs = _run_lines(job)
    assert "campaign-https" in runs, "verify job must smoke campaign-https"
    assert "population=4" in runs, "the smoke population must stay tiny"
    campaign_steps = [
        s for s in _steps(job) if "campaign-https" in s.get("run", "")
    ]
    step = campaign_steps[0]["run"]
    assert "ExperimentResult" in step, (
        "campaign smoke must validate the emitted JSON record"
    )
    assert "--store" in step and "RunStore" in step, (
        "campaign smoke must append to a warehouse store and query it back"
    )
    assert "test_campaign" in runs, (
        "verify job must run tests/test_campaign.py"
    )


def test_verify_job_smokes_recovery_at_scale(workflow):
    """The verify job must run the candidate-recovery engine at a
    paper-scale list size (attack-https with num_candidates=65536) on
    both REPRO_NATIVE legs, plus the ordering spot-check that rescores
    recovered paths against the transition likelihoods."""
    job = workflow["jobs"]["verify"]
    assert sorted(job["strategy"]["matrix"]["native"]) == ["0", "1"]
    runs = _run_lines(job)
    recovery_steps = [
        s for s in _steps(job) if "num_candidates=65536" in s.get("run", "")
    ]
    assert recovery_steps, (
        "verify job must smoke attack-https at num_candidates=65536"
    )
    step = recovery_steps[0]["run"]
    assert "attack-https" in step
    assert "spot_check_recovery" in runs, (
        "verify job must run tests/spot_check_recovery.py"
    )
    assert (
        Path(__file__).resolve().parent / "spot_check_recovery.py"
    ).exists(), "CI references tests/spot_check_recovery.py"


def test_verify_job_has_soft_fail_regression_step(workflow):
    job = workflow["jobs"]["verify"]
    check_steps = [
        s for s in _steps(job) if "--check" in s.get("run", "")
    ]
    assert check_steps, "verify job must run the --check regression gate"
    assert all(
        s.get("continue-on-error") is True for s in check_steps
    ), "regression gate must be soft-fail in CI"
    assert "--tolerance" in check_steps[0]["run"]


def test_thread_determinism_job_covers_one_and_default(workflow):
    job = workflow["jobs"]["thread-determinism"]
    matrix = job["strategy"]["matrix"]
    assert "1" in matrix["threads"], "must pin REPRO_NATIVE_THREADS=1"
    assert "default" in matrix["threads"], "must also run the default"
    runs = _run_lines(job)
    assert "REPRO_NATIVE_THREADS" in runs
    assert "test_dataset_equivalence" in runs


def test_lint_job_runs_ruff(workflow):
    job = workflow["jobs"]["lint"]
    runs = _run_lines(job)
    assert "ruff" in runs
    assert "make lint" in runs


def test_ruff_config_exists():
    root = WORKFLOW.parent.parent.parent
    assert (root / "ruff.toml").exists()


def test_bench_baseline_referenced_by_ci_is_committed(workflow):
    """The --check step must point at a file that actually exists."""
    job = workflow["jobs"]["verify"]
    runs = _run_lines(job)
    for token in runs.split():
        if token.startswith("benchmarks/BENCH_"):
            root = WORKFLOW.parent.parent.parent
            assert (root / token).exists(), f"CI references missing {token}"
            break
    else:
        pytest.fail("no BENCH baseline referenced in verify job")
