"""Michael MIC, its inversion, and the CRC-32 ICV."""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MichaelError
from repro.tkip import Crc32, crc32, icv, michael, michael_header, recover_key
from repro.tkip.michael import _block, _block_inverse


class TestMichaelVectors:
    """IEEE 802.11 Annex test vectors for Michael."""

    CHAIN = [
        (bytes(8), b"", "82925c1ca1d130b8"),
        (bytes.fromhex("82925c1ca1d130b8"), b"M", "434721ca40639b3f"),
        (bytes.fromhex("434721ca40639b3f"), b"Mi", "e8f9becae97e5d29"),
        (bytes.fromhex("e8f9becae97e5d29"), b"Mic", "90038fc6cf13c1db"),
        (bytes.fromhex("90038fc6cf13c1db"), b"Mich", "d55e100510128986"),
    ]

    @pytest.mark.parametrize("key,msg,expected", CHAIN)
    def test_chain(self, key, msg, expected):
        assert michael(key, msg).hex() == expected


class TestBlockFunction:
    @settings(max_examples=50, deadline=None)
    @given(left=st.integers(0, 2**32 - 1), right=st.integers(0, 2**32 - 1))
    def test_block_inverse_roundtrip(self, left, right):
        assert _block_inverse(*_block(left, right)) == (left, right)

    @settings(max_examples=50, deadline=None)
    @given(left=st.integers(0, 2**32 - 1), right=st.integers(0, 2**32 - 1))
    def test_inverse_of_inverse(self, left, right):
        assert _block(*_block_inverse(left, right)) == (left, right)


class TestKeyRecovery:
    @settings(max_examples=30, deadline=None)
    @given(
        key=st.binary(min_size=8, max_size=8),
        message=st.binary(max_size=80),
    )
    def test_recover_key_inverts_michael(self, key, message):
        assert recover_key(message, michael(key, message)) == key

    def test_recovery_with_packet_like_message(self, rng):
        """The attack scenario: header + MSDU data (paper §5.3)."""
        key = rng.integers(0, 256, 8, dtype=np.uint8).tobytes()
        da, sa = bytes(range(6)), bytes(range(6, 12))
        data = rng.integers(0, 256, 55, dtype=np.uint8).tobytes()
        message = michael_header(da, sa) + data
        mic = michael(key, message)
        assert recover_key(message, mic) == key

    def test_bad_mic_length(self):
        with pytest.raises(MichaelError):
            recover_key(b"msg", b"\x00" * 7)

    def test_bad_key_length(self):
        with pytest.raises(MichaelError):
            michael(b"\x00" * 7, b"msg")


class TestMichaelHeader:
    def test_layout(self):
        header = michael_header(bytes(6), bytes(range(6)), priority=5)
        assert len(header) == 16
        assert header[12] == 5
        assert header[13:16] == b"\x00\x00\x00"

    def test_validation(self):
        with pytest.raises(MichaelError):
            michael_header(bytes(5), bytes(6))
        with pytest.raises(MichaelError):
            michael_header(bytes(6), bytes(6), priority=16)


class TestCrc32:
    @settings(max_examples=40, deadline=None)
    @given(data=st.binary(max_size=300))
    def test_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    def test_incremental_equals_oneshot(self):
        whole = Crc32().update(b"hello world").value
        split = Crc32().update(b"hello ").update(b"world").value
        assert whole == split

    def test_copy_forks_state(self):
        base = Crc32().update(b"prefix-")
        a = base.copy().update(b"a").value
        b = base.copy().update(b"b").value
        assert a != b
        assert a == crc32(b"prefix-a")

    def test_icv_little_endian(self):
        data = b"payload"
        assert icv(data) == zlib.crc32(data).to_bytes(4, "little")

    def test_prefix_extension_trick(self):
        """The attack precomputes CRC over known data and extends per
        candidate MIC — must equal the one-shot CRC."""
        known = b"headers-and-payload"
        mic = b"12345678"
        pre = Crc32().update(known)
        assert pre.copy().update(mic).digest() == icv(known + mic)
