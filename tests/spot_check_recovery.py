"""Ordering spot-check for the candidate-recovery engine at 2^16.

Run by the CI "Recovery-at-scale smoke" step on both ``REPRO_NATIVE``
legs (and usable standalone: ``PYTHONPATH=src python
tests/spot_check_recovery.py``).  Recovers a 2^16-candidate list and
asserts the two properties a correct list-Viterbi decode cannot violate:

* scores are non-increasing down the list, and
* every sampled candidate's stored score equals a direct re-scoring of
  its plaintext path through the transition likelihoods.
"""

from __future__ import annotations

import numpy as np

from repro.config import ReproConfig
from repro.simulate.https import HttpsAttackSimulation
from repro.tls.attack import recover_candidates, transition_log_likelihoods

NUM_CANDIDATES = 1 << 16
NUM_SPOT = 512


def path_score(loglik, layout, plaintext: bytes) -> float:
    start, end = layout.cookie_span
    path = (
        bytes((layout.known_byte(start - 1),))
        + plaintext
        + bytes((layout.known_byte(end + 1),))
    )
    return float(
        sum(loglik[t, path[t], path[t + 1]] for t in range(len(path) - 1))
    )


def main() -> None:
    # 3 unknown bytes over the 90-char RFC 6265 alphabet: 90^3 = 729000
    # possible plaintexts, so a full 2^16 list genuinely exists.
    sim = HttpsAttackSimulation(ReproConfig(seed=7), cookie_len=3, max_gap=32)
    stats = sim.sampled_statistics(1 << 24)
    loglik = transition_log_likelihoods(stats)
    candidates = recover_candidates(
        stats, NUM_CANDIDATES, charset=sim.cookie_charset
    )
    scores = np.asarray(candidates.log_likelihoods)
    assert len(candidates) == NUM_CANDIDATES, len(candidates)
    assert np.all(np.diff(scores) <= 0.0), "scores not non-increasing"

    layout = stats.layout
    spots = np.linspace(0, NUM_CANDIDATES - 1, NUM_SPOT).astype(int)
    for i in spots:
        expected = path_score(loglik, layout, candidates.plaintexts[int(i)])
        assert abs(expected - scores[i]) < 1e-9, (i, expected, scores[i])
    print(
        f"recovery ordering spot-check ok: {NUM_CANDIDATES} candidates, "
        f"{NUM_SPOT} rescored, score span "
        f"[{scores[-1]:.3f}, {scores[0]:.3f}]"
    )


if __name__ == "__main__":
    main()
