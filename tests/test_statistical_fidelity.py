"""Statistical-fidelity harness: headline numbers inside binomial CIs.

Seeded Monte-Carlo checks that the reproduction's headline quantities —
the Mantin–Shamir Z2=0 and the Z1=0x81 / Z16=0xf0 single-byte biases
(measured from real keystream), the Fluhrer–McGrew digraph cells (via
the exact sufficient-statistic samplers at paper-like sample counts),
the ABSAB alpha(g) model, and the small-scale TKIP success rate — fall
inside binomial confidence intervals around their reference values.

Everything is deterministic under the fixed seeds used here, and the
keystream-derived counts are bit-identical across backends (numpy /
native, any thread count), so these tests behave the same on every CI
leg.

:func:`assert_within_ci` is the reusable helper; other test modules
import it (``from test_statistical_fidelity import assert_within_ci``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import assert_within_ci as analysis_assert_within_ci
from repro.biases import (
    KEYLEN_BIAS_16,
    MANTIN_SHAMIR,
    Z1_129,
    absab_alpha,
    fm_biased_cells,
    fm_digraph_distribution,
)
from repro.config import ReproConfig
from repro.datasets import DatasetSpec
from repro.errors import AttackError
from repro.simulate import (
    sample_absab_differential_counts,
    sample_digraph_counts,
    sampled_capture,
)
from repro.api import Session

UNIFORM_BYTE = 1.0 / 256.0


def assert_within_ci(
    observed: int,
    trials: int,
    p: float,
    *,
    z: float = 4.0,
    label: str = "",
) -> None:
    """Assert an observed count sits inside the binomial z-sigma CI.

    Under H0 "successes ~ Binomial(trials, p)", the count deviates from
    ``trials * p`` by more than ``z * sqrt(trials * p * (1 - p))`` with
    probability ~2 * Phi(-z) (about 6e-5 at the default z=4) — and the
    seeded inputs used by this suite make each check deterministic
    anyway.  Reusable: import it from other test modules for any
    count-vs-model comparison.

    The arithmetic lives in :func:`repro.analysis.check_within_ci` so
    warehouse fidelity reports and this suite judge claims identically;
    this wrapper keeps the historic import path for test modules.
    """
    analysis_assert_within_ci(observed, trials, p, z=z, label=label)


# ---------------------------------------------------------------------------
# Single-byte headline biases, measured from real keystream.
# ---------------------------------------------------------------------------

FIDELITY_SEED = 1337
SINGLE_KEYS = 1 << 20


@pytest.fixture(scope="module")
def single_counts() -> np.ndarray:
    """Real-keystream single-byte counts over 2^20 seeded keys.

    Bit-identical across backends and thread counts (the dataset
    equivalence suite guarantees it), so every check below is exact.
    """
    session = Session(ReproConfig(seed=FIDELITY_SEED))
    return session.dataset(
        DatasetSpec(
            kind="single", num_keys=SINGLE_KEYS, positions=16,
            label="fidelity-single",
        )
    )


def test_mantin_shamir_z2_zero(single_counts):
    """Pr[Z2 = 0] = 2 * 2^-8 — the paper's broadcast-attack anchor."""
    observed = int(single_counts[1, 0])
    assert_within_ci(
        observed, SINGLE_KEYS, MANTIN_SHAMIR.probability,
        label="Z2 = 0x00",
    )
    # The doubled probability is unmistakable at this sample count:
    # ~33 sd above uniform.
    assert observed > SINGLE_KEYS * UNIFORM_BYTE * 1.5


def test_keylength_z16_240(single_counts):
    """Pr[Z16 = 240] ~ 2^-8 (1 + 2^-4.8) for 16-byte keys."""
    observed = int(single_counts[15, 240])
    assert_within_ci(
        observed, SINGLE_KEYS, KEYLEN_BIAS_16.probability,
        label="Z16 = 0xf0",
    )
    # Direction: positively biased against uniform.
    assert observed > SINGLE_KEYS * UNIFORM_BYTE


def test_z1_0x81_bias(single_counts):
    """Pr[Z1 = 0x81] ~ 2^-8 (1 - 2^-6.8): the first byte avoids 129."""
    observed = int(single_counts[0, 0x81])
    assert_within_ci(
        observed, SINGLE_KEYS, Z1_129.probability,
        label="Z1 = 0x81",
    )


# ---------------------------------------------------------------------------
# Fluhrer–McGrew digraphs via the exact sufficient-statistic sampler.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("i", [1, 2, 255])
def test_fm_digraph_cells_at_paper_scale(i):
    """Sampled digraph counts at N = 2^28 reproduce every Table 1 cell.

    The sampler is the documented substitution for paper-scale captures
    (the estimators consume only these counts), so its cell counts must
    sit in the binomial CI of the Fluhrer–McGrew model probabilities.
    """
    n = 1 << 28
    counts = sample_digraph_counts(
        fm_digraph_distribution(i), n, (0, 0), seed=FIDELITY_SEED + i
    )
    assert int(counts.sum()) == n
    for (first, second), probability in fm_biased_cells(i):
        assert_within_ci(
            int(counts[first, second]), n, probability,
            z=4.5, label=f"FM cell ({first},{second}) at i={i}",
        )


def test_fm_strongest_cell_direction():
    """The doubled-strength (0,0) i=1 cell shows its positive sign.

    At N = 2^34 the 2^-16 (1 + 2^-7) cell sits ~4 sd above the uniform
    2^-16 expectation, so the direction is visible, not just the CI.
    """
    n = 1 << 34
    counts = sample_digraph_counts(
        fm_digraph_distribution(1), n, (0, 0), seed=FIDELITY_SEED
    )
    cell = int(counts[0, 0])
    assert_within_ci(
        cell, n, float(fm_digraph_distribution(1)[0, 0]),
        z=4.5, label="FM (0,0) i=1",
    )
    assert cell > n * 2.0**-16, "FM (0,0) must exceed the uniform count"


def test_absab_alpha_model():
    """Sampled ABSAB differential counts match alpha(g) (paper eq 19)."""
    n = 1 << 26
    for gap in (0, 2, 16):
        counts = sample_absab_differential_counts(
            gap, n, (0, 0), seed=FIDELITY_SEED + gap
        )
        assert_within_ci(
            int(counts[0]), n, absab_alpha(gap),
            label=f"ABSAB (0,0) differential at g={gap}",
        )


# ---------------------------------------------------------------------------
# TKIP success rate at small scale (Fig 8 methodology).
# ---------------------------------------------------------------------------

#: Reference success probability of the §5 recovery at the parameters
#: below (nature == attacker, 4 TSC values x 2^10 keys, 20 packets per
#: TSC, 2^13 candidate budget), estimated from 200 independent seeded
#: trials (133/200).
TKIP_SUCCESS_P = 0.665
TKIP_TRIALS = 24
TKIP_PACKETS_PER_TSC = 20


def test_tkip_success_rate_small_scale():
    """Repeated seeded attacks succeed at the calibrated reference rate.

    This is the methodology behind the paper's Figure 8: sample the
    per-TSC multinomials (exactly equivalent to capturing that many
    packets), run the real recovery machinery, and count successes.
    The success count over 24 trials must fall inside the binomial CI
    around the committed reference probability.
    """
    from repro.tkip import (
        TcpPacketSpec,
        TkipSession,
        build_protected_msdu,
        default_tsc_space,
        generate_per_tsc,
    )
    from repro.tkip.attack import run_attack

    config = ReproConfig(seed=FIDELITY_SEED)
    ap = bytes.fromhex("00254b7e33c0")
    victim_mac = bytes.fromhex("0013d4fe0a11")
    victim = TkipSession.random(config.rng("fidelity", "victim"), victim_mac)
    spec = TcpPacketSpec(
        source_ip="192.168.1.101", dest_ip="203.0.113.7",
        source_port=51324, dest_port=80, payload=b"ATTACK!",
    )
    plaintext = build_protected_msdu(spec, victim.mic_key, ap, victim_mac)
    known = spec.msdu_data()
    true_mic = plaintext[len(known) : len(known) + 8]
    per_tsc = generate_per_tsc(
        config, default_tsc_space(4), 1 << 10, length=len(plaintext),
        label="fidelity-pertsc",
    )
    unknown = range(len(known) + 1, len(plaintext) + 1)

    successes = 0
    for trial in range(TKIP_TRIALS):
        capture = sampled_capture(
            per_tsc, plaintext, unknown,
            packets_per_tsc=TKIP_PACKETS_PER_TSC,
            seed=config.rng("fidelity", "trial", TKIP_PACKETS_PER_TSC, trial),
        )
        try:
            result = run_attack(
                capture, per_tsc, known, ap, victim_mac,
                max_candidates=1 << 13, true_mic=true_mic,
            )
            successes += bool(result.correct)
        except AttackError:
            pass
    assert_within_ci(
        successes, TKIP_TRIALS, TKIP_SUCCESS_P,
        z=3.0, label="TKIP small-scale success count",
    )
