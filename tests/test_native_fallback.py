"""Graceful degradation of the compiled backend.

A missing or broken C toolchain must never break imports or change
results — the engine warns once and runs on the pure-numpy path.  The
simulated-breakage tests run in subprocesses because ``_native`` caches
its load attempt per process: ``REPRO_NATIVE_CC`` pins the compiler to
``/bin/false`` (exits nonzero without writing output, the
"died mid-write" case) and ``XDG_CACHE_HOME`` points at a throwaway
directory so no previously cached build can be picked up.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

_PROBE = """
import json
import warnings

import numpy as np

with warnings.catch_warnings(record=True) as caught:
    warnings.simplefilter("always")
    from repro.rc4 import _native
    from repro.datasets.generate import single_byte_counts

    available = _native.available()
    counts = single_byte_counts(
        np.arange(32, dtype=np.uint8).reshape(2, 16), 4
    )
print(json.dumps({
    "available": available,
    "status": _native.status(),
    "total": int(counts.sum()),
    "warnings": [str(w.message) for w in caught
                 if issubclass(w.category, RuntimeWarning)],
}))
"""


def _probe(extra_env: dict[str, str], tmp_path: Path) -> dict:
    env = dict(os.environ)
    env.pop("REPRO_NATIVE", None)
    env["PYTHONPATH"] = REPO_SRC
    env["XDG_CACHE_HOME"] = str(tmp_path / "cache")
    env.update(extra_env)
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_broken_compiler_falls_back_with_warning(tmp_path):
    """cc = /bin/false: import succeeds, numpy path used, one warning."""
    result = _probe({"REPRO_NATIVE_CC": "/bin/false"}, tmp_path)
    assert result["available"] is False
    assert "unavailable" in result["status"]
    # Counting still works (2 keys x 4 positions) via the numpy fallback.
    assert result["total"] == 8
    assert len(result["warnings"]) == 1
    assert "falling back" in result["warnings"][0]


def test_missing_compiler_falls_back_with_warning(tmp_path):
    """A compiler binary that does not exist at all degrades the same way."""
    result = _probe(
        {"REPRO_NATIVE_CC": str(tmp_path / "no-such-cc")}, tmp_path
    )
    assert result["available"] is False
    assert result["total"] == 8
    assert len(result["warnings"]) == 1


def test_explicit_disable_is_silent(tmp_path):
    """REPRO_NATIVE=0 is a deliberate choice: no warning noise."""
    result = _probe({"REPRO_NATIVE": "0"}, tmp_path)
    assert result["available"] is False
    assert "disabled via REPRO_NATIVE" in result["status"]
    assert result["total"] == 8
    assert result["warnings"] == []


def test_truncated_artifact_is_not_promoted(tmp_path, monkeypatch):
    """A compiler that 'succeeds' but writes nothing must not poison the
    hash-keyed cache entry (the mid-write failure mode)."""
    from repro.rc4 import _native

    fake_cc = tmp_path / "fake-cc"
    fake_cc.write_text("#!/bin/sh\nexit 0\n")  # writes no output file
    fake_cc.chmod(0o755)
    monkeypatch.setenv("REPRO_NATIVE_CC", str(fake_cc))
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "cache"))
    with pytest.raises(RuntimeError, match="compilation failed"):
        _native._compile()
    cache = tmp_path / "cache" / "repro-rc4"
    assert not list(cache.glob("librc4stats-*.so"))


def test_resolve_threads_env_and_clamps(monkeypatch):
    from repro.rc4 import _native

    monkeypatch.delenv("REPRO_NATIVE_THREADS", raising=False)
    assert _native.resolve_threads(None) == (os.cpu_count() or 1)
    assert _native.resolve_threads(4) == 4
    assert _native.resolve_threads(0) == 1
    monkeypatch.setenv("REPRO_NATIVE_THREADS", "3")
    assert _native.resolve_threads(None) == 3
    monkeypatch.setenv("REPRO_NATIVE_THREADS", "not-a-number")
    with pytest.raises(ValueError):
        _native.resolve_threads(None)
    # Private-counter scratch budget (4 GiB, matching the forked pool's
    # historical cap): a 512 MiB counter caps threads at 8.
    assert _native.resolve_threads(64, counter_bytes=512 << 20) == 8
    assert _native.resolve_threads(64, counter_bytes=4 << 30) == 1


def test_resolve_threads_clamp_at_budget_boundary(monkeypatch):
    """Pin the clamp exactly at _THREAD_SCRATCH_BUDGET (4 GiB), including
    the SIMD lane-width scratch the wide kernels add per thread."""
    from repro.rc4 import _native

    monkeypatch.delenv("REPRO_NATIVE_THREADS", raising=False)
    budget = _native._THREAD_SCRATCH_BUDGET
    lane = _native._SIMD_LANE_SCRATCH
    assert budget == 4 << 30  # the docstring's stated budget
    assert lane > 0
    # Exactly at the boundary every requested thread survives; one byte
    # of extra per-thread scratch drops one.
    assert _native.resolve_threads(8, counter_bytes=budget // 8) == 8
    assert _native.resolve_threads(8, counter_bytes=budget // 8 + 1) == 7
    # The SIMD working set is charged on top of the counter block, so a
    # counter size that exactly fills the budget for 8 threads loses a
    # thread once the wide kernels' scratch rides along — wide kernels
    # can never push aggregate scratch past the cap.
    assert (
        _native.resolve_threads(8, counter_bytes=budget // 8, lane_bytes=lane)
        == 7
    )
    # Lane scratch alone (keystream kernels: no counter block) is far too
    # small to clamp a sane thread count.
    assert _native.resolve_threads(64, lane_bytes=lane) == 64
    # Degenerate oversized scratch still leaves one thread running.
    assert (
        _native.resolve_threads(64, counter_bytes=budget, lane_bytes=lane) == 1
    )


def test_cache_key_covers_compiler_and_flags():
    """Same source, different toolchain identity or flags => new artefact."""
    from repro.rc4 import _native

    source = b"int main(void) { return 0; }\n"
    base = _native._cache_key(source, "cc (Debian 12.2.0) 12.2.0")
    assert base == _native._cache_key(source, "cc (Debian 12.2.0) 12.2.0")
    assert base != _native._cache_key(source, "clang version 15.0.6")
    assert base != _native._cache_key(source + b"\n", "cc (Debian 12.2.0) 12.2.0")
    original = _native._CFLAGS
    try:
        _native._CFLAGS = (*original, "-DRC4_NO_SIMD")
        assert base != _native._cache_key(source, "cc (Debian 12.2.0) 12.2.0")
    finally:
        _native._CFLAGS = original


def test_pinned_compiler_does_not_reuse_stale_artifact(tmp_path):
    """Two pinned compilers with distinct identities must produce two
    distinct cache entries — the historical source-hash-only key silently
    served compiler A's artefact to compiler B."""
    real_cc = None
    for candidate in ("cc", "gcc", "clang"):
        probe = subprocess.run(
            [candidate, "--version"], capture_output=True, text=True
        )
        if probe.returncode == 0:
            real_cc = candidate
            break
    if real_cc is None:
        pytest.skip("no C compiler on PATH")
    wrappers = {}
    for variant in ("alpha", "beta"):
        wrapper = tmp_path / f"cc-{variant}"
        wrapper.write_text(
            "#!/bin/sh\n"
            'if [ "$1" = "--version" ]; then\n'
            f'  echo "fake-cc {variant} 1.0"\n'
            "  exit 0\n"
            "fi\n"
            f'exec {real_cc} "$@"\n'
        )
        wrapper.chmod(0o755)
        wrappers[variant] = wrapper
    for variant in ("alpha", "beta"):
        result = _probe({"REPRO_NATIVE_CC": str(wrappers[variant])}, tmp_path)
        assert result["available"] is True, result["status"]
        assert result["total"] == 8
    cache = tmp_path / "cache" / "repro-rc4"
    artifacts = sorted(cache.glob("librc4stats-*.so"))
    assert len(artifacts) == 2, artifacts


def test_numpy_kernels_ignore_threads(rng, monkeypatch):
    """The threads knob must be safe to pass when native is unavailable."""
    from repro.datasets.generate import single_byte_counts
    from repro.rc4 import _native

    monkeypatch.setattr(_native, "available", lambda: False)
    keys = rng.integers(0, 256, size=(8, 16), dtype=np.uint8)
    a = single_byte_counts(keys, 5, threads=1)
    b = single_byte_counts(keys, 5, threads=7)
    assert np.array_equal(a, b)


def test_numpy_kernels_ignore_simd(rng, monkeypatch):
    """The simd knob must be safe to pass when native is unavailable, and
    simd_available() must report False rather than raise."""
    from repro.datasets.generate import single_byte_counts
    from repro.rc4 import _native

    monkeypatch.setattr(_native, "available", lambda: False)
    monkeypatch.setattr(_native, "_load", lambda: None)
    keys = rng.integers(0, 256, size=(8, 16), dtype=np.uint8)
    a = single_byte_counts(keys, 5, simd=True)
    b = single_byte_counts(keys, 5, simd=False)
    assert np.array_equal(a, b)
    assert _native.simd_available() is False
    assert _native.simd_lanes() == 0
