"""HTTP layout control, cookie jar manipulation, and cookie charsets."""

import pytest

from repro.errors import TlsError
from repro.tls import (
    BASE64_CHARSET,
    COOKIE_CHARSET,
    CookieJar,
    HttpRequestTemplate,
    is_valid_cookie_value,
    pad_to_alignment,
    random_cookie,
)


class TestCharset:
    def test_ninety_characters(self):
        """RFC 6265 allows at most 90 distinct cookie-octet values —
        the count the paper's §6.2 restriction uses."""
        assert len(COOKIE_CHARSET) == 90

    def test_excludes_forbidden_octets(self):
        for forbidden in b'",;\\ ':
            assert forbidden not in COOKIE_CHARSET

    def test_includes_common_token_chars(self):
        for ch in b"AZaz09_-.!#$%&'()*+":
            assert ch in COOKIE_CHARSET

    def test_base64_subset_of_cookie_charset(self):
        assert set(BASE64_CHARSET) <= set(COOKIE_CHARSET)

    def test_random_cookie_valid(self, rng):
        value = random_cookie(rng, 32)
        assert len(value) == 32
        assert is_valid_cookie_value(value)

    def test_validation_helpers(self, rng):
        assert not is_valid_cookie_value(b"has space")
        with pytest.raises(ValueError):
            random_cookie(rng, 0)


class TestTemplate:
    def test_prefix_ends_with_cookie_name(self):
        template = HttpRequestTemplate(host="site.com", cookie_name="auth")
        assert template.prefix().endswith(b"Cookie: auth=")

    def test_build_layout(self):
        template = HttpRequestTemplate(
            host="site.com",
            injected_cookies=(("injected1", "known1"),),
        )
        request = template.build(b"SECRET")
        assert b"Cookie: auth=SECRET; injected1=known1\r\n\r\n" in request

    def test_cookie_span_consistent_with_build(self):
        template = HttpRequestTemplate(host="site.com")
        start, end = template.cookie_span(16)
        request = template.build(b"C" * 16)
        assert request[start - 1 : end] == b"C" * 16

    def test_listing3_shape(self):
        """The manipulated request of the paper's Listing 3: known headers,
        target cookie first, injected cookies after."""
        template = HttpRequestTemplate(
            host="site.com",
            cookie_name="auth",
            injected_cookies=(
                ("injected1", "known1"),
                ("injected2", "knownplaintext2"),
            ),
        )
        request = template.build(b"X" * 16).decode("ascii")
        lines = request.split("\r\n")
        assert lines[0] == "GET / HTTP/1.1"
        assert lines[1] == "Host: site.com"
        cookie_line = next(l for l in lines if l.startswith("Cookie:"))
        assert cookie_line.index("auth=") < cookie_line.index("injected1=")
        assert cookie_line.index("injected1=") < cookie_line.index("injected2=")


class TestAlignment:
    def test_pad_to_alignment_moves_cookie(self):
        template = HttpRequestTemplate(host="site.com")
        padded = pad_to_alignment(template, 16, 70)
        start, _ = padded.cookie_span(16)
        assert start % 256 == 70

    def test_noop_when_already_aligned(self):
        template = HttpRequestTemplate(host="site.com")
        start, _ = template.cookie_span(16)
        padded = pad_to_alignment(template, 16, start % 256)
        assert padded is template

    def test_validation(self):
        template = HttpRequestTemplate(host="site.com")
        with pytest.raises(TlsError):
            pad_to_alignment(template, 16, 256)


class TestCookieJar:
    def _jar(self):
        jar = CookieJar()
        jar.set_cookie("tracking", b"t0")
        jar.set_cookie("auth", b"SECRET", secure=True)
        jar.set_cookie("prefs", b"p0")
        return jar

    def test_isolation_pushes_target_to_front(self):
        jar = self._jar()
        jar.attacker_isolate("auth")
        assert jar.cookie_header() == "auth=SECRET"

    def test_injection_appends_after_target(self):
        jar = self._jar()
        jar.attacker_isolate("auth")
        jar.attacker_inject([("injected1", b"known1")])
        assert jar.cookie_header() == "auth=SECRET; injected1=known1"

    def test_secure_cookie_overwritable_via_http(self):
        """Secure cookies protect confidentiality, not integrity (§6.1)."""
        jar = self._jar()
        jar.set_cookie("auth", b"EVIL")  # plain-HTTP overwrite succeeds
        assert jar.cookies["auth"] == b"EVIL"

    def test_isolate_missing_target(self):
        jar = CookieJar()
        with pytest.raises(TlsError):
            jar.attacker_isolate("auth")

    def test_remove_absent_cookie_is_noop(self):
        jar = self._jar()
        jar.remove_cookie("ghost")
        assert len(jar.order) == 3


class TestBrowserProfiles:
    def test_known_profiles(self):
        from repro.tls import BROWSER_PROFILES

        assert {"generic", "chrome", "firefox", "safari", "curl"} <= set(
            BROWSER_PROFILES
        )

    def test_generic_profile_matches_default_template(self):
        from repro.tls import BROWSER_PROFILES

        template = BROWSER_PROFILES["generic"].template("site.com")
        assert template.prefix() == HttpRequestTemplate(host="site.com").prefix()

    def test_profiles_shift_the_cookie_offset(self):
        from repro.tls import BROWSER_PROFILES

        offsets = {
            name: len(profile.template("site.com").prefix())
            for name, profile in BROWSER_PROFILES.items()
        }
        assert len(set(offsets.values())) == len(offsets), offsets

    def test_profile_charsets_resolve(self):
        from repro.tls import BROWSER_PROFILES, CHARSETS

        for profile in BROWSER_PROFILES.values():
            assert profile.cookie_charset == CHARSETS[profile.cookie_charset_name]

    def test_unknown_profile_raises(self):
        from repro.tls import browser_profile

        with pytest.raises(TlsError, match="unknown browser"):
            browser_profile("netscape")

    def test_charset_registry(self):
        from repro.tls import HEX_CHARSET, charset

        assert charset("hex") == HEX_CHARSET
        assert len(HEX_CHARSET) == 16
        assert set(HEX_CHARSET) < set(COOKIE_CHARSET)
        with pytest.raises(ValueError, match="unknown cookie charset"):
            charset("morse")
