"""Catalog entries: Table 2, Z1/Z2 families, long-term biases, models."""

import numpy as np
import pytest

from repro.biases import (
    EQUALITY_BIASES,
    ISOBE_Z1Z2_ZERO,
    KEYLEN_BIAS_16,
    MANTIN_SHAMIR,
    NEW_128_0,
    SENGUPTA_00,
    TABLE2_CONSECUTIVE,
    TABLE2_NONCONSECUTIVE,
    W256_PAIR_BIASES,
    Z1Z2_FAMILIES,
    Z1Z2_PAIR_PATTERNS,
    beyond_256_biases,
    paper_prob,
    single_byte_model,
    w256_gap1_distribution,
    zero_bias,
)


class TestPaperProb:
    def test_positive_negative(self):
        assert paper_prob(-16, -8, +1) == pytest.approx(2.0**-16 * (1 + 2.0**-8))
        assert paper_prob(-16, -8, -1) == pytest.approx(2.0**-16 * (1 - 2.0**-8))

    def test_no_bias(self):
        assert paper_prob(-8) == pytest.approx(2.0**-8)

    def test_bad_sign(self):
        with pytest.raises(ValueError):
            paper_prob(-16, -8, 2)


class TestTable2:
    def test_seven_consecutive_rows(self):
        assert len(TABLE2_CONSECUTIVE) == 7
        for w, bias in enumerate(TABLE2_CONSECUTIVE, start=1):
            assert bias.positions == (16 * w - 1, 16 * w)
            assert bias.values == (256 - 16 * w, 256 - 16 * w)
            # Negative relative bias vs the marginal-product baseline,
            # which itself sits above uniform 2^-16 (key-length biases).
            assert bias.relative_bias < 0
            assert bias.baseline > 2.0**-16

    def test_monotone_weakening_with_w(self):
        rels = [abs(b.relative_bias) for b in TABLE2_CONSECUTIVE]
        assert all(a > b for a, b in zip(rels, rels[1:]))

    def test_fifteen_nonconsecutive_rows(self):
        assert len(TABLE2_NONCONSECUTIVE) == 15

    def test_z16_240_rows_positions_multiples_of_16(self):
        """The paper notes Z16=240-induced biases land on multiples of 16."""
        rows = [
            b
            for b in TABLE2_NONCONSECUTIVE
            if b.positions[0] == 16 and b.values[0] == 240
        ]
        assert len(rows) == 7
        # "generally have a position, or value, that is a multiple of 16":
        # all but the (Z31 = 63) row satisfy it exactly.
        aligned = sum(
            1
            for bias in rows
            if bias.positions[1] % 16 == 0 or bias.values[1] % 16 == 0
        )
        assert aligned >= 6

    def test_first_row_probability(self):
        w1 = TABLE2_CONSECUTIVE[0]
        assert w1.probability == pytest.approx(
            2.0**-15.94786 * (1 - 2.0**-4.894)
        )


class TestZ1Z2:
    def test_six_families(self):
        assert len(Z1Z2_FAMILIES) == 6

    def test_family_values_mod_256(self):
        for name, z_pos, z_val, zi_val, sign in Z1Z2_FAMILIES:
            assert z_pos in (1, 2)
            for i in (3, 100, 256):
                assert 0 <= z_val(i) < 256
                assert 0 <= zi_val(i) < 256
            assert sign in (-1, +1)

    def test_family3_negative(self):
        name, _, _, _, sign = Z1Z2_FAMILIES[2]
        assert "257-i" in name and sign == -1

    def test_four_pair_patterns(self):
        assert len(Z1Z2_PAIR_PATTERNS) == 4
        # B pattern: Z2 = 258 - x.
        _, values, sign = Z1Z2_PAIR_PATTERNS[1]
        assert values(2) == (2, 0) and sign == +1

    def test_equality_bias_signs(self):
        # eq 3 and eq 5 negative, eq 4 positive (plus Paul-Preneel negative)
        signs = [b.relative_bias for b in EQUALITY_BIASES]
        assert signs[0] < 0  # Paul-Preneel Z1 = Z2
        assert signs[1] < 0  # eq 3
        assert signs[2] > 0  # eq 4
        assert signs[3] < 0  # eq 5

    def test_isobe_triple_zero(self):
        assert ISOBE_Z1Z2_ZERO.probability == pytest.approx(3.0 * 2.0**-16)
        assert ISOBE_Z1Z2_ZERO.relative_bias == pytest.approx(2.0)


class TestSingleByteCatalog:
    def test_mantin_shamir_doubled(self):
        assert MANTIN_SHAMIR.probability == pytest.approx(2.0 / 256.0)
        assert MANTIN_SHAMIR.relative_bias == pytest.approx(1.0)
        assert MANTIN_SHAMIR.is_positive

    def test_zero_bias_decays_with_position(self):
        assert zero_bias(3).probability > zero_bias(200).probability > 1 / 256
        with pytest.raises(ValueError):
            zero_bias(2)

    def test_keylen_bias(self):
        assert KEYLEN_BIAS_16.position == 16
        assert KEYLEN_BIAS_16.value == 240
        assert KEYLEN_BIAS_16.is_positive

    def test_beyond_256_entries(self):
        entries = beyond_256_biases()
        assert [e.position for e in entries] == [272, 288, 304, 320, 336, 352, 368]
        assert [e.value for e in entries] == [32, 64, 96, 128, 160, 192, 224]


class TestModels:
    @pytest.mark.parametrize("position", [1, 2, 3, 16, 100, 255, 256, 300])
    def test_single_byte_model_normalised(self, position):
        dist = single_byte_model(position)
        assert dist.shape == (256,)
        assert dist.sum() == pytest.approx(1.0)
        assert np.all(dist > 0)

    def test_z2_model_has_doubled_zero(self):
        assert single_byte_model(2)[0] == pytest.approx(2.0 / 256.0)

    def test_z16_model_has_keylen_peak(self):
        dist = single_byte_model(16)
        assert dist[240] > 1.02 / 256.0

    def test_longterm_w256_distribution(self):
        dist = w256_gap1_distribution()
        assert dist.sum() == pytest.approx(1.0)
        assert dist[0, 0] == pytest.approx(SENGUPTA_00.probability)
        assert dist[128, 0] == pytest.approx(NEW_128_0.probability)
        assert len(W256_PAIR_BIASES) == 2
