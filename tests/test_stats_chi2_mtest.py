"""Chi-squared and M-test behaviour: calibration and power."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats import chi2_gof_test, chi2_uniformity_test, m_test


class TestChi2:
    def test_matches_scipy(self, rng):
        counts = rng.multinomial(10000, np.full(64, 1 / 64))
        ours = chi2_uniformity_test(counts)
        theirs = scipy_stats.chisquare(counts)
        assert ours.statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue)

    def test_null_calibration(self, rng):
        """Under uniform data, p-values should rarely dip below 1e-3."""
        hits = 0
        for _ in range(50):
            counts = rng.multinomial(1 << 16, np.full(256, 1 / 256))
            if chi2_uniformity_test(counts).p_value < 1e-3:
                hits += 1
        assert hits <= 2

    def test_detects_mantin_shamir_strength_bias(self, rng):
        """A 2x bias on one cell (the Z2 = 0 bias) is found easily."""
        probs = np.full(256, 1 / 256)
        probs[0] *= 2.0
        probs /= probs.sum()
        counts = rng.multinomial(1 << 16, probs)
        assert chi2_uniformity_test(counts).p_value < 1e-10

    def test_rejects_mismatched_totals(self):
        with pytest.raises(ValueError):
            chi2_gof_test(np.ones(4), np.full(4, 2.0))

    def test_rejects_nonpositive_expected(self):
        with pytest.raises(ValueError):
            chi2_gof_test(np.ones(4), np.array([2.0, 1.0, 1.0, 0.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            chi2_gof_test(np.ones(4), np.ones(5))


class TestMTest:
    def test_null_calibration_independent_table(self, rng):
        p_values = []
        for _ in range(20):
            table = rng.multinomial(1 << 18, np.full(1024, 1 / 1024)).reshape(32, 32)
            p_values.append(m_test(table).p_value)
        assert min(p_values) > 1e-4

    def test_detects_single_biased_cell(self, rng):
        """One outlier cell in a 256x256 table — the FM situation."""
        probs = np.full(65536, 1 / 65536)
        probs[1234] *= 1.5
        probs /= probs.sum()
        table = rng.multinomial(1 << 24, probs).reshape(256, 256)
        result = m_test(table)
        assert result.rejects(1e-4)
        assert result.worst_cell == (1234 // 256, 1234 % 256)

    def test_single_byte_bias_alone_not_flagged_as_dependence(self, rng):
        """The §3.1 point: a marginal (single-byte) bias must NOT reject
        the independence null."""
        row_p = np.full(16, 1 / 16)
        row_p[0] *= 3.0
        row_p /= row_p.sum()
        col_p = np.full(16, 1 / 16)
        joint = np.outer(row_p, col_p).ravel()
        table = rng.multinomial(1 << 20, joint).reshape(16, 16)
        assert not m_test(table).rejects(1e-4)

    def test_residual_shape(self, rng):
        table = rng.multinomial(5000, np.full(64, 1 / 64)).reshape(8, 8)
        assert m_test(table).residuals.shape == (8, 8)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            m_test(np.array([[1, -1], [2, 3]]))

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            m_test(np.zeros((4, 4)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            m_test(np.ones(16))
