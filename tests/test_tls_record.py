"""HMAC, PRF, and the RC4 record layer."""

import hashlib
import hmac as std_hmac

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TlsError
from repro.tls import (
    Rc4RecordLayer,
    TlsConnection,
    TlsRecord,
    derive_keys,
    hmac_sha1,
    hmac_sha256,
    p_hash,
    prf,
)


class TestHmac:
    @settings(max_examples=30, deadline=None)
    @given(key=st.binary(min_size=1, max_size=100), msg=st.binary(max_size=200))
    def test_sha1_matches_stdlib(self, key, msg):
        assert hmac_sha1(key, msg) == std_hmac.new(key, msg, hashlib.sha1).digest()

    def test_sha256_matches_stdlib(self):
        assert hmac_sha256(b"k", b"m") == std_hmac.new(
            b"k", b"m", hashlib.sha256
        ).digest()

    def test_long_key_hashed_first(self):
        key = b"x" * 100  # longer than SHA-1 block size
        assert hmac_sha1(key, b"m") == std_hmac.new(key, b"m", hashlib.sha1).digest()

    def test_unknown_algorithm(self):
        from repro.tls.hmac import hmac_digest

        with pytest.raises(ValueError):
            hmac_digest(b"k", b"m", "nothash")


class TestPrf:
    def test_p_hash_length_exact(self):
        assert len(p_hash(b"secret", b"seed", 0)) == 0
        assert len(p_hash(b"secret", b"seed", 33)) == 33
        assert len(p_hash(b"secret", b"seed", 64)) == 64

    def test_prefix_property(self):
        long = p_hash(b"s", b"x", 80)
        short = p_hash(b"s", b"x", 20)
        assert long[:20] == short

    def test_prf_label_separation(self):
        assert prf(b"s", b"a", b"seed", 16) != prf(b"s", b"b", b"seed", 16)

    def test_key_derivation_structure(self, rng):
        master = rng.integers(0, 256, 48, dtype=np.uint8).tobytes()
        c_rand = rng.integers(0, 256, 32, dtype=np.uint8).tobytes()
        s_rand = rng.integers(0, 256, 32, dtype=np.uint8).tobytes()
        keys = derive_keys(master, c_rand, s_rand)
        assert len(keys.client_mac_key) == 20
        assert len(keys.server_mac_key) == 20
        assert len(keys.client_rc4_key) == 16
        assert len(keys.server_rc4_key) == 16
        # All four keys distinct.
        assert len(
            {
                keys.client_mac_key,
                keys.server_mac_key,
                keys.client_rc4_key,
                keys.server_rc4_key,
            }
        ) == 4

    def test_key_derivation_validation(self):
        with pytest.raises(TlsError):
            derive_keys(b"short", bytes(32), bytes(32))
        with pytest.raises(TlsError):
            derive_keys(bytes(48), bytes(31), bytes(32))


class TestRecordLayer:
    def _pair(self, rng):
        rc4_key = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
        mac_key = rng.integers(0, 256, 20, dtype=np.uint8).tobytes()
        return Rc4RecordLayer(rc4_key, mac_key), Rc4RecordLayer(rc4_key, mac_key)

    def test_protect_unprotect_roundtrip(self, rng):
        tx, rx = self._pair(rng)
        record = tx.protect(b"hello TLS")
        assert rx.unprotect(record) == b"hello TLS"

    def test_sequence_numbers_advance(self, rng):
        tx, rx = self._pair(rng)
        for i in range(5):
            assert tx.sequence_number == i
            rx.unprotect(tx.protect(b"msg"))

    def test_continuous_keystream_across_records(self, rng):
        """RC4 is never rekeyed: record n+1 continues where n stopped —
        §2.3, the property the long-term biases need."""
        from repro.rc4 import rc4_keystream

        rc4_key = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
        mac_key = rng.integers(0, 256, 20, dtype=np.uint8).tobytes()
        tx = Rc4RecordLayer(rc4_key, mac_key)
        r1 = tx.protect(b"A" * 10)
        r2 = tx.protect(b"B" * 10)
        stream = rc4_keystream(rc4_key, 60)
        combined = r1.fragment + r2.fragment
        for i, (c, z) in enumerate(zip(combined, stream)):
            pass  # plaintext varies; just check positions line up via xor
        # First byte of record 2 must use keystream position 31 (1-indexed).
        assert r2.fragment[0] == stream[30] ^ ord("B")

    def test_no_initial_keystream_dropped(self, rng):
        from repro.rc4 import rc4_keystream

        rc4_key = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
        mac_key = rng.integers(0, 256, 20, dtype=np.uint8).tobytes()
        tx = Rc4RecordLayer(rc4_key, mac_key)
        record = tx.protect(b"\x00\x00\x00\x00")
        assert record.fragment[:4] == rc4_keystream(rc4_key, 4)

    def test_mac_tampering_detected(self, rng):
        tx, rx = self._pair(rng)
        record = tx.protect(b"authentic")
        bad = TlsRecord(
            content_type=record.content_type,
            version=record.version,
            fragment=record.fragment[:-1]
            + bytes([record.fragment[-1] ^ 1]),
        )
        with pytest.raises(TlsError, match="MAC"):
            rx.unprotect(bad)

    def test_sequence_desync_detected(self, rng):
        tx, rx = self._pair(rng)
        tx.protect(b"skipped")  # receiver never sees this one
        record = tx.protect(b"next")
        with pytest.raises(TlsError):
            rx.unprotect(record)

    def test_record_wire_roundtrip(self, rng):
        tx, _ = self._pair(rng)
        record = tx.protect(b"wire")
        parsed, rest = TlsRecord.parse(record.build() + b"extra")
        assert parsed.fragment == record.fragment
        assert rest == b"extra"

    def test_bad_mac_key_length(self, rng):
        with pytest.raises(TlsError):
            Rc4RecordLayer(bytes(16), bytes(19))


class TestConnection:
    def test_bidirectional_traffic(self, rng):
        conn = TlsConnection.handshake(rng)
        for i in range(4):
            req = f"GET /{i} HTTP/1.1\r\n\r\n".encode()
            assert conn.server_receive(conn.client_send(req)) == req
            resp = f"HTTP/1.1 200 OK #{i}\r\n\r\n".encode()
            assert conn.client_receive(conn.server_send(resp)) == resp

    def test_keystream_position_tracking(self, rng):
        conn = TlsConnection.handshake(rng)
        assert conn.client_keystream_position == 1
        conn.client_send(b"12345")
        # 5 payload + 20 MAC bytes consumed.
        assert conn.client_keystream_position == 26
