"""Failure-injection tests: the stacks must *reject* what they should.

Security substrates are defined as much by what they refuse as by what
they accept; these tests corrupt every field an attacker touches and
assert the corresponding check fires (and, where the paper exploits a
*missing* check, that the exploit path stays open).
"""

import pytest

from repro.errors import AttackError, TkipError, TlsError
from repro.tkip import TcpPacketSpec, TkipFrame, TkipSession
from repro.tls import TlsConnection, TlsRecord

TA = bytes.fromhex("105fb0e09f60")
DA = bytes.fromhex("aabbccddeeff")


def _tkip_pair(rng):
    sender = TkipSession.random(rng, TA)
    receiver = TkipSession(tk=sender.tk, mic_key=sender.mic_key, ta=TA)
    return sender, receiver


def _spec():
    return TcpPacketSpec(
        source_ip="192.168.1.101",
        dest_ip="203.0.113.7",
        source_port=51324,
        dest_port=80,
        payload=b"ATTACK!",
    )


class TestTkipRejection:
    @pytest.mark.parametrize("byte_index", [0, 10, 30, 54, 60, 66])
    def test_any_ciphertext_flip_rejected(self, rng, byte_index):
        sender, receiver = _tkip_pair(rng)
        frame = sender.encapsulate(_spec().msdu_data(), DA, TA)
        tampered = bytearray(frame.ciphertext)
        tampered[byte_index] ^= 0x80
        bad = TkipFrame(
            ta=frame.ta, da=frame.da, sa=frame.sa, tsc=frame.tsc,
            ciphertext=bytes(tampered),
        )
        with pytest.raises(TkipError):
            receiver.decapsulate(bad)

    def test_tsc_substitution_rejected(self, rng):
        """Moving a valid frame to another TSC changes the per-packet key,
        so decryption garbles and the ICV fails."""
        sender, receiver = _tkip_pair(rng)
        frame = sender.encapsulate(_spec().msdu_data(), DA, TA)
        moved = TkipFrame(
            ta=frame.ta, da=frame.da, sa=frame.sa, tsc=frame.tsc + 1,
            ciphertext=frame.ciphertext,
        )
        with pytest.raises(TkipError):
            receiver.decapsulate(moved)

    def test_address_substitution_rejected(self, rng):
        """DA/SA feed the Michael header: redirecting a frame must fail
        the MIC even though the ICV still passes."""
        sender, receiver = _tkip_pair(rng)
        frame = sender.encapsulate(_spec().msdu_data(), DA, TA)
        redirected = TkipFrame(
            ta=frame.ta, da=bytes(6), sa=frame.sa, tsc=frame.tsc,
            ciphertext=frame.ciphertext,
        )
        with pytest.raises(TkipError, match="MIC"):
            receiver.decapsulate(redirected)

    def test_replay_window_strictness(self, rng):
        sender, receiver = _tkip_pair(rng)
        msdu = _spec().msdu_data()
        first = sender.encapsulate(msdu, DA, TA)
        second = sender.encapsulate(msdu, DA, TA)
        receiver.decapsulate(second)
        with pytest.raises(TkipError, match="replay"):
            receiver.decapsulate(first)  # older TSC after newer

    def test_truncated_frame_rejected(self, rng):
        sender, receiver = _tkip_pair(rng)
        frame = sender.encapsulate(_spec().msdu_data(), DA, TA)
        short = TkipFrame(
            ta=frame.ta, da=frame.da, sa=frame.sa, tsc=frame.tsc,
            ciphertext=frame.ciphertext[:8],
        )
        with pytest.raises(TkipError):
            receiver.decapsulate(short)


class TestTlsRejection:
    def test_reordered_records_rejected(self, rng):
        conn = TlsConnection.handshake(rng)
        first = conn.client_send(b"one")
        second = conn.client_send(b"two")
        with pytest.raises(TlsError):
            conn.server_receive(second)  # out of order

    def test_truncated_fragment_rejected(self, rng):
        conn = TlsConnection.handshake(rng)
        record = conn.client_send(b"hello")
        truncated = TlsRecord(
            content_type=record.content_type,
            version=record.version,
            fragment=record.fragment[:10],
        )
        with pytest.raises(TlsError):
            conn.server_receive(truncated)

    def test_cross_connection_record_rejected(self, rng):
        a = TlsConnection.handshake(rng)
        b = TlsConnection.handshake(rng)
        record = a.client_send(b"for A only")
        with pytest.raises(TlsError):
            b.server_receive(record)

    def test_parse_rejects_truncation(self):
        with pytest.raises(TlsError):
            TlsRecord.parse(b"\x17\x03\x03\x00\x10only-8-bytes")


class TestAttackErrorPaths:
    def test_tkip_attack_without_coverage(self, rng, config):
        """A capture that misses the MIC/ICV positions must fail loudly,
        not silently return garbage."""
        from repro.simulate import WifiAttackSimulation, sampled_capture
        from repro.tkip import default_tsc_space, generate_per_tsc

        sim = WifiAttackSimulation(config)
        per_tsc = generate_per_tsc(config, default_tsc_space(2),
                                   keys_per_tsc=128, length=16)
        capture = sampled_capture(
            per_tsc, sim.true_plaintext[:16], range(1, 17),
            packets_per_tsc=16, seed=rng,
        )
        with pytest.raises(AttackError):
            sim.attack(capture, per_tsc, max_candidates=16)

    def test_cookie_stats_reject_foreign_layout(self, config):
        from repro.simulate import HttpsAttackSimulation
        from repro.tls import CookieStatistics

        sim = HttpsAttackSimulation(config, cookie_len=3, max_gap=4)
        stats = CookieStatistics.empty(sim.layout, max_gap=4)
        with pytest.raises(AttackError):
            stats.ingest_fragment(b"\x00" * 4, offset=1)
