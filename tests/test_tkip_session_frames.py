"""TKIP frames, session encap/decap, and packet construction."""

import numpy as np
import pytest

from repro.errors import PacketError, TkipError
from repro.tkip import (
    ICV_LEN,
    KNOWN_HEADER_LEN,
    MIC_LEN,
    TcpPacketSpec,
    TkipFrame,
    TkipSession,
    build_protected_msdu,
    decode_iv,
    encode_iv,
    icv_positions,
    icv_valid,
    mic_positions,
    parse_msdu_data,
    split_protected_msdu,
)

TA = bytes.fromhex("105fb0e09f60")
DA = bytes.fromhex("aabbccddeeff")


def _spec(payload=b"ATTACK!"):
    return TcpPacketSpec(
        source_ip="192.168.1.101",
        dest_ip="203.0.113.7",
        source_port=51324,
        dest_port=80,
        payload=payload,
    )


class TestIv:
    @pytest.mark.parametrize("tsc", [1, 0xFFFF, 0x10000, 0xFFFFFFFFFFFF])
    def test_roundtrip(self, tsc):
        assert decode_iv(encode_iv(tsc)) == (tsc, 0)

    def test_key_id_encoding(self):
        assert decode_iv(encode_iv(7, key_id=2)) == (7, 2)

    def test_weak_seed_byte_present(self):
        iv = encode_iv(0x1234)
        assert iv[1] == (iv[0] | 0x20) & 0x7F

    def test_corrupt_seed_rejected(self):
        iv = bytearray(encode_iv(0x1234))
        iv[1] ^= 0x01
        with pytest.raises(PacketError):
            decode_iv(bytes(iv))

    def test_out_of_range_tsc(self):
        with pytest.raises(PacketError):
            encode_iv(1 << 48)


class TestFrame:
    def test_build_parse_roundtrip(self):
        frame = TkipFrame(
            ta=TA, da=DA, sa=TA, tsc=0xABCDEF, ciphertext=b"ciphertext-bytes"
        )
        parsed = TkipFrame.parse(frame.build(), ta=TA, da=DA, sa=TA)
        assert parsed.tsc == 0xABCDEF
        assert parsed.ciphertext == b"ciphertext-bytes"

    def test_bad_mac_length(self):
        with pytest.raises(PacketError):
            TkipFrame(ta=b"short", da=DA, sa=TA, tsc=1, ciphertext=b"")


class TestPacketLayout:
    def test_header_length_is_48(self):
        assert KNOWN_HEADER_LEN == 48
        assert len(_spec(b"").msdu_data()) == 48

    def test_paper_position_windows(self):
        """§5.2: without payload MIC+ICV sit at 49..60; with a 7-byte
        payload at 56..67."""
        assert list(mic_positions(0)) + list(icv_positions(0)) == list(range(49, 61))
        assert list(mic_positions(7)) + list(icv_positions(7)) == list(range(56, 68))

    def test_protected_msdu_structure(self, rng):
        mic_key = rng.integers(0, 256, 8, dtype=np.uint8).tobytes()
        protected = build_protected_msdu(_spec(), mic_key, DA, TA)
        assert len(protected) == 48 + 7 + MIC_LEN + ICV_LEN
        assert icv_valid(protected)
        data, mic, icv_bytes = split_protected_msdu(protected)
        assert data == _spec().msdu_data()

    def test_icv_detects_mic_corruption(self, rng):
        mic_key = rng.integers(0, 256, 8, dtype=np.uint8).tobytes()
        protected = bytearray(build_protected_msdu(_spec(), mic_key, DA, TA))
        protected[-6] ^= 0x01  # flip a MIC byte
        assert not icv_valid(bytes(protected))

    def test_parse_msdu_components(self):
        llc, ip, tcp, payload = parse_msdu_data(_spec().msdu_data())
        assert llc.ethertype == 0x0800
        assert ip.source == "192.168.1.101"
        assert tcp.dest_port == 80
        assert payload == b"ATTACK!"
        assert ip.checksum_valid()
        assert tcp.checksum_valid("192.168.1.101", "203.0.113.7", payload)


class TestSession:
    def _pair(self, rng):
        sender = TkipSession.random(rng, TA)
        receiver = TkipSession(tk=sender.tk, mic_key=sender.mic_key, ta=TA)
        return sender, receiver

    def test_encap_decap_roundtrip(self, rng):
        sender, receiver = self._pair(rng)
        msdu = _spec().msdu_data()
        frame = sender.encapsulate(msdu, DA, TA)
        assert receiver.decapsulate(frame) == msdu

    def test_tsc_increments(self, rng):
        sender, _ = self._pair(rng)
        msdu = _spec().msdu_data()
        frames = [sender.encapsulate(msdu, DA, TA) for _ in range(3)]
        assert [f.tsc for f in frames] == [1, 2, 3]

    def test_identical_plaintext_different_ciphertext(self, rng):
        """Each TSC gives a fresh per-packet key — the attack's premise."""
        sender, _ = self._pair(rng)
        msdu = _spec().msdu_data()
        a = sender.encapsulate(msdu, DA, TA)
        b = sender.encapsulate(msdu, DA, TA)
        assert a.ciphertext != b.ciphertext

    def test_replay_rejected(self, rng):
        sender, receiver = self._pair(rng)
        msdu = _spec().msdu_data()
        frame = sender.encapsulate(msdu, DA, TA)
        receiver.decapsulate(frame)
        with pytest.raises(TkipError, match="replay"):
            receiver.decapsulate(frame)

    def test_tampered_ciphertext_fails_icv(self, rng):
        sender, receiver = self._pair(rng)
        frame = sender.encapsulate(_spec().msdu_data(), DA, TA)
        bad = TkipFrame(
            ta=frame.ta,
            da=frame.da,
            sa=frame.sa,
            tsc=frame.tsc,
            ciphertext=frame.ciphertext[:-1]
            + bytes([frame.ciphertext[-1] ^ 0xFF]),
        )
        with pytest.raises(TkipError, match="ICV"):
            receiver.decapsulate(bad)

    def test_wrong_mic_key_fails_mic(self, rng):
        sender, _ = self._pair(rng)
        wrong = TkipSession(
            tk=sender.tk, mic_key=bytes(8), ta=TA
        )
        frame = sender.encapsulate(_spec().msdu_data(), DA, TA)
        with pytest.raises(TkipError, match="MIC"):
            wrong.decapsulate(frame)

    def test_forgery_with_recovered_mic_key(self, rng):
        """§2.2 consequence: MIC key + TK lets the attacker inject."""
        sender, receiver = self._pair(rng)
        forger = TkipSession(
            tk=sender.tk, mic_key=sender.mic_key, ta=TA, tsc=100
        )
        forged = forger.encapsulate(b"\xaa" * 60, DA, TA)
        receiver.replay_window = 50
        assert receiver.decapsulate(forged) == b"\xaa" * 60

    def test_validation(self, rng):
        with pytest.raises(TkipError):
            TkipSession(tk=bytes(8), mic_key=bytes(8), ta=TA)
        with pytest.raises(TkipError):
            TkipSession(tk=bytes(16), mic_key=bytes(4), ta=TA)
