"""Unit tests for the reference RC4 implementation (paper §2.1)."""

import pytest

from repro.errors import KeyLengthError
from repro.rc4 import RC4, ksa, prga, rc4_crypt, rc4_keystream


class TestVectors:
    """Published RC4 test vectors."""

    def test_key_plaintext(self):
        assert rc4_crypt(b"Key", b"Plaintext").hex().upper() == "BBF316E8D940AF0AD3"

    def test_wiki_pedia(self):
        assert rc4_crypt(b"Wiki", b"pedia").hex().upper() == "1021BF0420"

    def test_secret_attack_at_dawn(self):
        expected = "45A01F645FC35B383552544B9BF5"
        assert rc4_crypt(b"Secret", b"Attack at dawn").hex().upper() == expected


class TestKsa:
    def test_returns_a_permutation(self):
        state = ksa(b"any key")
        assert sorted(state) == list(range(256))

    def test_deterministic(self):
        assert ksa(b"k1") == ksa(b"k1")

    def test_key_sensitivity(self):
        assert ksa(b"k1") != ksa(b"k2")

    def test_rejects_empty_key(self):
        with pytest.raises(KeyLengthError):
            ksa(b"")

    def test_rejects_overlong_key(self):
        with pytest.raises(KeyLengthError):
            ksa(bytes(257))

    def test_accepts_max_length_key(self):
        assert len(ksa(bytes(256))) == 256


class TestPrga:
    def test_does_not_mutate_input_state(self):
        state = ksa(b"immutable")
        snapshot = list(state)
        gen = prga(state)
        for _ in range(64):
            next(gen)
        assert state == snapshot

    def test_bytes_in_range(self):
        gen = prga(ksa(b"range"))
        assert all(0 <= next(gen) <= 255 for _ in range(512))


class TestKeystreamHelpers:
    def test_keystream_prefix_consistency(self):
        long = rc4_keystream(b"prefix", 128)
        short = rc4_keystream(b"prefix", 32)
        assert long[:32] == short

    def test_drop_skips_initial_bytes(self):
        full = rc4_keystream(b"drop", 300)
        dropped = rc4_keystream(b"drop", 44, drop=256)
        assert dropped == full[256:]

    def test_crypt_roundtrip(self):
        data = bytes(range(256)) * 3
        assert rc4_crypt(b"rt", rc4_crypt(b"rt", data)) == data

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            rc4_keystream(b"k", -1)


class TestStatefulRc4:
    def test_continuation_matches_one_shot(self):
        cipher = RC4(b"stateful")
        got = cipher.keystream(10) + cipher.keystream(22)
        assert got == rc4_keystream(b"stateful", 32)

    def test_position_tracking(self):
        cipher = RC4(b"pos")
        cipher.keystream(7)
        cipher.crypt(b"abcde")
        assert cipher.position == 12

    def test_drop_parameter(self):
        cipher = RC4(b"d", drop=100)
        assert cipher.keystream(16) == rc4_keystream(b"d", 16, drop=100)

    def test_two_instances_independent(self):
        a, b = RC4(b"same"), RC4(b"same")
        a.keystream(100)
        assert b.keystream(4) == rc4_keystream(b"same", 4)
