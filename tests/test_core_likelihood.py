"""Likelihood estimators: eqs 10-25 of the paper."""

import numpy as np
import pytest

from repro.biases import differential_distribution, fm_biased_cells
from repro.core import (
    absab_log_likelihoods,
    combine_likelihoods,
    differential_log_likelihoods,
    digraph_log_likelihoods,
    digraph_log_likelihoods_dense,
    single_byte_log_likelihoods,
)
from repro.core.likelihood.combine import normalize_log_likelihoods
from repro.core.likelihood.single import single_byte_log_likelihoods_many
from repro.errors import LikelihoodError
from repro.simulate import (
    sample_absab_differential_counts,
    sample_digraph_counts,
    sample_single_byte_counts,
)


def _biased_single(peak_value: int, strength: float = 0.02) -> np.ndarray:
    dist = np.full(256, 1 / 256)
    dist[peak_value] *= 1.0 + strength
    return dist / dist.sum()


class TestSingleByte:
    def test_recovers_plaintext_byte(self, rng):
        dist = _biased_single(0, strength=1.0)  # Mantin-Shamir strength
        counts = sample_single_byte_counts(dist, 1 << 14, 0x42, seed=rng)
        lam = single_byte_log_likelihoods(counts, dist)
        assert int(lam.argmax()) == 0x42

    def test_direct_formula_equivalence(self, rng):
        """loglik[mu] must equal sum_c N_c log p_{c xor mu} verbatim."""
        dist = _biased_single(7)
        counts = rng.integers(0, 50, size=256).astype(np.float64)
        lam = single_byte_log_likelihoods(counts, dist)
        logp = np.log(dist)
        for mu in (0, 1, 77, 255):
            manual = sum(counts[c] * logp[c ^ mu] for c in range(256))
            assert lam[mu] == pytest.approx(manual)

    def test_uniform_distribution_gives_flat_likelihood(self, rng):
        counts = rng.integers(0, 50, size=256).astype(np.float64)
        lam = single_byte_log_likelihoods(counts, np.full(256, 1 / 256))
        assert np.allclose(lam, lam[0])

    def test_vectorised_many_positions(self, rng):
        dists = np.stack([_biased_single(3), _biased_single(250)])
        counts = np.stack(
            [
                sample_single_byte_counts(dists[0], 4096, 10, seed=rng),
                sample_single_byte_counts(dists[1], 4096, 20, seed=rng),
            ]
        )
        lam = single_byte_log_likelihoods_many(counts, dists)
        assert lam.shape == (2, 256)
        for r in range(2):
            assert np.allclose(
                lam[r], single_byte_log_likelihoods(counts[r], dists[r])
            )

    def test_validation(self):
        with pytest.raises(LikelihoodError):
            single_byte_log_likelihoods(np.zeros(255), np.full(256, 1 / 256))
        with pytest.raises(LikelihoodError):
            single_byte_log_likelihoods(np.zeros(256), np.zeros(256))


class TestDigraphSparse:
    def test_matches_dense_reference(self, rng):
        """The eq 15 optimisation must agree with eq 13 on the FM model."""
        from repro.biases import fm_digraph_distribution

        i = 5
        dist = fm_digraph_distribution(i)
        cells = fm_biased_cells(i)
        mass = sum(p for _, p in cells)
        uniform_p = (1.0 - mass) / (65536 - len(cells))
        counts = rng.integers(0, 6, size=(256, 256)).astype(np.float64)
        sparse = digraph_log_likelihoods(counts, cells, uniform_p)
        candidates = [(0, 0), (1, 255), (13, 200), (255, 255)]
        dense = digraph_log_likelihoods_dense(counts, dist, candidates=candidates)
        for mu_pair, value in dense.items():
            assert sparse[mu_pair] == pytest.approx(value, rel=1e-12)

    def test_recovers_plaintext_pair(self, rng):
        """Power analysis: one FM cell (q = 2^-7 at i = 1) reaches z ~ 4
        only around 2^33 samples — matching the paper's Fig 7 FM-only
        curve.  Poisson sampling keeps this O(cells)."""
        from repro.biases import fm_digraph_distribution

        i = 1  # strongest FM cell (0,0) at double strength
        dist = fm_digraph_distribution(i)
        truth = (ord("S"), ord("K"))
        counts = sample_digraph_counts(dist, 1 << 34, truth, seed=rng, method="poisson")
        cells = fm_biased_cells(i)
        mass = sum(p for _, p in cells)
        uniform_p = (1.0 - mass) / (65536 - len(cells))
        lam = digraph_log_likelihoods(counts.astype(np.float64), cells, uniform_p)
        rank = int((lam > lam[truth]).sum())
        assert rank < 32, rank

    def test_validation(self):
        with pytest.raises(LikelihoodError):
            digraph_log_likelihoods(np.zeros((256, 255)), [], 1e-5)
        with pytest.raises(LikelihoodError):
            digraph_log_likelihoods(np.zeros((256, 256)), [], 0.0)
        with pytest.raises(LikelihoodError):
            digraph_log_likelihoods(
                np.zeros((256, 256)), [((0, 0), 0.0)], 1e-5
            )


class TestAbsab:
    def test_differential_likelihood_monotone_in_count(self, rng):
        counts = sample_absab_differential_counts(4, 1 << 22, (9, 200), seed=rng)
        lam = differential_log_likelihoods(counts.astype(np.float64), 4)
        order_by_count = np.argsort(counts)
        order_by_lam = np.argsort(lam)
        assert np.array_equal(order_by_count, order_by_lam)

    def test_recovers_differential_then_plaintext(self, rng):
        """A single ABSAB alignment needs ~2^37 ciphertexts for a clean
        top-1 (the paper's Fig 7 ABSAB-only curve crosses 50% in the
        2^35..2^37 region)."""
        truth = (ord("a"), ord("b"))
        known = (ord("X"), ord("Y"))
        diff = (truth[0] ^ known[0], truth[1] ^ known[1])
        counts = sample_absab_differential_counts(
            0, 1 << 38, diff, seed=rng, method="poisson"
        )
        lam = absab_log_likelihoods(counts.astype(np.float64), 0, known)
        top = np.unravel_index(np.argmax(lam), lam.shape)
        assert top == truth

    def test_differential_model_normalised(self):
        dist = differential_distribution(12)
        assert dist.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(LikelihoodError):
            differential_log_likelihoods(np.zeros(100), 4)
        with pytest.raises(LikelihoodError):
            absab_log_likelihoods(np.zeros(65536), 4, (300, 0))


class TestCombine:
    def test_sum_in_log_domain(self, rng):
        a = rng.normal(size=(256, 256))
        b = rng.normal(size=(256, 256))
        combined = combine_likelihoods(a, b)
        assert np.allclose(combined, a + b)

    def test_combination_beats_either_alone(self, rng):
        """Functional version of the §4.3 claim on a small instance."""
        from repro.biases import fm_digraph_distribution

        i = 7
        n = 1 << 32
        truth = (5, 250)
        known = (0x20, 0x20)
        fm_dist = fm_digraph_distribution(i)
        cells = fm_biased_cells(i)
        mass = sum(p for _, p in cells)
        uniform_p = (1.0 - mass) / (65536 - len(cells))

        def rank(lam):
            return int((lam > lam[truth]).sum())

        trials_better = 0
        for t in range(5):
            seed = np.random.default_rng(1000 + t)
            fm_counts = sample_digraph_counts(
                fm_dist, n, truth, seed=seed, method="poisson"
            )
            lam_fm = digraph_log_likelihoods(
                fm_counts.astype(np.float64), cells, uniform_p
            )
            lam_absab = np.zeros((256, 256))
            for gap in range(32):
                diff = (truth[0] ^ known[0], truth[1] ^ known[1])
                counts = sample_absab_differential_counts(
                    gap, n, diff, seed=seed, method="poisson"
                )
                lam_absab += absab_log_likelihoods(
                    counts.astype(np.float64), gap, known
                )
            combined = combine_likelihoods(lam_fm, lam_absab)
            if rank(combined) <= min(rank(lam_fm), rank(lam_absab)):
                trials_better += 1
        assert trials_better >= 3

    def test_empty_rejected(self):
        with pytest.raises(LikelihoodError):
            combine_likelihoods()

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(LikelihoodError):
            combine_likelihoods(np.zeros(256), np.zeros((256, 256)))

    def test_normalisation_preserves_order_and_sums_to_one(self, rng):
        lam = rng.normal(size=(256,)) * 10
        norm = normalize_log_likelihoods(lam)
        assert np.exp(norm).sum() == pytest.approx(1.0)
        assert np.array_equal(np.argsort(lam), np.argsort(norm))
