"""The TKIP attack pipeline: likelihoods, CRC pruning, Michael inversion."""

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.errors import AttackError
from repro.simulate import WifiAttackSimulation, sampled_capture
from repro.tkip import (
    decrypt_mic_icv,
    default_tsc_space,
    generate_per_tsc,
    payload_choice_report,
    position_log_likelihoods,
)
from repro.tkip.attack import biased_position_strength


@pytest.fixture(scope="module")
def sim_setup():
    """One simulation + per-TSC distributions shared across this module."""
    config = ReproConfig(seed=77)
    sim = WifiAttackSimulation(config)
    plaintext = sim.true_plaintext
    per_tsc = generate_per_tsc(
        config,
        default_tsc_space(8),
        keys_per_tsc=1 << 13,
        length=len(plaintext),
    )
    return config, sim, plaintext, per_tsc


class TestPositionLikelihoods:
    def test_shapes(self, sim_setup):
        config, sim, plaintext, per_tsc = sim_setup
        capture = sampled_capture(
            per_tsc,
            plaintext,
            range(1, len(plaintext) + 1),
            packets_per_tsc=256,
            seed=config.rng("t1"),
        )
        loglik = position_log_likelihoods(capture, per_tsc, [56, 57, 58])
        assert loglik.shape == (3, 256)

    def test_uncovered_position_rejected(self, sim_setup):
        config, sim, plaintext, per_tsc = sim_setup
        capture = sampled_capture(
            per_tsc, plaintext, range(1, 10), packets_per_tsc=16,
            seed=config.rng("t2"),
        )
        with pytest.raises(AttackError):
            position_log_likelihoods(capture, per_tsc, [50])


class TestEndToEnd:
    def test_full_attack_recovers_mic_key(self, sim_setup):
        config, sim, plaintext, per_tsc = sim_setup
        capture = sampled_capture(
            per_tsc,
            plaintext,
            range(1, len(plaintext) + 1),
            packets_per_tsc=1 << 12,
            seed=config.rng("t3"),
        )
        result = sim.attack(capture, per_tsc, max_candidates=1 << 18)
        assert result.correct
        assert result.mic_key == sim.victim.mic_key

    def test_more_data_shallower_rank(self, sim_setup):
        """Fig 9's monotonicity: the first CRC-valid candidate sits
        earlier in the list as ciphertexts accumulate."""
        config, sim, plaintext, per_tsc = sim_setup
        ranks = []
        for packets in (1 << 8, 1 << 12):
            capture = sampled_capture(
                per_tsc,
                plaintext,
                range(1, len(plaintext) + 1),
                packets_per_tsc=packets,
                seed=config.rng("t4", packets),
            )
            try:
                result = sim.attack(capture, per_tsc, max_candidates=1 << 17)
                ranks.append(result.candidates_tried)
            except AttackError:
                ranks.append(1 << 17)
        assert ranks[1] <= ranks[0]

    def test_budget_exhaustion_raises(self, sim_setup):
        config, sim, plaintext, per_tsc = sim_setup
        capture = sampled_capture(
            per_tsc,
            plaintext,
            range(1, len(plaintext) + 1),
            packets_per_tsc=4,  # hopeless statistics
            seed=config.rng("t5"),
        )
        with pytest.raises(AttackError):
            sim.attack(capture, per_tsc, max_candidates=8)

    def test_decrypt_mic_icv_finds_planted_candidate(self, rng):
        """With likelihoods that pin the exact MIC+ICV, the searcher must
        return it at rank 1 and flag correctness."""
        from repro.tkip.crc import icv as compute_icv

        known = rng.integers(0, 256, 55, dtype=np.uint8).tobytes()
        mic = rng.integers(0, 256, 8, dtype=np.uint8).tobytes()
        icv_bytes = compute_icv(known + mic)
        truth = mic + icv_bytes
        loglik = np.full((12, 256), -10.0)
        for row, byte in enumerate(truth):
            loglik[row, byte] = 0.0
        result = decrypt_mic_icv(
            loglik, known, max_candidates=4, true_mic=mic
        )
        assert result.correct
        assert result.candidates_tried == 1
        assert result.icv == icv_bytes

    def test_crc_pruning_skips_bad_candidates(self, rng):
        """Make the wrong candidate more likely; CRC must reject it and
        the searcher must keep walking to the planted valid one."""
        from repro.tkip.crc import icv as compute_icv

        known = b"\x00" * 55
        mic = b"\x11" * 8
        icv_bytes = compute_icv(known + mic)
        truth = mic + icv_bytes
        loglik = np.full((12, 256), -10.0)
        for row, byte in enumerate(truth):
            loglik[row, byte] = -0.5
        # A decoy (higher likelihood) that cannot satisfy the CRC.
        decoy = bytes([0x22] * 8) + b"\xde\xad\xbe\xef"
        if compute_icv(known + decoy[:8]) != decoy[8:]:
            for row, byte in enumerate(decoy):
                loglik[row, byte] = 0.0
        result = decrypt_mic_icv(loglik, known, max_candidates=1 << 12)
        assert result.mic == mic
        assert result.candidates_tried > 1


class TestPayloadChoice:
    def test_strength_profile_shape(self, sim_setup):
        _, _, plaintext, per_tsc = sim_setup
        strength = biased_position_strength(per_tsc)
        assert strength.shape == (len(plaintext),)
        assert np.all(strength >= 0)

    def test_report_covers_both_payload_lengths(self, sim_setup):
        _, _, _, per_tsc = sim_setup
        report = payload_choice_report(per_tsc)
        assert set(report) == {0, 7}
        assert all(v >= 0 for v in report.values())


class TestForgery:
    def test_recovered_key_enables_injection(self, sim_setup):
        config, sim, plaintext, per_tsc = sim_setup
        capture = sampled_capture(
            per_tsc,
            plaintext,
            range(1, len(plaintext) + 1),
            packets_per_tsc=1 << 12,
            seed=config.rng("t6"),
        )
        result = sim.attack(capture, per_tsc, max_candidates=1 << 18)
        frame = sim.forge_frame(result.mic_key, b"injected payload")
        # The victim's own receiving session must accept the forgery.
        from repro.tkip import TkipSession

        receiver = TkipSession(
            tk=sim.victim.tk, mic_key=sim.victim.mic_key, ta=sim.victim.ta
        )
        receiver.replay_window = frame.tsc - 1
        data = receiver.decapsulate(frame)
        assert b"injected payload" in data
