"""The end-to-end bias-detection pipeline (paper §3.1)."""

import numpy as np
import pytest

from repro.stats import BiasDetector, relative_bias


def _uniform_counts(rng, positions, n):
    return np.stack(
        [rng.multinomial(n, np.full(256, 1 / 256)) for _ in range(positions)]
    )


class TestSingleByteScan:
    def test_flags_planted_bias_and_only_it(self, rng):
        counts = _uniform_counts(rng, 8, 1 << 17)
        probs = np.full(256, 1 / 256)
        probs[0] *= 2.0  # Mantin-Shamir strength
        probs /= probs.sum()
        counts[1] = rng.multinomial(1 << 17, probs)
        report = BiasDetector(alpha=1e-4).scan_single_bytes(counts)
        assert report.biased_positions == [2]  # 1-indexed

    def test_no_false_positives_on_uniform(self, rng):
        counts = _uniform_counts(rng, 16, 1 << 15)
        report = BiasDetector(alpha=1e-4).scan_single_bytes(counts)
        assert report.biased_positions == []

    def test_custom_position_labels(self, rng):
        counts = _uniform_counts(rng, 3, 4096)
        report = BiasDetector().scan_single_bytes(counts, positions=[272, 304, 336])
        assert set(report.position_p_values) == {272, 304, 336}

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BiasDetector().scan_single_bytes(np.zeros((4, 255)))


class TestPairScan:
    def test_flags_dependent_cell(self, rng):
        probs = np.full(65536, 1 / 65536)
        probs[(15 << 8) | 240] *= 1.4
        probs /= probs.sum()
        table = rng.multinomial(1 << 24, probs).reshape(256, 256)
        report = BiasDetector(alpha=1e-4).scan_pair(table, (15, 16))
        assert (15, 16) in report.dependent_pairs
        values = {cell.values for cell in report.cells_for((15, 16))}
        assert (15, 240) in values

    def test_relative_bias_sign_reported(self, rng):
        probs = np.full(65536, 1 / 65536)
        probs[0] *= 0.5  # negative bias on (0, 0)
        probs /= probs.sum()
        table = rng.multinomial(1 << 24, probs).reshape(256, 256)
        report = BiasDetector().scan_pair(table, (1, 2))
        cells = [c for c in report.cells if c.values == (0, 0)]
        assert cells and cells[0].sign == -1

    def test_independent_table_not_flagged(self, rng):
        table = rng.multinomial(1 << 20, np.full(65536, 1 / 65536)).reshape(256, 256)
        report = BiasDetector().scan_pair(table, (3, 4))
        assert report.dependent_pairs == []
        assert report.cells == []

    def test_marginal_bias_not_reported_as_dependence(self, rng):
        """A strong single-byte bias with independent bytes must yield no
        dependent cells — the §3.1 null-hypothesis subtlety."""
        row = np.full(256, 1 / 256)
        row[0] *= 2.0
        row /= row.sum()
        joint = np.outer(row, np.full(256, 1 / 256)).ravel()
        table = rng.multinomial(1 << 22, joint).reshape(256, 256)
        report = BiasDetector().scan_pair(table, (2, 3))
        assert report.dependent_pairs == []

    def test_scan_pairs_stack(self, rng):
        tables = np.stack(
            [
                rng.multinomial(1 << 18, np.full(65536, 1 / 65536)).reshape(256, 256)
                for _ in range(2)
            ]
        )
        report = BiasDetector().scan_pairs(tables, [(1, 2), (3, 4)])
        assert set(report.pair_p_values) == {(1, 2), (3, 4)}


class TestRelativeBias:
    def test_matches_paper_notation(self):
        # s = p (1 + q): recover q.
        p, q = 2.0**-16, -(2.0**-4.894)
        s = p * (1 + q)
        assert relative_bias(s, p) == pytest.approx(q)

    def test_vectorised(self):
        out = relative_bias(np.array([0.02, 0.01]), np.array([0.01, 0.01]))
        assert out == pytest.approx([1.0, 0.0])
