"""Bit-exactness of the batched capture engine (repro.capture).

The per-request reference paths — ``CookieStatistics.ingest_fragment``
for §6 and ``CaptureSet.add_frame`` for §5 — stay in the tree as
oracles: every test here rebuilds the engine's ciphertexts with the
:mod:`repro.rc4.reference` Python loops, feeds them through the
reference path one request/frame at a time, and asserts cell-for-cell
equality with the vectorized engine.  Checkpoint/resume and shard/merge
must reproduce uninterrupted counters exactly, and the
``SufficientStatistics`` algebra (associative/commutative merge,
bit-identical JSON/NPZ round-trips) is pinned with hypothesis.
"""

import dataclasses
import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capture import (
    HttpsCaptureSource,
    TkipCaptureSource,
    merge_shards,
    run_capture,
    shard_batches,
)
from repro.config import ReproConfig
from repro.errors import CaptureError, ExperimentParamError
from repro.rc4 import _native
from repro.rc4.keygen import derive_keys
from repro.rc4.reference import rc4_keystream
from repro.simulate import HttpsAttackSimulation
from repro.tkip.frames import TkipFrame
from repro.tkip.injection import CaptureSet
from repro.tkip.keymix import simplified_key_batch
from repro.tls.attack import CookieLayout, CookieStatistics
from repro.utils.serialization import canonical_json


@pytest.fixture(params=["numpy", "native"])
def backend(request, monkeypatch):
    """Run the test body under each engine backend."""
    if request.param == "native":
        if not _native.available():
            pytest.skip("native backend unavailable (no C compiler?)")
    else:
        monkeypatch.setattr(_native, "available", lambda: False)
    return request.param


@pytest.fixture
def https_sim(config):
    return HttpsAttackSimulation(config, cookie_len=2, max_gap=8)


def _https_source(sim, config, **overrides):
    kwargs = dict(
        config=config,
        layout=sim.layout,
        plaintext=sim.campaign.request_plaintext(),
        num_requests=202,
        batch_size=64,
        reconnect_every=1,
        max_gap=8,
        label="eq-https",
    )
    kwargs.update(overrides)
    return HttpsCaptureSource(**kwargs)


def _https_reference(source):
    """Per-request oracle: reference RC4 + ingest_fragment, same keys."""
    stats = CookieStatistics.empty(source.layout, max_gap=source.max_gap)
    plaintext = source.plaintext
    stride = source.layout.request_len + source.record_overhead
    per_conn = source.reconnect_every
    for index in range(source.num_batches):
        first = index * source.batch_size
        count = min(source.batch_size, source.num_requests - first)
        connections = -(-count // per_conn)
        keys = derive_keys(
            source.config, f"{source.label}/batch{index}", connections
        )
        length = (per_conn - 1) * stride + source.layout.request_len
        for c in range(connections):
            stream = rc4_keystream(bytes(keys[c]), length)
            for q in range(per_conn):
                if c * per_conn + q >= count:
                    break
                window = stream[q * stride : q * stride + len(plaintext)]
                fragment = bytes(s ^ p for s, p in zip(window, plaintext))
                stats.ingest_fragment(fragment, offset=1 + q * stride)
    return stats


def _assert_cookie_stats_equal(a, b):
    assert a.num_requests == b.num_requests
    assert np.array_equal(a.fm_counts, b.fm_counts)
    assert list(a.absab_counts) == list(b.absab_counts)
    for key in a.absab_counts:
        assert np.array_equal(a.absab_counts[key], b.absab_counts[key]), key


class TestHttpsCaptureEquivalence:
    """Batched §6 capture == per-request ingest_fragment, cell for cell."""

    def test_fresh_connections(self, config, https_sim, backend):
        source = _https_source(https_sim, config)
        _assert_cookie_stats_equal(run_capture(source), _https_reference(source))

    def test_record_churn_with_partial_batches(self, config, https_sim, backend):
        # 202 requests, 4 per connection, batch 64: the final batch holds
        # 10 requests and its last connection only 2 — every edge at once.
        source = _https_source(https_sim, config, reconnect_every=4)
        _assert_cookie_stats_equal(run_capture(source), _https_reference(source))

    def test_absab_matrix_views_stay_coherent(self, config, https_sim):
        """Dict vectors are views of the backing matrix: per-request and
        batched ingestion update the same memory."""
        stats = CookieStatistics.empty(https_sim.layout, max_gap=4)
        key = next(iter(stats.absab_counts))
        stats.absab_counts[key][7] += 3
        row = list(stats.absab_counts).index(key)
        assert stats.absab_matrix[row, 7] == 3

    def test_rejects_misaligned_stride(self, config, https_sim):
        with pytest.raises(CaptureError):
            _https_source(
                https_sim, config, reconnect_every=4, record_overhead=19,
                batch_size=64,
            )

    def test_rejects_batch_not_multiple_of_reconnect(self, config, https_sim):
        with pytest.raises(CaptureError):
            _https_source(https_sim, config, reconnect_every=3, batch_size=64)


class TestTkipCaptureEquivalence:
    """Batched §5 capture == per-frame add_frame, cell for cell."""

    def _source(self, config, **overrides):
        rng = np.random.default_rng(5)
        kwargs = dict(
            config=config,
            plaintext=bytes(rng.integers(0, 256, 60, dtype=np.uint8)),
            tsc_values=(5, 1000),
            packets_per_tsc=150,
            batch_size=64,
            label="eq-tkip",
        )
        kwargs.update(overrides)
        return TkipCaptureSource(**kwargs)

    def _reference(self, source):
        capture = CaptureSet(
            positions=source.positions, plaintext_len=len(source.plaintext)
        )
        counter = 0
        for tsc in source.tsc_values:
            for part in range(source._batches_per_tsc):
                first = part * source.batch_size
                count = min(source.batch_size, source.packets_per_tsc - first)
                rng = source.config.rng(source.label, "keys", tsc, part)
                keys = simplified_key_batch(tsc, count, rng)
                for key in keys:
                    stream = rc4_keystream(bytes(key), len(source.plaintext))
                    cipher = bytes(
                        s ^ p for s, p in zip(stream, source.plaintext)
                    )
                    counter += 1
                    # Same low 16 TSC bits, distinct high bits: the
                    # per-frame dedup sees fresh TSCs, the statistics
                    # land in the same per-TSC table.
                    frame = TkipFrame(
                        ta=b"\x00" * 6, da=b"\x01" * 6, sa=b"\x02" * 6,
                        tsc=(counter << 16) | tsc, ciphertext=cipher,
                    )
                    assert capture.add_frame(frame)
        return capture

    @staticmethod
    def _assert_equal(a, b):
        assert a.num_captured == b.num_captured
        assert sorted(a.counts) == sorted(b.counts)
        for tsc in a.counts:
            assert np.array_equal(a.counts[tsc], b.counts[tsc]), tsc

    def test_full_span(self, config, backend):
        source = self._source(config)
        self._assert_equal(run_capture(source), self._reference(source))

    def test_position_subrange(self, config, backend):
        source = self._source(config, positions=range(5, 23))
        self._assert_equal(run_capture(source), self._reference(source))

    def test_rejects_positions_outside_plaintext(self, config):
        with pytest.raises(CaptureError):
            self._source(config, positions=range(1, 100))


class TestCaptureForcedDispatchMatrix:
    """Both capture sources under every forced dispatch combination
    (``native_simd`` x ``REPRO_NATIVE_INTERLEAVE`` x thread count)
    produce counters identical to the serial scalar leg — the capture
    engine must be immune to how the keystream generator is dispatched.
    """

    @pytest.fixture(autouse=True)
    def _require_native(self):
        if not _native.available():
            pytest.skip("native backend unavailable (no C compiler?)")

    @staticmethod
    def _dispatch_config(config, *, simd, threads):
        return dataclasses.replace(
            config, native_simd=simd, native_threads=threads
        )

    @pytest.mark.parametrize("threads", [1, 2])
    @pytest.mark.parametrize("interleave", ["0", "1"], ids=["il0", "il1"])
    @pytest.mark.parametrize("simd", [False, True], ids=["simd0", "simd1"])
    def test_https_dispatch_matrix(
        self, config, https_sim, monkeypatch, threads, interleave, simd
    ):
        monkeypatch.setenv("REPRO_NATIVE_INTERLEAVE", "0")
        baseline = run_capture(
            _https_source(
                https_sim, self._dispatch_config(config, simd=False, threads=1)
            )
        )
        monkeypatch.setenv("REPRO_NATIVE_INTERLEAVE", interleave)
        forced = run_capture(
            _https_source(
                https_sim,
                self._dispatch_config(config, simd=simd, threads=threads),
            )
        )
        _assert_cookie_stats_equal(forced, baseline)

    @pytest.mark.parametrize("threads", [1, 2])
    @pytest.mark.parametrize("interleave", ["0", "1"], ids=["il0", "il1"])
    @pytest.mark.parametrize("simd", [False, True], ids=["simd0", "simd1"])
    def test_tkip_dispatch_matrix(
        self, config, monkeypatch, threads, interleave, simd
    ):
        def source(dispatch_config):
            rng = np.random.default_rng(5)
            return TkipCaptureSource(
                config=dispatch_config,
                plaintext=bytes(rng.integers(0, 256, 60, dtype=np.uint8)),
                tsc_values=(5, 1000),
                packets_per_tsc=150,
                batch_size=64,
                label="disp-tkip",
            )

        monkeypatch.setenv("REPRO_NATIVE_INTERLEAVE", "0")
        baseline = run_capture(
            source(self._dispatch_config(config, simd=False, threads=1))
        )
        monkeypatch.setenv("REPRO_NATIVE_INTERLEAVE", interleave)
        forced = run_capture(
            source(self._dispatch_config(config, simd=simd, threads=threads))
        )
        TestTkipCaptureEquivalence._assert_equal(forced, baseline)


class _FailAfter:
    """Source wrapper that dies after N successful batches."""

    def __init__(self, inner, fail_after):
        self._inner = inner
        self._fail_after = fail_after

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def capture_batch(self, stats, index):
        if index >= self._fail_after:
            raise RuntimeError("simulated crash")
        return self._inner.capture_batch(stats, index)


class TestCheckpointResume:
    """Interrupted + resumed captures == uninterrupted, bit for bit."""

    def _source(self, config):
        rng = np.random.default_rng(11)
        return TkipCaptureSource(
            config=config,
            plaintext=bytes(rng.integers(0, 256, 40, dtype=np.uint8)),
            tsc_values=(3, 77, 4000),
            packets_per_tsc=100,
            batch_size=32,
            label="cp-tkip",
        )

    def test_resume_reproduces_uninterrupted_counts(self, config, tmp_path):
        source = self._source(config)
        uninterrupted = run_capture(source)
        path = tmp_path / "capture.npz"
        with pytest.raises(RuntimeError):
            run_capture(
                _FailAfter(source, 5), checkpoint_path=path, checkpoint_every=2
            )
        assert path.exists()
        resumed = run_capture(source, checkpoint_path=path, checkpoint_every=2)
        TestTkipCaptureEquivalence._assert_equal(resumed, uninterrupted)

    def test_completed_checkpoint_resumes_as_noop(self, config, tmp_path):
        source = self._source(config)
        path = tmp_path / "capture.npz"
        done = run_capture(source, checkpoint_path=path)
        again = run_capture(_FailAfter(source, 0), checkpoint_path=path)
        TestTkipCaptureEquivalence._assert_equal(done, again)

    def test_https_checkpoint_roundtrip(self, config, https_sim, tmp_path):
        source = _https_source(https_sim, config, num_requests=96, batch_size=32)
        uninterrupted = run_capture(source)
        path = tmp_path / "https.npz"
        with pytest.raises(RuntimeError):
            run_capture(
                _FailAfter(source, 1), checkpoint_path=path, checkpoint_every=1
            )
        resumed = run_capture(source, checkpoint_path=path, checkpoint_every=1)
        _assert_cookie_stats_equal(resumed, uninterrupted)

    def test_rejects_foreign_checkpoint(self, config, tmp_path):
        source = self._source(config)
        path = tmp_path / "capture.npz"
        run_capture(source, checkpoint_path=path)
        other = self._source(ReproConfig(seed=4242))
        with pytest.raises(CaptureError, match="fingerprint"):
            run_capture(other, checkpoint_path=path)

    def test_rejects_mismatched_batch_range(self, config, tmp_path):
        source = self._source(config)
        path = tmp_path / "capture.npz"
        run_capture(source, batches=range(0, 4), checkpoint_path=path)
        with pytest.raises(CaptureError, match="batch range"):
            run_capture(source, batches=range(4, 8), checkpoint_path=path)

    def test_resume_false_starts_over(self, config, tmp_path):
        source = self._source(config)
        path = tmp_path / "capture.npz"
        run_capture(source, batches=range(0, 2), checkpoint_path=path)
        fresh = run_capture(source, checkpoint_path=path, resume=False)
        TestTkipCaptureEquivalence._assert_equal(fresh, run_capture(source))

    def test_rejects_bad_engine_arguments(self, config):
        source = self._source(config)
        with pytest.raises(CaptureError):
            run_capture(source, checkpoint_every=0)
        with pytest.raises(CaptureError):
            run_capture(source, batches=[source.num_batches])
        with pytest.raises(CaptureError, match="duplicate"):
            run_capture(source, batches=[0, 0])


class TestSharding:
    """Disjoint batch ranges merged == one uninterrupted capture."""

    def test_tkip_shards_merge_exactly(self, config):
        rng = np.random.default_rng(13)
        source = TkipCaptureSource(
            config=config,
            plaintext=bytes(rng.integers(0, 256, 30, dtype=np.uint8)),
            tsc_values=(1, 2, 600),
            packets_per_tsc=120,
            batch_size=32,
            label="shard-tkip",
        )
        full = run_capture(source)
        shards = [
            run_capture(source, batches=r)
            for r in shard_batches(source.num_batches, 4)
        ]
        TestTkipCaptureEquivalence._assert_equal(merge_shards(shards), full)

    def test_https_shards_merge_exactly(self, config, https_sim):
        source = _https_source(https_sim, config, num_requests=160, batch_size=32)
        full = run_capture(source)
        shards = [
            run_capture(source, batches=r)
            for r in shard_batches(source.num_batches, 3)
        ]
        _assert_cookie_stats_equal(merge_shards(shards), full)

    def test_shard_batches_partitions(self):
        ranges = shard_batches(11, 3)
        flat = [index for r in ranges for index in r]
        assert flat == list(range(11))
        assert {len(r) for r in ranges} <= {3, 4}

    def test_merge_rejects_mismatched_layouts(self, config, https_sim):
        from repro.errors import AttackError

        a = CookieStatistics.empty(https_sim.layout, max_gap=4)
        b = CookieStatistics.empty(https_sim.layout, max_gap=8)
        with pytest.raises(AttackError):
            a.merge(b)


# --- SufficientStatistics algebra (hypothesis) ----------------------------

_LAYOUT = CookieLayout(prefix=b"known-ab", suffix=b"cd-known", cookie_len=2)


def _random_cookie_stats(seed: int) -> CookieStatistics:
    stats = CookieStatistics.empty(_LAYOUT, max_gap=3)
    rng = np.random.default_rng(seed)
    stats.fm_counts += rng.integers(0, 50, stats.fm_counts.shape)
    stats.absab_matrix += rng.integers(0, 50, stats.absab_matrix.shape)
    stats.num_requests = int(rng.integers(0, 1000))
    return stats


def _random_capture_set(seed: int) -> CaptureSet:
    rng = np.random.default_rng(seed)
    capture = CaptureSet(positions=range(1, 7), plaintext_len=9)
    for tsc in rng.choice(100, size=rng.integers(1, 4), replace=False):
        capture.counts[int(tsc)] = rng.integers(
            0, 50, (6, 256), dtype=np.int64
        )
    capture.num_captured = int(rng.integers(0, 500))
    return capture


@pytest.mark.parametrize(
    "make,equal",
    [
        (_random_cookie_stats, _assert_cookie_stats_equal),
        (_random_capture_set, TestTkipCaptureEquivalence._assert_equal),
    ],
    ids=["cookie", "tkip"],
)
class TestStatisticsAlgebra:
    @settings(max_examples=15, deadline=None)
    @given(seeds=st.tuples(*[st.integers(0, 2**31)] * 3))
    def test_merge_associative_and_commutative(self, make, equal, seeds):
        sa, sb, sc = seeds
        a, b, c = make(sa), make(sb), make(sc)
        left = a.snapshot().merge(b).merge(c)
        right = a.snapshot().merge(b.snapshot().merge(c))
        equal(left, right)
        equal(a.snapshot().merge(b), b.snapshot().merge(a))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_json_summary_round_trips_bit_identically(self, make, equal, seed):
        stats = make(seed)
        text = canonical_json(stats.to_jsonable())
        assert canonical_json(json.loads(text)) == text

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_npz_round_trips_bit_identically(self, make, equal, seed):
        stats = make(seed)
        with tempfile.TemporaryDirectory() as tmp:
            path = stats.save(
                Path(tmp) / "stats.npz", extra={"note": "round-trip"}
            )
            loaded, extra = type(stats).load(path)
        assert extra == {"note": "round-trip"}
        equal(stats, loaded)
        # Saving the loaded copy is byte-stable at the summary level too.
        assert canonical_json(loaded.to_jsonable()) == canonical_json(
            stats.to_jsonable()
        )


# --- registry integration -------------------------------------------------


class TestRegistryIntegration:
    """The capture engine through the experiment registry surface."""

    @pytest.fixture(scope="class")
    def session(self):
        from repro.api import Session

        return Session(ReproConfig(scale=0.25, seed=4321))

    def test_attack_https_batched_recovers(self, session):
        # num_candidates covers the full 2-char RFC 6265 space, so the
        # run must recover; this exercises the whole batched pipeline
        # (engine capture -> likelihoods -> Algorithm 2 -> oracle).
        result = session.run(
            "attack-https", cookie_len=2, num_candidates=1 << 13, max_gap=16,
            capture="batched", num_requests=1 << 14, batch_size=4096,
        )
        assert result.metrics["capture"] == "batched"
        assert result.metrics["num_requests"] == 1 << 14
        assert len(result.metrics["cookie"]) == 2

    def test_attack_https_record_churn_scenario(self, session):
        result = session.run(
            "attack-https", cookie_len=2, num_candidates=1 << 13, max_gap=16,
            capture="batched", num_requests=1 << 14, batch_size=4096,
            reconnect_every=8,
        )
        assert result.metrics["reconnect_every"] == 8

    def test_attack_https_rejects_churn_without_batched(self, session):
        with pytest.raises(ExperimentParamError):
            session.run("attack-https", reconnect_every=8)

    def test_attack_tkip_batched_capture_stage(self, session, tmp_path):
        """Batched TKIP capture flows through the experiment (recovery
        needs paper-scale packet counts — see the capture docstring —
        so only the capture stage is asserted here, via a checkpoint)."""
        path = tmp_path / "tkip-capture.npz"
        with pytest.raises(Exception):
            session.run(
                "attack-tkip", num_tsc=2, keys_per_tsc=256,
                packets_per_tsc=1 << 10, max_candidates=64,
                capture="batched", checkpoint=str(path),
            )
        capture, extra = CaptureSet.load(path)
        assert capture.num_captured == 2 * (1 << 10)
        assert extra["capture_checkpoint"]["batches_done"] > 0

    def test_bias_sweep_pertsc_reports_per_tsc_profiles(self, session):
        result = session.run(
            "bias-sweep-pertsc", num_tsc=2, packets_per_tsc=2048, end=8,
        )
        metrics = result.metrics
        assert len(metrics["profile"]) == 2
        assert metrics["positions"] == [1, 8]
        assert len(metrics["tsc_spread_per_position"]) == 8
        assert metrics["total_counts"] == 2 * 2048 * 8

    def test_capture_progress_events_emitted(self, session):
        events = []
        session.add_progress(events.append)
        try:
            session.run(
                "bias-sweep-pertsc", num_tsc=2, packets_per_tsc=512, end=4,
                batch_size=256,
            )
        finally:
            session._callbacks.remove(events.append)
        capture_events = [e for e in events if e.stage == "capture"]
        assert any("captured" in e.message for e in capture_events)
        final = [e for e in capture_events if e.data.get("requests_done")]
        assert final[-1].data["requests_done"] == 2 * 512
