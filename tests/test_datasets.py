"""Counting kernels, worker-pool generation, and the on-disk store."""

import numpy as np
import pytest

from repro.datasets import (
    DatasetSpec,
    consec_digraph_counts,
    equality_counts,
    generate_dataset,
    load_dataset,
    longterm_digraph_counts,
    pair_counts,
    save_dataset,
    single_byte_counts,
)
from repro.errors import DatasetError
from repro.rc4 import rc4_keystream


def _keys(rng, n=32):
    return rng.integers(0, 256, size=(n, 16), dtype=np.uint8)


class TestKernelsAgainstReference:
    def test_single_byte_counts_match_reference(self, rng):
        keys = _keys(rng, 16)
        counts = single_byte_counts(keys, 8)
        expected = np.zeros((8, 256), dtype=np.int64)
        for key in keys:
            stream = rc4_keystream(bytes(key), 8)
            for r, z in enumerate(stream):
                expected[r, z] += 1
        assert np.array_equal(counts, expected)

    def test_consec_digraph_counts_match_reference(self, rng):
        keys = _keys(rng, 12)
        counts = consec_digraph_counts(keys, 5)
        expected = np.zeros((5, 256, 256), dtype=np.int64)
        for key in keys:
            stream = rc4_keystream(bytes(key), 6)
            for r in range(5):
                expected[r, stream[r], stream[r + 1]] += 1
        assert np.array_equal(counts, expected)

    def test_pair_counts_match_reference(self, rng):
        keys = _keys(rng, 12)
        pairs = [(1, 3), (2, 16)]
        counts = pair_counts(keys, pairs)
        expected = np.zeros((2, 256, 256), dtype=np.int64)
        for key in keys:
            stream = rc4_keystream(bytes(key), 16)
            for idx, (a, b) in enumerate(pairs):
                expected[idx, stream[a - 1], stream[b - 1]] += 1
        assert np.array_equal(counts, expected)

    def test_equality_counts_match_reference(self, rng):
        keys = _keys(rng, 40)
        pairs = [(1, 2), (1, 3), (2, 4)]
        counts = equality_counts(keys, pairs)
        for idx, (a, b) in enumerate(pairs):
            manual = sum(
                1
                for key in keys
                if rc4_keystream(bytes(key), max(a, b))[a - 1]
                == rc4_keystream(bytes(key), max(a, b))[b - 1]
            )
            assert counts[idx, 0] == manual
            assert counts[idx, 1] == len(keys)

    def test_longterm_counts_binned_by_counter(self, rng):
        keys = _keys(rng, 4)
        counts = longterm_digraph_counts(keys, 64, drop=100, gap=0)
        expected = np.zeros((256, 256, 256), dtype=np.int64)
        for key in keys:
            stream = rc4_keystream(bytes(key), 100 + 65)[100:]
            for r in range(64):
                i = (100 + r + 1) % 256
                expected[i, stream[r], stream[r + 1]] += 1
        assert np.array_equal(counts, expected)

    def test_longterm_gap_one(self, rng):
        keys = _keys(rng, 2)
        counts = longterm_digraph_counts(keys, 16, drop=50, gap=1)
        expected = np.zeros((256, 256, 256), dtype=np.int64)
        for key in keys:
            stream = rc4_keystream(bytes(key), 50 + 18)[50:]
            for r in range(16):
                i = (50 + r + 1) % 256
                expected[i, stream[r], stream[r + 2]] += 1
        assert np.array_equal(counts, expected)

    def test_accumulation_into_out(self, rng):
        keys = _keys(rng, 8)
        out = single_byte_counts(keys, 4)
        single_byte_counts(keys, 4, out=out)
        assert out.sum() == 2 * 8 * 4

    def test_pair_validation(self, rng):
        with pytest.raises(ValueError):
            pair_counts(_keys(rng, 2), [])
        with pytest.raises(ValueError):
            pair_counts(_keys(rng, 2), [(1, 1)])

    def test_equality_pair_validation(self, rng):
        """equality_counts validates pairs the same way pair_counts does."""
        with pytest.raises(ValueError):
            equality_counts(_keys(rng, 2), [])
        with pytest.raises(ValueError):
            equality_counts(_keys(rng, 2), [(2, 2)])
        with pytest.raises(ValueError):
            equality_counts(_keys(rng, 2), [(0, 3)])
        with pytest.raises(ValueError):
            equality_counts(_keys(rng, 2), [(3, 0)])


class TestGenerateDataset:
    def test_inline_matches_kernel(self, config):
        spec = DatasetSpec(kind="single", num_keys=2048, positions=4, label="gd")
        counts = generate_dataset(spec, config, processes=1)
        assert counts.shape == (4, 256)
        assert counts.sum() == 2048 * 4

    def test_parallel_matches_inline(self, config):
        spec = DatasetSpec(
            kind="equality", num_keys=4096, pairs=((1, 2),), label="par"
        )
        inline = generate_dataset(spec, config, processes=1)
        parallel = generate_dataset(spec, config, processes=4)
        assert np.array_equal(inline, parallel)

    def test_spec_validation(self, config):
        with pytest.raises(DatasetError):
            generate_dataset(
                DatasetSpec(kind="single", num_keys=0, positions=4), config
            )
        with pytest.raises(DatasetError):
            generate_dataset(DatasetSpec(kind="pairs", num_keys=10), config)
        with pytest.raises(DatasetError):
            generate_dataset(DatasetSpec(kind="longterm", num_keys=10), config)


class TestStore:
    def test_roundtrip(self, tmp_path, config):
        spec = DatasetSpec(kind="single", num_keys=512, positions=2, label="st")
        counts = generate_dataset(spec, config, processes=1)
        path = tmp_path / "ds.npz"
        save_dataset(path, counts, spec)
        loaded, loaded_spec = load_dataset(path)
        assert np.array_equal(loaded, counts)
        assert loaded_spec == spec

    def test_spec_mismatch_detected(self, tmp_path, config):
        spec = DatasetSpec(kind="single", num_keys=512, positions=2, label="st")
        counts = generate_dataset(spec, config, processes=1)
        path = tmp_path / "ds.npz"
        save_dataset(path, counts, spec)
        other = DatasetSpec(kind="single", num_keys=1024, positions=2, label="st")
        with pytest.raises(DatasetError):
            load_dataset(path, expected_spec=other)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset(tmp_path / "nope.npz")
