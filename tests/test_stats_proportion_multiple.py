"""Proportion tests, Holm correction, power arithmetic, LLR comparison."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats import (
    detectable_relative_bias,
    holm,
    llr_model_comparison,
    proportion_test,
    proportion_test_many,
    required_samples,
)
from repro.stats.multiple import holm_adjusted


class TestProportion:
    def test_matches_binomtest_for_moderate_n(self):
        result = proportion_test(620, 10000, 0.06)
        ref = scipy_stats.binomtest(620, 10000, 0.06).pvalue
        assert result.p_value == pytest.approx(ref, rel=0.15)

    def test_two_sided_symmetry(self):
        high = proportion_test(600, 10000, 0.05)
        low = proportion_test(400, 10000, 0.05)
        assert high.p_value == pytest.approx(low.p_value, rel=1e-9)
        assert high.z == pytest.approx(-low.z, rel=1e-9)

    def test_exact_null_gives_p_one(self):
        assert proportion_test(500, 10000, 0.05).p_value == pytest.approx(1.0)

    def test_vectorised_matches_scalar(self, rng):
        observed = rng.integers(0, 100, size=16)
        z, p = proportion_test_many(observed, 1000, np.full(16, 0.05))
        for i in range(16):
            scalar = proportion_test(int(observed[i]), 1000, 0.05)
            assert z[i] == pytest.approx(scalar.z)
            assert p[i] == pytest.approx(scalar.p_value)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            proportion_test(1, 0, 0.5)
        with pytest.raises(ValueError):
            proportion_test(1, 10, 1.5)
        with pytest.raises(ValueError):
            proportion_test(11, 10, 0.5)


class TestHolm:
    def test_rejects_obvious_and_keeps_null(self):
        p = np.array([1e-10, 0.2, 0.8, 1e-7])
        rejected = holm(p, 0.01)
        assert list(rejected) == [True, False, False, True]

    def test_controls_fwer_under_null(self, rng):
        """With all-null uniform p-values, family-wise rejections should be
        rare at alpha = 0.05 (probability ~5 percent per family)."""
        families_with_rejection = 0
        for _ in range(200):
            p = rng.uniform(size=20)
            if holm(p, 0.05).any():
                families_with_rejection += 1
        assert families_with_rejection < 30

    def test_stepdown_stops_at_first_failure(self):
        # Second-smallest p (0.03) fails its threshold 0.05/2 = 0.025, so
        # only the smallest rejects even though 0.03 < alpha and the
        # largest (0.2) would trivially fail anyway.
        p = np.array([0.001, 0.2, 0.03])
        rejected = holm(p, 0.05)
        assert rejected.sum() == 1 and rejected[0]

    def test_adjusted_monotone_and_bounded(self, rng):
        p = rng.uniform(size=50)
        adj = holm_adjusted(p)
        assert np.all(adj >= p - 1e-12)
        assert np.all(adj <= 1.0)
        order = np.argsort(p)
        assert np.all(np.diff(adj[order]) >= -1e-12)

    def test_empty_input(self):
        assert holm(np.array([]), 0.05).size == 0


class TestPower:
    def test_fm_cell_needs_about_2_37_samples(self):
        """The reason Table 1 cannot be re-detected per cell at laptop
        scale: q = 2^-8 on p = 2^-16 needs ~2^36-2^38 samples."""
        n = required_samples(2.0**-16, 2.0**-8)
        assert 2**35 < n < 2**39

    def test_mantin_shamir_needs_few_samples(self):
        n = required_samples(2.0**-8, 1.0)
        assert n < 2**14

    def test_roundtrip_with_detectable_bias(self):
        n = required_samples(2.0**-8, 0.01)
        q = detectable_relative_bias(2.0**-8, n)
        assert q == pytest.approx(0.01, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_samples(0.5, 0.0)
        with pytest.raises(ValueError):
            detectable_relative_bias(0.5, 0)


class TestLlr:
    def test_prefers_true_model(self, rng):
        alt = np.full(65536, 1 / 65536)
        alt[0] *= 1.0 + 2.0**-8
        alt /= alt.sum()
        null = np.full(65536, 1 / 65536)
        counts = rng.multinomial(1 << 22, alt)
        result = llr_model_comparison(counts, alt, null)
        # Expect the LLR above its null mean; pooled evidence from the
        # whole table even though per-cell tests would be hopeless here.
        assert result.z_against_null > 0

    def test_symmetric_under_model_swap(self, rng):
        alt = np.array([0.3, 0.7])
        null = np.array([0.5, 0.5])
        counts = np.array([320, 680])
        forward = llr_model_comparison(counts, alt, null)
        backward = llr_model_comparison(counts, null, alt)
        assert forward.llr == pytest.approx(-backward.llr)

    def test_validation(self):
        with pytest.raises(ValueError):
            llr_model_comparison(np.ones(3), np.ones(3), np.full(3, 1 / 3))
        with pytest.raises(ValueError):
            llr_model_comparison(np.ones(2), np.array([1.0, 0.0]), np.full(2, 0.5))
