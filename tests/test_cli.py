"""The ``python -m repro`` command-line interface."""

import json
import subprocess
import sys

import pytest

from repro.__main__ import main
from repro.api import ExperimentResult, list_experiments


class TestInProcess:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "subsystems" in out

    def test_scale_seed_flags(self, capsys):
        assert main(["--scale", "2.0", "--seed", "42", "info"]) == 0
        assert "scale=2.0 seed=42" in capsys.readouterr().out

    def test_info_prints_registry_inventory_and_real_docs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        # The inventory comes from the live registry, not a hardcoded list.
        for spec in list_experiments():
            assert spec.name in out
        # Only docs that actually exist are advertised.
        assert "README.md" in out and "ROADMAP.md" in out
        assert "DESIGN.md" not in out and "EXPERIMENTS.md" not in out

    def test_info_json(self, capsys):
        assert main(["info", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"]
        assert len(payload["experiments"]) >= 8

    def test_list_enumerates_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        names = [spec.name for spec in list_experiments()]
        assert len(names) >= 8
        for name in names:
            assert name in out

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in payload} == {
            spec.name for spec in list_experiments()
        }

    def test_run_with_params_and_json_stdout(self, capsys):
        assert main([
            "--seed", "5", "run", "dataset-single", "--quiet",
            "--param", "num_keys=2048", "--param", "positions=8",
            "--json", "-",
        ]) == 0
        text = capsys.readouterr().out.strip()
        result = ExperimentResult.from_json(text)
        assert result.experiment == "dataset-single"
        assert result.params == {"num_keys": 2048, "positions": 8}
        assert result.to_json() == text  # bit-identical round-trip

    def test_run_json_stdout_stays_machine_readable_with_progress(self, capsys):
        """Progress goes to stderr, so `--json -` stdout parses as-is."""
        assert main([
            "--seed", "5", "run", "dataset-single",
            "--param", "num_keys=512", "--json", "-",
        ]) == 0
        captured = capsys.readouterr()
        ExperimentResult.from_json(captured.out)  # whole stream is the record
        assert "[dataset-single/" in captured.err  # progress still visible

    def test_run_writes_json_file(self, capsys, tmp_path):
        out_path = tmp_path / "result.json"
        assert main([
            "--seed", "5", "run", "dataset-single", "--quiet",
            "--param", "num_keys=512", "--json", str(out_path),
        ]) == 0
        result = ExperimentResult.load(out_path)
        assert result.params["num_keys"] == 512

    def test_run_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "not-an-experiment"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_unknown_param_fails_cleanly(self, capsys):
        assert main([
            "run", "dataset-single", "--quiet", "--param", "bogus=1",
        ]) == 2
        assert "no parameter" in capsys.readouterr().err

    def test_tkip_attack(self, capsys):
        assert main(["--scale", "0.5", "--seed", "1", "tkip"]) == 0
        out = capsys.readouterr().out
        assert "correct: True" in out
        assert "recovered MIC key:" in out

    def test_https_attack(self, capsys):
        assert main(["--scale", "0.5", "--seed", "1", "https"]) == 0
        assert "recovered cookie:" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


def test_module_invocation():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "info"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0
    assert "repro" in result.stdout
