"""The ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import main


class TestInProcess:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "subsystems" in out

    def test_scale_seed_flags(self, capsys):
        assert main(["--scale", "2.0", "--seed", "42", "info"]) == 0
        assert "scale=2.0 seed=42" in capsys.readouterr().out

    def test_tkip_attack(self, capsys):
        assert main(["--scale", "0.5", "--seed", "1", "tkip"]) == 0
        out = capsys.readouterr().out
        assert "correct: True" in out
        assert "recovered MIC key:" in out

    def test_https_attack(self, capsys):
        assert main(["--scale", "0.5", "--seed", "1", "https"]) == 0
        assert "recovered cookie:" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


def test_module_invocation():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "info"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0
    assert "repro" in result.stdout
