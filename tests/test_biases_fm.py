"""Fluhrer-McGrew Table 1 encoding and digraph distributions."""

import numpy as np
import pytest

from repro.biases import (
    fm_biased_cells,
    fm_digraph_distribution,
    fm_distributions_for_positions,
    position_to_counter,
)
from repro.biases.fluhrer_mcgrew import FM_RULES


class TestTableEncoding:
    def test_twelve_rules(self):
        assert len(FM_RULES) == 12

    def test_i1_has_the_double_strength_00(self):
        cells = dict(fm_biased_cells(1))
        assert cells[(0, 0)] == pytest.approx(2.0**-16 * (1 + 2.0**-7))

    def test_generic_i_00_strength(self):
        cells = dict(fm_biased_cells(100))
        assert cells[(0, 0)] == pytest.approx(2.0**-16 * (1 + 2.0**-8))

    def test_00_absent_at_i_255(self):
        assert (0, 0) not in dict(fm_biased_cells(255))

    def test_01_condition(self):
        assert (0, 1) not in dict(fm_biased_cells(0))
        assert (0, 1) not in dict(fm_biased_cells(1))
        assert (0, 1) in dict(fm_biased_cells(2))

    def test_negative_biases(self):
        cells = dict(fm_biased_cells(10))
        assert cells[(0, 11)] == pytest.approx(2.0**-16 * (1 - 2.0**-8))
        assert cells[(255, 255)] == pytest.approx(2.0**-16 * (1 - 2.0**-8))

    def test_special_positions(self):
        assert (255, 0) in dict(fm_biased_cells(254))
        assert (255, 1) in dict(fm_biased_cells(255))
        assert (255, 2) in dict(fm_biased_cells(0))
        assert (255, 2) in dict(fm_biased_cells(1))
        assert (129, 129) in dict(fm_biased_cells(2))
        assert (129, 129) not in dict(fm_biased_cells(3))

    def test_wraparound_values(self):
        cells = dict(fm_biased_cells(255))
        # (i+1, 255) at i=255 -> (0, 255)
        assert (0, 255) in cells

    @pytest.mark.parametrize("i", range(0, 256, 17))
    def test_every_counter_has_some_bias(self, i):
        assert len(fm_biased_cells(i)) >= 4


class TestShortTermExceptions:
    """Table 1's extra conditions on the absolute position r (§3.3.1)."""

    def test_i_plus_1_255_suppressed_at_r1(self):
        assert (2, 255) in dict(fm_biased_cells(1))
        assert (2, 255) not in dict(fm_biased_cells(1, r=1))

    def test_255_i_plus_2_suppressed_at_r2(self):
        assert (255, 4) in dict(fm_biased_cells(2))
        assert (255, 4) not in dict(fm_biased_cells(2, r=2))

    def test_129_129_suppressed_at_r2(self):
        assert (129, 129) not in dict(fm_biased_cells(2, r=2))
        assert (129, 129) in dict(fm_biased_cells(2, r=258))

    def test_255_255_suppressed_at_r5(self):
        assert (255, 255) not in dict(fm_biased_cells(5, r=5))
        assert (255, 255) in dict(fm_biased_cells(5, r=261))


class TestDistributions:
    @pytest.mark.parametrize("i", [0, 1, 2, 254, 255, 77])
    def test_normalised(self, i):
        dist = fm_digraph_distribution(i)
        assert dist.shape == (256, 256)
        assert dist.sum() == pytest.approx(1.0)
        assert np.all(dist > 0)

    def test_biased_cells_have_stated_probability(self):
        dist = fm_digraph_distribution(1)
        for (a, b), p in fm_biased_cells(1):
            assert dist[a, b] == pytest.approx(p)

    def test_positions_helper(self):
        dists = fm_distributions_for_positions(range(257, 260))
        assert set(dists) == {257, 258, 259}
        assert np.array_equal(dists[257], fm_digraph_distribution(1))

    def test_position_to_counter(self):
        assert position_to_counter(1) == 1
        assert position_to_counter(256) == 0
        assert position_to_counter(257) == 1
        with pytest.raises(ValueError):
            position_to_counter(0)


class TestEmpiricalAgreement:
    def test_longterm_00_bias_measurable_in_aggregate(self, config):
        """Aggregate (0,0)-digraph frequency over a long keystream should
        sit closer to the FM model than to uniform.  Pooling across all
        i (the (0,0) bias holds for i != 1, 255, with double strength at
        i = 1) gives enough samples at test scale."""
        from repro.rc4 import batch_keystream
        from repro.rc4.keygen import derive_keys

        keys = derive_keys(config, "fm-agg", 48)
        stream = batch_keystream(keys, 4096 + 1024, drop=0)[:, 1024:]
        first = stream[:, :-1].astype(np.int32)
        second = stream[:, 1:]
        pairs = (first << 8) | second
        n = pairs.size
        count_00 = int((pairs == 0).sum())
        expected_fm = n * 2.0**-16 * (1 + 2.0**-8)
        expected_uniform = n * 2.0**-16
        # The FM excess is tiny at this scale; assert we're within a sane
        # band rather than separating the models (power analysis says
        # separation needs 2^36 digraphs).
        sigma = np.sqrt(expected_uniform)
        assert abs(count_00 - expected_fm) < 6 * sigma
