"""Results warehouse: store semantics, sweeps, and crash-tolerant resume.

Covers the ISSUE-7 tentpole guarantees: concurrent-append safety of the
JSONL index, canonical-JSON round-trip bit-identity, fingerprint-keyed
dedup, corrupt-record skip-with-warning, query filters, blob sidecars,
and sweep orchestration — including the acceptance sweep (two
experiments, three-plus points, one leg fanned out through the fleet
with ``distributed=2``) and a real kill-mid-sweep subprocess resume.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import ExperimentResult, Session
from repro.analysis import metric_cell, sweep_table
from repro.config import ReproConfig
from repro.errors import SweepError, WarehouseError
from repro.utils.serialization import append_jsonl, canonical_json, iter_jsonl
from repro.warehouse import (
    RunStore,
    SweepSpec,
    plan_sweep,
    result_fingerprint,
    run_fingerprint,
    run_sweep,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _config(**overrides) -> ReproConfig:
    defaults = dict(seed=4321, scale=1.0, fleet_backoff_base=0.0)
    defaults.update(overrides)
    return ReproConfig(**defaults)


def _result(n: int = 1, *, seed: int = 4321, timing: float = 0.5,
            experiment: str = "dataset-single") -> ExperimentResult:
    """Synthetic result record — cheap fodder for store unit tests."""
    return ExperimentResult(
        experiment=experiment,
        params={"num_keys": n, "positions": 4},
        metrics={"total_counts": 4 * n, "kind": "single"},
        timings={"total": timing},
        provenance={"version": "0", "seed": seed, "scale": 1.0},
    )


# --------------------------------------------------------------------------
# append_jsonl / iter_jsonl primitives
# --------------------------------------------------------------------------


class TestJsonlPrimitives:
    def test_append_round_trips_bit_identically(self, tmp_path):
        path = tmp_path / "log.jsonl"
        records = [{"b": 2, "a": [1, "x"]}, {"z": None}, {"n": 2**40}]
        lines = [append_jsonl(path, r) for r in records]
        assert lines == [canonical_json(r) for r in records]
        read = list(iter_jsonl(path))
        assert [r for _, r in read] == [json.loads(line) for line in lines]
        # Re-serialising what was read reproduces the file bytes exactly.
        assert path.read_bytes() == "".join(
            canonical_json(r) + "\n" for _, r in read
        ).encode()

    def test_torn_trailing_line_is_isolated(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_jsonl(path, {"ok": 1})
        with open(path, "ab") as fh:
            fh.write(b'{"torn": tr')  # crashed writer, no newline
        append_jsonl(path, {"ok": 2})
        with pytest.warns(RuntimeWarning, match="corrupt"):
            records = [r for _, r in iter_jsonl(path)]
        assert records == [{"ok": 1}, {"ok": 2}]

    def test_corrupt_line_warns_and_skips(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_jsonl(path, {"ok": 1})
        path.write_text(path.read_text() + "not json\n" + '{"ok":2}\n')
        with pytest.warns(RuntimeWarning, match=r"log\.jsonl:2"):
            records = [r for _, r in iter_jsonl(path)]
        assert records == [{"ok": 1}, {"ok": 2}]


# --------------------------------------------------------------------------
# fingerprints
# --------------------------------------------------------------------------


class TestFingerprints:
    def test_covers_identity_not_execution(self):
        a = _result(256, timing=0.1)
        b = _result(256, timing=99.0)  # same run, different wall-clock
        assert result_fingerprint(a) == result_fingerprint(b)

    def test_distinguishes_params_seed_scale(self):
        base = _result(256)
        assert result_fingerprint(base) != result_fingerprint(_result(512))
        assert result_fingerprint(base) != result_fingerprint(
            _result(256, seed=5)
        )
        assert run_fingerprint(
            "dataset-single", {"num_keys": 256}, seed=1, scale=1.0
        ) != run_fingerprint(
            "dataset-single", {"num_keys": 256}, seed=1, scale=0.5
        )

    def test_matches_planned_runs(self):
        config = _config()
        plans = plan_sweep(
            [SweepSpec("dataset-single", grid={"num_keys": [256]},
                       base={"positions": 4})],
            config,
        )
        session = Session(config)
        result = session.run("dataset-single", **plans[0].params)
        assert result_fingerprint(result) == plans[0].fingerprint


# --------------------------------------------------------------------------
# RunStore
# --------------------------------------------------------------------------


class TestRunStore:
    def test_append_query_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        stored = store.append(_result(256), stored_at=100.0)
        reread = RunStore(tmp_path)
        assert len(reread) == 1
        run = reread.runs()[0]
        assert run.result == stored.result
        assert run.stored_at == 100.0
        # Bit-identity: the index line is the canonical JSON of the record.
        line = tmp_path.joinpath("runs.jsonl").read_text().strip()
        assert line == canonical_json(run.to_record())

    def test_fingerprint_dedup_is_noop(self, tmp_path):
        store = RunStore(tmp_path)
        first = store.append(_result(256, timing=0.1), stored_at=1.0)
        second = store.append(_result(256, timing=9.9), stored_at=2.0)
        assert second is first  # pre-existing run wins, stored_at stable
        assert len(store) == 1
        assert len(tmp_path.joinpath("runs.jsonl").read_text().splitlines()) == 1

    def test_concurrent_appends_all_land(self, tmp_path):
        store_path = tmp_path / "wh"
        num_threads, per_thread = 8, 12
        barrier = threading.Barrier(num_threads)
        errors: list[Exception] = []

        def appender(worker: int) -> None:
            # Each thread gets its own store instance: separate offsets,
            # shared file — the multi-process access pattern.
            store = RunStore(store_path)
            barrier.wait()
            try:
                for i in range(per_thread):
                    store.append(_result(1000 * worker + i))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=appender, args=(w,))
            for w in range(num_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        merged = RunStore(store_path)
        assert len(merged) == num_threads * per_thread
        assert merged.corrupt_records == 0
        keys = {run.result.params["num_keys"] for run in merged.runs()}
        assert keys == {
            1000 * w + i for w in range(num_threads) for i in range(per_thread)
        }

    def test_corrupt_record_skipped_with_warning_once(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(_result(256))
        with open(store.index_path, "a") as fh:
            fh.write("{broken\n")
        store.append(_result(512))
        reread = RunStore(tmp_path)
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert len(reread) == 2
        assert reread.corrupt_records == 1
        # The corrupt line is consumed, not re-warned on every refresh.
        assert len(reread) == 2
        assert reread.corrupt_records == 1

    def test_tampered_record_is_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        run = store.append(_result(256))
        record = run.to_record()
        # Forged identity: params no longer hash to the claimed fingerprint.
        record["result"]["params"]["num_keys"] = 999
        append_jsonl(store.index_path, record)
        reread = RunStore(tmp_path)
        with pytest.warns(RuntimeWarning, match="does not match"):
            assert len(reread) == 1
        # Same-fingerprint duplicates (e.g. a racing appender) resolve by
        # first-record-wins, so the original metrics are authoritative.
        duplicate = run.to_record()
        duplicate["result"]["metrics"]["total_counts"] = 9999
        append_jsonl(store.index_path, duplicate)
        with pytest.warns(RuntimeWarning):  # the forged line, re-read
            runs = RunStore(tmp_path).runs()
        assert runs[0].result.metrics["total_counts"] == run.result.metrics[
            "total_counts"
        ]

    def test_query_filters(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(_result(256), stored_at=100.0)
        store.append(_result(512), stored_at=200.0)
        store.append(
            _result(256, experiment="dataset-consec"), stored_at=300.0
        )
        store.append(_result(256, seed=9), stored_at=400.0)
        assert len(store.query(experiment="dataset-single")) == 3
        assert len(store.query(params={"num_keys": 256})) == 3
        assert len(
            store.query(experiment="dataset-single", params={"num_keys": 256})
        ) == 2
        assert len(store.query(provenance={"seed": 9})) == 1
        assert [
            r.stored_at for r in store.query(since=150.0, until=350.0)
        ] == [200.0, 300.0]
        # ISO strings work too (naive == UTC); bounds are inclusive.
        assert len(store.query(since="1970-01-01T00:03:20")) == 3
        assert len(store.query(since="1970-01-01T00:05:50")) == 1
        assert store.experiments() == ["dataset-consec", "dataset-single"]

    def test_query_rejects_bad_timestamp(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(WarehouseError, match="ISO-8601"):
            store.query(since="not-a-date")

    def test_blob_round_trip_and_ownership(self, tmp_path):
        store = RunStore(tmp_path)
        arrays = {"counts": np.arange(12, dtype=np.int64).reshape(3, 4)}
        run = store.append(
            _result(256), blobs={"counters": (arrays, {"note": "raw"})}
        )
        assert run.blobs == ("counters",)
        loaded, meta = store.load_blob(run, "counters")
        np.testing.assert_array_equal(loaded["counts"], arrays["counts"])
        assert meta["note"] == "raw"
        assert meta["run_fingerprint"] == run.fingerprint
        # A blob copied under another run's directory is rejected: its
        # embedded fingerprint does not match the claimed owner.
        other_fp = result_fingerprint(_result(512))
        stray = store.blob_path(other_fp, "counters")
        stray.parent.mkdir(parents=True)
        stray.write_bytes(store.blob_path(run.fingerprint, "counters").read_bytes())
        with pytest.raises(WarehouseError, match="belong"):
            store.load_blob(other_fp, "counters")
        with pytest.raises(WarehouseError, match="blob name"):
            store.append(_result(512), blobs={"../evil": (arrays, {})})


# --------------------------------------------------------------------------
# sweep planning
# --------------------------------------------------------------------------


class TestSweepPlanning:
    def test_cartesian_expansion_is_deterministic(self):
        spec = SweepSpec(
            "dataset-single",
            grid={"num_keys": [512, 256], "positions": [2, 4]},
        )
        points = spec.points()
        assert points == [
            {"num_keys": 512, "positions": 2},
            {"num_keys": 512, "positions": 4},
            {"num_keys": 256, "positions": 2},
            {"num_keys": 256, "positions": 4},
        ]

    def test_declaration_errors(self):
        config = _config()
        with pytest.raises(SweepError, match="no parameter"):
            plan_sweep(
                [SweepSpec("dataset-single", grid={"bogus": [1]})], config
            )
        with pytest.raises(SweepError, match="empty"):
            plan_sweep(
                [SweepSpec("dataset-single", grid={"num_keys": []})], config
            )
        with pytest.raises(SweepError, match="both grid and base"):
            plan_sweep(
                [SweepSpec("dataset-single", grid={"num_keys": [1]},
                           base={"num_keys": 2})],
                config,
            )
        with pytest.raises(SweepError, match="duplicate"):
            plan_sweep(
                [SweepSpec("dataset-single", grid={"num_keys": [256, 256]})],
                config,
            )
        with pytest.raises(SweepError, match="zero runs"):
            plan_sweep([], config)

    def test_grid_values_coerced_like_cli(self):
        plans = plan_sweep(
            [SweepSpec("dataset-single", grid={"num_keys": ["256", "512"]},
                       base={"positions": "4"})],
            _config(),
        )
        assert [p.params["num_keys"] for p in plans] == [256, 512]
        assert all(p.params["positions"] == 4 for p in plans)


# --------------------------------------------------------------------------
# sweep execution + resume
# --------------------------------------------------------------------------


class TestSweepExecution:
    def test_run_skip_and_failure_statuses(self, tmp_path):
        config = _config()
        session = Session(config)
        store = RunStore(tmp_path)
        specs = [
            SweepSpec("dataset-single", grid={"num_keys": [256, 512]},
                      base={"positions": 2}),
            # distributed=N without capture=batched is a *run-time*
            # ExperimentParamError (plan-time validation only checks
            # names/kinds): recorded as failed, sweep continues.
            SweepSpec("attack-tkip", base={
                "num_tsc": 2, "keys_per_tsc": 256,
                "packets_per_tsc": 1 << 10, "max_candidates": 64,
                "distributed": 2,
            }),
        ]
        statuses: list[tuple[str, str]] = []
        report = run_sweep(
            session, specs, store,
            progress=lambda plan, status: statuses.append(
                (plan.experiment, status)
            ),
        )
        assert report.counts() == {"ran": 2, "skipped": 0, "failed": 1}
        assert report.failed[0].plan.experiment == "attack-tkip"
        assert report.failed[0].error
        assert len(store) == 2  # failures are not stored
        assert statuses == [
            ("dataset-single", "ran"),
            ("dataset-single", "ran"),
            ("attack-tkip", "failed"),
        ]
        # Resume: stored runs skip without executing; the failed point
        # retries (its fingerprint never landed in the store).
        report2 = run_sweep(session, specs, store)
        assert report2.counts() == {"ran": 0, "skipped": 2, "failed": 1}
        for outcome in report2.skipped:
            assert outcome.run is store.get(outcome.plan.fingerprint)

    def test_session_store_auto_append_and_sweep(self, tmp_path):
        session = Session(_config(), store=tmp_path / "wh")
        result = session.run("dataset-single", num_keys=256, positions=2)
        assert result_fingerprint(result) in session.store
        report = session.sweep(
            [SweepSpec("dataset-single", grid={"num_keys": [256, 512]},
                       base={"positions": 2})]
        )
        # The session.run() result above is one of the sweep's points.
        assert report.counts() == {"ran": 1, "skipped": 1, "failed": 0}
        assert len(session.store) == 2


def _stored_lines(store: RunStore) -> dict[str, dict]:
    by_fp = {}
    for _, payload in iter_jsonl(store.index_path):
        by_fp.setdefault(payload["fingerprint"], payload)
    return by_fp


ACCEPTANCE_GRID = ["4096", "16384", "65536"]


class TestAcceptanceSweep:
    """ISSUE-7 acceptance: >= 2 experiments x >= 3 points, a fleet leg
    with distributed=2, full persistence, and bit-identical report cells."""

    def test_sweep_two_experiments_three_points_with_fleet_leg(self, tmp_path):
        config = _config(scale=0.25)
        session = Session(config)
        store = RunStore(tmp_path / "wh")
        specs = [
            SweepSpec(
                "dataset-single",
                grid={"num_keys": [int(v) for v in ACCEPTANCE_GRID]},
                base={"positions": 4},
            ),
            SweepSpec(
                "dataset-consec",
                grid={"num_keys": [int(v) for v in ACCEPTANCE_GRID]},
                base={"positions": 4},
            ),
        ]
        report = run_sweep(session, specs, store)
        assert report.counts() == {"ran": 6, "skipped": 0, "failed": 0}
        assert len(store) == 6

        # Fleet leg: the same warehouse absorbs a distributed=2 run of a
        # second *attack* experiment fanned out through repro.fleet.
        https_params = dict(
            cookie_len=2, num_candidates=1 << 13, max_gap=16,
            num_requests=1 << 14, capture="batched",
        )
        local = session.run("attack-https", **https_params)
        distributed = session.run(
            "attack-https", **https_params, distributed=2,
            job_dir=str(tmp_path / "job"),
        )
        # Bit-exact fleet merge: identical recovery on identical counters.
        assert distributed.metrics["rank"] == local.metrics["rank"]
        assert distributed.metrics["cookie"] == local.metrics["cookie"]
        store.append(distributed)
        assert len(store) == 7

        # Every stored cell in the regenerated comparison table is
        # bit-identical to the stored record's canonical JSON.
        runs = store.query(experiment="dataset-single")
        table = sweep_table(runs, ["total_counts", "kind"])
        raw = _stored_lines(store)
        for run in runs:
            payload = raw[run.fingerprint]
            for metric in ("total_counts", "kind"):
                cell = metric_cell(run.result.metrics[metric])
                stored_value = payload["result"]["metrics"][metric]
                assert cell == canonical_json(stored_value)
                assert cell in table

    def test_kill_mid_sweep_then_resume_skips_stored_runs(self, tmp_path):
        """SIGKILL a real sweep subprocess mid-flight; the resumed sweep
        must skip every stored fingerprint without recomputation."""
        store_dir = tmp_path / "wh"
        argv = [
            sys.executable, "-m", "repro", "--seed", "4321", "sweep",
            "dataset-single", "--store", str(store_dir),
            # Ascending cost: the first point lands fast, the 2^21-key
            # points leave a wide window to kill the process in.
            "--grid", "num_keys=4096,1048576,2097152",
            "--param", "positions=4", "--quiet",
        ]
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.Popen(
            argv, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
        index = store_dir / "runs.jsonl"
        deadline = time.monotonic() + 120
        try:
            while time.monotonic() < deadline:
                if index.exists() and index.read_bytes().count(b"\n") >= 1:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.02)
            else:  # pragma: no cover - hung subprocess
                pytest.fail("sweep subprocess never stored a run")
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=60)
        killed_after = RunStore(store_dir)
        stored_before = {
            run.fingerprint: run.stored_at for run in killed_after.runs()
        }
        assert 1 <= len(stored_before) < 3, "kill window missed"
        index_before = index.read_bytes()
        complete_before = index_before[: index_before.rfind(b"\n") + 1]

        # Resume in-process (same seed/scale => same fingerprints).
        session = Session(_config())
        store = RunStore(store_dir)
        report = run_sweep(
            session,
            [SweepSpec("dataset-single",
                       grid={"num_keys": [4096, 1048576, 2097152]},
                       base={"positions": 4})],
            store,
        )
        counts = report.counts()
        assert counts["failed"] == 0
        assert counts["skipped"] == len(stored_before)
        assert counts["ran"] == 3 - len(stored_before)
        # No recomputation: surviving records are untouched, byte-for-byte.
        assert index.read_bytes().startswith(complete_before)
        final = RunStore(store_dir)
        assert len(final) == 3
        for run in final.runs():
            if run.fingerprint in stored_before:
                assert run.stored_at == stored_before[run.fingerprint]
