"""Bit-exactness of the fused statistics engine.

The engine has five layers that must all be byte-identical to the naive
reference: the fused counting kernels (numpy grouped-bincount path), the
optional compiled backend (``repro.rc4._native``) with its scalar and
interleaved PRGA kernels, the runtime-dispatched AVX2 wide kernels
(``REPRO_NATIVE_SIMD``), the POSIX-threaded native fan-out (private
per-thread counters merged in C), and the shared-memory shard reduction
in ``generate_dataset``.  Every test here counts the same keystreams
with :func:`repro.rc4.reference.rc4_keystream` Python loops (or the
single-threaded kernel output) and asserts cell-for-cell equality.
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.datasets import (
    DatasetSpec,
    consec_digraph_counts,
    equality_counts,
    generate_dataset,
    longterm_digraph_counts,
    pair_counts,
    single_byte_counts,
)
from repro.rc4 import _native
from repro.rc4.batch import BatchRC4, batch_keystream
from repro.rc4.reference import rc4_keystream


@pytest.fixture(params=["numpy", "native"])
def backend(request, monkeypatch):
    """Run the test body under each engine backend.

    ``numpy`` forces the pure-numpy fallback by patching
    ``_native.available``; ``native`` requires the compiled backend (and
    skips where no C compiler exists).
    """
    if request.param == "native":
        if not _native.available():
            pytest.skip("native backend unavailable (no C compiler?)")
    else:
        monkeypatch.setattr(_native, "available", lambda: False)
    return request.param


def _keys(rng, n=16):
    return rng.integers(0, 256, size=(n, 16), dtype=np.uint8)


class TestKernelEquivalence:
    """Fused kernels vs. per-key Python reference counting."""

    def test_single_byte(self, rng, backend):
        # 70 positions crosses the fused SINGLE_GROUP window boundary.
        keys = _keys(rng)
        positions = 70
        counts = single_byte_counts(keys, positions)
        expected = np.zeros((positions, 256), dtype=np.int64)
        for key in keys:
            stream = rc4_keystream(bytes(key), positions)
            for r, z in enumerate(stream):
                expected[r, z] += 1
        assert np.array_equal(counts, expected)

    def test_consec_digraphs(self, rng, backend):
        # 19 positions crosses the fused DIGRAPH_GROUP window boundary.
        keys = _keys(rng)
        positions = 19
        counts = consec_digraph_counts(keys, positions)
        expected = np.zeros((positions, 256, 256), dtype=np.int64)
        for key in keys:
            stream = rc4_keystream(bytes(key), positions + 1)
            for r in range(positions):
                expected[r, stream[r], stream[r + 1]] += 1
        assert np.array_equal(counts, expected)

    def test_pairs(self, rng, backend):
        keys = _keys(rng)
        pairs = [(1, 3), (2, 16), (5, 2)]
        counts = pair_counts(keys, pairs)
        expected = np.zeros((len(pairs), 256, 256), dtype=np.int64)
        for key in keys:
            stream = rc4_keystream(bytes(key), 16)
            for idx, (a, b) in enumerate(pairs):
                expected[idx, stream[a - 1], stream[b - 1]] += 1
        assert np.array_equal(counts, expected)

    def test_equality(self, rng, backend):
        keys = _keys(rng, 24)
        pairs = [(1, 2), (2, 4)]
        counts = equality_counts(keys, pairs)
        for idx, (a, b) in enumerate(pairs):
            manual = sum(
                1
                for key in keys
                if rc4_keystream(bytes(key), 4)[a - 1]
                == rc4_keystream(bytes(key), 4)[b - 1]
            )
            assert counts[idx, 0] == manual
            assert counts[idx, 1] == len(keys)

    @pytest.mark.parametrize(
        "drop,gap", [(1023, 0), (1023, 1), (100, 1), (0, 3), (255, 0), (64, 11)]
    )
    def test_longterm_variants(self, rng, backend, drop, gap):
        keys = _keys(rng, 4)
        stream_len = 40
        counts = longterm_digraph_counts(keys, stream_len, drop=drop, gap=gap)
        expected = np.zeros((256, 256, 256), dtype=np.int64)
        for key in keys:
            stream = rc4_keystream(bytes(key), drop + stream_len + 1 + gap)[drop:]
            for r in range(stream_len):
                i = (drop + r + 1) % 256
                expected[i, stream[r], stream[r + 1 + gap]] += 1
        assert np.array_equal(counts, expected)

    def test_accumulates_into_out(self, rng, backend):
        keys = _keys(rng, 8)
        out = consec_digraph_counts(keys, 3)
        consec_digraph_counts(keys, 3, out=out)
        assert out.sum() == 2 * 8 * 3

    def test_accumulates_into_noncontiguous_out(self, rng, backend):
        """Counts must land in the caller's buffer even when it is a
        strided view (a flat reshape would silently count into a copy)."""
        keys = _keys(rng, 8)
        positions = 4
        big = np.zeros((positions, 512), dtype=np.int64)
        view = big[:, :256]
        assert not view.flags.c_contiguous
        single_byte_counts(keys, positions, out=view)
        assert view.sum() == 8 * positions
        assert np.array_equal(view, single_byte_counts(keys, positions))

    def test_batch_keystream_rejects_negative_drop(self, rng, backend):
        keys = _keys(rng, 2)
        with pytest.raises(ValueError):
            batch_keystream(keys, 8, drop=-1)


class TestBackendParity:
    """Native and numpy paths agree exactly on larger batches."""

    @pytest.fixture(autouse=True)
    def _require_native(self):
        if not _native.available():
            pytest.skip("native backend unavailable (no C compiler?)")

    def test_batch_keystream_parity(self, rng, monkeypatch):
        keys = rng.integers(0, 256, size=(300, 16), dtype=np.uint8)
        native = batch_keystream(keys, 80, drop=1023)
        monkeypatch.setattr(_native, "available", lambda: False)
        fallback = batch_keystream(keys, 80, drop=1023)
        assert np.array_equal(native, fallback)

    @pytest.mark.parametrize(
        "kernel",
        [
            lambda keys: single_byte_counts(keys, 130),
            lambda keys: consec_digraph_counts(keys, 17),
            lambda keys: longterm_digraph_counts(keys, 64, drop=1023, gap=1),
        ],
        ids=["single", "consec", "longterm"],
    )
    def test_counting_parity(self, rng, monkeypatch, kernel):
        keys = rng.integers(0, 256, size=(512, 16), dtype=np.uint8)
        native = kernel(keys)
        monkeypatch.setattr(_native, "available", lambda: False)
        fallback = kernel(keys)
        assert np.array_equal(native, fallback)


#: Thread counts every dataset kind is checked under: serial, the
#: smallest genuinely-parallel count, and whatever this machine defaults
#: to.  Deduplicated so single-core CI still runs {1, 2}.
THREAD_COUNTS = sorted({1, 2, os.cpu_count() or 1})

#: Every dataset kind with a small spec, shared by the thread and
#: interleave sweeps below.
ALL_KIND_SPECS = [
    DatasetSpec(kind="single", num_keys=900, positions=6, label="mt-s"),
    DatasetSpec(kind="consec", num_keys=900, positions=4, label="mt-c"),
    DatasetSpec(kind="pairs", num_keys=900, pairs=((1, 3), (2, 5)), label="mt-p"),
    DatasetSpec(kind="equality", num_keys=900, pairs=((1, 2),), label="mt-e"),
    DatasetSpec(
        kind="longterm",
        num_keys=600,
        stream_len=16,
        drop=77,
        gap=1,
        label="mt-lt",
    ),
]
ALL_KIND_IDS = [spec.kind for spec in ALL_KIND_SPECS]


class TestThreadedNativeEquivalence:
    """Threaded and interleaved native kernels == serial scalar kernels.

    This is the acceptance gate for the multi-core native engine: for
    every dataset kind the counters must be cell-for-cell identical
    across ``threads in {1, 2, cpu_count()}`` and across the interleaved
    vs scalar PRGA kernels.
    """

    @pytest.fixture(autouse=True)
    def _require_native(self):
        if not _native.available():
            pytest.skip("native backend unavailable (no C compiler?)")

    @pytest.mark.parametrize("spec", ALL_KIND_SPECS, ids=ALL_KIND_IDS)
    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    def test_dataset_identical_across_thread_counts(
        self, config, spec, threads
    ):
        reference = generate_dataset(
            spec, config, processes=1, worker_chunk=128, threads=1
        )
        threaded = generate_dataset(
            spec, config, processes=1, worker_chunk=128, threads=threads
        )
        assert np.array_equal(reference, threaded)

    @pytest.mark.parametrize("spec", ALL_KIND_SPECS, ids=ALL_KIND_IDS)
    def test_dataset_identical_across_prga_kernels(
        self, config, spec, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NATIVE_INTERLEAVE", "0")
        scalar = generate_dataset(spec, config, processes=1, worker_chunk=128)
        monkeypatch.setenv("REPRO_NATIVE_INTERLEAVE", "1")
        interleaved = generate_dataset(
            spec, config, processes=1, worker_chunk=128
        )
        assert np.array_equal(scalar, interleaved)

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("interleave", [False, True], ids=["scalar", "il"])
    @pytest.mark.parametrize("simd", [False, True], ids=["nosimd", "simd"])
    def test_kernel_level_matrix(self, rng, threads, interleave, simd):
        """Direct kernel calls: every (threads, interleave, simd) cell
        agrees with the serial scalar baseline, including key counts that
        are not multiples of the interleave width, the 32-lane SIMD group
        width, or the thread count."""
        keys = rng.integers(0, 256, size=(103, 16), dtype=np.uint8)

        base = np.zeros((7, 256), dtype=np.int64)
        _native.count_single(
            keys, 7, base, threads=1, interleave=False, simd=False
        )
        got = np.zeros_like(base)
        _native.count_single(
            keys, 7, got, threads=threads, interleave=interleave, simd=simd
        )
        assert np.array_equal(base, got)

        base = np.zeros((5, 256, 256), dtype=np.int64)
        _native.count_digraph(
            keys, 5, base, threads=1, interleave=False, simd=False
        )
        got = np.zeros_like(base)
        _native.count_digraph(
            keys, 5, got, threads=threads, interleave=interleave, simd=simd
        )
        assert np.array_equal(base, got)

        base = np.zeros((256, 256, 256), dtype=np.int64)
        _native.count_longterm(
            keys, 24, 100, 1, base, threads=1, interleave=False, simd=False
        )
        got = np.zeros_like(base)
        _native.count_longterm(
            keys, 24, 100, 1, got,
            threads=threads, interleave=interleave, simd=simd,
        )
        assert np.array_equal(base, got)

        base = _native.batch_keystream(
            keys, 40, drop=13, threads=1, interleave=False, simd=False
        )
        got = _native.batch_keystream(
            keys, 40, drop=13, threads=threads, interleave=interleave,
            simd=simd,
        )
        assert np.array_equal(base, got)

    def test_threads_env_default_used_by_kernels(self, rng, monkeypatch):
        """REPRO_NATIVE_THREADS steers the default without changing counts."""
        keys = rng.integers(0, 256, size=(64, 16), dtype=np.uint8)
        base = single_byte_counts(keys, 4, threads=1)
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "2")
        env_default = single_byte_counts(keys, 4)
        assert np.array_equal(base, env_default)

    @pytest.mark.parametrize("spec", ALL_KIND_SPECS, ids=ALL_KIND_IDS)
    @pytest.mark.parametrize("threads", [1, 2])
    @pytest.mark.parametrize("interleave", ["0", "1"], ids=["il0", "il1"])
    @pytest.mark.parametrize("simd", [False, True], ids=["simd0", "simd1"])
    def test_dataset_forced_dispatch_matrix(
        self, config, monkeypatch, spec, threads, interleave, simd
    ):
        """Full datasets under every forced dispatch combination
        (simd x interleave x threads) match the serial scalar baseline
        cell-for-cell for all dataset kinds."""
        monkeypatch.setenv("REPRO_NATIVE_INTERLEAVE", "0")
        baseline_config = dataclasses.replace(config, native_simd=False)
        reference = generate_dataset(
            spec, baseline_config, processes=1, worker_chunk=128, threads=1
        )
        monkeypatch.setenv("REPRO_NATIVE_INTERLEAVE", interleave)
        forced_config = dataclasses.replace(config, native_simd=simd)
        forced = generate_dataset(
            spec, forced_config, processes=1, worker_chunk=128,
            threads=threads,
        )
        assert np.array_equal(reference, forced)

    def test_simd_env_default_used_by_kernels(self, rng, monkeypatch):
        """REPRO_NATIVE_SIMD steers the per-call default (simd=None)
        without changing a single counter cell."""
        keys = rng.integers(0, 256, size=(200, 16), dtype=np.uint8)
        base = np.zeros((6, 256), dtype=np.int64)
        _native.count_single(keys, 6, base, threads=1, simd=False)
        for env_value in ("0", "1"):
            monkeypatch.setenv("REPRO_NATIVE_SIMD", env_value)
            got = np.zeros_like(base)
            _native.count_single(keys, 6, got, threads=1)
            assert np.array_equal(base, got), f"REPRO_NATIVE_SIMD={env_value}"


class TestSharedMemoryReduction:
    """generate_dataset(processes=2) over shared memory == inline."""

    @pytest.mark.parametrize(
        "spec",
        [
            DatasetSpec(kind="single", num_keys=1500, positions=6, label="shm-s"),
            DatasetSpec(kind="consec", num_keys=1500, positions=4, label="shm-c"),
            DatasetSpec(
                kind="pairs", num_keys=1500, pairs=((1, 3), (2, 5)), label="shm-p"
            ),
            DatasetSpec(
                kind="equality", num_keys=1500, pairs=((1, 2),), label="shm-e"
            ),
            DatasetSpec(
                kind="longterm",
                num_keys=1200,
                stream_len=16,
                drop=77,
                gap=0,
                label="shm-lt",
            ),
            DatasetSpec(
                kind="longterm",
                num_keys=1200,
                stream_len=16,
                drop=100,
                gap=1,
                label="shm-lt-gap",
            ),
        ],
        ids=["single", "consec", "pairs", "equality", "longterm", "longterm-gap"],
    )
    def test_pooled_identical_to_inline(self, config, spec):
        inline = generate_dataset(spec, config, processes=1, worker_chunk=256)
        pooled = generate_dataset(spec, config, processes=2, worker_chunk=256)
        assert np.array_equal(inline, pooled)

    def test_worker_chunk_participates_in_derivation(self, config):
        # Same num_keys, different chunking => different shard labels =>
        # statistically independent (but internally consistent) datasets.
        spec = DatasetSpec(kind="single", num_keys=600, positions=2, label="wc")
        a = generate_dataset(spec, config, processes=1, worker_chunk=200)
        b = generate_dataset(spec, config, processes=1, worker_chunk=300)
        assert a.sum() == b.sum() == 600 * 2
        assert not np.array_equal(a, b)

    def test_rejects_bad_worker_chunk(self, config):
        from repro.errors import DatasetError

        spec = DatasetSpec(kind="single", num_keys=10, positions=1)
        with pytest.raises(DatasetError):
            generate_dataset(spec, config, worker_chunk=0)


class TestStreamBlocks:
    """The reused-buffer window generator behind the numpy kernels."""

    def test_windows_reassemble_stream(self, rng):
        keys = _keys(rng, 8)
        ref = BatchRC4(keys).keystream_rows(100)
        got = np.zeros_like(ref)
        seen = np.zeros(100, dtype=np.int64)
        for start, view in BatchRC4(keys).stream_blocks(100, block=7, overlap=2):
            got[start : start + view.shape[0]] = view
            seen[start : start + view.shape[0]] += 1
        assert np.array_equal(ref, got)
        # every row produced, interior rows covered twice at window seams
        assert seen.min() >= 1

    def test_no_window_when_rows_within_overlap(self, rng):
        keys = _keys(rng, 2)
        assert list(BatchRC4(keys).stream_blocks(2, block=8, overlap=2)) == []

    def test_rejects_block_smaller_than_overlap(self, rng):
        keys = _keys(rng, 2)
        with pytest.raises(ValueError):
            list(BatchRC4(keys).stream_blocks(10, block=2, overlap=3))
