"""Bit-exactness of the fused statistics engine.

The engine has three layers that must all be byte-identical to the naive
reference: the fused counting kernels (numpy grouped-bincount path), the
optional compiled backend (``repro.rc4._native``), and the shared-memory
shard reduction in ``generate_dataset``.  Every test here counts the same
keystreams with :func:`repro.rc4.reference.rc4_keystream` Python loops
and asserts cell-for-cell equality.
"""

import numpy as np
import pytest

from repro.datasets import (
    DatasetSpec,
    consec_digraph_counts,
    equality_counts,
    generate_dataset,
    longterm_digraph_counts,
    pair_counts,
    single_byte_counts,
)
from repro.rc4 import _native
from repro.rc4.batch import BatchRC4, batch_keystream
from repro.rc4.reference import rc4_keystream


@pytest.fixture(params=["numpy", "native"])
def backend(request, monkeypatch):
    """Run the test body under each engine backend.

    ``numpy`` forces the pure-numpy fallback by patching
    ``_native.available``; ``native`` requires the compiled backend (and
    skips where no C compiler exists).
    """
    if request.param == "native":
        if not _native.available():
            pytest.skip("native backend unavailable (no C compiler?)")
    else:
        monkeypatch.setattr(_native, "available", lambda: False)
    return request.param


def _keys(rng, n=16):
    return rng.integers(0, 256, size=(n, 16), dtype=np.uint8)


class TestKernelEquivalence:
    """Fused kernels vs. per-key Python reference counting."""

    def test_single_byte(self, rng, backend):
        # 70 positions crosses the fused SINGLE_GROUP window boundary.
        keys = _keys(rng)
        positions = 70
        counts = single_byte_counts(keys, positions)
        expected = np.zeros((positions, 256), dtype=np.int64)
        for key in keys:
            stream = rc4_keystream(bytes(key), positions)
            for r, z in enumerate(stream):
                expected[r, z] += 1
        assert np.array_equal(counts, expected)

    def test_consec_digraphs(self, rng, backend):
        # 19 positions crosses the fused DIGRAPH_GROUP window boundary.
        keys = _keys(rng)
        positions = 19
        counts = consec_digraph_counts(keys, positions)
        expected = np.zeros((positions, 256, 256), dtype=np.int64)
        for key in keys:
            stream = rc4_keystream(bytes(key), positions + 1)
            for r in range(positions):
                expected[r, stream[r], stream[r + 1]] += 1
        assert np.array_equal(counts, expected)

    def test_pairs(self, rng, backend):
        keys = _keys(rng)
        pairs = [(1, 3), (2, 16), (5, 2)]
        counts = pair_counts(keys, pairs)
        expected = np.zeros((len(pairs), 256, 256), dtype=np.int64)
        for key in keys:
            stream = rc4_keystream(bytes(key), 16)
            for idx, (a, b) in enumerate(pairs):
                expected[idx, stream[a - 1], stream[b - 1]] += 1
        assert np.array_equal(counts, expected)

    def test_equality(self, rng, backend):
        keys = _keys(rng, 24)
        pairs = [(1, 2), (2, 4)]
        counts = equality_counts(keys, pairs)
        for idx, (a, b) in enumerate(pairs):
            manual = sum(
                1
                for key in keys
                if rc4_keystream(bytes(key), 4)[a - 1]
                == rc4_keystream(bytes(key), 4)[b - 1]
            )
            assert counts[idx, 0] == manual
            assert counts[idx, 1] == len(keys)

    @pytest.mark.parametrize(
        "drop,gap", [(1023, 0), (1023, 1), (100, 1), (0, 3), (255, 0), (64, 11)]
    )
    def test_longterm_variants(self, rng, backend, drop, gap):
        keys = _keys(rng, 4)
        stream_len = 40
        counts = longterm_digraph_counts(keys, stream_len, drop=drop, gap=gap)
        expected = np.zeros((256, 256, 256), dtype=np.int64)
        for key in keys:
            stream = rc4_keystream(bytes(key), drop + stream_len + 1 + gap)[drop:]
            for r in range(stream_len):
                i = (drop + r + 1) % 256
                expected[i, stream[r], stream[r + 1 + gap]] += 1
        assert np.array_equal(counts, expected)

    def test_accumulates_into_out(self, rng, backend):
        keys = _keys(rng, 8)
        out = consec_digraph_counts(keys, 3)
        consec_digraph_counts(keys, 3, out=out)
        assert out.sum() == 2 * 8 * 3

    def test_accumulates_into_noncontiguous_out(self, rng, backend):
        """Counts must land in the caller's buffer even when it is a
        strided view (a flat reshape would silently count into a copy)."""
        keys = _keys(rng, 8)
        positions = 4
        big = np.zeros((positions, 512), dtype=np.int64)
        view = big[:, :256]
        assert not view.flags.c_contiguous
        single_byte_counts(keys, positions, out=view)
        assert view.sum() == 8 * positions
        assert np.array_equal(view, single_byte_counts(keys, positions))

    def test_batch_keystream_rejects_negative_drop(self, rng, backend):
        keys = _keys(rng, 2)
        with pytest.raises(ValueError):
            batch_keystream(keys, 8, drop=-1)


class TestBackendParity:
    """Native and numpy paths agree exactly on larger batches."""

    @pytest.fixture(autouse=True)
    def _require_native(self):
        if not _native.available():
            pytest.skip("native backend unavailable (no C compiler?)")

    def test_batch_keystream_parity(self, rng, monkeypatch):
        keys = rng.integers(0, 256, size=(300, 16), dtype=np.uint8)
        native = batch_keystream(keys, 80, drop=1023)
        monkeypatch.setattr(_native, "available", lambda: False)
        fallback = batch_keystream(keys, 80, drop=1023)
        assert np.array_equal(native, fallback)

    @pytest.mark.parametrize(
        "kernel",
        [
            lambda keys: single_byte_counts(keys, 130),
            lambda keys: consec_digraph_counts(keys, 17),
            lambda keys: longterm_digraph_counts(keys, 64, drop=1023, gap=1),
        ],
        ids=["single", "consec", "longterm"],
    )
    def test_counting_parity(self, rng, monkeypatch, kernel):
        keys = rng.integers(0, 256, size=(512, 16), dtype=np.uint8)
        native = kernel(keys)
        monkeypatch.setattr(_native, "available", lambda: False)
        fallback = kernel(keys)
        assert np.array_equal(native, fallback)


class TestSharedMemoryReduction:
    """generate_dataset(processes=2) over shared memory == inline."""

    @pytest.mark.parametrize(
        "spec",
        [
            DatasetSpec(kind="single", num_keys=1500, positions=6, label="shm-s"),
            DatasetSpec(kind="consec", num_keys=1500, positions=4, label="shm-c"),
            DatasetSpec(
                kind="pairs", num_keys=1500, pairs=((1, 3), (2, 5)), label="shm-p"
            ),
            DatasetSpec(
                kind="equality", num_keys=1500, pairs=((1, 2),), label="shm-e"
            ),
            DatasetSpec(
                kind="longterm",
                num_keys=1200,
                stream_len=16,
                drop=77,
                gap=0,
                label="shm-lt",
            ),
            DatasetSpec(
                kind="longterm",
                num_keys=1200,
                stream_len=16,
                drop=100,
                gap=1,
                label="shm-lt-gap",
            ),
        ],
        ids=["single", "consec", "pairs", "equality", "longterm", "longterm-gap"],
    )
    def test_pooled_identical_to_inline(self, config, spec):
        inline = generate_dataset(spec, config, processes=1, worker_chunk=256)
        pooled = generate_dataset(spec, config, processes=2, worker_chunk=256)
        assert np.array_equal(inline, pooled)

    def test_worker_chunk_participates_in_derivation(self, config):
        # Same num_keys, different chunking => different shard labels =>
        # statistically independent (but internally consistent) datasets.
        spec = DatasetSpec(kind="single", num_keys=600, positions=2, label="wc")
        a = generate_dataset(spec, config, processes=1, worker_chunk=200)
        b = generate_dataset(spec, config, processes=1, worker_chunk=300)
        assert a.sum() == b.sum() == 600 * 2
        assert not np.array_equal(a, b)

    def test_rejects_bad_worker_chunk(self, config):
        from repro.errors import DatasetError

        spec = DatasetSpec(kind="single", num_keys=10, positions=1)
        with pytest.raises(DatasetError):
            generate_dataset(spec, config, worker_chunk=0)


class TestStreamBlocks:
    """The reused-buffer window generator behind the numpy kernels."""

    def test_windows_reassemble_stream(self, rng):
        keys = _keys(rng, 8)
        ref = BatchRC4(keys).keystream_rows(100)
        got = np.zeros_like(ref)
        seen = np.zeros(100, dtype=np.int64)
        for start, view in BatchRC4(keys).stream_blocks(100, block=7, overlap=2):
            got[start : start + view.shape[0]] = view
            seen[start : start + view.shape[0]] += 1
        assert np.array_equal(ref, got)
        # every row produced, interior rows covered twice at window seams
        assert seen.min() >= 1

    def test_no_window_when_rows_within_overlap(self, rng):
        keys = _keys(rng, 2)
        assert list(BatchRC4(keys).stream_blocks(2, block=8, overlap=2)) == []

    def test_rejects_block_smaller_than_overlap(self, rng):
        keys = _keys(rng, 2)
        with pytest.raises(ValueError):
            list(BatchRC4(keys).stream_blocks(10, block=2, overlap=3))
