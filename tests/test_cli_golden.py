"""Golden CLI contract for the scenario-matrix registry entries.

For each new experiment, ``run <name> --json -`` must emit a record that
round-trips through ``canonical_json`` bit-identically and carries every
declared parameter — the machine-readable contract scripts rely on.
"""

import json

import pytest

from repro.api import ExperimentResult, get_experiment
from repro.utils.serialization import canonical_json
from repro.__main__ import main
from test_statistical_fidelity import assert_within_ci

#: (experiment, CLI --param overrides) — tiny-scale runs of every
#: scenario-matrix entry, including a non-default browser layout.
GOLDEN_RUNS = [
    ("attack-michael", {"num_harvest": "6", "forge_payload_len": "96"}),
    ("bias-sweep", {"num_keys": "4096", "end": "8"}),
    ("bias-sweep-digraph", {"num_keys": "1024", "end": "4"}),
    (
        "attack-https",
        {
            "browser": "firefox",
            "cookie_len": "2",
            "num_candidates": "4096",
            "max_gap": "32",
        },
    ),
]


def _run_json(capsys, name: str, params: dict[str, str]) -> str:
    argv = ["--seed", "97", "run", name, "--quiet", "--json", "-"]
    for key, value in params.items():
        argv += ["--param", f"{key}={value}"]
    assert main(argv) == 0
    return capsys.readouterr().out.strip()


@pytest.mark.parametrize("name,params", GOLDEN_RUNS, ids=[r[0] for r in GOLDEN_RUNS])
def test_run_json_round_trips_bit_identically(capsys, name, params):
    text = _run_json(capsys, name, params)
    result = ExperimentResult.from_json(text)
    assert result.experiment == name
    # Bit-identical canonical round-trip, twice over.
    assert result.to_json() == text
    assert canonical_json(json.loads(text)) == text
    assert ExperimentResult.from_json(result.to_json()) == result


@pytest.mark.parametrize("name,params", GOLDEN_RUNS, ids=[r[0] for r in GOLDEN_RUNS])
def test_run_json_carries_declared_params(capsys, name, params):
    text = _run_json(capsys, name, params)
    result = ExperimentResult.from_json(text)
    declared = {param.name for param in get_experiment(name).params}
    assert set(result.params) == declared
    # CLI string overrides arrive coerced to their declared kinds.
    for key, value in params.items():
        resolved = result.params[key]
        assert resolved == (value if isinstance(resolved, str) else int(value))


def test_browser_layouts_shift_cookie_offset(capsys):
    """The browser scenarios genuinely change the keystream layout."""
    spans = {}
    for browser in ("generic", "firefox", "curl"):
        text = _run_json(
            capsys,
            "attack-https",
            {
                "browser": browser,
                "cookie_len": "2",
                "num_candidates": "4096",
                "max_gap": "32",
            },
        )
        result = ExperimentResult.from_json(text)
        assert result.metrics["browser"] == browser
        spans[browser] = tuple(result.metrics["cookie_span"])
    assert len(set(spans.values())) == 3, f"layouts must differ: {spans}"


def _sweep_argv(store, *, as_json=True):
    argv = [
        "--seed", "97", "sweep", "dataset-single",
        "--store", str(store),
        "--grid", "num_keys=4096,16384",
        "--param", "positions=4",
        "--quiet",
    ]
    return argv + ["--json"] if as_json else argv


def test_sweep_golden_rerun_skips_everything(capsys, tmp_path):
    """`sweep` is resumable: the identical rerun recomputes nothing and
    reports the same plan fingerprints as the first pass."""
    store = tmp_path / "runs"
    assert main(_sweep_argv(store)) == 0
    first = json.loads(capsys.readouterr().out)
    assert first["counts"] == {"ran": 2, "skipped": 0, "failed": 0}

    assert main(_sweep_argv(store)) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["counts"] == {"ran": 0, "skipped": 2, "failed": 0}
    assert [o["fingerprint"] for o in second["outcomes"]] == [
        o["fingerprint"] for o in first["outcomes"]
    ]


def test_store_query_json_is_bit_identical_to_the_index(capsys, tmp_path):
    """`store query --json` re-emits exactly what runs.jsonl holds —
    canonical JSON of each record, byte for byte."""
    store = tmp_path / "runs"
    assert main(_sweep_argv(store)) == 0
    capsys.readouterr()

    assert main(["store", "query", str(store), "--json"]) == 0
    records = json.loads(capsys.readouterr().out)
    raw_lines = (store / "runs.jsonl").read_text().splitlines()
    assert len(records) == len(raw_lines) == 2
    for record, line in zip(records, raw_lines):
        assert canonical_json(record) == line

    # Param filters narrow by value (JSON-coerced from the CLI string).
    assert main([
        "store", "query", str(store), "--json", "--param", "num_keys=16384",
    ]) == 0
    narrowed = json.loads(capsys.readouterr().out)
    assert [r["result"]["params"]["num_keys"] for r in narrowed] == [16384]


def test_store_report_cells_match_stored_records(capsys, tmp_path):
    """Report cells are canonical JSON of the stored values — every cell
    is a literal substring of the index file."""
    store = tmp_path / "runs"
    assert main(_sweep_argv(store)) == 0
    capsys.readouterr()

    assert main([
        "store", "report", str(store),
        "--experiment", "dataset-single",
        "--metric", "total_counts",
    ]) == 0
    report = capsys.readouterr().out
    raw = (store / "runs.jsonl").read_text()
    for record in (json.loads(line) for line in raw.splitlines()):
        cell = canonical_json(record["result"]["metrics"]["total_counts"])
        assert cell in report
        assert cell in raw
    # The varying grid axis shows up as a column.
    assert "num_keys" in report


def test_fleet_status_help_documents_shard_states(capsys):
    """The --help epilog enumerates the manifest's shard state machine."""
    from repro.fleet import STATE_DESCRIPTIONS

    with pytest.raises(SystemExit) as exc:
        main(["fleet-status", "--help"])
    assert exc.value.code == 0
    help_text = capsys.readouterr().out
    for state, description in STATE_DESCRIPTIONS.items():
        assert state in help_text
        # The epilog carries the real description, not just the name.
        assert description.split(";")[0] in help_text
    assert "README" in help_text


def test_bias_sweep_headline_cells_within_ci(capsys):
    """The emitted record's headline counts obey the binomial CI —
    exercising the reusable fidelity helper from another module."""
    text = _run_json(capsys, "bias-sweep", {"num_keys": "65536", "end": "16"})
    result = ExperimentResult.from_json(text)
    num_keys = result.params["num_keys"]
    for cell in result.metrics["headline_cells"]:
        observed = round(cell["measured_probability"] * num_keys)
        assert_within_ci(
            observed,
            num_keys,
            cell["model_probability"],
            z=4.5,
            label=f"Z{cell['position']}={cell['value']:#04x}",
        )
