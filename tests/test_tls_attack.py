"""The HTTPS cookie attack: layout, statistics, likelihoods, brute force."""

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.errors import AttackError
from repro.simulate import HttpsAttackSimulation
from repro.tls import (
    BruteForceOracle,
    CookieLayout,
    CookieStatistics,
    HttpRequestTemplate,
    recover_candidates,
)
from repro.tls.attack import transition_log_likelihoods


@pytest.fixture(scope="module")
def small_sim():
    return HttpsAttackSimulation(ReproConfig(seed=55), cookie_len=3, max_gap=32)


class TestLayout:
    def test_known_bytes_match_template(self):
        template = HttpRequestTemplate(host="site.com")
        layout = CookieLayout.from_template(template, 16)
        request = template.build(b"Y" * 16)
        start, end = layout.cookie_span
        assert layout.known_byte(1) == request[0]
        assert layout.known_byte(end + 1) == request[end]
        with pytest.raises(AttackError):
            layout.known_byte(start)
        with pytest.raises(AttackError):
            layout.known_byte(layout.stream_len + 1)

    def test_transitions_cover_boundaries(self):
        layout = CookieLayout(prefix=b"P" * 10, suffix=b"S" * 10, cookie_len=4)
        # Cookie at 11..14; transitions 10..14 (5 = cookie_len + 1).
        assert layout.transitions() == [10, 11, 12, 13, 14]

    def test_stream_len(self):
        layout = CookieLayout(prefix=b"P" * 10, suffix=b"S" * 5, cookie_len=4)
        assert layout.stream_len == 19


class TestStatisticsCollection:
    def test_empty_statistics_structure(self, small_sim):
        stats = CookieStatistics.empty(small_sim.layout, max_gap=8)
        assert stats.fm_counts.shape == (4, 256, 256)
        assert stats.num_requests == 0
        assert all(v.shape == (65536,) for v in stats.absab_counts.values())

    def test_packet_level_ingestion_counts(self, small_sim):
        stats = small_sim.capture_statistics(40)
        assert stats.num_requests == 40
        assert np.all(stats.fm_counts.sum(axis=(1, 2)) == 40)
        for counts in stats.absab_counts.values():
            assert counts.sum() == 40

    def test_packet_level_digraph_counts_truthful(self, small_sim):
        """Counted ciphertext digraphs must equal plaintext XOR keystream
        for the true request — verified via decryption with the keys the
        simulation used is impossible for the attacker, but counts of the
        *known* prefix transitions can be checked for consistency."""
        stats = small_sim.capture_statistics(10)
        # Each transition's count matrix has exactly 10 entries.
        assert int(stats.fm_counts[0].sum()) == 10

    def test_misaligned_fragment_rejected(self, small_sim):
        stats = CookieStatistics.empty(small_sim.layout, max_gap=4)
        with pytest.raises(AttackError):
            stats.ingest_fragment(b"\x00" * 600, offset=2)

    def test_short_fragment_rejected(self, small_sim):
        stats = CookieStatistics.empty(small_sim.layout, max_gap=4)
        with pytest.raises(AttackError):
            stats.ingest_fragment(b"\x00" * 10, offset=1)


class TestLikelihoodsAndRecovery:
    def test_likelihood_shape(self, small_sim):
        stats = small_sim.sampled_statistics(1 << 16)
        loglik = transition_log_likelihoods(stats)
        assert loglik.shape == (small_sim.cookie_len + 1, 256, 256)

    def test_no_requests_rejected(self, small_sim):
        stats = CookieStatistics.empty(small_sim.layout, max_gap=4)
        with pytest.raises(AttackError):
            transition_log_likelihoods(stats)

    def test_candidates_respect_charset(self, small_sim):
        from repro.tls import COOKIE_CHARSET

        stats = small_sim.sampled_statistics(1 << 16)
        candidates = recover_candidates(stats, 50)
        allowed = set(COOKIE_CHARSET)
        for cand in candidates.plaintexts:
            assert len(cand) == small_sim.cookie_len
            assert all(b in allowed for b in cand)

    def test_recovery_at_adequate_ciphertexts(self):
        """End-to-end: with ~2^28 sampled ciphertexts a short cookie is
        recovered within a small candidate budget (scaled Fig 10)."""
        sim = HttpsAttackSimulation(ReproConfig(seed=56), cookie_len=2, max_gap=128)
        stats = sim.sampled_statistics(1 << 28)
        result = sim.attack(stats, num_candidates=1 << 12)
        assert result.cookie == sim.secret
        assert result.rank < 1 << 12

    def test_more_data_improves_rank(self):
        sim = HttpsAttackSimulation(ReproConfig(seed=57), cookie_len=2, max_gap=64)
        ranks = []
        for n in (1 << 24, 1 << 29):
            stats = sim.sampled_statistics(n)
            candidates = recover_candidates(stats, 1 << 13)
            rank = candidates.rank_of(sim.secret)
            ranks.append(rank if rank is not None else 1 << 13)
        assert ranks[1] <= ranks[0]


class TestBruteForce:
    def test_oracle_counts_attempts(self):
        oracle = BruteForceOracle(b"secret")
        assert not oracle.check(b"wrong")
        assert oracle.check(b"secret")
        assert oracle.attempts == 2

    def test_search_returns_rank_info(self):
        oracle = BruteForceOracle(b"C")
        cookie, attempts = oracle.search([b"A", b"B", b"C", b"D"])
        assert cookie == b"C" and attempts == 3

    def test_budget_enforced(self):
        oracle = BruteForceOracle(b"Z")
        with pytest.raises(AttackError):
            oracle.search([b"A", b"B", b"C"], budget=2)

    def test_paper_wall_clock(self):
        """2^23 candidates at 20000 tests/s is under 7 minutes (§6.3)."""
        oracle = BruteForceOracle(b"x")
        assert oracle.wall_clock_seconds(1 << 23) < 7 * 60
