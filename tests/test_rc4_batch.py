"""Batch RC4 must be bit-exact with the reference implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyLengthError
from repro.rc4 import BatchRC4, batch_keystream, rc4_keystream


class TestAgainstReference:
    def test_exact_match_random_keys(self, rng):
        keys = rng.integers(0, 256, size=(32, 16), dtype=np.uint8)
        out = batch_keystream(keys, 96)
        for k in range(32):
            assert bytes(out[k]) == rc4_keystream(bytes(keys[k]), 96)

    @pytest.mark.parametrize("keylen", [1, 5, 13, 16, 32, 256])
    def test_exact_match_other_key_lengths(self, rng, keylen):
        keys = rng.integers(0, 256, size=(8, keylen), dtype=np.uint8)
        out = batch_keystream(keys, 40)
        for k in range(8):
            assert bytes(out[k]) == rc4_keystream(bytes(keys[k]), 40)

    def test_drop_matches_reference(self, rng):
        keys = rng.integers(0, 256, size=(4, 16), dtype=np.uint8)
        out = batch_keystream(keys, 16, drop=512)
        for k in range(4):
            assert bytes(out[k]) == rc4_keystream(bytes(keys[k]), 16, drop=512)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(1, 9),
        keylen=st.integers(1, 40),
        length=st.integers(0, 70),
    )
    def test_property_equivalence(self, seed, n, keylen, length):
        keys = np.random.default_rng(seed).integers(
            0, 256, size=(n, keylen), dtype=np.uint8
        )
        out = batch_keystream(keys, length)
        for k in range(n):
            assert bytes(out[k]) == rc4_keystream(bytes(keys[k]), length)


class TestChunking:
    def test_chunked_equals_unchunked(self, rng):
        keys = rng.integers(0, 256, size=(50, 16), dtype=np.uint8)
        assert np.array_equal(
            batch_keystream(keys, 20, chunk=7), batch_keystream(keys, 20, chunk=1000)
        )


class TestApi:
    def test_rejects_1d_keys(self):
        with pytest.raises(KeyLengthError):
            BatchRC4(np.zeros(16, dtype=np.uint8))

    def test_rejects_zero_length_key(self):
        with pytest.raises(KeyLengthError):
            BatchRC4(np.zeros((4, 0), dtype=np.uint8))

    def test_rejects_negative_length(self, rng):
        keys = rng.integers(0, 256, size=(2, 16), dtype=np.uint8)
        with pytest.raises(ValueError):
            BatchRC4(keys).keystream(-1)

    def test_keystream_rows_is_transpose(self, rng):
        keys = rng.integers(0, 256, size=(6, 16), dtype=np.uint8)
        a = BatchRC4(keys).keystream(33)
        b = BatchRC4(keys).keystream_rows(33)
        assert np.array_equal(a, b.T)

    def test_skip_advances_stream(self, rng):
        keys = rng.integers(0, 256, size=(3, 16), dtype=np.uint8)
        batch = BatchRC4(keys)
        batch.skip(64)
        assert np.array_equal(
            batch.keystream(8), batch_keystream(keys, 8, drop=64)
        )

    def test_n_property(self, rng):
        keys = rng.integers(0, 256, size=(12, 16), dtype=np.uint8)
        assert BatchRC4(keys).n == 12


class TestKnownBiasVisible:
    def test_mantin_shamir_bias_in_batch_output(self, config):
        """Sanity: Pr[Z_2 = 0] ~ 2/256 shows up in bulk keystream."""
        from repro.rc4.keygen import derive_keys

        keys = derive_keys(config, "ms-bias-test", 1 << 15)
        z2 = batch_keystream(keys, 2)[:, 1]
        count = int((z2 == 0).sum())
        expected_biased = (1 << 15) * 2 / 256
        expected_uniform = (1 << 15) / 256
        # 256 +/- 16 vs 128: comfortably separable at 3 sigma.
        assert abs(count - expected_biased) < abs(count - expected_uniform)
