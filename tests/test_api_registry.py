"""The unified experiment API: registry, Session facade, result format.

Every registered experiment must run end to end at tiny scale and
produce an :class:`ExperimentResult` whose canonical JSON round-trips
bit-identically — that is the CLI's ``run --json`` contract.  Unknown
experiment names and parameters must fail with typed
:class:`ReproError` subclasses, never bare KeyErrors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    ExperimentResult,
    Param,
    Session,
    get_experiment,
    list_experiments,
)
from repro.config import ReproConfig
from repro.datasets import DatasetSpec
from repro.errors import (
    ExperimentError,
    ExperimentParamError,
    ReproError,
    UnknownExperimentError,
)

#: Tiny-scale overrides: every registered experiment MUST have an entry
#: (the inventory test enforces it), so nothing ships unrunnable.
TINY_OVERRIDES = {
    "dataset-single": dict(num_keys=2048, positions=8),
    "dataset-consec": dict(num_keys=1024, positions=4),
    "dataset-pairs": dict(num_keys=1024),
    "dataset-equality": dict(num_keys=1024),
    "dataset-longterm": dict(num_keys=8, stream_len=2048),
    "bias-hunt": dict(num_keys=8192, positions=16),
    "recovery-broadcast": dict(num_ciphertexts=8192),
    "absab-gap": dict(num_keys=8, stream_len=4096, gaps=(0, 8)),
    "attack-tkip": dict(
        num_tsc=4, keys_per_tsc=1 << 10, packets_per_tsc=1 << 10,
        max_candidates=1 << 16,
    ),
    "attack-https": dict(cookie_len=2, num_candidates=1 << 12, max_gap=32),
    "attack-michael": dict(num_harvest=6, forge_payload_len=96),
    "bias-sweep": dict(num_keys=4096, end=8),
    "bias-sweep-digraph": dict(num_keys=1024, end=4),
    "bias-sweep-pertsc": dict(num_tsc=2, packets_per_tsc=512, end=8),
    "campaign-https": dict(
        population=4, num_requests=512, num_candidates=64, group_size=2,
    ),
    "campaign-tkip": dict(
        population=3, num_tsc=2, keys_per_tsc=256, budgets=(64, 128),
        max_candidates=64, group_size=2,
    ),
}


@pytest.fixture(scope="module")
def session() -> Session:
    return Session(ReproConfig(scale=0.25, seed=4321))


def test_registry_inventory_is_covered():
    names = {spec.name for spec in list_experiments()}
    assert names == set(TINY_OVERRIDES), (
        "every registered experiment needs a tiny-scale override entry "
        "(and every entry a registration)"
    )
    assert len(names) >= 13


@pytest.mark.parametrize("name", sorted(TINY_OVERRIDES))
def test_experiment_runs_and_roundtrips(session, name):
    result = session.run(name, **TINY_OVERRIDES[name])
    assert result.experiment == name
    assert result.metrics, "experiments must report metrics"
    assert result.timings["total"] > 0
    assert result.provenance["seed"] == 4321
    # Overrides land in the resolved params verbatim.
    for key, value in TINY_OVERRIDES[name].items():
        resolved = result.params[key]
        if isinstance(value, tuple):
            value = [list(v) if isinstance(v, tuple) else v for v in value]
            resolved = [list(v) if isinstance(v, tuple) else v for v in resolved]
        assert resolved == value
    # The machine-readable contract: canonical JSON round-trips
    # bit-identically and reconstructs an equal record.
    text = result.to_json()
    restored = ExperimentResult.from_json(text)
    assert restored.to_json() == text
    assert restored == ExperimentResult.from_json(restored.to_json())


def test_attacks_succeed_at_tiny_scale(session):
    tkip = session.run("attack-tkip", **TINY_OVERRIDES["attack-tkip"])
    assert tkip.metrics["correct"] is True
    assert tkip.metrics["forged"]["accepted"] is True
    https = session.run("attack-https", **TINY_OVERRIDES["attack-https"])
    assert https.metrics["rank"] >= 0
    assert len(https.metrics["cookie"]) == 2
    michael = session.run("attack-michael", **TINY_OVERRIDES["attack-michael"])
    assert michael.metrics["key_correct"] is True
    assert michael.metrics["accepted"] is True
    assert michael.metrics["fragments_used"] >= 2


def test_attack_https_browser_scenarios(session):
    """Every browser layout runs, shifts the cookie offset, and keeps
    the recovery working; unknown browsers fail with a typed error."""
    spans = {}
    for browser in ("generic", "firefox", "curl"):
        result = session.run(
            "attack-https", browser=browser, **TINY_OVERRIDES["attack-https"]
        )
        assert result.metrics["browser"] == browser
        assert len(result.metrics["cookie"]) == 2
        spans[browser] = tuple(result.metrics["cookie_span"])
    assert len(set(spans.values())) == 3
    with pytest.raises(ExperimentParamError, match="browser must be"):
        session.run(
            "attack-https", browser="netscape", **TINY_OVERRIDES["attack-https"]
        )


def test_bias_sweep_range_validation(session):
    with pytest.raises(ExperimentParamError, match="start <= end"):
        session.run("bias-sweep", num_keys=256, start=9, end=8)
    with pytest.raises(ExperimentParamError, match="start <= end"):
        session.run("bias-sweep-digraph", num_keys=256, start=0, end=4)


def test_unknown_experiment_raises_typed_error(session):
    with pytest.raises(UnknownExperimentError, match="unknown experiment"):
        session.run("no-such-experiment")
    with pytest.raises(ReproError):  # the subclass relationship callers use
        get_experiment("also-missing")


def test_unknown_param_raises_typed_error(session):
    with pytest.raises(ExperimentParamError, match="no parameter"):
        session.run("dataset-single", num_keys=64, bogus=1)
    assert issubclass(ExperimentParamError, ReproError)


def test_ill_typed_param_raises_typed_error(session):
    with pytest.raises(ExperimentParamError, match="expects int"):
        session.run("dataset-single", num_keys="not-a-number")
    with pytest.raises(ExperimentParamError, match="expects pairs"):
        session.run("dataset-pairs", num_keys=64, pairs="15:16:17")


def test_out_of_range_values_raise_typed_errors(session):
    """Range failures must be ReproError subclasses, not raw tracebacks."""
    with pytest.raises(ExperimentParamError, match="positions must be"):
        session.run("recovery-broadcast", num_ciphertexts=64, positions=1)
    with pytest.raises(ExperimentParamError, match="secret_byte must be"):
        session.run("recovery-broadcast", num_ciphertexts=64, secret_byte=999)
    with pytest.raises(ExperimentParamError, match="gaps must be"):
        session.run("absab-gap", num_keys=4, stream_len=64, gaps=(100,))
    with pytest.raises(ExperimentParamError, match="gaps must be"):
        session.run("absab-gap", num_keys=4, stream_len=64, gaps=(-2,))


def test_canonical_json_rejects_nan():
    from repro.utils.serialization import canonical_json

    with pytest.raises(ValueError):
        canonical_json({"metric": float("nan")})
    with pytest.raises(ValueError):
        canonical_json({"metric": float("inf")})


def test_param_cli_string_coercion():
    spec = get_experiment("dataset-pairs")
    params = spec.resolve_params(
        ReproConfig(), {"num_keys": "512", "pairs": "15:16,31:32"}
    )
    assert params["num_keys"] == 512
    assert params["pairs"] == ((15, 16), (31, 32))


def test_scale_aware_defaults():
    spec = get_experiment("dataset-single")
    small = spec.resolve_params(ReproConfig(scale=0.25), {})
    large = spec.resolve_params(ReproConfig(scale=4.0), {})
    assert small["num_keys"] == (1 << 17) // 4
    assert large["num_keys"] == (1 << 17) * 4


def test_param_rejects_unknown_kind():
    with pytest.raises(ExperimentError, match="unknown kind"):
        Param("x", kind="complex")


def test_result_format_version_is_checked():
    result = ExperimentResult(experiment="x", metrics={"ok": 1})
    payload = result.to_dict()
    payload["format_version"] = 99
    with pytest.raises(ExperimentError, match="format version"):
        ExperimentResult.from_dict(payload)
    with pytest.raises(ExperimentError, match="malformed"):
        ExperimentResult.from_json("{nope")


def test_result_save_load_roundtrip(tmp_path):
    result = ExperimentResult(
        experiment="x",
        params={"n": 1},
        metrics={"value": 0.5, "items": [1, 2]},
        timings={"total": 0.01},
        provenance={"seed": 1},
    )
    path = result.save(tmp_path / "result.json")
    assert ExperimentResult.load(path) == result


def test_session_progress_events(session):
    events = []
    local = Session(session.config, progress=events.append)
    local.run("dataset-single", num_keys=256, positions=4)
    assert events, "experiments must emit progress"
    assert events[0].experiment == "dataset-single"
    assert events[0].stage == "generate"


def test_session_memory_cache_reuses_counters(session):
    local = Session(ReproConfig(seed=99))
    spec = DatasetSpec(kind="single", num_keys=512, positions=4, label="cache-t")
    first = local.dataset(spec)
    second = local.dataset(spec)
    assert first is second  # in-memory hit
    assert not first.flags.writeable  # cached counters are read-only


def test_session_disk_cache_roundtrip(tmp_path):
    config = ReproConfig(seed=77)
    spec = DatasetSpec(kind="single", num_keys=512, positions=4, label="disk-t")
    counts = Session(config, cache_dir=tmp_path).dataset(spec)
    files = list(tmp_path.glob("*.npz"))
    assert len(files) == 1
    # A fresh session loads the cached counters instead of regenerating.
    again = Session(config, cache_dir=tmp_path).dataset(spec)
    assert np.array_equal(counts, again)
    # A different seed must not share the entry.
    Session(ReproConfig(seed=78), cache_dir=tmp_path).dataset(spec)
    assert len(list(tmp_path.glob("*.npz"))) == 2


def test_no_env_reads_outside_config():
    """Acceptance gate: REPRO_* env access is centralised in config.py."""
    import pathlib

    src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
    offenders = []
    for path in src.rglob("*.py"):
        if path.name == "config.py":
            continue
        for i, line in enumerate(path.read_text().splitlines(), 1):
            accesses = ("environ.get(", "environ[", "getenv(")
            if any(access in line for access in accesses) and "REPRO_" in line:
                offenders.append(f"{path.relative_to(src)}:{i}")
    assert not offenders, f"direct REPRO_* env reads: {offenders}"
