"""IPv4/TCP/LLC-SNAP construction, parsing, and checksums."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PacketError
from repro.net import (
    IPv4Header,
    LLC_SNAP_IPV4,
    LlcSnapHeader,
    TcpHeader,
    internet_checksum,
)


class TestInternetChecksum:
    def test_rfc1071_example(self):
        # Classic example: 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 folded.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_checksum_over_packet_with_checksum_is_zero_complement(self):
        header = IPv4Header("1.2.3.4", "5.6.7.8", total_length=40).build()
        assert internet_checksum(header) == 0


class TestIPv4:
    def test_roundtrip(self):
        header = IPv4Header(
            source="192.168.1.101",
            destination="203.0.113.7",
            total_length=47,
            ttl=37,
            identification=0xBEEF,
        )
        parsed = IPv4Header.parse(header.build())
        assert parsed.source == "192.168.1.101"
        assert parsed.destination == "203.0.113.7"
        assert parsed.total_length == 47
        assert parsed.ttl == 37
        assert parsed.identification == 0xBEEF
        assert parsed.checksum_valid()

    def test_corruption_detected(self):
        raw = bytearray(IPv4Header("1.1.1.1", "2.2.2.2", total_length=40).build())
        raw[8] ^= 0xFF  # TTL flip
        assert not IPv4Header.parse(bytes(raw)).checksum_valid()

    def test_forced_checksum_emitted_verbatim(self):
        header = IPv4Header("1.1.1.1", "2.2.2.2", total_length=40, checksum=0x1234)
        assert header.build()[10:12] == b"\x12\x34"

    def test_bad_address(self):
        with pytest.raises(PacketError):
            IPv4Header("1.2.3", "2.2.2.2", total_length=40).build()
        with pytest.raises(PacketError):
            IPv4Header("1.2.3.999", "2.2.2.2", total_length=40).build()

    def test_bad_ttl(self):
        with pytest.raises(PacketError):
            IPv4Header("1.1.1.1", "2.2.2.2", total_length=40, ttl=300).build()

    def test_short_parse(self):
        with pytest.raises(PacketError):
            IPv4Header.parse(b"\x45" * 10)


class TestTcp:
    def test_roundtrip_with_payload(self):
        header = TcpHeader(source_port=51324, dest_port=80, seq=7, ack=9)
        segment = header.build(
            source_ip="10.0.0.1", dest_ip="10.0.0.2", payload=b"ATTACK!"
        )
        parsed, payload = TcpHeader.parse(segment)
        assert payload == b"ATTACK!"
        assert parsed.source_port == 51324
        assert parsed.dest_port == 80
        assert parsed.checksum_valid("10.0.0.1", "10.0.0.2", b"ATTACK!")

    def test_corrupt_payload_detected(self):
        header = TcpHeader(source_port=1, dest_port=2)
        segment = header.build(source_ip="1.1.1.1", dest_ip="2.2.2.2", payload=b"ok")
        parsed, _ = TcpHeader.parse(segment)
        assert not parsed.checksum_valid("1.1.1.1", "2.2.2.2", b"no")

    def test_checksum_depends_on_pseudo_header(self):
        header = TcpHeader(source_port=1, dest_port=2)
        a = header.build(source_ip="1.1.1.1", dest_ip="2.2.2.2")
        b = header.build(source_ip="1.1.1.1", dest_ip="2.2.2.3")
        assert a[16:18] != b[16:18]

    def test_needs_endpoints_for_checksum(self):
        with pytest.raises(PacketError):
            TcpHeader(source_port=1, dest_port=2).build()

    def test_bad_port(self):
        with pytest.raises(PacketError):
            TcpHeader(source_port=70000, dest_port=2).build(
                source_ip="1.1.1.1", dest_ip="2.2.2.2"
            )

    @settings(max_examples=20, deadline=None)
    @given(
        sport=st.integers(0, 65535),
        dport=st.integers(0, 65535),
        payload=st.binary(max_size=64),
    )
    def test_property_roundtrip(self, sport, dport, payload):
        header = TcpHeader(source_port=sport, dest_port=dport)
        segment = header.build(
            source_ip="10.1.2.3", dest_ip="172.16.0.9", payload=payload
        )
        parsed, got = TcpHeader.parse(segment)
        assert got == payload
        assert parsed.checksum_valid("10.1.2.3", "172.16.0.9", payload)


class TestLlcSnap:
    def test_build_parse(self):
        raw = LLC_SNAP_IPV4.build()
        assert len(raw) == 8
        header, rest = LlcSnapHeader.parse(raw + b"payload")
        assert header.ethertype == 0x0800
        assert rest == b"payload"

    def test_reject_garbage(self):
        with pytest.raises(PacketError):
            LlcSnapHeader.parse(b"\x00" * 8)

    def test_reject_short(self):
        with pytest.raises(PacketError):
            LlcSnapHeader.parse(b"\xaa\xaa\x03")
