"""Per-TSC distributions and the injection/capture machinery."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.tkip import (
    InjectionCampaign,
    PerTscDistributions,
    TcpPacketSpec,
    TkipSession,
    default_tsc_space,
    generate_per_tsc,
)

TA = bytes.fromhex("105fb0e09f60")
DA = bytes.fromhex("aabbccddeeff")


class TestTscSpace:
    def test_even_spread(self):
        space = default_tsc_space(16)
        assert len(space) == 16
        assert space[0] == 0
        assert all(b - a == 4096 for a, b in zip(space, space[1:]))

    def test_full_space(self):
        assert len(default_tsc_space(65536)) == 65536

    def test_validation(self):
        with pytest.raises(ValueError):
            default_tsc_space(0)


class TestPerTscGeneration:
    def test_shapes_and_normalisation(self, config):
        dists = generate_per_tsc(config, [0, 100], keys_per_tsc=2048, length=8)
        assert dists.dists.shape == (2, 8, 256)
        assert np.allclose(dists.dists.sum(axis=2), 1.0)
        assert dists.length == 8

    def test_tsc_dependence_visible_at_z1(self, config):
        """Z1 distributions must differ across TSC values — the §5.1
        premise (K0..K2 are TSC-determined)."""
        dists = generate_per_tsc(
            config, [0x0000, 0x8040], keys_per_tsc=1 << 13, length=2
        )
        z1_a, z1_b = dists.dists[0, 0], dists.dists[1, 0]
        distance = np.abs(z1_a - z1_b).sum()
        assert distance > 0.02  # far beyond sampling noise at 2^13 keys

    def test_lookup_and_covers(self, config):
        dists = generate_per_tsc(config, [7], keys_per_tsc=512, length=4)
        assert dists.covers(7)
        assert dists.covers(0x10007)  # low 16 bits match
        assert not dists.covers(8)
        assert dists.for_tsc(7).shape == (4, 256)
        with pytest.raises(DatasetError):
            dists.for_tsc(8)

    def test_save_load_roundtrip(self, config, tmp_path):
        dists = generate_per_tsc(config, [3, 9], keys_per_tsc=256, length=4)
        path = tmp_path / "per_tsc.npz"
        dists.save(path)
        loaded = PerTscDistributions.load(path)
        assert loaded.tsc_values == [3, 9]
        assert np.allclose(loaded.dists, dists.dists)

    def test_determinism(self, config):
        a = generate_per_tsc(config, [5], keys_per_tsc=256, length=4)
        b = generate_per_tsc(config, [5], keys_per_tsc=256, length=4)
        assert np.array_equal(a.dists, b.dists)


class TestInjectionCampaign:
    def _campaign(self, rng):
        session = TkipSession.random(rng, TA)
        spec = TcpPacketSpec(
            source_ip="192.168.1.101",
            dest_ip="203.0.113.7",
            source_port=51324,
            dest_port=80,
            payload=b"ATTACK!",
        )
        return InjectionCampaign(session=session, spec=spec, da=DA, sa=TA)

    def test_capture_counts_accumulate(self, rng):
        campaign = self._campaign(rng)
        capture = campaign.run(50)
        assert capture.num_captured == 50
        total = sum(int(t.sum()) for t in capture.counts.values())
        assert total == 50 * len(capture.positions)

    def test_capture_keyed_by_tsc_low(self, rng):
        campaign = self._campaign(rng)
        capture = campaign.run(10)
        assert set(capture.counts) == set(range(1, 11))

    def test_retransmissions_deduplicated(self, rng):
        campaign = self._campaign(rng)
        capture = campaign.run(30, retransmit_fraction=0.5, rng=rng)
        assert capture.num_captured == 30

    def test_foreign_frame_rejected_by_length(self, rng):
        campaign = self._campaign(rng)
        capture = campaign.run(5)
        from repro.tkip import TkipFrame

        foreign = TkipFrame(ta=TA, da=DA, sa=TA, tsc=999, ciphertext=b"short")
        assert not capture.add_frame(foreign)
        assert capture.num_captured == 5

    def test_ciphertext_equals_plaintext_xor_keystream(self, rng):
        """The captured counts must reflect real RC4 encryptions of the
        constant plaintext under the per-TSC key."""
        from repro.rc4 import rc4_crypt
        from repro.tkip.keymix import per_packet_key

        campaign = self._campaign(rng)
        plaintext = campaign.plaintext()
        session = campaign.session
        frame = session.encapsulate(campaign.spec.msdu_data(), DA, TA)
        key = per_packet_key(TA, session.tk, frame.tsc)
        assert frame.ciphertext == rc4_crypt(key, plaintext)

    def test_wall_clock_model(self, rng):
        campaign = self._campaign(rng)
        # The paper's 9.5 * 2^20 captures at 2500 pps is about 1.1 hours.
        hours = campaign.wall_clock_seconds(int(9.5 * 2**20)) / 3600
        assert 1.0 < hours < 1.2


class TestKeystreamReuse:
    """Beck's fragmentation-based keystream reuse (injection.py)."""

    def _setup(self, rng):
        from repro.tkip import KeystreamPool, build_protected_msdu

        session = TkipSession.random(rng, TA)
        spec = TcpPacketSpec(
            source_ip="192.168.1.101",
            dest_ip="203.0.113.7",
            source_port=51324,
            dest_port=80,
            payload=b"ATTACK!",
        )
        plaintext = build_protected_msdu(spec, session.mic_key, DA, TA)
        pool = KeystreamPool()
        for _ in range(6):
            frame = session.encapsulate(spec.msdu_data(), DA, TA)
            pool.add(frame, plaintext)
        return session, spec, plaintext, pool

    def test_recovered_keystream_decrypts_the_frame(self, rng):
        from repro.tkip import recover_keystream

        session, spec, plaintext, _ = self._setup(rng)
        frame = session.encapsulate(spec.msdu_data(), DA, TA)
        keystream = recover_keystream(frame, plaintext)
        decrypted = bytes(c ^ k for c, k in zip(frame.ciphertext, keystream))
        assert decrypted == plaintext

    def test_recover_keystream_length_mismatch(self, rng):
        from repro.errors import AttackError
        from repro.tkip import recover_keystream

        session, spec, plaintext, _ = self._setup(rng)
        frame = session.encapsulate(spec.msdu_data(), DA, TA)
        with pytest.raises(AttackError, match="length"):
            recover_keystream(frame, plaintext + b"x")

    def test_fragmented_forgery_reassembles_and_verifies(self, rng):
        from repro.tkip import (
            fragment_msdu,
            michael,
            michael_header,
            reassemble_fragments,
            recover_key,
            split_protected_msdu,
        )

        session, spec, plaintext, pool = self._setup(rng)
        data, mic, _ = split_protected_msdu(plaintext)
        mic_key = recover_key(michael_header(DA, TA) + data, mic)
        assert mic_key == session.mic_key
        # Forge an MSDU longer than any single banked keystream.
        forged = TcpPacketSpec(
            source_ip="203.0.113.7",
            dest_ip="192.168.1.101",
            source_port=80,
            dest_port=51324,
            payload=b"Z" * 120,
        ).msdu_data()
        assert len(forged) > len(plaintext)
        fragments = fragment_msdu(forged, mic_key, DA, TA, pool)
        assert len(fragments) >= 2
        assert fragments[-1].more is False
        assert all(f.more for f in fragments[:-1])
        protected = reassemble_fragments(session.tk, fragments)
        received, received_mic = protected[:-8], protected[-8:]
        assert received == forged
        assert received_mic == michael(
            session.mic_key, michael_header(DA, TA) + received
        )

    def test_reassembly_rejects_reordered_fragments(self, rng):
        from repro.errors import AttackError
        from repro.tkip import fragment_msdu, reassemble_fragments

        session, spec, plaintext, pool = self._setup(rng)
        forged = b"A" * 150
        fragments = fragment_msdu(forged, session.mic_key, DA, TA, pool)
        assert len(fragments) >= 3
        swapped = [fragments[1], fragments[0]] + fragments[2:]
        with pytest.raises(AttackError, match="index"):
            reassemble_fragments(session.tk, swapped)

    def test_fragment_budget_enforced(self, rng):
        from repro.errors import AttackError
        from repro.tkip import fragment_msdu

        session, spec, plaintext, pool = self._setup(rng)
        capacity = pool.capacity(max_fragments=1)
        with pytest.raises(AttackError, match="fragments"):
            fragment_msdu(
                b"B" * (capacity + 1), session.mic_key, DA, TA, pool,
                max_fragments=1,
            )

    def test_tampered_fragment_fails_icv(self, rng):
        from repro.errors import AttackError
        from repro.tkip import (
            TkipFragment,
            fragment_msdu,
            reassemble_fragments,
        )
        from repro.tkip.frames import TkipFrame

        session, spec, plaintext, pool = self._setup(rng)
        fragments = fragment_msdu(b"C" * 100, session.mic_key, DA, TA, pool)
        frame = fragments[0].frame
        flipped = bytes([frame.ciphertext[0] ^ 1]) + frame.ciphertext[1:]
        tampered = TkipFragment(
            frame=TkipFrame(
                ta=frame.ta, da=frame.da, sa=frame.sa, tsc=frame.tsc,
                ciphertext=flipped, priority=frame.priority,
            ),
            index=0,
            more=fragments[0].more,
        )
        with pytest.raises(AttackError, match="ICV"):
            reassemble_fragments(session.tk, [tampered] + fragments[1:])
