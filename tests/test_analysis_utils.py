"""Reporting helpers, tables, byte ops, serialization, configuration."""


import numpy as np
import pytest

from repro.analysis import (
    ascii_curve,
    bias_comparison_table,
    probability_notation,
    series_to_csv,
    success_rate_table,
)
from repro.config import ReproConfig, child_seed, get_config
from repro.errors import ConfigError, DatasetError
from repro.utils.bytesops import (
    hexdump,
    mk16,
    rotl32,
    rotr16,
    rotr32,
    u16_hi,
    u16_lo,
    xor_bytes,
    xswap16,
    xswap32,
)
from repro.utils.serialization import load_arrays, save_arrays
from repro.utils.tables import format_table


class TestBytesOps:
    def test_xor_bytes(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"
        with pytest.raises(ValueError):
            xor_bytes(b"\x00", b"\x00\x00")

    def test_rotations(self):
        assert rotl32(0x80000000, 1) == 1
        assert rotr32(1, 1) == 0x80000000
        assert rotl32(0x12345678, 0) == 0x12345678
        assert rotr16(0x0001, 1) == 0x8000

    def test_swaps(self):
        assert xswap16(0x1234) == 0x3412
        assert xswap32(0x12345678) == 0x34127856

    def test_word_helpers(self):
        assert mk16(0x12, 0x34) == 0x1234
        assert u16_hi(0x1234) == 0x12
        assert u16_lo(0x1234) == 0x34

    def test_hexdump_shape(self):
        dump = hexdump(bytes(range(40)))
        lines = dump.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("00000000")


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        arrays = {"a": np.arange(10), "b": np.eye(3)}
        path = save_arrays(tmp_path / "x.npz", arrays, {"kind": "test"})
        loaded, meta = load_arrays(path)
        assert np.array_equal(loaded["a"], arrays["a"])
        assert meta["kind"] == "test"
        assert meta["format_version"] == 1

    def test_reserved_name_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            save_arrays(tmp_path / "y.npz", {"__meta__": np.zeros(1)}, {})

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_arrays(tmp_path / "absent.npz")


class TestConfig:
    def test_scaled_clamps(self):
        config = ReproConfig(scale=0.001)
        assert config.scaled(100, minimum=8) == 8
        config2 = ReproConfig(scale=100.0)
        assert config2.scaled(100, maximum=500) == 500

    def test_rng_label_independence(self):
        config = ReproConfig(seed=5)
        a = config.rng("one").integers(0, 1 << 30, 8)
        b = config.rng("two").integers(0, 1 << 30, 8)
        assert not np.array_equal(a, b)

    def test_child_seed_deterministic(self):
        assert child_seed(5, "x", 1) == child_seed(5, "x", 1)
        assert child_seed(5, "x", 1) != child_seed(5, "x", 2)

    def test_invalid_values(self):
        with pytest.raises(ConfigError):
            ReproConfig(scale=0.0)
        with pytest.raises(ConfigError):
            ReproConfig(seed=-1)

    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        monkeypatch.setenv("REPRO_SEED", "99")
        config = get_config()
        assert config.scale == 2.5 and config.seed == 99
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ConfigError):
            get_config()


class TestReporting:
    def test_probability_notation_roundtrip(self):
        text = probability_notation(2.0**-16 * (1 + 2.0**-8), 2.0**-16)
        assert text.startswith("2^-16.0")
        assert "(1 + 2^-8.0" in text

    def test_probability_notation_negative(self):
        text = probability_notation(2.0**-16 * (1 - 2.0**-5), 2.0**-16)
        assert "(1 - 2^-5.0" in text

    def test_bias_comparison_sign_agreement(self):
        table = bias_comparison_table(
            [("b1", 2.0**-16 * 1.01, 2.0**-16 * 1.02, 2.0**-16)]
        )
        assert "yes" in table
        table2 = bias_comparison_table(
            [("b2", 2.0**-16 * 1.01, 2.0**-16 * 0.99, 2.0**-16)]
        )
        assert "NO" in table2

    def test_success_rate_table(self):
        out = success_rate_table(
            "N", {"combined": [0.1, 0.9], "fm": [0.05, 0.4]}, ["2^27", "2^31"]
        )
        assert "90.0%" in out and "2^31" in out

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3]])
        lines = out.splitlines()
        assert len(lines) == 4
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestFigures:
    def test_ascii_curve_contains_markers(self):
        out = ascii_curve([1, 2, 3], {"s": [0.1, 0.5, 0.9]}, width=20, height=5)
        assert "o" in out and "s" in out

    def test_ascii_curve_validation(self):
        with pytest.raises(ValueError):
            ascii_curve([1, 2], {"s": [1.0]})
        with pytest.raises(ValueError):
            ascii_curve([1], {})

    def test_csv_emission(self):
        csv = series_to_csv("x", [1, 2], {"y": [0.25, 0.75]})
        lines = csv.splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,0.25"
