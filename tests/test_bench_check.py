"""Unit tests for the benchmark regression gate (run_benchmarks --check).

``benchmarks/`` is not a package, so the module is loaded straight from
its file path.  The gate itself is pure-dict comparison, which keeps
these tests millisecond-fast — no benchmarks actually run.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_RUNNER = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "run_benchmarks.py"
)
_spec = importlib.util.spec_from_file_location("run_benchmarks", _RUNNER)
run_benchmarks = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(run_benchmarks)


def _record(means: dict[str, float], native: bool = True) -> dict:
    return {
        "native_backend": native,
        "benchmarks": {
            name: {"mean_s": mean} for name, mean in means.items()
        },
    }


class TestCompareRecords:
    def test_flags_synthetic_2x_slowdown(self):
        baseline = _record({"test_longterm_dataset_wallclock": 0.100})
        current = _record({"test_longterm_dataset_wallclock": 0.200})
        regressions, _ = run_benchmarks.compare_records(
            baseline, current, tolerance=0.25
        )
        assert len(regressions) == 1
        assert "test_longterm_dataset_wallclock" in regressions[0]
        assert "2.00x" in regressions[0]

    def test_within_tolerance_passes(self):
        baseline = _record({"a": 0.100, "b": 0.050})
        current = _record({"a": 0.120, "b": 0.055})  # +20%, +10%
        regressions, notes = run_benchmarks.compare_records(
            baseline, current, tolerance=0.25
        )
        assert regressions == []
        assert notes == []

    def test_speedups_never_flag(self):
        baseline = _record({"a": 0.100})
        current = _record({"a": 0.010})
        regressions, _ = run_benchmarks.compare_records(
            baseline, current, tolerance=0.0
        )
        assert regressions == []

    def test_disjoint_benchmarks_are_noted_not_flagged(self):
        baseline = _record({"a": 0.1, "removed": 0.1})
        current = _record({"a": 0.1, "added": 0.1})
        regressions, notes = run_benchmarks.compare_records(
            baseline, current, tolerance=0.25
        )
        assert regressions == []
        assert any("removed" in n for n in notes)
        assert any("added" in n for n in notes)

    def test_backend_mismatch_skips_comparison(self):
        """numpy-vs-native means differ by design; never flag across them."""
        baseline = _record({"a": 0.010}, native=True)
        current = _record({"a": 0.100}, native=False)
        regressions, notes = run_benchmarks.compare_records(
            baseline, current, tolerance=0.25
        )
        assert regressions == []
        assert any("native backend differs" in n for n in notes)

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            run_benchmarks.compare_records(_record({}), _record({}), -0.1)


class TestCheckExitCodes:
    def test_missing_baseline_fails_before_benchmarks_run(
        self, tmp_path, monkeypatch
    ):
        def boom(json_path, *, smoke):
            raise AssertionError("benchmarks must not run without a baseline")

        monkeypatch.setattr(run_benchmarks, "_run_pytest", boom)
        rc = run_benchmarks.main(
            ["--smoke", "--check", str(tmp_path / "missing.json")]
        )
        assert rc == 1

    def test_regression_exit_code_is_2(self, tmp_path, monkeypatch):
        """End-to-end main(): a synthetic 2x slowdown exits REGRESSION_EXIT."""
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_record({"bench_x": 0.050})))

        def fake_run(json_path, *, smoke):
            Path(json_path).write_text(
                json.dumps(
                    {
                        "benchmarks": [
                            {
                                "name": "bench_x",
                                "stats": {
                                    "mean": 0.100,
                                    "min": 0.100,
                                    "stddev": 0.0,
                                    "rounds": 1,
                                },
                                "extra_info": {},
                            }
                        ]
                    }
                )
            )
            return 0

        monkeypatch.setattr(run_benchmarks, "_run_pytest", fake_run)
        monkeypatch.setattr(
            run_benchmarks, "_native_backend_status", lambda: True
        )
        baseline_data = json.loads(baseline.read_text())
        baseline_data["native_backend"] = True
        baseline.write_text(json.dumps(baseline_data))
        rc = run_benchmarks.main(
            ["--smoke", "--check", str(baseline), "--tolerance", "0.25"]
        )
        assert rc == run_benchmarks.REGRESSION_EXIT == 2

    def test_within_tolerance_exits_zero(self, tmp_path, monkeypatch):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(_record({"bench_x": 0.100}, native=True))
        )

        def fake_run(json_path, *, smoke):
            Path(json_path).write_text(
                json.dumps(
                    {
                        "benchmarks": [
                            {
                                "name": "bench_x",
                                "stats": {
                                    "mean": 0.105,
                                    "min": 0.105,
                                    "stddev": 0.0,
                                    "rounds": 1,
                                },
                                "extra_info": {},
                            }
                        ]
                    }
                )
            )
            return 0

        monkeypatch.setattr(run_benchmarks, "_run_pytest", fake_run)
        monkeypatch.setattr(
            run_benchmarks, "_native_backend_status", lambda: True
        )
        rc = run_benchmarks.main(
            ["--smoke", "--check", str(baseline), "--tolerance", "0.25"]
        )
        assert rc == 0
