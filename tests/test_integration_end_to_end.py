"""Cross-module integration: the two full attacks, packet level and scaled.

These tests run the complete pipelines exactly as the examples do — real
RC4, real protocol stacks — at sizes that keep the suite fast.  Where
recovery needs paper-scale ciphertexts, the sampled sufficient-statistic
path stands in (see the repro.simulate package docstring).
"""


from repro.config import ReproConfig
from repro.simulate import (
    HttpsAttackSimulation,
    WifiAttackSimulation,
    sampled_capture,
)
from repro.tkip import default_tsc_space, generate_per_tsc


class TestWifiPacketLevel:
    def test_injection_capture_statistics_flow(self):
        """Packet-level: inject real frames, build per-TSC statistics,
        confirm capture plumbing (not statistical success) end to end."""
        config = ReproConfig(seed=42)
        sim = WifiAttackSimulation(config)
        capture = sim.capture(64)
        assert capture.num_captured == 64
        # Every ciphertext byte counted once per covered position.
        total = sum(int(t.sum()) for t in capture.counts.values())
        assert total == 64 * len(capture.positions)

    def test_capture_ciphertexts_are_real_rc4(self):
        """The captured counts must be consistent with RC4 encryptions of
        the true plaintext: decrypting with the per-packet key works."""
        from repro.rc4 import rc4_crypt
        from repro.tkip.keymix import per_packet_key

        config = ReproConfig(seed=43)
        sim = WifiAttackSimulation(config)
        frame = sim.campaign.session.encapsulate(
            sim.spec.msdu_data(), sim.campaign.da, sim.campaign.sa
        )
        key = per_packet_key(sim.victim.ta, sim.victim.tk, frame.tsc)
        assert rc4_crypt(key, frame.ciphertext) == sim.true_plaintext

    def test_full_recovery_with_sampled_capture(self):
        """Scaled §5 attack: sampled captures, candidate pruning, Michael
        inversion, and MIC key verification."""
        config = ReproConfig(seed=44)
        sim = WifiAttackSimulation(config)
        plaintext = sim.true_plaintext
        per_tsc = generate_per_tsc(
            config, default_tsc_space(8), keys_per_tsc=1 << 12,
            length=len(plaintext),
        )
        capture = sampled_capture(
            per_tsc, plaintext, range(1, len(plaintext) + 1),
            packets_per_tsc=1 << 12, seed=config.rng("cap"),
        )
        result = sim.attack(capture, per_tsc, max_candidates=1 << 18)
        assert result.correct
        assert result.mic_key == sim.victim.mic_key


class TestHttpsPacketLevel:
    def test_real_traffic_statistics_flow(self):
        """Packet-level: real TLS records through the sniffer into the
        statistics collector; 512-byte aligned records throughout."""
        sim = HttpsAttackSimulation(ReproConfig(seed=45), cookie_len=4, max_gap=16)
        stats = sim.capture_statistics(64)
        assert stats.num_requests == 64
        assert (sim.layout.request_len + 20) % 256 == 0

    def test_packet_and_sampled_statistics_agree_in_expectation(self):
        """The sampled path must match the packet-level path's marginal
        totals (same layout, same alignments)."""
        sim = HttpsAttackSimulation(ReproConfig(seed=46), cookie_len=3, max_gap=8)
        real = sim.capture_statistics(32)
        fake = sim.sampled_statistics(32)
        assert real.fm_counts.shape == fake.fm_counts.shape
        assert set(real.absab_counts) == set(fake.absab_counts)
        assert real.num_requests == fake.num_requests

    def test_full_recovery_with_sampled_statistics(self):
        """Scaled §6 attack: FM + ABSAB combination, Algorithm 2 over the
        cookie alphabet, brute-force oracle."""
        sim = HttpsAttackSimulation(ReproConfig(seed=47), cookie_len=2, max_gap=128)
        stats = sim.sampled_statistics(1 << 28)
        result = sim.attack(stats, num_candidates=1 << 12)
        assert result.cookie == sim.secret
        assert result.attempts == result.rank + 1

    def test_rekeying_tolerated(self):
        """§6.3: the attack survives connection rekeys because fresh
        connections restart the keystream at position 1."""
        sim = HttpsAttackSimulation(ReproConfig(seed=48), cookie_len=3, max_gap=8)
        rng = sim.config.rng("rekey")
        sniffer = sim.campaign.run(20, rng, reconnect_every=5)
        from repro.tls import CookieStatistics

        stats = CookieStatistics.empty(sim.layout, max_gap=8)
        stats.ingest_sniffer(sniffer)
        assert stats.num_requests == 20


class TestCrossSubstrateConsistency:
    def test_recovered_plaintext_reparses_as_packet(self):
        """After the TKIP attack the decrypted bytes must parse back into
        LLC/IP/TCP with valid checksums — the §5.3 pruning premise."""
        from repro.tkip import parse_msdu_data

        config = ReproConfig(seed=49)
        sim = WifiAttackSimulation(config)
        data = sim.true_plaintext[:-12]  # strip MIC + ICV
        llc, ip, tcp, payload = parse_msdu_data(data)
        assert ip.checksum_valid()
        assert tcp.checksum_valid(ip.source, ip.destination, payload)
        assert payload == sim.payload

    def test_paper_wall_clock_statements(self):
        """§5.4 and §6.3 arithmetic as reported in the paper."""
        from repro.simulate import tkip_timeline, tls_timeline

        assert tkip_timeline().capture_hours < 1.2
        assert 74 < tls_timeline().capture_hours < 77
