"""Fault injection for the distributed capture fleet.

The fleet's whole promise is *exactness under failure*: whatever crashes,
stalls, or corrupts, the coordinator's merged statistics must be
cell-for-cell identical to an uninterrupted single-process
``run_capture`` — or a truthful partial report naming exactly what is
missing.  Each test here injects one fault from the §3.2 cluster
reality (worker SIGKILL mid-shard, truncated shard NPZ, stale lease,
retry-budget exhaustion) and asserts that promise, on whichever
``REPRO_NATIVE`` leg the suite is running.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass

import pytest

from repro.capture.engine import run_capture, shard_batches, source_fingerprint
from repro.capture.tkip import TkipCaptureSource
from repro.config import ReproConfig
from repro.errors import CaptureError, FleetError, ManifestError
from repro.fleet.coordinator import Coordinator
from repro.fleet.lease import try_acquire
from repro.fleet.manifest import (
    DONE,
    FAILED,
    JobManifest,
    JobPaths,
    LEASED,
    PENDING,
    read_shard_state,
    write_shard_state,
)
from repro.fleet.retry import backoff_delay, backoff_delays, retry_call
from repro.fleet.sources import build_source, register_source
from repro.fleet.worker import run_worker
from repro.utils.serialization import canonical_json


def _fleet_config(**overrides) -> ReproConfig:
    """Deterministic test config: no real backoff sleeps."""
    defaults = dict(seed=1234, fleet_backoff_base=0.0, fleet_retry_budget=3)
    defaults.update(overrides)
    return ReproConfig(**defaults)


def _tkip_source(config: ReproConfig, **overrides) -> TkipCaptureSource:
    kwargs = dict(
        config=config,
        plaintext=bytes(range(20)),
        tsc_values=(0, 1, 2, 3),
        packets_per_tsc=700,
        batch_size=128,
    )
    kwargs.update(overrides)
    return TkipCaptureSource(**kwargs)


def _stats_equal(a, b) -> bool:
    """Cell-for-cell equality via the canonical JSON snapshot."""
    return canonical_json(a.to_jsonable()) == canonical_json(b.to_jsonable())


# --------------------------------------------------------------------------
# shard_batches edge cases (satellite)
# --------------------------------------------------------------------------


class TestShardBatchesEdgeCases:
    def test_zero_batches_yield_no_shards(self):
        assert shard_batches(0, 1) == []
        assert shard_batches(0, 7) == []

    def test_more_shards_than_batches_never_produces_empty_ranges(self):
        ranges = shard_batches(3, 10)
        assert ranges == [range(0, 1), range(1, 2), range(2, 3)]
        for num_batches in (1, 2, 5):
            for num_shards in (1, 2, 3, 7, 64):
                ranges = shard_batches(num_batches, num_shards)
                assert all(len(r) > 0 for r in ranges)
                covered = [b for r in ranges for b in r]
                assert covered == list(range(num_batches))

    def test_rejects_invalid_arguments(self):
        with pytest.raises(CaptureError):
            shard_batches(-1, 2)
        with pytest.raises(CaptureError):
            shard_batches(4, 0)


# --------------------------------------------------------------------------
# retry helper (shared by fleet and the native compile probe)
# --------------------------------------------------------------------------


class TestRetryBackoff:
    def test_schedule_doubles_and_caps(self):
        assert backoff_delay(0, base=0.5) == 0.5
        assert backoff_delay(1, base=0.5) == 1.0
        assert backoff_delay(10, base=0.5, cap=4.0) == 4.0
        assert backoff_delay(3, base=0.0) == 0.0
        assert list(backoff_delays(3, base=1.0, cap=3.0)) == [1.0, 2.0, 3.0]

    def test_retry_call_recovers_and_sleeps_schedule(self):
        calls, slept = [], []
        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TimeoutError("wedged")
            return "ok"
        assert retry_call(
            flaky, attempts=4, base=0.5, retry_on=(TimeoutError,),
            sleep=slept.append,
        ) == "ok"
        assert len(calls) == 3
        assert slept == [0.5, 1.0]

    def test_retry_call_exhaustion_reraises_last(self):
        with pytest.raises(TimeoutError):
            retry_call(
                lambda: (_ for _ in ()).throw(TimeoutError("still wedged")),
                attempts=2, base=0.0, retry_on=(TimeoutError,),
            )

    def test_retry_call_propagates_unlisted_exceptions(self):
        def boom():
            raise ValueError("not retryable")
        with pytest.raises(ValueError):
            retry_call(boom, attempts=5, base=0.0, retry_on=(TimeoutError,))


# --------------------------------------------------------------------------
# checkpoint hardening (satellite)
# --------------------------------------------------------------------------


class TestCheckpointHardening:
    def test_truncated_checkpoint_warns_and_restarts(self, tmp_path):
        config = _fleet_config()
        source = _tkip_source(config)
        single = run_capture(source)
        path = tmp_path / "capture.npz"
        run_capture(source, batches=range(0, 8), checkpoint_path=path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn write
        with pytest.warns(RuntimeWarning, match="corrupted or truncated"):
            recovered = run_capture(source, checkpoint_path=path)
        assert _stats_equal(recovered, single)

    def test_garbage_checkpoint_warns_and_restarts(self, tmp_path):
        config = _fleet_config()
        source = _tkip_source(config)
        path = tmp_path / "capture.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.warns(RuntimeWarning, match="corrupted or truncated"):
            recovered = run_capture(source, checkpoint_path=path)
        assert _stats_equal(recovered, run_capture(source))

    def test_wrong_campaign_checkpoint_stays_a_hard_error(self, tmp_path):
        source = _tkip_source(_fleet_config())
        other = _tkip_source(_fleet_config(seed=4242))
        path = tmp_path / "capture.npz"
        run_capture(source, checkpoint_path=path)
        with pytest.raises(CaptureError, match="fingerprint"):
            run_capture(other, checkpoint_path=path)


# --------------------------------------------------------------------------
# manifest + lease mechanics
# --------------------------------------------------------------------------


class TestManifestAndLease:
    def test_manifest_roundtrip_and_idempotent_write(self, tmp_path):
        config = _fleet_config()
        source = _tkip_source(config)
        manifest = JobManifest.from_source(source, num_shards=4)
        manifest.write(tmp_path)
        manifest.write(tmp_path)  # same job: no-op
        loaded = JobManifest.load(tmp_path)
        assert loaded == manifest
        loaded.verify_descriptor()
        assert build_source(
            loaded.descriptor, _fleet_config(seed=999)
        ).fingerprint() == source.fingerprint()

    def test_manifest_refuses_conflicting_job(self, tmp_path):
        config = _fleet_config()
        JobManifest.from_source(_tkip_source(config), num_shards=4).write(
            tmp_path
        )
        other = JobManifest.from_source(
            _tkip_source(_fleet_config(seed=77)), num_shards=4
        )
        with pytest.raises(ManifestError, match="different job"):
            other.write(tmp_path)

    def test_descriptor_tampering_is_detected(self, tmp_path):
        config = _fleet_config()
        manifest = JobManifest.from_source(_tkip_source(config), num_shards=2)
        payload = manifest.to_jsonable()
        payload["descriptor"]["seed"] = 31337
        tampered = JobManifest.from_jsonable(payload)
        with pytest.raises(ManifestError, match="fingerprint"):
            tampered.verify_descriptor()

    def test_lease_exclusion_and_stale_takeover(self, tmp_path):
        path = tmp_path / "shard-00000.lease"
        first = try_acquire(path, worker="w1", ttl=30.0, attempt=1)
        assert first is not None
        # Live lease: a second claimant backs off.
        assert try_acquire(path, worker="w2", ttl=30.0, attempt=1) is None
        # Stale lease: heartbeat far in the past, takeover succeeds.
        os.utime(path, (1.0, 1.0))
        second = try_acquire(path, worker="w2", ttl=30.0, attempt=2)
        assert second is not None
        assert second.worker == "w2"
        # The zombie holder notices on its next heartbeat.
        from repro.errors import LeaseError

        with pytest.raises(LeaseError):
            first.heartbeat()
        assert second.held(30.0)


# --------------------------------------------------------------------------
# fault injection: the four ISSUE scenarios
# --------------------------------------------------------------------------


@dataclass
class FlakyTkipSource:
    """A tkip source whose poisoned batches always raise (test-only)."""

    inner: TkipCaptureSource
    poison: tuple[int, ...]

    @property
    def num_batches(self) -> int:
        return self.inner.num_batches

    @property
    def total_requests(self) -> int:
        return self.inner.total_requests

    def descriptor(self) -> dict:
        descriptor = dict(self.inner.descriptor())
        descriptor["kind"] = "test-flaky-tkip"
        descriptor["poison"] = list(self.poison)
        return descriptor

    def fingerprint(self) -> str:
        return source_fingerprint(self.descriptor())

    def empty(self):
        return self.inner.empty()

    def load(self, path):
        return self.inner.load(path)

    def capture_batch(self, stats, index: int) -> int:
        if index in self.poison:
            raise RuntimeError(f"injected fault at batch {index}")
        return self.inner.capture_batch(stats, index)


def _flaky_factory(descriptor: dict, config: ReproConfig) -> FlakyTkipSource:
    inner = dict(descriptor)
    poison = tuple(inner.pop("poison"))
    inner["kind"] = "tkip-capture"
    return FlakyTkipSource(
        inner=TkipCaptureSource.from_descriptor(inner, config), poison=poison
    )


register_source("test-flaky-tkip", _flaky_factory)


class TestFleetFaults:
    def _single(self, source):
        return run_capture(source)

    def test_uninterrupted_inline_job_is_bit_identical(self, tmp_path):
        config = _fleet_config()
        source = _tkip_source(config)
        coordinator = Coordinator.create(
            source, tmp_path, num_shards=5, config=config
        )
        stats, report = coordinator.execute(workers=1)
        assert report.complete
        assert report.requests_done == source.total_requests
        assert _stats_equal(stats, self._single(source))

    def test_sigkill_worker_mid_shard(self, tmp_path):
        """SIGKILL a subprocess worker mid-shard; reclaim; finish; exact."""
        config = _fleet_config()
        source = _tkip_source(config, packets_per_tsc=1200)
        coordinator = Coordinator.create(
            source, tmp_path, num_shards=4, config=config, checkpoint_every=1
        )
        paths = coordinator.paths
        env = dict(os.environ)
        src_root = str(
            (os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        )
        env["PYTHONPATH"] = os.path.join(src_root, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "fleet-worker", str(tmp_path),
                "--throttle", "0.4", "--worker-id", "victim",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until the worker is provably mid-shard: it holds a
            # lease and has written at least one checkpoint.
            deadline = time.time() + 60.0
            while time.time() < deadline:
                leases = list(paths.shards.glob("*.lease"))
                ckpts = list(paths.shards.glob("*.ckpt.npz"))
                if leases and ckpts:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("worker never reached mid-shard state")
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
        # The killed worker's lease survives it; expire the heartbeat so
        # the reclaim happens now instead of after the TTL.
        for lease in paths.shards.glob("*.lease"):
            os.utime(lease, (1.0, 1.0))
        report = run_worker(tmp_path, worker_id="rescuer", config=config)
        assert report.shards_done  # the rescuer made progress
        assert coordinator.verify_done_shards() == []
        stats, coverage = coordinator.merge()
        assert coverage.complete, coverage.to_jsonable()
        assert _stats_equal(stats, self._single(source))

    def test_truncated_shard_npz_is_quarantined_and_recaptured(self, tmp_path):
        """Corrupt done-shard NPZ => quarantine + requeue, never merged."""
        config = _fleet_config()
        source = _tkip_source(config)
        coordinator = Coordinator.create(
            source, tmp_path, num_shards=4, config=config
        )
        stats, report = coordinator.execute(workers=1)
        assert report.complete
        victim = coordinator.paths.result(2)
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) // 3])  # truncate
        reopened = Coordinator.open(tmp_path, config=config)
        stats2, report2 = reopened.execute(workers=1)
        assert report2.complete
        assert _stats_equal(stats2, self._single(source))
        quarantined = list(coordinator.paths.quarantine.glob("*.npz"))
        assert len(quarantined) == 1
        # The requeued claim was recorded against the shard's budget.
        assert read_shard_state(coordinator.paths, 2).attempts >= 2

    def test_foreign_shard_npz_is_quarantined(self, tmp_path):
        """A shard NPZ from a different campaign never merges silently."""
        config = _fleet_config()
        source = _tkip_source(config)
        coordinator = Coordinator.create(
            source, tmp_path, num_shards=3, config=config
        )
        coordinator.execute(workers=1)
        foreign = _tkip_source(_fleet_config(seed=555))
        foreign_stats = run_capture(foreign, batches=range(0, 2))
        # Overwrite shard 1's NPZ with a checkpoint of the wrong campaign.
        run_capture(
            foreign,
            batches=range(0, 2),
            checkpoint_path=coordinator.paths.result(1),
            resume=False,
        )
        bad = coordinator.verify_done_shards()
        assert bad == [1]
        assert read_shard_state(coordinator.paths, 1).state == PENDING
        del foreign_stats

    def test_stale_lease_of_dead_worker_is_reclaimed(self, tmp_path):
        """A lease with no heartbeat past the TTL is claimable again."""
        config = _fleet_config()
        source = _tkip_source(config)
        coordinator = Coordinator.create(
            source, tmp_path, num_shards=3, config=config
        )
        paths = coordinator.paths
        # Simulate a worker that claimed shard 0 and died silently.
        lease = try_acquire(
            paths.lease(0), worker="ghost", ttl=config.fleet_lease_ttl,
            attempt=1,
        )
        assert lease is not None
        state = read_shard_state(paths, 0)
        write_shard_state(
            paths,
            type(state)(index=0, state=LEASED, attempts=1, worker="ghost"),
        )
        os.utime(paths.lease(0), (1.0, 1.0))  # heartbeat long gone
        report = run_worker(tmp_path, worker_id="live", config=config)
        assert sorted(report.shards_done) == [0, 1, 2]
        assert coordinator.verify_done_shards() == []
        stats, coverage = coordinator.merge()
        assert coverage.complete
        assert _stats_equal(stats, self._single(source))

    def test_retry_budget_exhaustion_degrades_to_exact_partial(self, tmp_path):
        """A permanently failing shard ends failed; the merge is exact
        over everything else and the report names the hole."""
        config = _fleet_config(fleet_retry_budget=2)
        inner = _tkip_source(config)
        manifest = JobManifest.from_source(
            FlakyTkipSource(inner=inner, poison=(4, 5)),
            num_shards=4,
            retry_budget=config.fleet_retry_budget,
            backoff_base=0.0,
        )
        manifest.write(tmp_path)
        report = run_worker(tmp_path, worker_id="w", config=config)
        coordinator = Coordinator.open(tmp_path, config=config)
        assert coordinator.verify_done_shards() == []
        stats, coverage = coordinator.merge()
        poisoned = [
            s.index for s in manifest.shards
            if set(s.batches) & {4, 5}
        ]
        assert not coverage.complete
        assert [i for i, _ in coverage.shards_failed] == poisoned
        for _, error in coverage.shards_failed:
            assert "injected fault" in error
        failed_state = read_shard_state(coordinator.paths, poisoned[0])
        assert failed_state.state == FAILED
        assert failed_state.attempts == config.fleet_retry_budget
        # Exact partial: identical to a single process running only the
        # surviving shards' batch ranges.
        good_batches = [
            b for s in manifest.shards if s.index not in poisoned
            for b in s.batches
        ]
        expected = run_capture(inner, batches=good_batches)
        assert _stats_equal(stats, expected)
        assert report.shards_failed == poisoned

    def test_zero_done_shards_merge_to_empty_statistics(self, tmp_path):
        config = _fleet_config()
        source = _tkip_source(config)
        coordinator = Coordinator.create(
            source, tmp_path, num_shards=2, config=config
        )
        stats, coverage = coordinator.merge()
        assert not coverage.complete
        assert coverage.requests_done == 0
        assert stats.num_captured == 0


# --------------------------------------------------------------------------
# registry integration: distributed experiment params
# --------------------------------------------------------------------------


class TestDistributedExperimentIntegration:
    def test_distributed_capture_stage_matches_single_process(self, tmp_path):
        """attack-tkip distributed=N: the fleet-merged capture in the job
        directory is bit-identical to the single-process engine capture
        (recovery needs paper-scale counts, so only capture is asserted
        — same idiom as the batched checkpoint test)."""
        from repro.api import Session
        from repro.simulate import WifiAttackSimulation

        config = _fleet_config(fleet_workers=1)
        job = tmp_path / "job"
        session = Session(config)
        with pytest.raises(Exception):
            session.run(
                "attack-tkip", num_tsc=2, keys_per_tsc=256,
                packets_per_tsc=1 << 10, max_candidates=64,
                capture="batched", distributed=3, job_dir=str(job),
            )
        coordinator = Coordinator.open(job, config=config)
        assert coordinator.verify_done_shards() == []
        stats, coverage = coordinator.merge()
        assert coverage.complete
        sim = WifiAttackSimulation(config)
        single = sim.batched_capture([0, 1], 1 << 10)
        assert _stats_equal(stats, single)

    def test_distributed_param_validation(self):
        from repro.api import Session

        session = Session(_fleet_config())
        from repro.errors import ExperimentParamError

        with pytest.raises(ExperimentParamError, match="capture=batched"):
            session.run("attack-tkip", distributed=2)
        with pytest.raises(ExperimentParamError, match="job_dir"):
            session.run("attack-tkip", job_dir="/tmp/nope")
        with pytest.raises(ExperimentParamError, match="checkpoints"):
            session.run(
                "attack-https", capture="batched", distributed=2,
                checkpoint="x.npz",
            )

    def test_fleet_worker_cli_reports_json(self, tmp_path):
        config = _fleet_config()
        source = _tkip_source(config)
        Coordinator.create(source, tmp_path, num_shards=2, config=config)
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(src_root, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        out = subprocess.run(
            [sys.executable, "-m", "repro", "fleet-worker", str(tmp_path)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert out.returncode == 0, out.stderr
        report = json.loads(out.stdout)
        assert sorted(report["shards_done"]) == [0, 1]
        status = subprocess.run(
            [
                sys.executable, "-m", "repro", "fleet-status", str(tmp_path),
                "--json",
            ],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert status.returncode == 0, status.stderr
        payload = json.loads(status.stdout)
        assert payload["counts"][DONE] == 2
        assert payload["counts"][FAILED] == 0
