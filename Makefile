# Developer entry points for the RC4-biases reproduction.
#
# `make verify` is the pre-merge gate: the tier-1 test suite plus a <60 s
# smoke subset of the benchmark suite checked against the committed
# baseline, so perf regressions in the statistics pipeline fail fast
# (as a warning — see bench-check) without running the full bench matrix.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Committed post-PR baseline the smoke subset is compared against.
BENCH_BASELINE ?= benchmarks/BENCH_2026-08-08_simd_post.json
BENCH_TOLERANCE ?= 0.25

.PHONY: test bench-smoke bench-check bench verify lint

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) benchmarks/run_benchmarks.py --smoke

# Smoke subset + regression gate against the committed baseline.
# Exit 2 (regression) is downgraded to a warning — baselines recorded on
# other machines drift — while exit 1 (broken benchmarks) stays fatal.
bench-check:
	$(PYTHON) benchmarks/run_benchmarks.py --smoke \
	  --check $(BENCH_BASELINE) --tolerance $(BENCH_TOLERANCE); \
	rc=$$?; \
	if [ $$rc -eq 2 ]; then \
	  echo "WARNING: benchmark regression vs $(BENCH_BASELINE) (soft-fail)"; \
	elif [ $$rc -ne 0 ]; then \
	  exit $$rc; \
	fi

# Full benchmark run; records benchmarks/BENCH_<date>.json.
bench:
	$(PYTHON) benchmarks/run_benchmarks.py

# Requires ruff (pip install ruff); CI runs this as a separate job.
lint:
	ruff check src benchmarks tests

verify: test bench-check
