# Developer entry points for the RC4-biases reproduction.
#
# `make verify` is the pre-merge gate: the tier-1 test suite plus a <60 s
# smoke subset of the benchmark suite, so perf regressions in the
# statistics pipeline fail fast without running the full bench matrix.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench verify

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) benchmarks/run_benchmarks.py --smoke

# Full benchmark run; records benchmarks/BENCH_<date>.json.
bench:
	$(PYTHON) benchmarks/run_benchmarks.py

verify: test bench-smoke
