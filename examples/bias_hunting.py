#!/usr/bin/env python3
"""Bias hunting with hypothesis tests, as in paper §3.

Runs the registered ``bias-hunt`` experiment through the Session facade:
keystream statistics from the dataset engine, then the detection
pipeline — chi-squared uniformity scans per position, M-tests for
pairwise dependence, per-cell proportion follow-ups, Holm-corrected.
At the default scale the strong short-term biases (Mantin-Shamir Z_2 = 0,
the key-length bias Z_16 = 240, the Z_15/Z_16 pair of Table 2) surface;
the power analysis in the metrics shows how many samples the weaker
ones would need.

Run:  python examples/bias_hunting.py            (REPRO_SCALE to enlarge)
"""

from repro.api import Session


def main() -> None:
    session = Session()
    result = session.run("bias-hunt")
    m = result.metrics
    num_keys = result.params["num_keys"]
    print(f"== bias hunting over {num_keys} random 128-bit keys ==")

    print("\n[1/3] single-byte uniformity scan "
          f"(positions 1..{result.params['positions']})...")
    print(f"      {result.timings['single-scan']:.1f}s; biased positions: "
          f"{m['biased_positions']}")
    for cell in m["strongest"]:
        print(f"      Z_{cell['position']}: strongest value {cell['value']} "
              f"p = {cell['probability']:.6f} (uniform 0.003906)")

    pair_names = ", ".join(
        f"Z_{a}/Z_{b}" for a, b in result.params["pairs"]
    )
    print(f"\n[2/3] pairwise dependence scan ({pair_names})...")
    print(f"      {result.timings['pair-scan']:.1f}s; dependent pairs: "
          f"{[tuple(p) for p in m['dependent_pairs']]}")
    for cell in m["cells"]:
        (a, b), (x, y) = cell["positions"], cell["values"]
        sign = "+" if cell["relative_bias"] > 0 else "-"
        print(f"      Z_{a}={x} & Z_{b}={y}: "
              f"relative bias {sign}{abs(cell['relative_bias']):.4f}")

    print("\n[3/3] power analysis: what this scale can and cannot see")
    for row in m["power"]:
        needed = row["needed_samples"]
        status = "DETECTABLE" if row["detectable"] else "needs more data"
        print(f"      {row['bias']}: needs ~2^{needed.bit_length() - 1} "
              f"samples -> {status}")
    print(f"      smallest single-byte relative bias detectable here: "
          f"{m['min_detectable_relative_bias']:.5f}")


if __name__ == "__main__":
    main()
