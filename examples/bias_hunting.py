#!/usr/bin/env python3
"""Bias hunting with hypothesis tests, as in paper §3.

Generates keystream statistics with the worker pool, then runs the
detection pipeline: chi-squared uniformity scans per position, M-tests
for pairwise dependence, per-cell proportion follow-ups, Holm-corrected.
At the default scale the strong short-term biases (Mantin-Shamir Z_2 = 0,
the key-length bias Z_16 = 240, the Z_15/Z_16 pair of Table 2) surface;
power analysis prints how many samples the weaker ones would need.

Run:  python examples/bias_hunting.py            (REPRO_SCALE to enlarge)
"""

import time

from repro.config import get_config
from repro.datasets import DatasetSpec, generate_dataset
from repro.stats import BiasDetector, detectable_relative_bias, required_samples


def main() -> None:
    config = get_config()
    num_keys = config.scaled(1 << 19, maximum=1 << 26)
    print(f"== bias hunting over {num_keys} random 128-bit keys ==")

    print("\n[1/3] single-byte uniformity scan (positions 1..32)...")
    t0 = time.perf_counter()
    spec = DatasetSpec(kind="single", num_keys=num_keys, positions=32,
                       label="hunt-single")
    counts = generate_dataset(spec, config)
    detector = BiasDetector(alpha=1e-4)
    report = detector.scan_single_bytes(counts)
    print(f"      {time.perf_counter()-t0:.1f}s; biased positions: "
          f"{report.biased_positions}")
    for pos in report.biased_positions[:8]:
        row = counts[pos - 1]
        top = int(row.argmax())
        print(f"      Z_{pos}: strongest value {top} "
              f"p = {row[top] / row.sum():.6f} (uniform 0.003906)")

    print("\n[2/3] pairwise dependence scan (Z_15/Z_16, Z_31/Z_32, Z_1/Z_2)...")
    t0 = time.perf_counter()
    pair_spec = DatasetSpec(
        kind="pairs", num_keys=num_keys,
        pairs=((15, 16), (31, 32), (1, 2)), label="hunt-pairs",
    )
    tables = generate_dataset(pair_spec, config)
    pair_report = detector.scan_pairs(tables, [(15, 16), (31, 32), (1, 2)])
    print(f"      {time.perf_counter()-t0:.1f}s; dependent pairs: "
          f"{pair_report.dependent_pairs}")
    for cell in pair_report.cells[:10]:
        sign = "+" if cell.relative_bias > 0 else "-"
        print(f"      Z_{cell.positions[0]}={cell.values[0]} & "
              f"Z_{cell.positions[1]}={cell.values[1]}: "
              f"relative bias {sign}{abs(cell.relative_bias):.4f}")

    print("\n[3/3] power analysis: what this scale can and cannot see")
    rows = [
        ("Mantin-Shamir Z2=0 (q=1, p=2^-8)", 2.0**-8, 1.0),
        ("key-length Z16=240 (q~2^-4.8)", 2.0**-8, 2.0**-4.8),
        ("Table 2 w=1 pair (q~2^-4.9, p~2^-16)", 2.0**-15.95, -(2.0**-4.894)),
        ("Fluhrer-McGrew cell (q=2^-8, p=2^-16)", 2.0**-16, 2.0**-8),
    ]
    for label, p, q in rows:
        needed = required_samples(p, q)
        status = "DETECTABLE" if needed <= num_keys else "needs more data"
        print(f"      {label}: needs ~2^{needed.bit_length()-1} samples "
              f"-> {status}")
    q_min = detectable_relative_bias(2.0**-8, num_keys)
    print(f"      smallest single-byte relative bias detectable here: "
          f"{q_min:.5f}")


if __name__ == "__main__":
    main()
