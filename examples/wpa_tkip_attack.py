#!/usr/bin/env python3
"""The full WPA-TKIP attack of paper §5, simulated end to end.

Pipeline: build a TKIP network (real key mixing, Michael, CRC, RC4) ->
inject identical TCP packets -> capture per-TSC ciphertext statistics ->
single-byte likelihoods -> candidate list with CRC pruning -> invert
Michael -> forge a packet with the recovered MIC key.

The per-TSC keystream maps use a scaled TSC subspace (the paper burned 10
CPU-years on the full map; see DESIGN.md).  Captures are drawn with the
exact sufficient-statistic sampler so the example finishes in seconds.

Run:  python examples/wpa_tkip_attack.py          (REPRO_SCALE to enlarge)
"""

import time

from repro.config import get_config
from repro.simulate import WifiAttackSimulation, sampled_capture, tkip_timeline
from repro.tkip import default_tsc_space, generate_per_tsc, parse_msdu_data


def main() -> None:
    config = get_config()
    num_tsc = config.scaled(8, maximum=256)
    keys_per_tsc = config.scaled(1 << 12, maximum=1 << 18)
    packets_per_tsc = config.scaled(1 << 12, maximum=1 << 20)

    print("== WPA-TKIP attack (paper §5) ==")
    sim = WifiAttackSimulation(config)
    plaintext = sim.true_plaintext
    print(f"victim MIC key (hidden):  {sim.victim.mic_key.hex()}")
    print(f"injected packet: {len(plaintext)} bytes protected "
          f"(48 headers + 7 payload + 8 MIC + 4 ICV)")

    print(f"\n[1/4] measuring per-TSC keystream distributions "
          f"({num_tsc} TSC values x 2^{keys_per_tsc.bit_length()-1} keys)...")
    t0 = time.perf_counter()
    per_tsc = generate_per_tsc(
        config, default_tsc_space(num_tsc), keys_per_tsc, length=len(plaintext)
    )
    print(f"      done in {time.perf_counter() - t0:.1f}s")

    total_packets = num_tsc * packets_per_tsc
    print(f"\n[2/4] capturing {total_packets} identical-packet encryptions "
          f"(sufficient-statistic sampler)...")
    timeline = tkip_timeline(total_packets)
    print(f"      equivalent on-air time at 2500 pkts/s: "
          f"{timeline.capture_hours:.2f} hours "
          f"(paper: ~1 hour for 9.5*2^20 packets)")
    capture = sampled_capture(
        per_tsc, plaintext, range(1, len(plaintext) + 1),
        packets_per_tsc=packets_per_tsc, seed=config.rng("example-capture"),
    )

    print("\n[3/4] decrypting MIC+ICV via candidate list + CRC pruning...")
    t0 = time.perf_counter()
    result = sim.attack(capture, per_tsc, max_candidates=1 << 20)
    print(f"      first CRC-valid candidate at rank {result.candidates_tried} "
          f"({time.perf_counter() - t0:.1f}s)")
    print(f"      recovered MIC: {result.mic.hex()}  correct: {result.correct}")
    print(f"      recovered MIC key: {result.mic_key.hex()}")

    print("\n[4/4] forging a packet with the recovered MIC key...")
    frame = sim.forge_frame(result.mic_key, b"0wned by rc4biases")
    from repro.tkip import TkipSession

    receiver = TkipSession(tk=sim.victim.tk, mic_key=sim.victim.mic_key,
                           ta=sim.victim.ta)
    receiver.replay_window = frame.tsc - 1
    data = receiver.decapsulate(frame)
    _, ip, tcp, payload = parse_msdu_data(data)
    print(f"      victim accepted forged TCP packet: "
          f"{ip.source}:{tcp.source_port} -> {ip.destination}:{tcp.dest_port} "
          f"payload={payload!r}")


if __name__ == "__main__":
    main()
