#!/usr/bin/env python3
"""The full WPA-TKIP attack of paper §5, simulated end to end.

Pipeline (inside the registered ``attack-tkip`` experiment): build a
TKIP network (real key mixing, Michael, CRC, RC4) -> inject identical
TCP packets -> capture per-TSC ciphertext statistics -> single-byte
likelihoods -> candidate list with CRC pruning -> invert Michael ->
forge a packet with the recovered MIC key.

The per-TSC keystream maps use a scaled TSC subspace (the paper burned
10 CPU-years on the full map; the substitution is documented in the
ROADMAP).  Captures are drawn with the exact sufficient-statistic
sampler so the example finishes in seconds.  This script is a narrated
subscriber to the Session's progress events — the orchestration itself
lives in the registry, shared with ``python -m repro tkip``.

Run:  python examples/wpa_tkip_attack.py          (REPRO_SCALE to enlarge)
"""

from repro.api import Session


def main() -> None:
    stages = {"per-tsc": "1/4", "capture": "2/4", "recover": "3/4",
              "forge": "4/4"}
    session = Session(progress=lambda event: print(
        f"\n[{stages.get(event.stage, '?')}] {event.message}..."
    ))
    print("== WPA-TKIP attack (paper §5) ==")
    result = session.run("attack-tkip")
    m = result.metrics

    print(f"\nper-TSC measurement took {result.timings['per-tsc']:.1f}s; "
          f"equivalent on-air time at 2500 pkts/s: "
          f"{m['capture_hours_equivalent']:.2f} hours "
          f"(paper: ~1 hour for 9.5*2^20 packets)")
    print(f"first CRC-valid candidate at rank {m['candidate_rank']} "
          f"({result.timings['recover']:.1f}s)")
    print(f"recovered MIC: {m['mic']}  correct: {m['correct']}")
    print(f"recovered MIC key: {m['mic_key']}")

    if m["forged"] is not None:
        forged = m["forged"]
        print(f"victim accepted forged TCP packet: "
              f"{forged['source']} -> {forged['destination']} "
              f"payload={forged['payload']!r}")
    else:
        print("no forgery attempted (MIC key not recovered) — "
              "raise REPRO_SCALE")


if __name__ == "__main__":
    main()
