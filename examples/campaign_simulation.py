#!/usr/bin/env python3
"""Victim campaigns: the §5/§6 attacks at population scale.

A campaign samples a heterogeneous victim population (browser layout x
cookie charset x reconnect regime x per-TSC budget), groups victims
that share a keystream regime so one capture batch scores every
template in the group at once, and reduces the per-victim outcomes to
a success-rate surface keyed by the population axes.

Both campaigns are registered experiments, so the same runs are
available from the CLI:

    python -m repro run campaign-https --param population=64 \
        --param charsets=hex,base64
    python -m repro run campaign-tkip --param population=8 \
        --param budgets=1024,4096

This example keeps the populations small so it finishes in seconds;
raise ``population`` (and REPRO_SCALE) to reproduce the full surfaces.

Run:  python examples/campaign_simulation.py
"""

from repro.analysis import surface_table
from repro.api import Session


def print_surface(metrics: dict, axes: list[str]) -> None:
    """Rebuild the ascii heat table from the flattened surface records."""
    cells = {
        ("/".join(str(rec[a]) for a in axes[:-1]), str(rec[axes[-1]])):
            rec["rate"]
        for rec in metrics["surface"]
    }
    print(surface_table(
        cells,
        row_label="/".join(axes[:-1]) or axes[0],
        col_label=axes[-1],
        fmt="{:.2f}",
    ))


def main() -> None:
    session = Session()

    # --- HTTPS cookie-recovery campaign (§6) ----------------------------
    # 12 victims over two cookie alphabets: the 16-character hex alphabet
    # is fully covered by 256 candidates, base64 is not — the surface
    # shows the difficulty gradient, not just an aggregate rate.
    https = session.run(
        "campaign-https",
        population=12,
        num_requests=1 << 12,
        num_candidates=256,
        charsets="hex,base64",
        group_size=4,
    )
    m = https.metrics
    print(f"campaign-https: {m['population']} victims in "
          f"{m['num_groups']} shared-keystream groups, "
          f"{m['successes']} cookies recovered "
          f"(rate {m['success_rate']:.2f}, "
          f"~{m['capture_hours_equivalent']:.2f} victim-hours of capture "
          f"at the paper's request rate)")
    print_surface(m, ["browser", "charset", "reconnect_every"])
    fit = m["surface_fit"]
    print(f"surface fit vs pooled rate: ok={fit['ok']} "
          f"(worst cell {fit['worst_label']!r} at "
          f"{fit['worst_deviation']:.1f} sigma)\n")

    # --- TKIP decryption campaign (§5) ----------------------------------
    # Per-victim injection budgets; at example scale the batched recovery
    # stays below the paper's packet counts, so the honest surface is
    # near zero — the point here is the per-budget bookkeeping.
    tkip = session.run(
        "campaign-tkip",
        population=3,
        num_tsc=2,
        keys_per_tsc=256,
        budgets=(64, 128),
        max_candidates=64,
        group_size=2,
    )
    m = tkip.metrics
    print(f"campaign-tkip: {m['population']} victims in "
          f"{m['num_groups']} groups, {m['successes']} plaintexts "
          f"recovered at toy budgets (paper-scale budgets via "
          f"--param budgets=...)")
    for rec in m["surface"]:
        print(f"  budget {rec['packets_per_tsc']:>5} pkts/TSC: "
              f"{rec['successes']}/{rec['trials']} recovered")

    print(f"\nboth campaigns are uniform ExperimentResult records "
          f"(seed {https.provenance['seed']}, "
          f"scale {https.provenance['scale']})")


if __name__ == "__main__":
    main()
