#!/usr/bin/env python3
"""The scenario matrix: one registry, many parameterised workloads.

Every scenario here is a registered experiment, so the same runs are
available from the CLI:

    python -m repro run bias-sweep --param end=32
    python -m repro run bias-sweep-digraph
    python -m repro run bias-sweep-pertsc --param num_tsc=4
    python -m repro run attack-michael --param forge_payload_len=256
    python -m repro run attack-https --param browser=firefox
    python -m repro run attack-https --param capture=batched \
        --param num_requests=16384 --param reconnect_every=8 \
        --param cookie_len=2 --param num_candidates=8192

The matrix this example walks:

- ``bias-sweep`` (§3.3.1) — per-position single-byte bias profile,
  checked against the headline catalog cells (Z1=0x81 down, Z2=0x00 up,
  Z16=0xf0 up);
- ``bias-sweep-digraph`` (§3.3.1) — consecutive-digraph profile vs the
  generalized Fluhrer–McGrew model;
- ``bias-sweep-pertsc`` (§5.1) — per-TSC keystream sweeps on the
  batched capture engine, exposing the TSC-dependent Paterson biases
  the WPA-TKIP attack feeds on;
- ``attack-michael`` (§2.2/§5.3) — inverse-Michael key recovery from a
  decrypted packet, then Beck's fragmentation trick: a long packet
  forged from short reused keystreams;
- ``attack-https`` (§6) with per-browser request layouts — the cookie
  lands at a different keystream offset per client, and tighter token
  alphabets feed the layout-aware candidate pruner.

Run:  python examples/scenario_matrix.py
"""

from repro.api import Session


def main() -> None:
    session = Session()

    print("== scenario matrix on the experiment registry ==\n")

    # --- per-position bias sweeps (§3.3.1) ------------------------------
    sweep = session.run("bias-sweep", end=32)
    print(f"bias-sweep: positions {sweep.metrics['positions']}, "
          f"{sweep.params['num_keys']} keys "
          f"(+/- {sweep.metrics['sigma_relative']:.4f} rel. noise)")
    for cell in sweep.metrics["headline_cells"]:
        print(f"  Z{cell['position']}={cell['value']:#04x}: measured "
              f"{cell['measured_relative_bias']:+.4f} vs model "
              f"{cell['model_relative_bias']:+.4f} "
              f"(z vs uniform {cell['z_vs_uniform']:+.1f})")

    digraph = session.run("bias-sweep-digraph", end=8)
    row = digraph.metrics["profile"][0]
    strongest = row["cells"][0]
    print(f"bias-sweep-digraph: strongest digraph at r=1 is "
          f"{tuple(strongest['values'])} "
          f"(rel {strongest['relative_bias']:+.3f}); "
          f"{len(row['fm_cells'])} FM model cells compared per position")

    # --- per-TSC sweeps on the batched capture engine (§5.1) ------------
    pertsc = session.run("bias-sweep-pertsc", num_tsc=4, end=16)
    m = pertsc.metrics
    print(f"bias-sweep-pertsc: {m['num_tsc']} TSC values x "
          f"{m['packets_per_tsc']} keystreams via the capture engine; "
          f"TSC-dependent positions {m['tsc_dependent_positions']} "
          f"(spread > 4 sigma across TSC)")

    # --- Michael key recovery + fragmentation forgery (§2.2/§5.3) -------
    michael = session.run("attack-michael")
    m = michael.metrics
    print(f"\nattack-michael: key recovered={m['key_correct']} "
          f"({m['mic_key']}); forged {m['forged_msdu_len']}-byte MSDU "
          f"from {m['fragments_used']} fragments of reused keystream "
          f"({m['amplification']}x one keystream), accepted={m['accepted']}")

    # --- per-browser cookie layouts (§6) --------------------------------
    print("\nattack-https browser layouts:")
    print(f"  {'browser':<8} {'cookie span':>12} {'charset':>8} "
          f"{'rank':>5} {'pruned':>6}")
    for browser in ("generic", "firefox", "curl"):
        result = session.run("attack-https", browser=browser)
        r = result.metrics
        span = tuple(r["cookie_span"])
        print(f"  {browser:<8} {str(span):>12} {r['cookie_charset']:>8} "
              f"{r['rank']:>5} {r['pruned']:>6}   cookie={r['cookie']!r}")

    print(f"\nall runs are uniform ExperimentResult records "
          f"(seed {michael.provenance['seed']}, "
          f"scale {michael.provenance['scale']})")


if __name__ == "__main__":
    main()
