#!/usr/bin/env python3
"""The full HTTPS cookie attack of paper §6, simulated end to end.

Pipeline: cookie-jar manipulation over plain HTTP (isolate the secure
cookie, inject known cookies, pad to 512-byte records) -> JavaScript-
driven request generation -> Fluhrer-McGrew + ABSAB likelihoods ->
Algorithm 2 over the RFC 6265 alphabet -> brute force against the server.

Ciphertext statistics come from the exact sufficient-statistic sampler
(the paper's 9*2^27 requests took 75 hours on real hardware; the sampler
is distribution-exact, see DESIGN.md).  A short cookie keeps the default
run in seconds; scale up with REPRO_SCALE / cookie length.

Run:  python examples/https_cookie_attack.py
"""

import time

from repro.config import get_config
from repro.simulate import HttpsAttackSimulation, tls_timeline
from repro.tls import PAPER_REQUEST_RATE


def main() -> None:
    config = get_config()
    cookie_len = 3 if config.scale < 4 else 16
    # Sufficient-statistic sampling costs O(cells), not O(N), so the
    # ciphertext count never drops below the recovery threshold even at
    # small REPRO_SCALE.
    num_requests = config.scaled(1 << 29, minimum=1 << 29, maximum=9 * 2**27)
    num_candidates = config.scaled(1 << 12, minimum=1 << 12, maximum=1 << 23)

    print("== HTTPS secure-cookie attack (paper §6) ==")
    sim = HttpsAttackSimulation(config, cookie_len=cookie_len, max_gap=128)
    print(f"secret cookie (hidden):  {sim.secret.decode('latin-1')}")
    print(f"request layout: {sim.layout.request_len} bytes "
          f"(+20 MAC = {sim.layout.request_len + 20}, multiple of 256), "
          f"cookie at positions {sim.layout.cookie_span}")

    print(f"\n[1/3] collecting statistics from {num_requests} requests...")
    timeline = tls_timeline(num_requests, candidates=num_candidates)
    print(f"      equivalent victim time at {PAPER_REQUEST_RATE:.0f} req/s: "
          f"{timeline.capture_hours:.1f} hours "
          f"(paper: 75 h for 9*2^27 requests)")
    t0 = time.perf_counter()
    stats = sim.sampled_statistics(num_requests)
    print(f"      {len(stats.absab_counts)} ABSAB alignments + "
          f"{stats.fm_counts.shape[0]} FM transitions in "
          f"{time.perf_counter() - t0:.1f}s")

    print(f"\n[2/3] generating {num_candidates} candidates "
          f"(Algorithm 2, 90-char RFC 6265 alphabet)...")
    t0 = time.perf_counter()
    result = sim.attack(stats, num_candidates=num_candidates)
    print(f"      done in {time.perf_counter() - t0:.1f}s")

    print(f"\n[3/3] brute force against the server oracle...")
    print(f"      cookie found at rank {result.rank} "
          f"after {result.attempts} attempts")
    print(f"      brute-force wall clock at 20000 tests/s: "
          f"{result.attempts / 20000:.2f}s (paper: <7 min for all 2^23)")
    print(f"      recovered cookie: {result.cookie.decode('latin-1')}")


if __name__ == "__main__":
    main()
