#!/usr/bin/env python3
"""The full HTTPS cookie attack of paper §6, simulated end to end.

Pipeline (inside the registered ``attack-https`` experiment): cookie-jar
manipulation over plain HTTP (isolate the secure cookie, inject known
cookies, pad to 512-byte records) -> JavaScript-driven request
generation -> Fluhrer-McGrew + ABSAB likelihoods -> Algorithm 2 over the
RFC 6265 alphabet -> brute force against the server.

Ciphertext statistics come from the exact sufficient-statistic sampler
(the paper's 9*2^27 requests took 75 hours on real hardware; the sampler
is distribution-exact).  A short cookie keeps the default run in
seconds; scale up with REPRO_SCALE / ``--param cookie_len=16``.  Like
the other examples, this narrates the shared ``attack-https`` registry
entry — the same one ``python -m repro https`` runs.

Run:  python examples/https_cookie_attack.py
"""

from repro.api import Session
from repro.tls import PAPER_REQUEST_RATE, PAPER_TEST_RATE


def main() -> None:
    stages = {"collect": "1/3", "candidates": "2/3"}
    session = Session(progress=lambda event: print(
        f"\n[{stages.get(event.stage, '?')}] {event.message}..."
    ))
    print("== HTTPS secure-cookie attack (paper §6) ==")
    result = session.run("attack-https")
    m = result.metrics

    print(f"\nrequest layout: {m['request_len']} bytes "
          f"(+20 MAC = {m['request_len'] + 20}, multiple of 256), "
          f"cookie at positions {tuple(m['cookie_span'])}")
    print(f"collected {m['absab_alignments']} ABSAB alignments + "
          f"{m['fm_transitions']} FM transitions in "
          f"{result.timings['collect']:.1f}s "
          f"(equivalent victim time at {PAPER_REQUEST_RATE:.0f} req/s: "
          f"{m['capture_hours_equivalent']:.1f} hours; paper: 75 h)")
    print(f"candidate generation took {result.timings['recover']:.1f}s")

    print("\n[3/3] brute force against the server oracle...")
    print(f"      cookie found at rank {m['rank']} "
          f"after {m['attempts']} attempts")
    print(f"      brute-force wall clock at {PAPER_TEST_RATE:.0f} tests/s: "
          f"{m['bruteforce_seconds_equivalent']:.2f}s "
          f"(paper: <7 min for all 2^23)")
    print(f"      recovered cookie: {m['cookie']}")


if __name__ == "__main__":
    main()
