#!/usr/bin/env python3
"""Mantin's ABSAB bias vs gap length (paper §4.2).

Measures Pr[(Z_r, Z_r+1) = (Z_r+g+2, Z_r+g+3)] in real RC4 keystream for
several gaps and compares with the alpha(g) model of eq 1/18, pooling
over positions deep in the keystream.  The paper confirmed the bias to
gaps >= 135 and noted eq 1 slightly underestimates reality; the attacks
cap gaps at 128.

Run:  python examples/absab_gap_study.py          (REPRO_SCALE to enlarge)
"""

import numpy as np

from repro.analysis import ascii_curve
from repro.biases import absab_alpha
from repro.config import get_config
from repro.rc4 import batch_keystream
from repro.rc4.keygen import derive_keys


def main() -> None:
    config = get_config()
    num_keys = config.scaled(48, maximum=2048)
    stream_len = config.scaled(1 << 13, maximum=1 << 17)
    gaps = [0, 2, 8, 32, 128]

    print(f"== ABSAB digraph repetition: {num_keys} keys x "
          f"{stream_len} bytes ==")
    keys = derive_keys(config, "absab-study", num_keys)
    stream = batch_keystream(keys, stream_len, drop=1024).astype(np.int32)
    digraphs = (stream[:, :-1] << 8) | stream[:, 1:]

    measured, modeled = [], []
    for gap in gaps:
        a = digraphs[:, : -(gap + 2)]
        b = digraphs[:, gap + 2 :]
        matches = int((a == b).sum())
        trials = a.size
        p_hat = matches / trials
        alpha = absab_alpha(gap)
        z = (matches - trials * alpha) / np.sqrt(trials * alpha)
        measured.append(p_hat * 2**16)
        modeled.append(alpha * 2**16)
        print(f"  g={gap:>3}: measured 2^16*p = {p_hat * 2**16:.5f}   "
              f"model {alpha * 2**16:.5f}   z={z:+.2f}   "
              f"(uniform = 1.00000)")

    print("\nrelative bias vs gap (x: gap, y: 2^16*p - 1):")
    print(ascii_curve(
        gaps,
        {
            "measured": [m - 1.0 for m in measured],
            "model": [m - 1.0 for m in modeled],
        },
        width=48, height=10,
    ))
    print("\nNote: separating alpha(g) from uniform per-gap needs ~2^36 "
          "digraphs; at example scale expect agreement within noise, with "
          "the pooled small-gap cells trending positive.")


if __name__ == "__main__":
    main()
