#!/usr/bin/env python3
"""Mantin's ABSAB bias vs gap length (paper §4.2).

Runs the registered ``absab-gap`` experiment: measures
Pr[(Z_r, Z_r+1) = (Z_r+g+2, Z_r+g+3)] in real RC4 keystream for several
gaps and compares with the alpha(g) model of eq 1/18, pooling over
positions deep in the keystream.  The paper confirmed the bias to gaps
>= 135 and noted eq 1 slightly underestimates reality; the attacks cap
gaps at 128.

Run:  python examples/absab_gap_study.py          (REPRO_SCALE to enlarge)
"""

from repro.analysis import ascii_curve
from repro.api import Session


def main() -> None:
    session = Session()
    result = session.run("absab-gap")
    num_keys = result.params["num_keys"]
    stream_len = result.params["stream_len"]

    print(f"== ABSAB digraph repetition: {num_keys} keys x "
          f"{stream_len} bytes ==")
    for row in result.metrics["gaps"]:
        print(f"  g={row['gap']:>3}: measured 2^16*p = "
              f"{row['measured_scaled']:.5f}   "
              f"model {row['model_scaled']:.5f}   z={row['z']:+.2f}   "
              f"(uniform = 1.00000)")

    gaps = [row["gap"] for row in result.metrics["gaps"]]
    print("\nrelative bias vs gap (x: gap, y: 2^16*p - 1):")
    print(ascii_curve(
        gaps,
        {
            "measured": [row["measured_scaled"] - 1.0
                         for row in result.metrics["gaps"]],
            "model": [row["model_scaled"] - 1.0
                      for row in result.metrics["gaps"]],
        },
        width=48, height=10,
    ))
    print("\nNote: separating alpha(g) from uniform per-gap needs ~2^36 "
          "digraphs; at example scale expect agreement within noise, with "
          "the pooled small-gap cells trending positive.")


if __name__ == "__main__":
    main()
