#!/usr/bin/env python3
"""Quickstart: from a keystream bias to recovered plaintext via the API.

Demonstrates the broadcast-RC4 setting (Mantin-Shamir): the same plaintext
byte is encrypted under many independent RC4 keys; the doubled probability
of Z_2 = 0 leaks it.  The whole pipeline is one registered experiment —
``recovery-broadcast`` — run through the :class:`repro.api.Session`
facade, the same path the CLI uses (``python -m repro run
recovery-broadcast``).

Run:  python examples/quickstart.py
"""

from repro.api import Session


def main() -> None:
    session = Session()
    result = session.run("recovery-broadcast")
    m = result.metrics
    num = result.params["num_ciphertexts"]

    # --- 1. One byte via the Mantin-Shamir bias -------------------------
    print(f"encrypted {num} times under random keys")
    print(f"secret byte at Z_2:    0x{m['secret_byte']:02x}")
    print(f"recovered (argmax):    0x{m['recovered_byte']:02x}")
    assert m["byte_correct"], "need more ciphertexts — raise REPRO_SCALE"

    # --- 2. Candidate lists (paper Algorithm 1) -------------------------
    # The full 4-byte recovery won't nail every position (only Z_2 has a
    # strong bias at this sample count) — but the true plaintext appears
    # in the ranked candidate list, which is what the attacks exploit.
    print(f"\ntop-3 candidates: {m['top_candidates']}")
    print(f"true plaintext rank in top-{result.params['list_size']}: "
          f"{m['candidate_rank']}")

    # --- 3. Streaming enumeration ---------------------------------------
    if m["lazy_rank"] is not None:
        print(f"lazy enumerator found the plaintext at rank {m['lazy_rank']}")
    else:
        print(f"plaintext beyond rank {result.params['lazy_limit']} "
              "(expected at low sample counts)")

    # Every run is a uniform, machine-readable record:
    print(f"\nresult record: {result.experiment} "
          f"ran in {result.timings['total']:.2f}s "
          f"(seed {result.provenance['seed']}, "
          f"scale {result.provenance['scale']})")


if __name__ == "__main__":
    main()
