#!/usr/bin/env python3
"""Quickstart: from a keystream bias to recovered plaintext in ~40 lines.

Demonstrates the broadcast-RC4 setting (Mantin-Shamir): the same plaintext
byte is encrypted under many independent RC4 keys; the doubled probability
of Z_2 = 0 leaks it.  We then upgrade to a multi-byte secret and walk the
candidate list of Algorithm 1.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.biases import single_byte_model
from repro.config import get_config
from repro.core import PlaintextRecovery
from repro.rc4 import rc4_crypt


def main() -> None:
    config = get_config()
    rng = config.rng("quickstart")
    num_ciphertexts = config.scaled(1 << 15)

    # --- 1. One byte via the Mantin-Shamir bias -------------------------
    secret_byte = 0x42
    positions = 4  # we encrypt 4 bytes; position 2 (1-indexed) is Z_2
    plaintext = bytes([0x00, secret_byte, 0x00, 0x00])
    counts = np.zeros((positions, 256), dtype=np.int64)
    for _ in range(num_ciphertexts):
        key = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
        ciphertext = rc4_crypt(key, plaintext)
        for r in range(positions):
            counts[r, ciphertext[r]] += 1

    dists = np.stack([single_byte_model(r) for r in range(1, positions + 1)])
    recovery = PlaintextRecovery(dists)
    guess = recovery.most_likely(counts)
    print(f"encrypted {num_ciphertexts} times under random keys")
    print(f"secret byte at Z_2:    0x{secret_byte:02x}")
    print(f"recovered (argmax):    0x{guess[1]:02x}")
    assert guess[1] == secret_byte, "need more ciphertexts — raise REPRO_SCALE"

    # --- 2. Candidate lists (paper Algorithm 1) -------------------------
    # The full 4-byte recovery won't nail every position (only Z_2 has a
    # strong bias at this sample count) — but the true plaintext appears
    # in the ranked candidate list, which is what the attacks exploit.
    candidates, scores = recovery.candidates(counts, 64)
    rank = candidates.index(plaintext) if plaintext in candidates else None
    print(f"\ntop-3 candidates: {[c.hex() for c in candidates[:3]]}")
    print(f"true plaintext rank in top-64: {rank}")

    # --- 3. Streaming enumeration ---------------------------------------
    for i, (cand, score) in enumerate(recovery.iter_candidates(counts)):
        if cand == plaintext:
            print(f"lazy enumerator found the plaintext at rank {i}")
            break
        if i >= 4095:
            print("plaintext beyond rank 4096 (expected at low sample counts)")
            break


if __name__ == "__main__":
    main()
