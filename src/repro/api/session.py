"""The :class:`Session` facade — one object that runs any experiment.

A session owns a :class:`~repro.config.ReproConfig`, a dataset cache
(in-memory always, on-disk via :mod:`repro.datasets.store` when a cache
directory is given), and a list of progress callbacks.  ``run(name,
**overrides)`` resolves the experiment in the registry, validates and
completes its parameters, executes it under a :class:`RunContext`, and
returns a uniform :class:`~repro.api.result.ExperimentResult`.

Every consumer — the CLI, the examples, the benchmarks — drives this
facade, so orchestration lives in exactly one place.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - avoids an api <-> warehouse cycle
    from ..warehouse import RunStore, SweepReport

from .._version import __version__
from ..config import ReproConfig, get_config
from ..datasets.manager import DatasetSpec, generate_dataset
from ..datasets.store import dataset_cache_path, load_dataset, save_dataset
from ..errors import ExperimentError
from ..rc4 import _native
from .registry import ExperimentSpec, get_experiment
from .result import ExperimentResult


@dataclass(frozen=True)
class ProgressEvent:
    """One progress notification from a running experiment.

    Attributes:
        experiment: registry name of the running experiment.
        stage: short machine-friendly stage label (also the timing key).
        message: human-readable one-liner.
        data: small JSON-able payload (counts, ranks, ...).
    """

    experiment: str
    stage: str
    message: str
    data: dict[str, Any] = field(default_factory=dict)


ProgressCallback = Callable[[ProgressEvent], None]


class Session:
    """Facade for running registered experiments under one configuration.

    Every consumer — the CLI, the examples, the benchmarks, the sweep
    orchestrator — drives experiments through a session, so seeding,
    dataset caching, progress, and result persistence live in exactly
    one place.

    Args:
        config: run configuration; ``None`` reads the environment
            (:func:`repro.config.get_config`).
        cache_dir: optional directory for the on-disk dataset cache.
            When unset, datasets are cached in memory only (fresh
            sessions regenerate — what benchmarks want).
        progress: optional initial progress callback.
        store: optional :class:`~repro.warehouse.RunStore` (or a path,
            which opens one).  When set, every :meth:`run` result is
            appended to the warehouse automatically, deduplicated by
            run fingerprint.

    Example:

        >>> from repro.api import Session
        >>> from repro.config import ReproConfig
        >>> session = Session(ReproConfig(seed=7, scale=1.0))
        >>> result = session.run("dataset-single", num_keys=256, positions=2)
        >>> result.experiment
        'dataset-single'
        >>> sorted(result.params) == ["num_keys", "positions"]
        True
    """

    def __init__(
        self,
        config: ReproConfig | None = None,
        *,
        cache_dir: str | Path | None = None,
        progress: ProgressCallback | None = None,
        store: "RunStore | str | Path | None" = None,
    ) -> None:
        self.config = config if config is not None else get_config()
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._callbacks: list[ProgressCallback] = []
        self._dataset_cache: dict[str, np.ndarray] = {}
        if store is not None and isinstance(store, (str, Path)):
            from ..warehouse import RunStore

            store = RunStore(store)
        self.store: "RunStore | None" = store
        if progress is not None:
            self.add_progress(progress)

    # --- progress ---------------------------------------------------------

    def add_progress(self, callback: ProgressCallback) -> None:
        """Subscribe ``callback`` to every :class:`ProgressEvent`."""
        self._callbacks.append(callback)

    def _emit(self, event: ProgressEvent) -> None:
        for callback in self._callbacks:
            callback(event)

    # --- dataset cache ----------------------------------------------------

    def dataset(
        self,
        spec: DatasetSpec,
        *,
        processes: int | None = None,
        worker_chunk: int | None = None,
    ) -> np.ndarray:
        """Generate (or fetch from cache) the counters for ``spec``.

        The cache key covers every spec field plus the session seed, so
        two sessions at the same seed share disk entries while different
        seeds never collide.  Cached counters are returned as read-only
        views; copy before mutating.  A non-default ``worker_chunk``
        (a testing knob that changes shard key derivation, hence the
        counters) bypasses both cache layers entirely.
        """
        if worker_chunk is not None:
            return generate_dataset(
                spec,
                self.config,
                processes=processes,
                worker_chunk=worker_chunk,
                threads=self.config.native_threads,
            )
        path = dataset_cache_path(self.cache_dir or "", spec, self.config)
        key = path.name
        cached = self._dataset_cache.get(key)
        if cached is not None:
            return cached
        if self.cache_dir is not None and path.exists():
            # expected_spec guards against hash collisions and stale files.
            counts, _ = load_dataset(path, expected_spec=spec)
        else:
            counts = generate_dataset(
                spec,
                self.config,
                processes=processes,
                threads=self.config.native_threads,
            )
            if self.cache_dir is not None:
                save_dataset(path, counts, spec)
        counts.setflags(write=False)
        self._dataset_cache[key] = counts
        return counts

    # --- running ----------------------------------------------------------

    def run(self, name: str, /, **overrides: Any) -> ExperimentResult:
        """Run a registered experiment and return its uniform result.

        Parameter defaults are scale-aware (resolved through the session
        config), overrides are validated against the registry schema,
        and the returned record carries full provenance.  When the
        session has a warehouse ``store``, the result is appended to it
        before returning (a fingerprint-duplicate append is a no-op).

        Example:

            >>> from repro.api import Session
            >>> from repro.config import ReproConfig
            >>> session = Session(ReproConfig(seed=7, scale=1.0))
            >>> session.run("dataset-single", num_keys=256).provenance["seed"]
            7

        Raises:
            UnknownExperimentError: ``name`` is not registered.
            ExperimentParamError: an override is unknown or ill-typed.
            ExperimentError: the experiment returned a malformed record.
        """
        spec = get_experiment(name)
        params = spec.resolve_params(self.config, overrides)
        ctx = RunContext(session=self, spec=spec, params=params)
        start = time.perf_counter()
        metrics = spec.fn(ctx)
        total = time.perf_counter() - start
        if not isinstance(metrics, dict):
            raise ExperimentError(
                f"experiment {name!r} returned {type(metrics).__name__}, "
                "expected a metrics dict"
            )
        timings = dict(ctx.timings)
        timings["total"] = total
        result = ExperimentResult(
            experiment=name,
            params=params,
            metrics=metrics,
            timings=timings,
            provenance=self._provenance(),
        )
        if self.store is not None:
            self.store.append(result)
        return result

    def sweep(
        self,
        specs: "Any",
        *,
        store: "RunStore | str | Path | None" = None,
        progress: "Callable[[Any, str], None] | None" = None,
    ) -> "SweepReport":
        """Run a parameter-grid sweep, persisting every run.

        A thin wrapper over :func:`repro.warehouse.run_sweep`: expands
        the given :class:`~repro.warehouse.SweepSpec` declarations
        against the registry, skips every point whose fingerprint the
        store already holds (crash-tolerant resume), and records
        ran/skipped/failed outcomes per point.

        Args:
            specs: iterable of :class:`~repro.warehouse.SweepSpec` (or
                pre-planned runs from
                :func:`repro.warehouse.plan_sweep`).
            store: destination warehouse; defaults to the session's own
                ``store``.  One of the two must be set.
            progress: optional ``callback(plan, status)`` per point.

        Example:

            >>> from repro.warehouse import SweepSpec
            >>> report = session.sweep(
            ...     [SweepSpec("dataset-single",
            ...                grid={"num_keys": [256, 512]})],
            ...     store="runs/",
            ... )  # doctest: +SKIP
            >>> report.counts()  # doctest: +SKIP
            {'ran': 2, 'skipped': 0, 'failed': 0}
        """
        from ..warehouse import RunStore, run_sweep

        if store is None:
            store = self.store
        elif isinstance(store, (str, Path)):
            store = RunStore(store)
        if store is None:
            raise ExperimentError(
                "sweep needs a run store: pass store=... or construct the "
                "Session with store=..."
            )
        return run_sweep(self, specs, store, progress=progress)

    def _provenance(self) -> dict[str, Any]:
        config = self.config
        return {
            "version": __version__,
            "seed": config.seed,
            "scale": config.scale,
            "native": config.native and _native.available(),
            "native_threads": config.native_threads,
            "native_interleave": config.native_interleave,
            "native_simd": config.native_simd and _native.simd_available(),
        }


@dataclass
class RunContext:
    """What an experiment implementation receives.

    Wraps the session with run-scoped conveniences: resolved ``params``,
    a :meth:`timer` that records per-stage wall-clock into the result,
    :meth:`emit` for progress events, seeded :meth:`rng` streams, and the
    session dataset cache.
    """

    session: Session
    spec: ExperimentSpec
    params: dict[str, Any]
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def config(self) -> ReproConfig:
        return self.session.config

    def rng(self, *labels: object) -> np.random.Generator:
        """Child RNG namespaced under this experiment's name."""
        return self.config.rng("experiment", self.spec.name, *labels)

    def emit(self, stage: str, message: str, **data: Any) -> None:
        """Send a progress event to the session's subscribers."""
        self.session._emit(
            ProgressEvent(
                experiment=self.spec.name, stage=stage, message=message, data=data
            )
        )

    @contextmanager
    def timer(self, stage: str) -> Iterator[None]:
        """Record the wall-clock of a stage into the result timings."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.timings[stage] = (
                self.timings.get(stage, 0.0) + time.perf_counter() - start
            )

    def dataset(
        self, spec: DatasetSpec, *, processes: int | None = None
    ) -> np.ndarray:
        """Session-cached dataset generation (see :meth:`Session.dataset`)."""
        return self.session.dataset(spec, processes=processes)

    def capture_progress(self, stage: str = "capture", *, every: int = 8):
        """Progress callback bridging the capture engine to the session.

        Returns a callable for :func:`repro.capture.run_capture`'s
        ``progress`` argument that emits a :class:`ProgressEvent` every
        ``every`` batches, at every checkpoint write, and at completion.
        """

        def callback(progress) -> None:
            boundary = (
                progress.batches_done % every == 0
                or progress.batches_done == progress.num_batches
                or progress.checkpointed
            )
            if not boundary:
                return
            self.emit(
                stage,
                f"captured {progress.requests_done}/"
                f"{progress.total_requests} requests "
                f"(batch {progress.batches_done}/{progress.num_batches})",
                requests_done=progress.requests_done,
                total_requests=progress.total_requests,
                batches_done=progress.batches_done,
                num_batches=progress.num_batches,
                checkpointed=progress.checkpointed,
            )

        return callback

    def fleet_progress(self, stage: str = "fleet"):
        """Progress callback bridging the fleet coordinator to the session.

        Returns a callable for :class:`repro.fleet.Coordinator`'s
        ``progress`` argument that emits one :class:`ProgressEvent` per
        coordinator notification (shard completions, quarantines, the
        final merge verdict).
        """

        def callback(progress) -> None:
            detail = f" — {progress.message}" if progress.message else ""
            self.emit(
                stage,
                f"fleet {progress.stage}: "
                f"{progress.shards_done}/{progress.num_shards} shards done"
                f" ({progress.shards_failed} failed){detail}",
                fleet_stage=progress.stage,
                shards_done=progress.shards_done,
                shards_failed=progress.shards_failed,
                num_shards=progress.num_shards,
                requests_done=progress.requests_done,
                total_requests=progress.total_requests,
            )

        return callback
