"""The registered experiment catalogue.

One decorated function per reproducible unit, mirroring the paper's
result matrix:

- ``dataset-*`` — the five keystream-statistics dataset kinds (§3.2);
- ``bias-hunt`` — hypothesis-test bias detection plus power analysis (§3.1);
- ``recovery-broadcast`` — broadcast plaintext recovery via the
  Mantin-Shamir bias and Algorithm 1 candidates (§4.1);
- ``absab-gap`` — Mantin's ABSAB bias vs gap length against the
  alpha(g) model (§4.2);
- ``attack-tkip`` / ``attack-https`` — the two end-to-end attacks
  (§5 / §6), statistic-level sampling, real recovery machinery;
- ``attack-michael`` — Michael key recovery from a decrypted packet plus
  Beck's fragmentation-based keystream-reuse forgery (§2.2, §5.3;
  *Enhanced TKIP Michael Attacks*, 2010);
- ``bias-sweep`` — per-position single-byte bias profiles over a
  configurable position range via the fused counting kernels (§3.3.1);
- ``bias-sweep-pertsc`` — per-TSC keystream sweeps riding the batched
  capture engine (§5.1), exposing the TSC-dependent Paterson biases;
- ``campaign-https`` / ``campaign-tkip`` — the two attacks at fleet
  scale: a heterogeneous victim population captured in shared-keystream
  groups via the multi-template kernel, reduced to per-cell
  success-rate and time-to-first-recovery surfaces.

Implementations receive a :class:`~repro.api.session.RunContext` and
return a JSON-able metrics dict; parameters are declared on the spec so
the CLI, the examples, and the tests share one schema.  Keep metrics
small — counters belong in the dataset cache, not in result records.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..biases import absab_alpha, single_byte_model
from ..campaign.population import (
    DEFAULT_BROWSERS,
    DEFAULT_BUDGETS,
    DEFAULT_CHARSETS,
    DEFAULT_RECONNECT_REGIMES,
)
from ..core import PlaintextRecovery
from ..datasets.manager import DatasetSpec
from ..errors import ExperimentParamError
from ..rc4.batch import batch_keystream
from ..rc4.keygen import derive_keys
from ..stats import BiasDetector, detectable_relative_bias, required_samples
from .registry import Param, experiment

UNIFORM_BYTE = 1.0 / 256.0


def _validate_distributed(p) -> None:
    """Shared checks for the ``distributed``/``job_dir`` fleet params."""
    if p["distributed"] < 0:
        raise ExperimentParamError(
            f"distributed must be >= 0, got {p['distributed']}"
        )
    if p["distributed"]:
        if p["capture"] != "batched":
            raise ExperimentParamError("distributed requires capture=batched")
        if p["checkpoint"]:
            raise ExperimentParamError(
                "the fleet manages its own per-shard checkpoints; "
                "drop checkpoint for distributed runs"
            )
    elif p["job_dir"]:
        raise ExperimentParamError("job_dir requires distributed > 0")


def _run_fleet_capture(ctx, source, *, num_shards, job_dir, stage):
    """Route a batched capture through the fleet coordinator.

    Returns ``(statistics, fleet_metrics)``; the statistics are the
    exact merge of every completed shard (bit-identical to a local
    ``run_capture`` when the job completes), and the metrics record the
    coverage report plus where the job directory lives.
    """
    import os
    import tempfile

    from ..fleet import fleet_capture

    if not job_dir:
        job_dir = tempfile.mkdtemp(prefix="repro-fleet-")
    workers = ctx.config.fleet_workers or (os.cpu_count() or 1)
    workers = max(1, min(workers, num_shards))
    stats, report = fleet_capture(
        source,
        job_dir,
        num_shards=num_shards,
        workers=workers,
        config=ctx.config,
        progress=ctx.fleet_progress(stage),
    )
    metrics = dict(report.to_jsonable())
    metrics["job_dir"] = str(job_dir)
    metrics["workers"] = workers
    return stats, metrics


# --------------------------------------------------------------------------
# §3.2 — the five dataset kinds
# --------------------------------------------------------------------------


def _top_cells_2d(counts: np.ndarray, limit: int = 5) -> list[dict[str, Any]]:
    """Strongest single-byte cells of a ``(positions, 256)`` counter."""
    totals = counts.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        rel = np.where(totals > 0, counts / totals * 256.0 - 1.0, 0.0)
    flat = np.argsort(-np.abs(rel), axis=None)[:limit]
    cells = []
    for index in flat:
        r, v = divmod(int(index), 256)
        total = int(totals[r, 0])
        cells.append(
            {
                "position": r + 1,
                "value": v,
                "probability": float(counts[r, v] / total) if total else 0.0,
                "relative_bias": float(rel[r, v]),
            }
        )
    return cells


def _top_digraph_cells(
    counts: np.ndarray, rows: list[Any], limit: int = 5
) -> list[dict[str, Any]]:
    """Strongest digraph cells of an ``(rows, 256, 256)`` counter."""
    candidates = []
    for index, row_label in enumerate(rows):
        table = counts[index]
        total = int(table.sum())
        if total == 0:
            continue
        rel = table / total * 65536.0 - 1.0
        for flat in np.argsort(-np.abs(rel), axis=None)[:limit]:
            a, b = divmod(int(flat), 256)
            candidates.append(
                {
                    "row": row_label,
                    "values": (a, b),
                    "probability": float(table[a, b] / total),
                    "relative_bias": float(rel[a, b]),
                }
            )
    candidates.sort(key=lambda cell: -abs(cell["relative_bias"]))
    return candidates[:limit]


def _run_dataset(ctx, spec: DatasetSpec) -> np.ndarray:
    ctx.emit(
        "generate",
        f"generating {spec.kind} dataset over {spec.num_keys} keys",
        num_keys=spec.num_keys,
    )
    with ctx.timer("generate"):
        return ctx.dataset(spec)


@experiment(
    "dataset-single",
    description="Single-byte keystream distributions Pr[Z_r = k]",
    section="§3.2",
    params=(
        Param("num_keys", scaled=1 << 17, maximum=1 << 26,
              help="independent RC4 keys to count"),
        Param("positions", default=32, help="leading keystream positions"),
    ),
)
def _dataset_single(ctx) -> dict[str, Any]:
    p = ctx.params
    spec = DatasetSpec(
        kind="single", num_keys=p["num_keys"], positions=p["positions"],
        label="api-single",
    )
    counts = _run_dataset(ctx, spec)
    return {
        "kind": "single",
        "shape": counts.shape,
        "total_counts": int(counts.sum()),
        "strongest_cells": _top_cells_2d(counts),
    }


@experiment(
    "dataset-consec",
    description="Consecutive digraph distributions Pr[(Z_r, Z_r+1)]",
    section="§3.2",
    params=(
        Param("num_keys", scaled=1 << 15, maximum=1 << 24),
        Param("positions", default=16, help="leading digraph positions"),
    ),
)
def _dataset_consec(ctx) -> dict[str, Any]:
    p = ctx.params
    spec = DatasetSpec(
        kind="consec", num_keys=p["num_keys"], positions=p["positions"],
        label="api-consec",
    )
    counts = _run_dataset(ctx, spec)
    return {
        "kind": "consec",
        "shape": counts.shape,
        "total_counts": int(counts.sum()),
        "strongest_cells": _top_digraph_cells(
            counts, [r + 1 for r in range(counts.shape[0])]
        ),
    }


@experiment(
    "dataset-pairs",
    description="Joint distributions of selected position pairs (Z_a, Z_b)",
    section="§3.2",
    params=(
        Param("num_keys", scaled=1 << 17, maximum=1 << 24),
        Param("pairs", kind="pairs", default=((1, 2), (15, 16), (31, 32)),
              help="position pairs a:b, comma-separated"),
    ),
)
def _dataset_pairs(ctx) -> dict[str, Any]:
    p = ctx.params
    spec = DatasetSpec(
        kind="pairs", num_keys=p["num_keys"], pairs=tuple(p["pairs"]),
        label="api-pairs",
    )
    counts = _run_dataset(ctx, spec)
    return {
        "kind": "pairs",
        "shape": counts.shape,
        "total_counts": int(counts.sum()),
        "strongest_cells": _top_digraph_cells(counts, list(p["pairs"])),
    }


@experiment(
    "dataset-equality",
    description="Equality events Pr[Z_a = Z_b] for selected pairs",
    section="§3.2",
    params=(
        Param("num_keys", scaled=1 << 17, maximum=1 << 24),
        Param("pairs", kind="pairs", default=((1, 2), (15, 16)),
              help="position pairs a:b, comma-separated"),
    ),
)
def _dataset_equality(ctx) -> dict[str, Any]:
    p = ctx.params
    spec = DatasetSpec(
        kind="equality", num_keys=p["num_keys"], pairs=tuple(p["pairs"]),
        label="api-equality",
    )
    counts = _run_dataset(ctx, spec)
    rows = []
    for (a, b), (equal, trials) in zip(p["pairs"], counts):
        probability = float(equal / trials) if trials else 0.0
        rows.append(
            {
                "positions": (a, b),
                "probability": probability,
                "relative_bias": probability / UNIFORM_BYTE - 1.0,
            }
        )
    return {
        "kind": "equality",
        "shape": counts.shape,
        "total_counts": int(counts.sum()),
        "pairs": rows,
    }


@experiment(
    "dataset-longterm",
    description="Counter-binned long-term digraph distributions (drop 1023)",
    section="§3.2",
    params=(
        Param("num_keys", scaled=64, maximum=1 << 12),
        Param("stream_len", scaled=1 << 12, maximum=1 << 16,
              help="digraphs contributed per key"),
        Param("drop", default=1023, help="initial keystream bytes to drop"),
        Param("gap", default=0, help="digraph gap (0 = FM, 1 = w*256 pairs)"),
    ),
)
def _dataset_longterm(ctx) -> dict[str, Any]:
    p = ctx.params
    spec = DatasetSpec(
        kind="longterm", num_keys=p["num_keys"], stream_len=p["stream_len"],
        drop=p["drop"], gap=p["gap"], label="api-longterm",
    )
    counts = _run_dataset(ctx, spec)
    return {
        "kind": "longterm",
        "shape": counts.shape,
        "total_counts": int(counts.sum()),
        "strongest_cells": _top_digraph_cells(
            counts, [f"i={i}" for i in range(counts.shape[0])], limit=5
        ),
    }


# --------------------------------------------------------------------------
# §3.1 — bias detection
# --------------------------------------------------------------------------

#: Reference biases for the power analysis: (label, cell probability p,
#: relative bias q) exactly as the paper states them.
POWER_ROWS = (
    ("Mantin-Shamir Z2=0 (q=1, p=2^-8)", 2.0 ** -8, 1.0),
    ("key-length Z16=240 (q~2^-4.8)", 2.0 ** -8, 2.0 ** -4.8),
    ("Table 2 w=1 pair (q~2^-4.9, p~2^-16)", 2.0 ** -15.95, -(2.0 ** -4.894)),
    ("Fluhrer-McGrew cell (q=2^-8, p=2^-16)", 2.0 ** -16, 2.0 ** -8),
)


@experiment(
    "bias-hunt",
    description="Hypothesis-test bias detection with Holm correction + power",
    section="§3.1",
    params=(
        Param("num_keys", scaled=1 << 20, maximum=1 << 26),
        Param("positions", default=32, help="single-byte scan width"),
        Param("pairs", kind="pairs", default=((15, 16), (31, 32), (1, 2)),
              help="pairs for the dependence scan"),
        Param("alpha", kind="float", default=1e-4,
              help="rejection threshold (paper: 1e-4)"),
    ),
)
def _bias_hunt(ctx) -> dict[str, Any]:
    p = ctx.params
    detector = BiasDetector(alpha=p["alpha"])

    ctx.emit("single-scan", "single-byte uniformity scan "
             f"(positions 1..{p['positions']})")
    with ctx.timer("single-scan"):
        counts = ctx.dataset(DatasetSpec(
            kind="single", num_keys=p["num_keys"], positions=p["positions"],
            label="hunt-single",
        ))
        report = detector.scan_single_bytes(counts)
    strongest = []
    for pos in report.biased_positions[:8]:
        row = counts[pos - 1]
        top = int(row.argmax())
        strongest.append(
            {
                "position": pos,
                "value": top,
                "probability": float(row[top] / row.sum()),
            }
        )

    ctx.emit("pair-scan", "pairwise dependence scan "
             f"({', '.join(f'Z_{a}/Z_{b}' for a, b in p['pairs'])})")
    with ctx.timer("pair-scan"):
        tables = ctx.dataset(DatasetSpec(
            kind="pairs", num_keys=p["num_keys"], pairs=tuple(p["pairs"]),
            label="hunt-pairs",
        ))
        pair_report = detector.scan_pairs(tables, list(p["pairs"]))
    cells = [
        {
            "positions": cell.positions,
            "values": cell.values,
            "relative_bias": float(cell.relative_bias),
        }
        for cell in pair_report.cells[:10]
    ]

    ctx.emit("power", "power analysis at this sample count")
    power = []
    for label, cell_p, cell_q in POWER_ROWS:
        needed = required_samples(cell_p, cell_q)
        power.append(
            {
                "bias": label,
                "needed_samples": int(needed),
                "detectable": bool(needed <= p["num_keys"]),
            }
        )
    return {
        "num_keys": p["num_keys"],
        "biased_positions": list(report.biased_positions),
        "strongest": strongest,
        "dependent_pairs": list(pair_report.dependent_pairs),
        "cells": cells,
        "power": power,
        "min_detectable_relative_bias": float(
            detectable_relative_bias(2.0 ** -8, p["num_keys"])
        ),
    }


# --------------------------------------------------------------------------
# §4.1 — broadcast plaintext recovery
# --------------------------------------------------------------------------


@experiment(
    "recovery-broadcast",
    description="Broadcast recovery: Mantin-Shamir bias + Algorithm 1 list",
    section="§4.1",
    params=(
        Param("num_ciphertexts", scaled=1 << 16, maximum=1 << 24,
              help="independent encryptions of the same plaintext"),
        Param("positions", default=4, help="plaintext length in bytes"),
        Param("secret_byte", default=0x42,
              help="plaintext byte hidden at position 2 (Z_2)"),
        Param("list_size", default=64, help="Algorithm 1 candidate list size"),
        Param("lazy_limit", default=4096,
              help="cap for the lazy best-first enumeration"),
    ),
)
def _recovery_broadcast(ctx) -> dict[str, Any]:
    p = ctx.params
    positions = p["positions"]
    if not 2 <= positions <= 256:
        raise ExperimentParamError(f"positions must be 2..256, got {positions}")
    if not 0 <= p["secret_byte"] <= 255:
        raise ExperimentParamError(
            f"secret_byte must be 0..255, got {p['secret_byte']}"
        )
    plaintext = bytearray(positions)
    plaintext[1] = p["secret_byte"]
    plaintext = bytes(plaintext)

    ctx.emit("encrypt", f"encrypting under {p['num_ciphertexts']} random keys")
    with ctx.timer("encrypt"):
        keys = derive_keys(ctx.config, "api-broadcast", p["num_ciphertexts"])
        stream = batch_keystream(
            keys, positions, threads=ctx.config.native_threads,
            simd=ctx.config.native_simd,
        )
        cipher = stream ^ np.frombuffer(plaintext, dtype=np.uint8)
        counts = np.zeros((positions, 256), dtype=np.int64)
        for r in range(positions):
            counts[r] = np.bincount(cipher[:, r], minlength=256)

    ctx.emit("recover", "argmax recovery + Algorithm 1 candidate list")
    with ctx.timer("recover"):
        dists = np.stack(
            [single_byte_model(r) for r in range(1, positions + 1)]
        )
        recovery = PlaintextRecovery(dists)
        guess = recovery.most_likely(counts)
        candidates, _scores = recovery.candidates(counts, p["list_size"])
        rank = candidates.index(plaintext) if plaintext in candidates else None
        lazy_rank = None
        for i, (cand, _score) in enumerate(recovery.iter_candidates(counts)):
            if cand == plaintext:
                lazy_rank = i
                break
            if i + 1 >= p["lazy_limit"]:
                break
    return {
        "secret_byte": p["secret_byte"],
        "recovered": [int(b) for b in guess],
        "recovered_byte": int(guess[1]),
        "byte_correct": bool(int(guess[1]) == p["secret_byte"]),
        "candidate_rank": rank,
        "lazy_rank": lazy_rank,
        "top_candidates": [c.hex() for c in candidates[:3]],
    }


# --------------------------------------------------------------------------
# §4.2 — ABSAB gap study
# --------------------------------------------------------------------------


@experiment(
    "absab-gap",
    description="Mantin ABSAB digraph repetition vs the alpha(g) model",
    section="§4.2",
    params=(
        Param("num_keys", scaled=48, maximum=2048),
        Param("stream_len", scaled=1 << 13, maximum=1 << 17,
              help="keystream bytes per key"),
        Param("gaps", kind="ints", default=(0, 2, 8, 32, 128),
              help="gap lengths g to measure"),
        Param("drop", default=1024, help="initial bytes dropped per key"),
    ),
)
def _absab_gap(ctx) -> dict[str, Any]:
    p = ctx.params
    # Each gap g needs at least one digraph pair (2*(stream_len-1) - ...):
    # the A column slice is empty once g > stream_len - 4.
    bad = [g for g in p["gaps"] if not 0 <= g <= p["stream_len"] - 4]
    if bad:
        raise ExperimentParamError(
            f"gaps must be within 0..stream_len-4 "
            f"(= {p['stream_len'] - 4}), got {bad}"
        )
    ctx.emit(
        "generate",
        f"generating {p['num_keys']} keystreams x {p['stream_len']} bytes",
    )
    with ctx.timer("generate"):
        keys = derive_keys(ctx.config, "absab-study", p["num_keys"])
        stream = batch_keystream(
            keys, p["stream_len"], drop=p["drop"],
            threads=ctx.config.native_threads,
            simd=ctx.config.native_simd,
        ).astype(np.int32)
        digraphs = (stream[:, :-1] << 8) | stream[:, 1:]

    with ctx.timer("measure"):
        gaps = []
        for gap in p["gaps"]:
            a = digraphs[:, : -(gap + 2)]
            b = digraphs[:, gap + 2:]
            matches = int((a == b).sum())
            trials = a.size
            p_hat = matches / trials
            alpha = absab_alpha(gap)
            z = (matches - trials * alpha) / np.sqrt(trials * alpha)
            gaps.append(
                {
                    "gap": gap,
                    "measured_scaled": p_hat * 65536.0,
                    "model_scaled": float(alpha * 65536.0),
                    "z": float(z),
                    "trials": trials,
                }
            )
    return {"num_keys": p["num_keys"], "stream_len": p["stream_len"], "gaps": gaps}


# --------------------------------------------------------------------------
# §5 — WPA-TKIP end-to-end attack
# --------------------------------------------------------------------------


@experiment(
    "attack-tkip",
    description="End-to-end WPA-TKIP MIC key recovery + packet forgery",
    section="§5",
    params=(
        Param("num_tsc", scaled=8, maximum=256,
              help="TSC values in the per-TSC distribution map"),
        Param("keys_per_tsc", scaled=1 << 12, maximum=1 << 18,
              help="keys measured per TSC value"),
        Param("packets_per_tsc", scaled=1 << 12, minimum=1 << 10,
              maximum=1 << 20, help="captured packets per TSC value"),
        Param("max_candidates", default=1 << 20,
              help="candidate list cap for the CRC-pruned search"),
        Param("forge", kind="bool", default=True,
              help="forge a packet with the recovered MIC key"),
        Param("capture", kind="str", default="sampled",
              help="capture fidelity: sampled (statistic-level "
                   "multinomials) or batched (keystream-level engine)"),
        Param("batch_size", default=4096,
              help="packets per engine batch (capture=batched)"),
        Param("checkpoint", kind="str", default="",
              help="resumable-capture checkpoint path (capture=batched)"),
        Param("distributed", default=0,
              help="fleet shard count (0 = off; capture=batched only; "
                   "local worker count from REPRO_FLEET_WORKERS)"),
        Param("job_dir", kind="str", default="",
              help="fleet job directory shared by coordinator and workers "
                   "(distributed > 0; default: a fresh temp dir)"),
    ),
)
def _attack_tkip(ctx) -> dict[str, Any]:
    from ..simulate import WifiAttackSimulation, sampled_capture, tkip_timeline
    from ..tkip import (
        TkipSession,
        default_tsc_space,
        generate_per_tsc,
        parse_msdu_data,
    )

    p = ctx.params
    if p["capture"] not in ("sampled", "batched"):
        raise ExperimentParamError(
            f"capture must be 'sampled' or 'batched', got {p['capture']!r}"
        )
    if p["capture"] != "batched" and p["checkpoint"]:
        raise ExperimentParamError("checkpoint requires capture=batched")
    _validate_distributed(p)
    sim = WifiAttackSimulation(ctx.config)
    plaintext = sim.true_plaintext

    ctx.emit(
        "per-tsc",
        f"measuring per-TSC keystream distributions ({p['num_tsc']} TSC "
        f"values x {p['keys_per_tsc']} keys)",
    )
    with ctx.timer("per-tsc"):
        per_tsc = generate_per_tsc(
            ctx.config,
            default_tsc_space(p["num_tsc"]),
            p["keys_per_tsc"],
            length=len(plaintext),
        )

    total_packets = p["num_tsc"] * p["packets_per_tsc"]
    timeline = tkip_timeline(total_packets)
    ctx.emit(
        "capture",
        f"capturing {total_packets} identical-packet encryptions "
        f"via {p['capture']} capture "
        f"(~{timeline.capture_hours:.2f} h on-air at 2500 pkts/s)",
        total_packets=total_packets,
    )
    fleet_metrics = None
    with ctx.timer("capture"):
        if p["capture"] == "batched" and p["distributed"]:
            capture, fleet_metrics = _run_fleet_capture(
                ctx,
                sim.capture_source(
                    default_tsc_space(p["num_tsc"]),
                    p["packets_per_tsc"],
                    batch_size=p["batch_size"],
                ),
                num_shards=p["distributed"],
                job_dir=p["job_dir"],
                stage="capture",
            )
        elif p["capture"] == "batched":
            capture = sim.batched_capture(
                default_tsc_space(p["num_tsc"]),
                p["packets_per_tsc"],
                batch_size=p["batch_size"],
                checkpoint_path=p["checkpoint"] or None,
                progress=ctx.capture_progress("capture"),
            )
        else:
            capture = sampled_capture(
                per_tsc,
                plaintext,
                range(1, len(plaintext) + 1),
                packets_per_tsc=p["packets_per_tsc"],
                seed=ctx.rng("capture"),
            )

    ctx.emit("recover", "decrypting MIC+ICV via candidate list + CRC pruning")
    with ctx.timer("recover"):
        result = sim.attack(
            capture, per_tsc, max_candidates=p["max_candidates"]
        )

    forged = None
    if p["forge"] and result.correct:
        ctx.emit("forge", "forging a packet with the recovered MIC key")
        with ctx.timer("forge"):
            frame = sim.forge_frame(result.mic_key, b"0wned by rc4biases")
            receiver = TkipSession(
                tk=sim.victim.tk, mic_key=sim.victim.mic_key, ta=sim.victim.ta
            )
            receiver.replay_window = frame.tsc - 1
            data = receiver.decapsulate(frame)
            _, ip, tcp, payload = parse_msdu_data(data)
            forged = {
                "source": f"{ip.source}:{tcp.source_port}",
                "destination": f"{ip.destination}:{tcp.dest_port}",
                "payload": payload,
                "accepted": True,
            }
    return {
        "captures": capture.num_captured,
        "capture": p["capture"],
        "candidate_rank": result.candidates_tried,
        "correct": bool(result.correct),
        "mic": result.mic.hex(),
        "mic_key": result.mic_key.hex(),
        "plaintext_len": len(plaintext),
        "capture_hours_equivalent": timeline.capture_hours,
        "forged": forged,
        "fleet": fleet_metrics,
    }


# --------------------------------------------------------------------------
# §2.2 / §5.3 — Michael key recovery and Beck's fragmentation forgery
# --------------------------------------------------------------------------


@experiment(
    "attack-michael",
    description="Michael key recovery + Beck fragmentation keystream reuse",
    section="§2.2/§5.3",
    params=(
        Param("num_harvest", scaled=8, minimum=2, maximum=256,
              help="known-plaintext captures to bank keystreams from"),
        Param("forge_payload_len", scaled=160, minimum=8, maximum=896,
              help="TCP payload length of the long forged packet (capped "
                   "so 16 fragments of the harvested keystream cover it)"),
        Param("max_fragments", default=16,
              help="fragment budget for the forgery (802.11 allows 16)"),
        Param("priority", default=0, help="QoS priority / TID of the forgery"),
    ),
)
def _attack_michael(ctx) -> dict[str, Any]:
    from ..tkip import (
        KeystreamPool,
        TcpPacketSpec,
        TkipSession,
        build_protected_msdu,
        fragment_msdu,
        michael,
        michael_header,
        reassemble_fragments,
        recover_key,
        split_protected_msdu,
    )

    p = ctx.params
    victim_mac = bytes.fromhex("0013d4fe0a11")
    ap_mac = bytes.fromhex("00254b7e33c0")
    victim = TkipSession.random(ctx.rng("victim"), victim_mac)
    spec = TcpPacketSpec(
        source_ip="192.168.1.101", dest_ip="203.0.113.7",
        source_port=51324, dest_port=80, payload=b"ATTACK!",
    )
    plaintext = build_protected_msdu(spec, victim.mic_key, ap_mac, victim_mac)

    ctx.emit(
        "harvest",
        f"banking keystreams from {p['num_harvest']} known-plaintext "
        "captures (retransmissions of the decrypted packet)",
    )
    with ctx.timer("harvest"):
        pool = KeystreamPool()
        for _ in range(p["num_harvest"]):
            frame = victim.encapsulate(spec.msdu_data(), ap_mac, victim_mac)
            pool.add(frame, plaintext)

    ctx.emit("invert", "running Michael backwards over the decrypted packet")
    with ctx.timer("invert"):
        data, mic, _icv = split_protected_msdu(plaintext)
        mic_key = recover_key(michael_header(ap_mac, victim_mac) + data, mic)
    key_correct = mic_key == victim.mic_key

    forge_spec = TcpPacketSpec(
        source_ip="203.0.113.7", dest_ip="192.168.1.101",
        source_port=80, dest_port=51324,
        payload=b"B" * p["forge_payload_len"],
    )
    forged_msdu = forge_spec.msdu_data()
    budget_capacity = pool.capacity(max_fragments=p["max_fragments"])
    ctx.emit(
        "forge",
        f"fragmenting a {len(forged_msdu)}-byte MSDU over reused "
        f"keystreams (pool capacity {budget_capacity} bytes across "
        f"{p['max_fragments']} fragments)",
    )
    with ctx.timer("forge"):
        fragments = fragment_msdu(
            forged_msdu, mic_key, ap_mac, victim_mac, pool,
            priority=p["priority"], max_fragments=p["max_fragments"],
        )
        protected = reassemble_fragments(victim.tk, fragments)
        received_data, received_mic = protected[:-8], protected[-8:]
        expected = michael(
            victim.mic_key,
            michael_header(ap_mac, victim_mac, p["priority"]) + received_data,
        )
        accepted = received_mic == expected and received_data == forged_msdu

    single_capacity = len(plaintext) - 4
    return {
        "mic_key": mic_key.hex(),
        "key_correct": bool(key_correct),
        "correct": bool(key_correct and accepted),
        "harvested_keystreams": len(pool),
        "pool_capacity_bytes": budget_capacity,
        "forged_msdu_len": len(forged_msdu),
        "fragments_used": len(fragments),
        "single_keystream_capacity": single_capacity,
        "amplification": round(len(forged_msdu) / single_capacity, 3),
        "accepted": bool(accepted),
    }


# --------------------------------------------------------------------------
# §3.3.1 — per-position bias sweep
# --------------------------------------------------------------------------

#: Headline single-byte cells a sweep reports when its range covers them:
#: (position, value, catalog probability or None for qualitative entries).
def _sweep_headline_cells() -> list[tuple[int, int, float]]:
    from ..biases import KEYLEN_BIAS_16, MANTIN_SHAMIR, Z1_129, zero_bias

    cells = [
        (Z1_129.position, Z1_129.value, Z1_129.probability),
        (MANTIN_SHAMIR.position, MANTIN_SHAMIR.value, MANTIN_SHAMIR.probability),
        (KEYLEN_BIAS_16.position, KEYLEN_BIAS_16.value, KEYLEN_BIAS_16.probability),
        (3, 0, zero_bias(3).probability),
    ]
    return cells


@experiment(
    "bias-sweep",
    description="Per-position single-byte bias profile over a position range",
    section="§3.3.1",
    params=(
        Param("num_keys", scaled=1 << 17, maximum=1 << 26,
              help="independent RC4 keys to count"),
        Param("start", default=1, help="first 1-indexed position (inclusive)"),
        Param("end", default=64, help="last 1-indexed position (inclusive)"),
        Param("top", default=3, help="strongest cells reported per position"),
    ),
)
def _bias_sweep(ctx) -> dict[str, Any]:
    p = ctx.params
    start, end = p["start"], p["end"]
    if not 1 <= start <= end <= 4096:
        raise ExperimentParamError(
            f"need 1 <= start <= end <= 4096, got start={start} end={end}"
        )
    if p["top"] < 1:
        raise ExperimentParamError(f"top must be >= 1, got {p['top']}")
    spec = DatasetSpec(
        kind="single", num_keys=p["num_keys"], positions=end,
        label="api-bias-sweep",
    )
    counts = _run_dataset(ctx, spec)[start - 1 : end]

    ctx.emit("profile", f"profiling positions {start}..{end}")
    with ctx.timer("profile"):
        totals = counts.sum(axis=1, keepdims=True).astype(np.float64)
        rel = counts / totals * 256.0 - 1.0
        sigma = np.sqrt(255.0 / float(p["num_keys"]))
        profile = []
        for row in range(counts.shape[0]):
            order = np.argsort(-np.abs(rel[row]))[: p["top"]]
            profile.append(
                {
                    "position": start + row,
                    "cells": [
                        {
                            "value": int(v),
                            "probability": float(counts[row, v] / totals[row, 0]),
                            "relative_bias": float(rel[row, v]),
                            "z": float(rel[row, v] / sigma),
                        }
                        for v in order
                    ],
                }
            )
        headline = []
        for position, value, probability in _sweep_headline_cells():
            if not start <= position <= end:
                continue
            row = position - start
            headline.append(
                {
                    "position": position,
                    "value": value,
                    "measured_probability": float(
                        counts[row, value] / totals[row, 0]
                    ),
                    "model_probability": probability,
                    "measured_relative_bias": float(rel[row, value]),
                    "model_relative_bias": probability * 256.0 - 1.0,
                    "z_vs_uniform": float(rel[row, value] / sigma),
                }
            )
        # Sen Gupta et al.: value 0 is positively biased for 3 <= r <= 255.
        zero_lo, zero_hi = max(start, 3), min(end, 255)
        if zero_lo <= zero_hi:
            zero_rel = rel[zero_lo - start : zero_hi - start + 1, 0]
            zero_fraction = float((zero_rel > 0).mean())
        else:
            zero_fraction = None
    return {
        "num_keys": p["num_keys"],
        "positions": [start, end],
        "sigma_relative": float(sigma),
        "profile": profile,
        "headline_cells": headline,
        "zero_bias_positive_fraction": zero_fraction,
    }


@experiment(
    "bias-sweep-digraph",
    description="Per-position consecutive-digraph profile vs the FM model",
    section="§3.3.1",
    params=(
        Param("num_keys", scaled=1 << 15, maximum=1 << 24,
              help="independent RC4 keys to count"),
        Param("start", default=1, help="first digraph start position"),
        Param("end", default=16, help="last digraph start position"),
        Param("top", default=2, help="strongest cells reported per position"),
    ),
)
def _bias_sweep_digraph(ctx) -> dict[str, Any]:
    from ..biases import fm_biased_cells, position_to_counter

    p = ctx.params
    start, end = p["start"], p["end"]
    if not 1 <= start <= end <= 512:
        raise ExperimentParamError(
            f"need 1 <= start <= end <= 512, got start={start} end={end}"
        )
    if p["top"] < 1:
        raise ExperimentParamError(f"top must be >= 1, got {p['top']}")
    spec = DatasetSpec(
        kind="consec", num_keys=p["num_keys"], positions=end,
        label="api-bias-sweep-digraph",
    )
    counts = _run_dataset(ctx, spec)[start - 1 : end]

    ctx.emit("profile", f"profiling digraphs at positions {start}..{end}")
    with ctx.timer("profile"):
        total = float(p["num_keys"])
        sigma = np.sqrt(65535.0 / total)  # std of the relative bias at p ~ 2^-16
        profile = []
        for row in range(counts.shape[0]):
            r = start + row
            table = counts[row]
            rel = table / total * 65536.0 - 1.0
            cells = []
            for flat in np.argsort(-np.abs(rel), axis=None)[: p["top"]]:
                a, b = divmod(int(flat), 256)
                cells.append(
                    {
                        "values": (a, b),
                        "probability": float(table[a, b] / total),
                        "relative_bias": float(rel[a, b]),
                        "z": float(rel[a, b] / sigma),
                    }
                )
            fm = []
            for (a, b), probability in fm_biased_cells(position_to_counter(r), r):
                fm.append(
                    {
                        "values": (a, b),
                        "measured_probability": float(table[a, b] / total),
                        "model_probability": probability,
                        "measured_relative_bias": float(rel[a, b]),
                        "model_relative_bias": probability * 65536.0 - 1.0,
                    }
                )
            profile.append({"position": r, "cells": cells, "fm_cells": fm})
    return {
        "num_keys": p["num_keys"],
        "positions": [start, end],
        "sigma_relative": float(sigma),
        "profile": profile,
    }


@experiment(
    "bias-sweep-pertsc",
    description="Per-TSC single-byte keystream sweeps on the capture engine",
    section="§5.1",
    params=(
        Param("num_tsc", scaled=4, maximum=256,
              help="TSC values swept (evenly spread over the 2^16 space)"),
        Param("packets_per_tsc", scaled=1 << 12, maximum=1 << 18,
              help="keystreams measured per TSC value"),
        Param("start", default=1, help="first 1-indexed position (inclusive)"),
        Param("end", default=16, help="last 1-indexed position (inclusive)"),
        Param("top", default=2, help="strongest cells reported per TSC"),
        Param("batch_size", default=4096,
              help="keystreams per capture-engine batch"),
    ),
)
def _bias_sweep_pertsc(ctx) -> dict[str, Any]:
    """TSC-dependent keystream biases (Paterson et al., paper §5.1).

    Rides the batched capture engine with an all-zero plaintext, so the
    counted ciphertext *is* the keystream: one
    :class:`~repro.capture.TkipCaptureSource` campaign per run, sharded
    into deterministic batches, measures Pr[Z_r = k | TSC] for every
    swept TSC value.
    """
    from ..capture import TkipCaptureSource, run_capture
    from ..tkip import default_tsc_space

    p = ctx.params
    start, end = p["start"], p["end"]
    if not 1 <= start <= end <= 512:
        raise ExperimentParamError(
            f"need 1 <= start <= end <= 512, got start={start} end={end}"
        )
    if p["top"] < 1:
        raise ExperimentParamError(f"top must be >= 1, got {p['top']}")
    if not 1 <= p["num_tsc"] <= 65536:
        raise ExperimentParamError(
            f"num_tsc must be 1..65536, got {p['num_tsc']}"
        )
    tsc_values = default_tsc_space(p["num_tsc"])
    total = p["num_tsc"] * p["packets_per_tsc"]
    ctx.emit(
        "capture",
        f"measuring {p['num_tsc']} TSC values x {p['packets_per_tsc']} "
        f"keystreams ({total} total) on the capture engine",
        total=total,
    )
    with ctx.timer("capture"):
        source = TkipCaptureSource(
            config=ctx.config,
            plaintext=bytes(end),  # zeros: ciphertext == keystream
            tsc_values=tuple(tsc_values),
            packets_per_tsc=p["packets_per_tsc"],
            positions=range(start, end + 1),
            batch_size=p["batch_size"],
            label="api-pertsc-sweep",
        )
        capture = run_capture(
            source, progress=ctx.capture_progress("capture")
        )

    ctx.emit("profile", f"profiling positions {start}..{end} per TSC")
    with ctx.timer("profile"):
        stacked = np.stack(
            [capture.counts[tsc & 0xFFFF] for tsc in tsc_values]
        ).astype(np.float64)
        totals = stacked.sum(axis=2, keepdims=True)
        rel = stacked / totals * 256.0 - 1.0
        sigma = float(np.sqrt(255.0 / p["packets_per_tsc"]))
        profile = []
        for t, tsc in enumerate(tsc_values):
            cells = _top_cells_2d(capture.counts[tsc & 0xFFFF], p["top"])
            for cell in cells:
                cell["position"] += start - 1
            profile.append({"tsc": tsc, "cells": cells})
        # TSC dependence: how much the strongest per-position bias moves
        # across TSC values — flat for TSC-independent positions, wide
        # where the public key bytes bite (the §5.1 effect).
        strongest = np.abs(rel).max(axis=2)
        spread = strongest.max(axis=0) - strongest.min(axis=0)
        dependent = [
            start + int(r) for r in np.nonzero(spread > 4.0 * sigma)[0]
        ]
    return {
        "num_tsc": p["num_tsc"],
        "packets_per_tsc": p["packets_per_tsc"],
        "positions": [start, end],
        "sigma_relative": sigma,
        "profile": profile,
        "tsc_spread_per_position": [float(s) for s in spread],
        "tsc_dependent_positions": dependent,
        "total_counts": int(stacked.sum()),
    }


# --------------------------------------------------------------------------
# §6 — TLS/HTTPS cookie attack
# --------------------------------------------------------------------------


@experiment(
    "attack-https",
    description="End-to-end HTTPS secure-cookie recovery + brute force",
    section="§6",
    params=(
        Param("cookie_len", default=0,
              help="secret cookie length; 0 = auto (3, or 16 at scale >= 4)"),
        Param("num_requests", scaled=1 << 29, minimum=1 << 29,
              maximum=9 * 2 ** 27, help="encrypted requests to sample"),
        Param("num_candidates", scaled=1 << 16, minimum=1 << 12,
              maximum=1 << 23, help="Algorithm 2 candidate list size"),
        Param("max_gap", default=128, help="ABSAB gap cap (paper: 128)"),
        Param("browser", kind="str", default="generic",
              help="victim client layout: generic/chrome/firefox/safari/curl"),
        Param("capture", kind="str", default="sampled",
              help="capture fidelity: sampled (statistic-level "
                   "multinomials) or batched (keystream-level engine)"),
        Param("batch_size", default=4096,
              help="requests per engine batch (capture=batched)"),
        Param("reconnect_every", default=1,
              help="requests per connection before the victim rekeys "
                   "(capture=batched; 1 = fresh connection per request, "
                   "the Fig 10 record-churn regime)"),
        Param("checkpoint", kind="str", default="",
              help="resumable-capture checkpoint path (capture=batched)"),
        Param("distributed", default=0,
              help="fleet shard count (0 = off; capture=batched only; "
                   "local worker count from REPRO_FLEET_WORKERS)"),
        Param("job_dir", kind="str", default="",
              help="fleet job directory shared by coordinator and workers "
                   "(distributed > 0; default: a fresh temp dir)"),
    ),
)
def _attack_https(ctx) -> dict[str, Any]:
    from ..simulate import HttpsAttackSimulation, tls_timeline
    from ..tls.bruteforce import PAPER_TEST_RATE
    from ..tls.http import BROWSER_PROFILES

    p = ctx.params
    if p["browser"] not in BROWSER_PROFILES:
        raise ExperimentParamError(
            f"browser must be one of {', '.join(sorted(BROWSER_PROFILES))}; "
            f"got {p['browser']!r}"
        )
    if p["capture"] not in ("sampled", "batched"):
        raise ExperimentParamError(
            f"capture must be 'sampled' or 'batched', got {p['capture']!r}"
        )
    if p["capture"] != "batched" and (p["reconnect_every"] != 1 or p["checkpoint"]):
        raise ExperimentParamError(
            "reconnect_every/checkpoint require capture=batched"
        )
    _validate_distributed(p)
    cookie_len = p["cookie_len"]
    if cookie_len <= 0:
        cookie_len = 3 if ctx.config.scale < 4 else 16
    sim = HttpsAttackSimulation(
        ctx.config, cookie_len=cookie_len, max_gap=p["max_gap"],
        browser=p["browser"],
    )
    timeline = tls_timeline(p["num_requests"], candidates=p["num_candidates"])

    ctx.emit(
        "collect",
        f"collecting statistics from {p['num_requests']} requests "
        f"via {p['capture']} capture "
        f"(~{timeline.capture_hours:.1f} victim-hours at paper rate)",
        num_requests=p["num_requests"],
    )
    fleet_metrics = None
    with ctx.timer("collect"):
        if p["capture"] == "batched" and p["distributed"]:
            stats, fleet_metrics = _run_fleet_capture(
                ctx,
                sim.capture_source(
                    p["num_requests"],
                    batch_size=p["batch_size"],
                    reconnect_every=p["reconnect_every"],
                ),
                num_shards=p["distributed"],
                job_dir=p["job_dir"],
                stage="collect",
            )
        elif p["capture"] == "batched":
            stats = sim.batched_statistics(
                p["num_requests"],
                batch_size=p["batch_size"],
                reconnect_every=p["reconnect_every"],
                checkpoint_path=p["checkpoint"] or None,
                progress=ctx.capture_progress("collect"),
            )
        else:
            stats = sim.sampled_statistics(p["num_requests"])

    ctx.emit(
        "candidates",
        f"generating {p['num_candidates']} candidates "
        "(Algorithm 2, RFC 6265 alphabet)",
    )
    with ctx.timer("recover"):
        result = sim.attack(stats, num_candidates=p["num_candidates"])

    return {
        "browser": p["browser"],
        "capture": p["capture"],
        "reconnect_every": p["reconnect_every"],
        "cookie_charset": sim.profile.cookie_charset_name,
        "cookie_len": cookie_len,
        "num_requests": result.num_requests,
        "rank": result.rank,
        "attempts": result.attempts,
        "pruned": result.pruned,
        "cookie": result.cookie.decode("latin-1"),
        "request_len": sim.layout.request_len,
        "cookie_span": sim.layout.cookie_span,
        "absab_alignments": len(stats.absab_counts),
        "fm_transitions": int(stats.fm_counts.shape[0]),
        "capture_hours_equivalent": timeline.capture_hours,
        "bruteforce_seconds_equivalent": result.attempts / PAPER_TEST_RATE,
        "fleet": fleet_metrics,
    }


# --------------------------------------------------------------------------
# §5/§6 at fleet scale — victim-population campaigns
# --------------------------------------------------------------------------


def _validate_campaign_fleet(p) -> None:
    """Fleet/checkpoint checks for the campaign experiments (which have a
    checkpoint *directory* and no ``capture`` fidelity switch)."""
    if p["distributed"] < 0:
        raise ExperimentParamError(
            f"distributed must be >= 0, got {p['distributed']}"
        )
    if p["distributed"] and p["checkpoint"]:
        raise ExperimentParamError(
            "the fleet manages its own per-shard checkpoints; "
            "drop checkpoint for distributed campaigns"
        )
    if p["job_dir"] and not p["distributed"]:
        raise ExperimentParamError("job_dir requires distributed > 0")


def _parse_names(p, name: str) -> tuple[str, ...]:
    values = tuple(v.strip() for v in p[name].split(",") if v.strip())
    if not values:
        raise ExperimentParamError(f"{name} must name at least one value")
    return values


def _surface_metrics(result) -> list[dict[str, Any]]:
    """The success surface flattened to JSON-able cell records."""
    cells = []
    for key, cell in result.success_surface().items():
        record = dict(zip(result.axes, key))
        record.update(cell)
        cells.append(record)
    return cells


def _emit_surface(ctx, result, stage: str) -> None:
    from ..analysis import surface_table

    cells = result.heat_cells("rate")
    if not cells:
        return
    axes = "/".join(result.axes[:-1]) or result.axes[0]
    ctx.emit(
        stage,
        "success-rate surface:\n"
        + surface_table(
            cells, row_label=axes, col_label=result.axes[-1], fmt="{:.2f}"
        ),
    )


@experiment(
    "campaign-https",
    description="§6 at fleet scale: cookie-recovery success surface over "
                "a heterogeneous victim population",
    section="§6",
    params=(
        Param("population", scaled=64, maximum=4096,
              help="victims to sample (0 = empty campaign, a no-op)"),
        Param("num_requests", scaled=1 << 13, maximum=1 << 24,
              help="encrypted requests captured per victim group"),
        Param("cookie_len", default=2,
              help="secret cookie length per victim"),
        Param("num_candidates", scaled=1 << 10, maximum=1 << 23,
              help="Algorithm 2 candidate list size per victim"),
        Param("max_gap", default=4, help="ABSAB gap cap"),
        Param("batch_size", default=4096,
              help="requests per engine batch (must divide by the "
                   "largest reconnect regime)"),
        Param("group_size", default=8,
              help="max victims sharing one keystream capture group"),
        Param("browsers", kind="str", default=",".join(DEFAULT_BROWSERS),
              help="comma-separated client-layout axis"),
        Param("charsets", kind="str", default=",".join(DEFAULT_CHARSETS),
              help="comma-separated cookie-alphabet axis"),
        Param("reconnect_regimes", kind="ints",
              default=DEFAULT_RECONNECT_REGIMES,
              help="comma-separated requests-per-connection axis"),
        Param("checkpoint", kind="str", default="",
              help="campaign checkpoint directory: per-group capture "
                   "NPZs plus finished-group outcome records; rerunning "
                   "with the same directory resumes mid-campaign"),
        Param("distributed", default=0,
              help="fleet shards per victim group (0 = off; local worker "
                   "count from REPRO_FLEET_WORKERS)"),
        Param("job_dir", kind="str", default="",
              help="fleet job directory, one subdir per victim group "
                   "(distributed > 0; default: fresh temp dirs)"),
    ),
)
def _campaign_https(ctx) -> dict[str, Any]:
    from ..campaign import Population, run_https_campaign
    from ..simulate import tls_timeline

    p = ctx.params
    if p["population"] < 0:
        raise ExperimentParamError(
            f"population must be >= 0, got {p['population']}"
        )
    _validate_campaign_fleet(p)
    population = Population.sample(
        ctx.config,
        p["population"],
        browsers=_parse_names(p, "browsers"),
        charsets=_parse_names(p, "charsets"),
        reconnect_regimes=p["reconnect_regimes"],
        label="campaign-https",
    )
    timeline = tls_timeline(p["num_requests"], candidates=p["num_candidates"])
    ctx.emit(
        "campaign",
        f"campaigning against {len(population)} victims "
        f"({p['num_requests']} requests each, shared-keystream groups "
        f"of <= {p['group_size']}; ~{timeline.capture_hours:.2f} "
        "victim-hours at paper rate)",
        population=len(population),
    )
    with ctx.timer("campaign"):
        result = run_https_campaign(
            ctx.config,
            population,
            num_requests=p["num_requests"],
            cookie_len=p["cookie_len"],
            num_candidates=p["num_candidates"],
            max_gap=p["max_gap"],
            batch_size=p["batch_size"],
            group_size=p["group_size"],
            checkpoint_dir=p["checkpoint"] or None,
            distributed=p["distributed"],
            job_dir=p["job_dir"] or None,
            on_group=lambda i, n, tag: ctx.emit(
                "capture", f"group {i + 1}/{n}: {tag}"
            ),
        )
    _emit_surface(ctx, result, "surface")
    fit = result.surface_fit()
    return {
        "population": result.trials,
        "num_groups": result.num_groups,
        "successes": result.successes,
        "success_rate": (
            result.successes / result.trials if result.trials else None
        ),
        "surface": _surface_metrics(result),
        "surface_fit": {
            "ok": fit.ok,
            "worst_label": fit.worst_label,
            "worst_deviation": fit.worst_deviation,
        },
        "capture_hours_equivalent": timeline.capture_hours,
    }


@experiment(
    "campaign-tkip",
    description="§5 at fleet scale: TKIP decryption campaign over a "
                "population of per-TSC injection budgets",
    section="§5",
    params=(
        Param("population", scaled=8, maximum=1024,
              help="victims to sample (0 = empty campaign, a no-op)"),
        Param("num_tsc", scaled=4, maximum=256,
              help="TSC values spanning the 16-bit space"),
        Param("keys_per_tsc", scaled=1 << 10, maximum=1 << 16,
              help="keys per TSC for the reference distribution map"),
        Param("budgets", kind="ints", default=DEFAULT_BUDGETS,
              help="comma-separated packets-per-TSC axis (batched "
                   "recovery needs paper-scale budgets — see "
                   "docs/experiment-atlas.md)"),
        Param("max_candidates", default=1 << 14,
              help="candidate cap per victim before giving up"),
        Param("batch_size", default=4096,
              help="packets per engine batch"),
        Param("group_size", default=4,
              help="max victims sharing one keystream capture group"),
        Param("checkpoint", kind="str", default="",
              help="campaign checkpoint directory (as campaign-https)"),
        Param("distributed", default=0,
              help="fleet shards per victim group (0 = off)"),
        Param("job_dir", kind="str", default="",
              help="fleet job directory (distributed > 0)"),
    ),
)
def _campaign_tkip(ctx) -> dict[str, Any]:
    from ..campaign import Population, run_tkip_campaign
    from ..simulate import tkip_timeline

    p = ctx.params
    if p["population"] < 0:
        raise ExperimentParamError(
            f"population must be >= 0, got {p['population']}"
        )
    if not 1 <= p["num_tsc"] <= 65536:
        raise ExperimentParamError(
            f"num_tsc must be 1..65536, got {p['num_tsc']}"
        )
    _validate_campaign_fleet(p)
    population = Population.sample(
        ctx.config,
        p["population"],
        budgets=p["budgets"],
        label="campaign-tkip",
    )
    max_budget = max(p["budgets"])
    timeline = tkip_timeline(p["num_tsc"] * max_budget)
    ctx.emit(
        "campaign",
        f"campaigning against {len(population)} victims "
        f"({p['num_tsc']} TSC values, budgets {list(p['budgets'])}; "
        f"worst cell ~{timeline.capture_hours:.2f} h on-air)",
        population=len(population),
    )
    with ctx.timer("campaign"):
        result = run_tkip_campaign(
            ctx.config,
            population,
            num_tsc=p["num_tsc"],
            keys_per_tsc=p["keys_per_tsc"],
            max_candidates=p["max_candidates"],
            batch_size=p["batch_size"],
            group_size=p["group_size"],
            checkpoint_dir=p["checkpoint"] or None,
            distributed=p["distributed"],
            job_dir=p["job_dir"] or None,
            on_group=lambda i, n, tag: ctx.emit(
                "capture", f"group {i + 1}/{n}: {tag}"
            ),
        )
    _emit_surface(ctx, result, "surface")
    fit = result.surface_fit()
    return {
        "population": result.trials,
        "num_groups": result.num_groups,
        "successes": result.successes,
        "success_rate": (
            result.successes / result.trials if result.trials else None
        ),
        "surface": _surface_metrics(result),
        "surface_fit": {
            "ok": fit.ok,
            "worst_label": fit.worst_label,
            "worst_deviation": fit.worst_deviation,
        },
        "capture_hours_equivalent": timeline.capture_hours,
    }
