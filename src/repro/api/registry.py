"""Experiment specs and the declarative registry.

Every reproducible unit in the repo — the five dataset kinds, the bias
hunt, the recovery studies, the two end-to-end attacks — is described by
an :class:`ExperimentSpec` and registered with the :func:`experiment`
decorator.  The registry is the single orchestration surface: the CLI,
the examples, and the test suite all enumerate it rather than hand-wiring
pipelines, so adding a scenario is one decorated function.

Parameters are declared as :class:`Param` rows.  Defaults may be
*scale-aware* (``scaled=base`` resolves through
:meth:`repro.config.ReproConfig.scaled` with the declared clamps), so one
registration serves laptop smoke runs and paper-scale sweeps alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..config import ReproConfig
from ..errors import ExperimentError, ExperimentParamError, UnknownExperimentError

#: Parameter kinds the CLI can parse from ``--param name=value`` strings.
PARAM_KINDS = ("int", "float", "str", "bool", "pairs", "ints")

_TRUE = ("1", "true", "yes", "on")
_FALSE = ("0", "false", "no", "off")


@dataclass(frozen=True)
class Param:
    """One declared experiment parameter.

    Attributes:
        name: keyword the experiment function receives.
        kind: one of :data:`PARAM_KINDS` (drives coercion of CLI strings).
        default: literal default (ignored when ``scaled`` is set).
        scaled: when set, the default is ``config.scaled(scaled,
            minimum=minimum, maximum=maximum)`` — scale-aware.
        minimum / maximum: clamps for scaled defaults (and documentation
            for explicit values; explicit overrides are taken literally).
        help: one-line description shown by ``python -m repro list/info``.
    """

    name: str
    kind: str = "int"
    default: Any = None
    scaled: int | None = None
    minimum: int = 1
    maximum: int | None = None
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in PARAM_KINDS:
            raise ExperimentError(
                f"param {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {PARAM_KINDS})"
            )

    def resolve_default(self, config: ReproConfig) -> Any:
        if self.scaled is not None:
            return config.scaled(
                self.scaled, minimum=self.minimum, maximum=self.maximum
            )
        return self.default

    def coerce(self, value: Any) -> Any:
        """Coerce an override (possibly a CLI string) to this param's kind."""
        try:
            if self.kind == "int":
                if isinstance(value, bool):
                    raise ValueError("bool is not an int")
                return int(value)
            if self.kind == "float":
                return float(value)
            if self.kind == "str":
                return str(value)
            if self.kind == "bool":
                return _coerce_bool(value)
            if self.kind == "pairs":
                return _coerce_pairs(value)
            if self.kind == "ints":
                return _coerce_ints(value)
        except (TypeError, ValueError) as exc:
            raise ExperimentParamError(
                f"param {self.name!r} expects {self.kind}, got {value!r}: {exc}"
            ) from exc
        raise ExperimentParamError(f"param {self.name!r}: unknown kind {self.kind!r}")

    def describe(self) -> dict[str, Any]:
        """JSON-ready description for ``list --json`` / ``info --json``."""
        desc: dict[str, Any] = {"name": self.name, "kind": self.kind}
        if self.scaled is not None:
            desc["scaled_default"] = self.scaled
            desc["minimum"] = self.minimum
            if self.maximum is not None:
                desc["maximum"] = self.maximum
        else:
            default = self.default
            desc["default"] = (
                list(map(list, default))
                if self.kind == "pairs" and default is not None
                else list(default)
                if self.kind == "ints" and default is not None
                else default
            )
        if self.help:
            desc["help"] = self.help
        return desc


def _coerce_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in _TRUE:
            return True
        if lowered in _FALSE:
            return False
    raise ValueError(f"not a boolean: {value!r}")


def _coerce_pairs(value: Any) -> tuple[tuple[int, int], ...]:
    """Accept ``((15, 16), (31, 32))`` or the CLI form ``"15:16,31:32"``."""
    if isinstance(value, str):
        value = [
            part.split(":") for part in value.split(",") if part.strip()
        ]
    pairs = []
    for pair in value:
        a, b = pair  # raises ValueError/TypeError on wrong arity
        pairs.append((int(a), int(b)))
    if not pairs:
        raise ValueError("expected at least one position pair")
    return tuple(pairs)


def _coerce_ints(value: Any) -> tuple[int, ...]:
    """Accept ``(0, 8, 128)`` or the CLI form ``"0,8,128"``."""
    if isinstance(value, str):
        value = [part for part in value.split(",") if part.strip()]
    items = tuple(int(item) for item in value)
    if not items:
        raise ValueError("expected at least one integer")
    return items


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered, runnable unit of the reproduction.

    Attributes:
        name: registry key (``python -m repro run <name>``).
        description: one-line summary for listings.
        section: the paper section the experiment reproduces.
        params: declared parameter schema.
        fn: implementation ``fn(ctx) -> metrics dict`` (see
            :class:`repro.api.session.RunContext`).
    """

    name: str
    description: str
    section: str = ""
    params: tuple[Param, ...] = ()
    fn: Callable[..., dict[str, Any]] = field(compare=False, repr=False, default=None)

    def resolve_params(
        self, config: ReproConfig, overrides: dict[str, Any]
    ) -> dict[str, Any]:
        """Merge overrides into scale-aware defaults, validating names."""
        known = {param.name: param for param in self.params}
        unknown = sorted(set(overrides) - set(known))
        if unknown:
            raise ExperimentParamError(
                f"experiment {self.name!r} has no parameter(s) "
                f"{', '.join(map(repr, unknown))}; "
                f"valid: {', '.join(sorted(known)) or '(none)'}"
            )
        resolved = {}
        for name, param in known.items():
            if name in overrides:
                resolved[name] = param.coerce(overrides[name])
            else:
                resolved[name] = param.resolve_default(config)
        return resolved

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "section": self.section,
            "params": [param.describe() for param in self.params],
        }


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add ``spec`` to the global registry (duplicate names are bugs)."""
    if spec.name in _REGISTRY:
        raise ExperimentError(f"experiment {spec.name!r} is already registered")
    if spec.fn is None:
        raise ExperimentError(f"experiment {spec.name!r} has no implementation")
    _REGISTRY[spec.name] = spec
    return spec


def experiment(
    name: str,
    *,
    description: str,
    section: str = "",
    params: tuple[Param, ...] = (),
) -> Callable:
    """Decorator registering ``fn(ctx) -> metrics`` as an experiment."""

    def decorate(fn: Callable[..., dict[str, Any]]) -> Callable:
        register(
            ExperimentSpec(
                name=name,
                description=description,
                section=section,
                params=tuple(params),
                fn=fn,
            )
        )
        return fn

    return decorate


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered experiment, with a helpful failure mode."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(registry is empty)"
        raise UnknownExperimentError(
            f"unknown experiment {name!r}; registered: {known}"
        ) from None


def list_experiments() -> list[ExperimentSpec]:
    """All registered experiments, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
