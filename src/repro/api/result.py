"""Uniform, JSON-serialisable experiment results.

Every :meth:`repro.api.Session.run` returns an :class:`ExperimentResult`:
the resolved parameters, the metrics the experiment reported, per-stage
wall-clock timings, and the seed/scale/backend provenance needed to
rerun it bit-for-bit.  Serialisation goes through the canonical-JSON
helpers in :mod:`repro.utils.serialization`, so
``from_json(r.to_json()).to_json() == r.to_json()`` holds exactly —
the property the CLI's ``run --json`` contract and the benchmark
recording rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import json

from ..errors import ExperimentError
from ..utils.serialization import canonical_json, to_jsonable

#: Bumped when the serialised layout changes incompatibly.
RESULT_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ExperimentResult:
    """One experiment run, as a machine-readable record.

    Attributes:
        experiment: registry name of the experiment that ran.
        params: fully resolved parameters (defaults + overrides).
        metrics: experiment-reported outcomes (JSON-native values only).
        timings: per-stage wall-clock seconds, plus ``"total"``.
        provenance: seed, scale, package version, and backend facts
            needed to reproduce or audit the run.

    Serialisation is canonical and bit-stable — the property the results
    warehouse (:mod:`repro.warehouse`) keys its fingerprints on:

        >>> r = ExperimentResult("demo", params={"n": 4}, metrics={"ok": True})
        >>> ExperimentResult.from_json(r.to_json()).to_json() == r.to_json()
        True
        >>> r.to_json().startswith('{"experiment":"demo",')
        True
    """

    experiment: str
    params: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    provenance: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-native dict form (normalised through ``to_jsonable``)."""
        return to_jsonable(
            {
                "format_version": RESULT_FORMAT_VERSION,
                "experiment": self.experiment,
                "params": self.params,
                "metrics": self.metrics,
                "timings": self.timings,
                "provenance": self.provenance,
            }
        )

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, fixed separators): deterministic."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, payload: Any) -> "ExperimentResult":
        if not isinstance(payload, dict):
            raise ExperimentError(
                f"experiment result must be a JSON object, got {type(payload).__name__}"
            )
        version = payload.get("format_version")
        if version != RESULT_FORMAT_VERSION:
            raise ExperimentError(
                f"unsupported experiment-result format version {version!r} "
                f"(expected {RESULT_FORMAT_VERSION})"
            )
        experiment = payload.get("experiment")
        if not isinstance(experiment, str) or not experiment:
            raise ExperimentError("experiment result has no experiment name")
        fields = {}
        for key in ("params", "metrics", "timings", "provenance"):
            value = payload.get(key, {})
            if not isinstance(value, dict):
                raise ExperimentError(f"experiment result field {key!r} must be a dict")
            fields[key] = value
        return cls(experiment=experiment, **fields)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"malformed experiment-result JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path: str | Path) -> Path:
        """Write the canonical JSON to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentResult":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
