"""Unified experiment API: registry + Session facade (the orchestration layer).

Every reproducible unit in this repo is a registered
:class:`ExperimentSpec`; a :class:`Session` runs any of them by name and
returns a uniform, JSON-serialisable :class:`ExperimentResult`.  The CLI
(``python -m repro``), the examples, and the benchmarks all drive this
one surface, so adding a scenario is a single decorated function — no
copy-pasted orchestration:

    >>> from repro.api import Session
    >>> session = Session()                       # config from the environment
    >>> result = session.run("dataset-single", num_keys=1 << 14)
    >>> result.metrics["strongest_cells"][0]["position"]
    2
    >>> text = result.to_json()                   # canonical, deterministic
    >>> from repro.api import ExperimentResult
    >>> ExperimentResult.from_json(text).to_json() == text
    True

Importing this package populates the registry (the experiment catalogue
lives in :mod:`repro.api.experiments`).
"""

from .registry import (
    Param,
    ExperimentSpec,
    experiment,
    get_experiment,
    list_experiments,
    register,
)
from .result import RESULT_FORMAT_VERSION, ExperimentResult
from .session import ProgressEvent, RunContext, Session

# Populate the registry: importing the catalogue runs its decorators.
from . import experiments as _experiments  # noqa: F401  (import for side effect)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "Param",
    "ProgressEvent",
    "RESULT_FORMAT_VERSION",
    "RunContext",
    "Session",
    "experiment",
    "get_experiment",
    "list_experiments",
    "register",
]
