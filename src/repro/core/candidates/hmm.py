"""The paper's HMM formalisation of double-byte likelihoods (§4.4).

The paper frames candidate generation as N-best decoding of a first-order
time-inhomogeneous hidden Markov model: the state space is the 256 byte
values, "time" is the plaintext position, the transition weight from
state mu1 at time t to mu2 is lambda_{t, mu1, mu2}, and every state emits
the same null observation (plaintext values leak no side channel).

:class:`PlaintextHmm` makes that construction explicit.  It is the
specification object: `viterbi` (1-best) and `n_best` delegate to the
production implementation (:func:`repro.core.candidates.viterbi
.algorithm2`), while `brute_force` enumerates the whole sequence space —
feasible only for tiny alphabets, which is exactly what the property
tests use to verify the decoder.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from ...errors import CandidateError
from .matrix import CandidateMatrix
from .viterbi import CandidateList, algorithm2


class PlaintextHmm:
    """Time-inhomogeneous HMM over plaintext byte sequences.

    Args:
        transition_log_probs: array (L-1, 256, 256) of per-step transition
            log-weights (need not be normalised — eq 26 holds up to a
            proportionality constant).
        first_byte: known initial state m1.
        last_byte: known final state mL.
        charset: allowed values for the interior states (default: all).
    """

    def __init__(
        self,
        transition_log_probs: np.ndarray,
        first_byte: int,
        last_byte: int,
        *,
        charset: bytes | None = None,
    ) -> None:
        lam = np.asarray(transition_log_probs, dtype=np.float64)
        if lam.ndim != 3 or lam.shape[1:] != (256, 256):
            raise CandidateError(
                f"transition_log_probs must be (L-1, 256, 256), got {lam.shape}"
            )
        self._lam = lam
        self._first = first_byte
        self._last = last_byte
        self._charset = bytes(sorted(set(charset))) if charset else bytes(range(256))

    @property
    def num_unknown(self) -> int:
        """Number of interior (unknown) positions."""
        return self._lam.shape[0] - 1

    def sequence_log_likelihood(self, interior: bytes) -> float:
        """Log-likelihood of a full state path m1 + interior + mL."""
        if len(interior) != self.num_unknown:
            raise CandidateError(
                f"expected {self.num_unknown} interior bytes, got {len(interior)}"
            )
        path = bytes((self._first,)) + bytes(interior) + bytes((self._last,))
        return float(
            sum(self._lam[t, path[t], path[t + 1]] for t in range(len(path) - 1))
        )

    def viterbi(self) -> tuple[bytes, float]:
        """Most likely interior byte sequence (1-best decoding)."""
        best = self.n_best(1)
        return best.plaintexts[0], float(best.log_likelihoods[0])

    def n_best(self, n: int) -> CandidateMatrix:
        """N most likely interior sequences (list-Viterbi decoding)."""
        return algorithm2(
            self._lam, self._first, self._last, n, charset=self._charset
        )

    def brute_force(self, n: int | None = None) -> CandidateList:
        """Exhaustively rank the whole interior space (tiny alphabets only).

        Guarded at 2**20 sequences; used by tests as ground truth.
        """
        space = len(self._charset) ** self.num_unknown
        if space > 1 << 20:
            raise CandidateError(
                f"brute force over {space} sequences refused (> 2^20)"
            )
        scored = [
            (self.sequence_log_likelihood(bytes(seq)), bytes(seq))
            for seq in product(self._charset, repeat=self.num_unknown)
        ]
        # Sort by decreasing likelihood, ties by byte string for determinism.
        scored.sort(key=lambda item: (-item[0], item[1]))
        if n is not None:
            scored = scored[:n]
        return CandidateList(
            plaintexts=[seq for _, seq in scored],
            log_likelihoods=np.array([score for score, _ in scored]),
        )
