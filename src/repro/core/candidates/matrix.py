"""Array-major candidate lists (the N=2^23 representation).

At the paper's full Fig 10 scale a candidate list holds 2^23 plaintexts.
Materialising those as Python ``bytes`` objects costs ~60 bytes of
object overhead per 16-byte cookie and forces every consumer — rank
lookups, the layout pruner, the brute-force oracle — into per-candidate
Python loops.  :class:`CandidateMatrix` keeps the list as one ``(N, L)``
``uint8`` array plus a score vector, so consumers reduce over the matrix
with numpy, while :class:`PlaintextView` provides the lazy
``list[bytes]``-compatible view legacy callers index and iterate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class PlaintextView:
    """Lazy ``list[bytes]``-compatible view over candidate matrix rows.

    Supports ``len``, integer and slice indexing, iteration, ``in`` and
    ``index`` — the operations existing :class:`CandidateList` consumers
    use — materialising ``bytes`` only for the rows actually touched.
    """

    __slots__ = ("_matrix",)

    def __init__(self, matrix: np.ndarray) -> None:
        self._matrix = matrix

    def __len__(self) -> int:
        return self._matrix.shape[0]

    def __getitem__(self, item):
        if isinstance(item, slice):
            return [row.tobytes() for row in self._matrix[item]]
        return self._matrix[item].tobytes()

    def __iter__(self):
        for row in self._matrix:
            yield row.tobytes()

    def __contains__(self, plaintext) -> bool:
        return _row_index(self._matrix, plaintext) is not None

    def __eq__(self, other) -> bool:
        if isinstance(other, PlaintextView):
            return np.array_equal(self._matrix, other._matrix)
        if isinstance(other, (list, tuple)):
            return len(other) == len(self) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:
        n, length = self._matrix.shape
        return f"PlaintextView({n} x {length} bytes)"

    def index(self, plaintext) -> int:
        """First row equal to ``plaintext`` (list.index semantics)."""
        row = _row_index(self._matrix, plaintext)
        if row is None:
            raise ValueError(f"{plaintext!r} is not in the candidate list")
        return row


def _row_index(matrix: np.ndarray, plaintext) -> int | None:
    """First row of ``matrix`` equal to ``plaintext``, via one vectorized
    equality reduction (no per-candidate memcmp loop)."""
    needle = bytes(plaintext)
    if len(needle) != matrix.shape[1]:
        return None
    row = np.frombuffer(needle, dtype=np.uint8)
    hits = np.nonzero((matrix == row).all(axis=1))[0]
    return int(hits[0]) if hits.size else None


@dataclass(frozen=True)
class CandidateMatrix:
    """Ranked plaintext candidates as one contiguous array.

    Drop-in replacement for :class:`CandidateList` (same ``len``/
    iteration/`rank_of`` contract, ``plaintexts`` is a lazy view instead
    of a ``list[bytes]``), with the batched consumers — pruner masks,
    oracle blocks — operating on :attr:`matrix` directly.

    Attributes:
        matrix: uint8 (N, L); row i is the i-th best candidate.
        log_likelihoods: float64 (N,) matching scores, non-increasing.
    """

    matrix: np.ndarray
    log_likelihoods: np.ndarray

    def __len__(self) -> int:
        return self.matrix.shape[0]

    def __iter__(self):
        return zip(self.plaintexts, self.log_likelihoods)

    @property
    def plaintexts(self) -> PlaintextView:
        """Lazy best-first ``bytes`` view of the rows."""
        return PlaintextView(self.matrix)

    def rank_of(self, plaintext: bytes) -> int | None:
        """0-based rank of ``plaintext``, or None if absent from the list."""
        return _row_index(self.matrix, plaintext)
