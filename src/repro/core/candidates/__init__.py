"""Plaintext candidate enumeration in decreasing likelihood (paper §4.4)."""

from .hmm import PlaintextHmm
from .lazy import lazy_candidate_blocks, lazy_candidates
from .matrix import CandidateMatrix, PlaintextView
from .single_list import algorithm1
from .viterbi import CandidateList, algorithm2

__all__ = [
    "CandidateList",
    "CandidateMatrix",
    "PlaintextHmm",
    "PlaintextView",
    "algorithm1",
    "algorithm2",
    "lazy_candidate_blocks",
    "lazy_candidates",
]
