"""Plaintext candidate enumeration in decreasing likelihood (paper §4.4)."""

from .hmm import PlaintextHmm
from .lazy import lazy_candidates
from .single_list import algorithm1
from .viterbi import CandidateList, algorithm2

__all__ = [
    "CandidateList",
    "PlaintextHmm",
    "algorithm1",
    "algorithm2",
    "lazy_candidates",
]
