"""Algorithm 2: N-best plaintexts from double-byte likelihoods (paper §4.4).

The paper models double-byte likelihoods as a first-order
time-inhomogeneous hidden Markov model (states = byte values, transition
weight at step r = lambda_{r, mu1, mu2}) and observes that generating the
N most likely plaintexts is N-best Viterbi decoding (list Viterbi).  As
in the paper, the first and last plaintext bytes (m1, mL) are known, and
the inner loops range only over an allowed character set — the RFC 6265
cookie-charset restriction of §6.2 that tightens the ciphertext bound.

This implementation keeps, for every allowed ending value mu, the N best
partial plaintexts ending in mu — the "simplest form" of list Viterbi the
paper describes — but batches the per-state merge with numpy
(argpartition over the A*K extension scores) instead of a per-candidate
priority queue, processing ending values in chunks to bound memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import CandidateError

#: Ending values processed per argpartition batch; bounds peak memory at
#: roughly ``chunk * A * N`` floats.
_CHUNK = 16


@dataclass(frozen=True)
class CandidateList:
    """Ranked plaintext candidates.

    Attributes:
        plaintexts: candidate unknown-part byte strings, best first.
        log_likelihoods: matching scores, non-increasing.
    """

    plaintexts: list[bytes]
    log_likelihoods: np.ndarray

    def __len__(self) -> int:
        return len(self.plaintexts)

    def __iter__(self):
        return iter(zip(self.plaintexts, self.log_likelihoods))

    def rank_of(self, plaintext: bytes) -> int | None:
        """0-based rank of ``plaintext``, or None if absent from the list."""
        try:
            return self.plaintexts.index(bytes(plaintext))
        except ValueError:
            return None


def algorithm2(
    log_likelihoods: np.ndarray,
    first_byte: int,
    last_byte: int,
    num_candidates: int,
    *,
    charset: bytes | None = None,
) -> CandidateList:
    """Generate the N most likely plaintexts from double-byte estimates.

    Args:
        log_likelihoods: array (L-1, 256, 256); entry (r, mu1, mu2) is the
            log-likelihood that plaintext bytes at positions r, r+1
            (1-indexed) are (mu1, mu2).  L is the unknown length plus two.
        first_byte: the known first byte m1.
        last_byte: the known last byte mL.
        num_candidates: N.
        charset: allowed byte values for the L-2 unknown positions
            (default: all 256).  The known bytes need not be in it.

    Returns:
        A :class:`CandidateList` over the L-2 *unknown* bytes (the known
        m1/mL framing is stripped), best first.
    """
    lam = np.asarray(log_likelihoods, dtype=np.float64)
    if lam.ndim != 3 or lam.shape[1:] != (256, 256):
        raise CandidateError(
            f"log_likelihoods must be (L-1, 256, 256), got {lam.shape}"
        )
    num_steps = lam.shape[0]
    if num_steps < 2:
        raise CandidateError("need at least one unknown byte (L >= 3)")
    if num_candidates < 1:
        raise CandidateError(f"num_candidates must be >= 1, got {num_candidates}")
    if not (0 <= first_byte < 256 and 0 <= last_byte < 256):
        raise CandidateError("first/last bytes must be in 0..255")
    if charset is None:
        alphabet = np.arange(256, dtype=np.intp)
    else:
        if not charset:
            raise CandidateError("charset must be non-empty")
        alphabet = np.asarray(sorted(set(charset)), dtype=np.intp)
    a_size = alphabet.size

    # --- forward pass -----------------------------------------------------
    # scores[s]: (a_size, K_s) partial log-likelihoods, row = ending value,
    # sorted descending along axis 1.  back[s]: int32 (a_size, K_s, 2)
    # holding (previous value index, previous rank).
    scores = lam[0, first_byte, alphabet][:, None]  # K = 1
    back: list[np.ndarray | None] = [None]

    for step in range(1, num_steps - 1):
        k_prev = scores.shape[1]
        trans = lam[step][np.ix_(alphabet, alphabet)]  # (from, to)
        k_new = min(num_candidates, a_size * k_prev)
        new_scores = np.empty((a_size, k_new), dtype=np.float64)
        new_back = np.empty((a_size, k_new, 2), dtype=np.int32)
        flat_prev = scores.reshape(-1)  # index = from_idx * k_prev + rank
        for start in range(0, a_size, _CHUNK):
            stop = min(start + _CHUNK, a_size)
            # ext[to, from, rank] = scores[from, rank] + trans[from, to]
            ext = flat_prev[None, :] + np.repeat(
                trans[:, start:stop].T, k_prev, axis=1
            )
            top = _top_k_desc(ext, k_new)
            new_scores[start:stop] = np.take_along_axis(ext, top, axis=1)
            new_back[start:stop, :, 0], new_back[start:stop, :, 1] = np.divmod(
                top, k_prev
            )
        scores = new_scores
        back.append(new_back)

    # --- final step: ending value fixed to mL -----------------------------
    k_prev = scores.shape[1]
    trans_last = lam[num_steps - 1][alphabet, last_byte]  # (from,)
    ext = (scores + trans_last[:, None]).reshape(-1)
    k_final = min(num_candidates, ext.size)
    top = _top_k_desc(ext[None, :], k_final)[0]
    final_scores = ext[top]
    from_idx, rank = np.divmod(top, k_prev)

    # --- backtrack ---------------------------------------------------------
    plaintexts: list[bytes] = []
    alphabet_bytes = alphabet.astype(np.uint8)
    for f_idx, f_rank in zip(from_idx, rank):
        chars = bytearray()
        idx, rnk = int(f_idx), int(f_rank)
        for step in range(num_steps - 2, 0, -1):
            chars.append(alphabet_bytes[idx])
            pointer = back[step]
            idx, rnk = int(pointer[idx, rnk, 0]), int(pointer[idx, rnk, 1])
        chars.append(alphabet_bytes[idx])
        plaintexts.append(bytes(reversed(chars)))
    return CandidateList(plaintexts=plaintexts, log_likelihoods=final_scores)


def _top_k_desc(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest entries per row, sorted descending.

    Deterministic: ties broken by index (via stable sort of the selected
    block), so candidate order is reproducible.
    """
    n = values.shape[1]
    if k >= n:
        return np.argsort(-values, axis=1, kind="stable")
    part = np.argpartition(-values, k - 1, axis=1)[:, :k]
    part_vals = np.take_along_axis(values, part, axis=1)
    # argsort the selected block; break ties by original index for determinism
    order = np.lexsort((part, -part_vals), axis=1)
    return np.take_along_axis(part, order, axis=1)
