"""Algorithm 2: N-best plaintexts from double-byte likelihoods (paper §4.4).

The paper models double-byte likelihoods as a first-order
time-inhomogeneous hidden Markov model (states = byte values, transition
weight at step r = lambda_{r, mu1, mu2}) and observes that generating the
N most likely plaintexts is N-best Viterbi decoding (list Viterbi).  As
in the paper, the first and last plaintext bytes (m1, mL) are known, and
the inner loops range only over an allowed character set — the RFC 6265
cookie-charset restriction of §6.2 that tightens the ciphertext bound.

This implementation keeps, for every allowed ending value mu, the N best
partial plaintexts ending in mu — the "simplest form" of list Viterbi the
paper describes — with three array-major refinements over the naive
merge so N=2^23 (the paper's full Fig 10 budget) is routine:

* **Threshold-pruned exact selection.**  Every per-ending-value
  extension row is a concatenation of A blocks that are already sorted
  descending (the previous step's lists).  A small per-block sample
  (A*m ~ 2N scores) yields a lower bound T on the N-th best pooled
  value; one ``searchsorted`` per block then counts exactly the entries
  that can still reach the top N (value >= T), and selection runs on
  that gathered superset alone.  No retry loop: the bound holds by
  construction, so even heavily skewed score distributions cost one
  sample pass plus one selection over ~N entries instead of A*N.
* **Packed backpointers.**  The flat pool index *is* the backpointer
  pair ``prev_idx * K_prev + prev_rank``; storing it directly halves the
  dominant allocation at 2^23 versus a ``(idx, rank)`` int32 pair, and
  int32 suffices whenever ``A * K_prev < 2^31``.
* **Step-major vectorized backtrack.**  One fancy-index gather per
  plaintext position recovers all N candidates at once into the
  ``(N, L)`` uint8 :class:`CandidateMatrix`, instead of a per-candidate
  Python walk.

Selection is *canonical*: the N kept extensions are the largest by
``(score desc, flat index asc)``, so the output is a pure function of
the likelihoods — independent of chunking, pooling, or segmentation.
Peak scratch memory is bounded by a configurable byte budget
(``REPRO_CANDIDATE_MEM``; see :func:`_plan_chunk`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import CandidateError
from .matrix import CandidateMatrix

#: Scratch bytes per pooled score during selection: the float64 negated
#: pool, argpartition's intp index array, and selected-block temporaries.
_SCRATCH_BYTES_PER_CELL = 24

_INT32_MAX = np.iinfo(np.int32).max


@dataclass(frozen=True)
class CandidateList:
    """Ranked plaintext candidates, materialised as ``bytes`` objects.

    The single-byte pipeline (Algorithm 1, the lazy enumerator, brute
    force ground truth) stays on this list form; Algorithm 2 returns the
    array-major :class:`CandidateMatrix` with the same interface.

    Attributes:
        plaintexts: candidate unknown-part byte strings, best first.
        log_likelihoods: matching scores, non-increasing.
    """

    plaintexts: list[bytes]
    log_likelihoods: np.ndarray

    def __len__(self) -> int:
        return len(self.plaintexts)

    def __iter__(self):
        return iter(zip(self.plaintexts, self.log_likelihoods))

    def rank_of(self, plaintext: bytes) -> int | None:
        """0-based rank of ``plaintext``, or None if absent from the list."""
        try:
            return self.plaintexts.index(bytes(plaintext))
        except ValueError:
            return None


def algorithm2(
    log_likelihoods: np.ndarray,
    first_byte: int,
    last_byte: int,
    num_candidates: int,
    *,
    charset: bytes | None = None,
    mem_budget: int | None = None,
) -> CandidateMatrix:
    """Generate the N most likely plaintexts from double-byte estimates.

    Args:
        log_likelihoods: array (L-1, 256, 256); entry (r, mu1, mu2) is the
            log-likelihood that plaintext bytes at positions r, r+1
            (1-indexed) are (mu1, mu2).  L is the unknown length plus two.
        first_byte: the known first byte m1.
        last_byte: the known last byte mL.
        num_candidates: N.
        charset: allowed byte values for the L-2 unknown positions
            (default: all 256).  The known bytes need not be in it.
        mem_budget: peak selection-scratch budget in bytes (default: the
            ``REPRO_CANDIDATE_MEM`` configuration knob).  Bounds the
            transient arrays only; the O(A * N) scores/backpointer state
            is inherent to list Viterbi.

    Returns:
        A :class:`CandidateMatrix` over the L-2 *unknown* bytes (the
        known m1/mL framing is stripped), best first.
    """
    lam = np.asarray(log_likelihoods, dtype=np.float64)
    if lam.ndim != 3 or lam.shape[1:] != (256, 256):
        raise CandidateError(
            f"log_likelihoods must be (L-1, 256, 256), got {lam.shape}"
        )
    num_steps = lam.shape[0]
    if num_steps < 2:
        raise CandidateError("need at least one unknown byte (L >= 3)")
    if num_candidates < 1:
        raise CandidateError(f"num_candidates must be >= 1, got {num_candidates}")
    if not (0 <= first_byte < 256 and 0 <= last_byte < 256):
        raise CandidateError("first/last bytes must be in 0..255")
    if charset is None:
        alphabet = np.arange(256, dtype=np.intp)
    else:
        if not charset:
            raise CandidateError("charset must be non-empty")
        alphabet = np.asarray(sorted(set(charset)), dtype=np.intp)
    a_size = alphabet.size
    if mem_budget is None:
        from ...config import get_config

        mem_budget = get_config().candidate_mem
    if mem_budget < 1:
        raise CandidateError(f"mem_budget must be >= 1 byte, got {mem_budget}")

    # --- forward pass -----------------------------------------------------
    # scores[s]: (a_size, K_s) partial log-likelihoods, row = ending value,
    # sorted descending along axis 1.  back[s]: (a_size, K_s) packed flat
    # backpointers prev_idx * K_{s-1} + prev_rank; back_k[s] = K_{s-1}.
    scores = lam[0, first_byte, alphabet][:, None]  # K = 1
    back: list[np.ndarray | None] = [None]
    back_k: list[int] = [0]

    for step in range(1, num_steps - 1):
        k_prev = scores.shape[1]
        trans = lam[step][np.ix_(alphabet, alphabet)]  # (from, to)
        k_new = min(num_candidates, a_size * k_prev)
        ptr_dtype = np.int64 if a_size * k_prev > _INT32_MAX else np.int32
        # ext[to, from, rank] = scores[from, rank] + trans[from, to];
        # computed negated so selection never copies the pool again.
        neg_trans_t = np.ascontiguousarray(-trans.T)  # (to, from)
        sel_idx, sel_neg = _extend_topk(scores, neg_trans_t, k_new, mem_budget)
        scores = -sel_neg
        back.append(sel_idx.astype(ptr_dtype, copy=False))
        back_k.append(k_prev)

    # --- final step: ending value fixed to mL -----------------------------
    k_prev = scores.shape[1]
    trans_last = lam[num_steps - 1][alphabet, last_byte]  # (from,)
    k_final = min(num_candidates, a_size * k_prev)
    sel_idx, sel_neg = _extend_topk(
        scores, -trans_last[None, :], k_final, mem_budget
    )
    top = sel_idx[0]
    final_scores = -sel_neg[0]
    from_idx, rank = np.divmod(top, k_prev)

    # --- step-major vectorized backtrack -----------------------------------
    # One gather per plaintext position recovers all N candidates at once.
    length = num_steps - 1
    out = np.empty((top.size, length), dtype=np.uint8)
    alphabet_u8 = alphabet.astype(np.uint8)
    idx, rnk = from_idx, rank
    out[:, length - 1] = alphabet_u8[idx]
    for step in range(num_steps - 2, 0, -1):
        code = back[step][idx, rnk]
        idx, rnk = np.divmod(code, back_k[step])
        out[:, step - 1] = alphabet_u8[idx]
    return CandidateMatrix(matrix=out, log_likelihoods=final_scores)


def _initial_pool_width(k: int, a_size: int, k_prev: int) -> int:
    """Per-block sample width: 2x the even k/A split (so the sampled pool
    holds >= k entries and its k-th value is a usable threshold), capped
    at the full block length."""
    return min(k_prev, max(-(-k // a_size) * 2, 1))


def _extend_topk(
    scores: np.ndarray,
    neg_trans_rows: np.ndarray,
    k: int,
    mem_budget: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Canonical top-k extensions for a batch of ending values.

    For each row r the pool is ``neg_trans_rows[r, b] - scores[b, i]``
    over all blocks b and ranks i (negated scores: smaller is better),
    and the canonical top-k is by ``(value asc, flat index asc)`` with
    flat index ``b * k_prev + i``.

    Exact threshold pruning: the k-th best value T of a per-block sample
    (the first m entries of every block, which are the per-block best
    because rows of ``scores`` are sorted descending) is a lower bound
    on the true k-th score, so every true top-k entry satisfies
    ``pooled <= T``.  Counting those entries per block is a single
    ``searchsorted``; selection then runs on the gathered superset only.

    Args:
        scores: (A, K_prev) previous lists, rows sorted descending.
        neg_trans_rows: (R, A) negated transition weights into each
            ending value.
        k: entries to keep per row; must satisfy ``k <= A * K_prev``.
        mem_budget: scratch budget in bytes (see :func:`_plan_chunk`).

    Returns:
        ``(sel_idx, sel_neg)``: (R, k) packed flat backpointers and
        negated scores, best first.
    """
    a_size, k_prev = scores.shape
    num_rows = neg_trans_rows.shape[0]
    m = _initial_pool_width(k, a_size, k_prev)
    block_ids = np.arange(a_size, dtype=np.intp)
    sel_idx = np.empty((num_rows, k), dtype=np.int64)
    sel_neg = np.empty((num_rows, k), dtype=np.float64)
    chunk = _plan_chunk(a_size, m, mem_budget)
    if m >= k_prev:
        # The sample is the whole pool: select directly, in batches.
        full_orig = (
            block_ids[:, None] * k_prev + np.arange(k_prev, dtype=np.intp)[None, :]
        ).reshape(-1)
        for s in range(0, num_rows, chunk):
            nt = neg_trans_rows[s : s + chunk]
            pool = (nt[:, :, None] - scores[None, :, :]).reshape(nt.shape[0], -1)
            si, sn = _select_desc(pool, full_orig, k, mem_budget)
            sel_idx[s : s + chunk] = si
            sel_neg[s : s + chunk] = sn
        return sel_idx, sel_neg
    neg_scores = -scores  # rows ascending; negation is exact
    for s in range(0, num_rows, chunk):
        nt = neg_trans_rows[s : s + chunk]  # (R_c, A)
        sample = (nt[:, :, None] - scores[None, :, :m]).reshape(nt.shape[0], -1)
        t_neg = np.partition(sample, k - 1, axis=1)[:, k - 1]  # (R_c,)
        # pooled <= t  <=>  scores[b, i] >= nt[b] - t; count per block via
        # one searchsorted on the (shared) ascending negated-score rows.
        thr = nt - t_neg[:, None]  # (R_c, A)
        counts = np.empty(nt.shape, dtype=np.intp)
        for b in range(a_size):
            counts[:, b] = np.searchsorted(neg_scores[b], -thr[:, b], side="right")
        # thr is rounded, so the count can be short by an ulp-boundary
        # entry; blocks are sorted, so checking each block's first
        # excluded pooled value (its best excluded) restores exactness.
        while True:
            first_excl = nt - scores[
                block_ids[None, :], np.minimum(counts, k_prev - 1)
            ]
            viol = (counts < k_prev) & (first_excl <= t_neg[:, None])
            if not viol.any():
                break
            counts[viol] += 1
        for r in range(nt.shape[0]):
            # Ragged gather of the qualifying prefix of every block:
            # O(sum(counts)) regardless of skew across blocks.
            c = counts[r]
            starts = np.cumsum(c) - c
            total = int(starts[-1] + c[-1])
            bid = np.repeat(block_ids, c)
            pos = np.arange(total, dtype=np.intp) - np.repeat(starts, c)
            pool = (nt[r][bid] - scores[bid, pos])[None, :]
            orig = bid * k_prev + pos
            si, sn = _select_desc(pool, orig, k, mem_budget)
            sel_idx[s + r] = si[0]
            sel_neg[s + r] = sn[0]
    return sel_idx, sel_neg


def _plan_chunk(a_size: int, pool_width: int, mem_budget: int) -> int:
    """Ending values per selection batch.

    One batch row materialises ``a_size * pool_width`` pooled scores and
    selection scratch of :data:`_SCRATCH_BYTES_PER_CELL` bytes each, so
    the batch height is ``mem_budget`` divided by that row cost, clamped
    to [1, a_size].  (At chunk 1 a single row may still exceed the
    budget; :func:`_select_desc` then segments along the pool axis.)
    """
    per_row = a_size * pool_width * _SCRATCH_BYTES_PER_CELL
    return max(1, min(a_size, mem_budget // max(per_row, 1)))


def _select_desc(
    neg_values: np.ndarray,
    orig_idx: np.ndarray,
    k: int,
    mem_budget: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Canonical top-k per row of a negated score pool.

    Selects, for every row, the k entries that are largest by
    ``(score desc, original index asc)`` — a total order, so the result
    is independent of how the pool was built or split.  ``orig_idx``
    maps pool columns to original flat indices and must be strictly
    increasing (pool order == index order, which makes the boundary
    tie-break a prefix take).

    Returns:
        ``(sel_idx, sel_neg)``: original indices and negated scores of
        the selected entries, ordered best first.
    """
    n = neg_values.shape[1]
    if k >= n:
        # Stable sort on the negated values orders ties by pool position
        # == original index: already canonical.
        order = np.argsort(neg_values, axis=1, kind="stable")
        return orig_idx[order], np.take_along_axis(neg_values, order, axis=1)
    if neg_values.shape[0] > 1 and n * _SCRATCH_BYTES_PER_CELL > mem_budget:
        picked = [
            _select_desc(neg_values[r : r + 1], orig_idx, k, mem_budget)
            for r in range(neg_values.shape[0])
        ]
        return (
            np.concatenate([p[0] for p in picked]),
            np.concatenate([p[1] for p in picked]),
        )
    seg = max(k, mem_budget // _SCRATCH_BYTES_PER_CELL)
    if n > seg and neg_values.shape[0] == 1:
        # Segmented top-k: the canonical top-k of the union equals the
        # canonical top-k of the per-segment canonical top-k's (any
        # element beaten by k entries within its own segment is beaten
        # by k entries globally).
        parts: list[tuple[np.ndarray, np.ndarray]] = []
        for s in range(0, n, seg):
            parts.append(
                _select_desc(
                    neg_values[:, s : s + seg],
                    orig_idx[s : s + seg],
                    min(k, n - s) if n - s < k else k,
                    mem_budget,
                )
            )
        union_idx = np.concatenate([p[0][0] for p in parts])
        union_neg = np.concatenate([p[1][0] for p in parts])
        merge = np.lexsort((union_idx, union_neg))[:k]
        return union_idx[merge][None, :], union_neg[merge][None, :]

    part = np.argpartition(neg_values, k - 1, axis=1)[:, :k]
    part_neg = np.take_along_axis(neg_values, part, axis=1)
    order = np.lexsort((orig_idx[part], part_neg), axis=1)
    sel = np.take_along_axis(part, order, axis=1)
    sel_neg = np.take_along_axis(part_neg, order, axis=1)
    # argpartition picks an unspecified subset of entries tied with the
    # k-th value; canonicalise those rows to the lowest original indices.
    kth = sel_neg[:, -1]
    eq_pool = (neg_values == kth[:, None]).sum(axis=1)
    eq_sel = (sel_neg == kth[:, None]).sum(axis=1)
    for r in np.nonzero(eq_pool != eq_sel)[0]:
        v = kth[r]
        better = np.nonzero(neg_values[r] < v)[0]
        tied = np.nonzero(neg_values[r] == v)[0][: k - better.size]
        cols = np.concatenate([better, tied])
        row_neg = neg_values[r, cols]
        o = np.lexsort((orig_idx[cols], row_neg))
        sel[r] = cols[o]
        sel_neg[r] = row_neg[o]
    return orig_idx[sel], sel_neg
