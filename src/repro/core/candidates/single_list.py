"""Algorithm 1: N-best plaintexts from single-byte likelihoods (paper §4.4).

The paper's Algorithm 1 incrementally computes the N most likely
plaintexts of length 1, 2, ..., L.  At each length it merges the 256
sorted streams "extend previous candidate i with byte mu" using a
priority queue over the per-byte cursors pos(mu), exactly as printed in
the paper.  Likelihoods are processed in log domain for numeric
stability (also as the paper prescribes).

For large N a full-list computation is wasteful if the consumer stops
early (the TKIP attack stops at the first CRC-valid candidate) — see
:mod:`repro.core.candidates.lazy` for the streaming variant.  Both
implementations are cross-checked to produce identical orderings.
"""

from __future__ import annotations

import heapq

import numpy as np

from ...errors import CandidateError


def _space_size(length: int, cap: int) -> int:
    """min(cap, 256**length) without materialising huge ints."""
    size = 1
    for _ in range(length):
        size *= 256
        if size >= cap:
            return cap
    return size


def algorithm1(
    log_likelihoods: np.ndarray, num_candidates: int
) -> tuple[list[bytes], np.ndarray]:
    """Generate the N most likely plaintexts from single-byte estimates.

    Args:
        log_likelihoods: array (L, 256); entry (r, mu) is the
            log-likelihood that plaintext byte r+1 equals mu.
        num_candidates: N, the number of candidates to return.

    Returns:
        ``(plaintexts, log_likelihoods)`` sorted by decreasing likelihood;
        ``plaintexts`` is a list of length-L ``bytes``.
    """
    lam = np.asarray(log_likelihoods, dtype=np.float64)
    if lam.ndim != 2 or lam.shape[1] != 256:
        raise CandidateError(f"log_likelihoods must be (L, 256), got {lam.shape}")
    if num_candidates < 1:
        raise CandidateError(f"num_candidates must be >= 1, got {num_candidates}")
    length = lam.shape[0]

    prev_plain: list[bytes] = [b""]
    prev_score = np.zeros(1, dtype=np.float64)
    for r in range(length):
        limit = min(num_candidates, _space_size(r + 1, num_candidates))
        avail = len(prev_plain)
        # Heap of (-candidate score, mu, cursor into prev list).
        heap: list[tuple[float, int, int]] = []
        for mu in range(256):
            heapq.heappush(heap, (-(prev_score[0] + lam[r, mu]), mu, 0))
        new_plain: list[bytes] = []
        new_score = np.empty(limit, dtype=np.float64)
        for i in range(limit):
            neg_score, mu, pos = heapq.heappop(heap)
            new_plain.append(prev_plain[pos] + bytes((mu,)))
            new_score[i] = -neg_score
            if pos + 1 < avail:
                heapq.heappush(
                    heap, (-(prev_score[pos + 1] + lam[r, mu]), mu, pos + 1)
                )
        prev_plain, prev_score = new_plain, new_score
    return prev_plain, prev_score
