"""Lazy best-first candidate enumeration (memory-light Algorithm 1).

Algorithm 1 materialises N candidates per position.  When the consumer
stops early — the TKIP attack walks the list only until the first
candidate with a valid CRC (paper §5.3) — a streaming enumerator is
preferable.  Single-byte likelihoods are separable, so enumerating
plaintexts in decreasing likelihood is the classic problem of enumerating
sums over L sorted lists.

We run best-first search over the index lattice: a candidate is a vector
v of per-position ranks (v_r = 0 means the best byte at position r); its
score is ``sum_r sorted_loglik[r][v_r]``, monotone non-increasing along
lattice edges.  Duplicates are avoided with the standard canonical-parent
rule: a child may only increment positions >= the last incremented one.

The stream yields exactly the same ordering as Algorithm 1 (cross-checked
by tests), with O(popped * L) heap memory.
"""

from __future__ import annotations

import heapq
from typing import Iterator

import numpy as np

from ...errors import CandidateError


def lazy_candidates(
    log_likelihoods: np.ndarray,
) -> Iterator[tuple[bytes, float]]:
    """Yield plaintexts in decreasing likelihood, lazily.

    Args:
        log_likelihoods: array (L, 256) of per-position log-likelihoods.

    Yields:
        ``(plaintext, log_likelihood)`` pairs, best first.  Ties are
        broken deterministically (by index vector) so the order is
        reproducible.
    """
    lam = np.asarray(log_likelihoods, dtype=np.float64)
    if lam.ndim != 2 or lam.shape[1] != 256:
        raise CandidateError(f"log_likelihoods must be (L, 256), got {lam.shape}")
    length = lam.shape[0]
    # Per position: byte values sorted by decreasing likelihood.
    order = np.argsort(-lam, axis=1, kind="stable")
    sorted_lam = np.take_along_axis(lam, order, axis=1)
    order_bytes = order.astype(np.uint8)

    best_score = float(sorted_lam[:, 0].sum())
    start = (0,) * length
    # Heap entries: (-score, ranks, min_child_position).
    heap: list[tuple[float, tuple[int, ...], int]] = [(-best_score, start, 0)]
    while heap:
        neg_score, ranks, min_pos = heapq.heappop(heap)
        plaintext = bytes(order_bytes[r, v] for r, v in enumerate(ranks))
        yield plaintext, -neg_score
        for pos in range(min_pos, length):
            rank = ranks[pos]
            if rank + 1 >= 256:
                continue
            child_score = (
                -neg_score - sorted_lam[pos, rank] + sorted_lam[pos, rank + 1]
            )
            child = ranks[:pos] + (rank + 1,) + ranks[pos + 1 :]
            heapq.heappush(heap, (-child_score, child, pos))
