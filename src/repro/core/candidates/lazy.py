"""Lazy best-first candidate enumeration (memory-light Algorithm 1).

Algorithm 1 materialises N candidates per position.  When the consumer
stops early — the TKIP attack walks the list only until the first
candidate with a valid CRC (paper §5.3) — a streaming enumerator is
preferable.  Single-byte likelihoods are separable, so enumerating
plaintexts in decreasing likelihood is the classic problem of enumerating
sums over L sorted lists.

We run best-first search over the index lattice: a candidate is a vector
v of per-position ranks (v_r = 0 means the best byte at position r); its
score is ``sum_r sorted_loglik[r][v_r]``, monotone non-increasing along
lattice edges.  Duplicates are avoided with the standard canonical-parent
rule: a child may only increment positions >= the last incremented one.

The frontier is array-backed: heap keys are packed ``uint8`` rank rows
(whose lexicographic byte order equals the tuple order the tie-break is
defined over), child scores are computed with one vectorized gather per
pop, and :func:`lazy_candidate_blocks` materialises plaintext bytes in
``(block, L)`` matrix blocks for batched consumers (the vectorized CRC
window of the TKIP attack).  :func:`lazy_candidates` is the per-item
view of the same stream.

The stream yields exactly the same ordering as Algorithm 1 (cross-checked
by tests), with O(popped * L) heap memory.
"""

from __future__ import annotations

import heapq
from typing import Iterator

import numpy as np

from ...errors import CandidateError

#: Default rows per yielded block: big enough to amortise the numpy
#: calls, small enough that early-stopping consumers over-enumerate at
#: most a few hundred candidates past their hit.
DEFAULT_BLOCK_SIZE = 256


def lazy_candidate_blocks(
    log_likelihoods: np.ndarray,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield blocks of plaintexts in decreasing likelihood, lazily.

    Args:
        log_likelihoods: array (L, 256) of per-position log-likelihoods.
        block_size: maximum rows per yielded block (>= 1).

    Yields:
        ``(plaintexts, log_likelihoods)`` pairs: a uint8 (B, L) matrix
        of candidate rows and their float64 (B,) scores, best first —
        concatenating the blocks reproduces the exact global ordering
        (ties broken by rank vector, so the order is reproducible).
    """
    lam = np.asarray(log_likelihoods, dtype=np.float64)
    if lam.ndim != 2 or lam.shape[1] != 256:
        raise CandidateError(f"log_likelihoods must be (L, 256), got {lam.shape}")
    if block_size < 1:
        raise CandidateError(f"block_size must be >= 1, got {block_size}")
    length = lam.shape[0]
    # Per position: byte values sorted by decreasing likelihood.
    order = np.argsort(-lam, axis=1, kind="stable")
    sorted_lam = np.take_along_axis(lam, order, axis=1)
    order_bytes = order.astype(np.uint8)
    columns = np.arange(length)

    best_score = float(sorted_lam[:, 0].sum())
    # Heap entries: (-score, packed ranks, min_child_position).  The
    # packed uint8 ranks compare lexicographically exactly like the
    # equivalent rank tuples, preserving the deterministic tie-break.
    heap: list[tuple[float, bytes, int]] = [(-best_score, bytes(length), 0)]
    while heap:
        neg_scores: list[float] = []
        popped_ranks: list[bytes] = []
        while heap and len(popped_ranks) < block_size:
            neg_score, ranks, min_pos = heapq.heappop(heap)
            neg_scores.append(neg_score)
            popped_ranks.append(ranks)
            # Children must be on the heap before the next pop: the
            # immediate successor of a candidate may be its own child.
            rank_row = np.frombuffer(ranks, dtype=np.uint8)
            positions = columns[min_pos:][rank_row[min_pos:] < 255]
            if positions.size:
                current = sorted_lam[positions, rank_row[positions]]
                bumped = sorted_lam[positions, rank_row[positions] + 1]
                child_scores = (-neg_score - current) + bumped
                for child_neg, pos in zip(-child_scores, positions.tolist()):
                    child = (
                        ranks[:pos]
                        + bytes((ranks[pos] + 1,))
                        + ranks[pos + 1 :]
                    )
                    heapq.heappush(heap, (child_neg, child, pos))
        ranks_block = np.frombuffer(
            b"".join(popped_ranks), dtype=np.uint8
        ).reshape(len(popped_ranks), length)
        rows = order_bytes[columns[None, :], ranks_block]
        yield rows, -np.asarray(neg_scores, dtype=np.float64)


def lazy_candidates(
    log_likelihoods: np.ndarray,
) -> Iterator[tuple[bytes, float]]:
    """Yield plaintexts in decreasing likelihood, lazily.

    Per-item view of :func:`lazy_candidate_blocks` (the stream computes
    up to one block beyond an early-stopping consumer's last item).

    Args:
        log_likelihoods: array (L, 256) of per-position log-likelihoods.

    Yields:
        ``(plaintext, log_likelihood)`` pairs, best first.  Ties are
        broken deterministically (by index vector) so the order is
        reproducible.
    """
    for rows, scores in lazy_candidate_blocks(log_likelihoods):
        for row, score in zip(rows, scores):
            yield row.tobytes(), float(score)
