"""Double-byte (digraph) plaintext likelihoods (paper eq 13 and eq 15).

The naive eq 13 runs over all 2**16 keystream value pairs for each of the
2**16 plaintext pairs — 2**32 operations per position.  The paper's
optimisation (eq 15) assumes most keystream pairs are independent and
uniform with common probability u (eq 14), so only the small set Ic of
*biased* cells needs individual treatment:

    log lambda_{mu1,mu2} = M_{mu1,mu2} log u
                         + sum_{(k1,k2) in Ic} N^{mu1,mu2}_{k1,k2} log p_{k1,k2}

with ``M = |C| - sum_{Ic} N``.  For the Fluhrer–McGrew model |Ic| <= 8,
giving ~2**19 operations — the figure quoted in §4.1.
"""

from __future__ import annotations

import numpy as np

from ...errors import LikelihoodError

_BYTE = np.arange(256, dtype=np.intp)
_MU1 = _BYTE[:, None]
_MU2 = _BYTE[None, :]


def digraph_log_likelihoods(
    pair_counts: np.ndarray,
    biased_cells: list[tuple[tuple[int, int], float]],
    uniform_p: float,
    total: float | None = None,
) -> np.ndarray:
    """Sparse digraph log-likelihoods (paper eq 15).

    Args:
        pair_counts: (256, 256) counts of ciphertext digraphs; cell
            (c1, c2) counts how often that ciphertext pair was seen.
        biased_cells: the dependent set Ic as ``((k1, k2), p)`` entries.
        uniform_p: probability u shared by every unbiased keystream pair.
        total: number of ciphertexts |C| (default: sum of counts).

    Returns:
        float64 (256, 256): entry (mu1, mu2) is log Pr[C | P = (mu1, mu2)].
    """
    counts = np.asarray(pair_counts, dtype=np.float64)
    if counts.shape != (256, 256):
        raise LikelihoodError(f"pair_counts must be (256, 256), got {counts.shape}")
    if uniform_p <= 0.0:
        raise LikelihoodError("uniform_p must be strictly positive")
    if total is None:
        total = float(counts.sum())
    log_u = np.log(uniform_p)
    loglik = np.zeros((256, 256), dtype=np.float64)
    biased_n = np.zeros((256, 256), dtype=np.float64)
    for (k1, k2), p in biased_cells:
        if p <= 0.0:
            raise LikelihoodError(f"cell probability must be positive, got {p}")
        # N^{mu1,mu2}_{k1,k2} = counts[k1 ^ mu1, k2 ^ mu2]
        n = counts[k1 ^ _MU1, k2 ^ _MU2]
        loglik += n * np.log(p)
        biased_n += n
    loglik += (total - biased_n) * log_u
    return loglik


def digraph_log_likelihoods_dense(
    pair_counts: np.ndarray,
    keystream_dist: np.ndarray,
    *,
    candidates: list[tuple[int, int]] | None = None,
) -> np.ndarray | dict[tuple[int, int], float]:
    """Reference implementation of eq 13 (no independence assumption).

    The full computation is Theta(2**32) per position; it exists to
    cross-check the sparse form and to handle distributions that are
    genuinely dense.  Pass ``candidates`` to evaluate only selected
    plaintext pairs (returned as a dict), which is what the tests do.
    """
    counts = np.asarray(pair_counts, dtype=np.float64)
    dist = np.asarray(keystream_dist, dtype=np.float64)
    if counts.shape != (256, 256) or dist.shape != (256, 256):
        raise LikelihoodError("pair_counts and keystream_dist must be (256, 256)")
    if np.any(dist <= 0.0):
        raise LikelihoodError("keystream distribution must be strictly positive")
    log_p = np.log(dist)
    if candidates is not None:
        out: dict[tuple[int, int], float] = {}
        for mu1, mu2 in candidates:
            out[(mu1, mu2)] = float(
                (counts * log_p[_MU1 ^ mu1, _MU2 ^ mu2]).sum()
            )
        return out
    loglik = np.empty((256, 256), dtype=np.float64)
    for mu1 in range(256):
        rows = log_p[_BYTE ^ mu1, :]  # permute first axis by XOR mu1
        for mu2 in range(256):
            loglik[mu1, mu2] = float((counts * rows[:, _BYTE ^ mu2]).sum())
    return loglik
