"""Likelihoods from Mantin's ABSAB bias (paper §4.2, eqs 17-24).

The ABSAB bias says a keystream digraph tends to repeat after a gap g.
Define the keystream differential over positions (r, r+1) vs
(r+g+2, r+g+3):

    Zhat = (Z_r xor Z_{r+g+2}, Z_{r+1} xor Z_{r+g+3})

The bias is Pr[Zhat = (0,0)] = alpha(g) (eq 18), and because XOR passes
through the cipher, the *ciphertext* differential Chat is biased toward
the *plaintext* differential Phat (eq 19).  With known plaintext on one
side, a likelihood over the differential (eq 20-22) becomes a likelihood
over the unknown plaintext pair (eq 24).

Only the (0,0) differential cell is biased, so eq 22 collapses the
estimate to a function of the per-differential counts — making it a
gather over a 65536-entry count vector.
"""

from __future__ import annotations

import numpy as np

from ...biases.mantin_absab import absab_alpha
from ...errors import LikelihoodError

_BYTE = np.arange(256, dtype=np.intp)
_MU1 = _BYTE[:, None]
_MU2 = _BYTE[None, :]
_CELLS = 65536


def differential_log_likelihoods(
    diff_counts: np.ndarray, gap: int, total: float | None = None
) -> np.ndarray:
    """Log-likelihood of each *differential* value muhat (paper eq 22).

    Args:
        diff_counts: length-65536 counts of ciphertext differentials;
            index ``256*a + b`` counts differential (a, b).
        gap: the ABSAB gap g used for these differentials.
        total: number of ciphertexts (default: sum of counts).

    Returns:
        float64 length-65536 vector of log lambda_muhat.
    """
    counts = np.asarray(diff_counts, dtype=np.float64)
    if counts.shape != (_CELLS,):
        raise LikelihoodError(f"diff_counts must have length {_CELLS}")
    if total is None:
        total = float(counts.sum())
    alpha = absab_alpha(gap)
    log_alpha = np.log(alpha)
    log_u = np.log((1.0 - alpha) / (_CELLS - 1))
    # lambda_muhat = |muhat| log(alpha) + (|C| - |muhat|) log(u'):
    # monotone in the count of the hypothesised differential.
    return counts * (log_alpha - log_u) + total * log_u


def absab_log_likelihoods(
    diff_counts: np.ndarray,
    gap: int,
    known_pair: tuple[int, int],
    total: float | None = None,
) -> np.ndarray:
    """Log-likelihood over the unknown plaintext pair (paper eq 24).

    Args:
        diff_counts: length-65536 ciphertext differential counts for this
            (position, gap, side) alignment.
        gap: ABSAB gap g.
        known_pair: the known plaintext bytes (mu'_1, mu'_2) on the other
            side of the gap.
        total: number of ciphertexts (default: sum of counts).

    Returns:
        float64 (256, 256): entry (mu1, mu2) is the log-likelihood that
        the unknown plaintext bytes are (mu1, mu2).
    """
    lam_hat = differential_log_likelihoods(diff_counts, gap, total)
    known1, known2 = known_pair
    if not (0 <= known1 < 256 and 0 <= known2 < 256):
        raise LikelihoodError(f"known plaintext bytes out of range: {known_pair}")
    # lambda_{mu1,mu2} = lambda_{muhat xor (mu'1, mu'2)}
    idx = ((_MU1 ^ known1) << 8) | (_MU2 ^ known2)
    return lam_hat[idx]
