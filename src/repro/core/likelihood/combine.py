"""Combining likelihood estimates from different bias families (paper §4.3).

A single likelihood computation over all positions and all biases is
exponential in the number of overlapping positions, so the paper instead
multiplies *separate* likelihood estimates — eq 25:

    lambda_{mu1,mu2} = lambda'_{mu1,mu2} * prod_g lambda'_{g,mu1,mu2}

In log domain that is a sum.  The paper notes this may be suboptimal for
dependent biases but is general and powerful; the Fig 7 benchmark
quantifies the gain over any single family.
"""

from __future__ import annotations

import numpy as np

from ...errors import LikelihoodError


def combine_likelihoods(*log_likelihoods: np.ndarray) -> np.ndarray:
    """Combine independent log-likelihood estimates by summation (eq 25).

    All inputs must share one shape — e.g. (256,) single-byte vectors or
    (256, 256) double-byte matrices.
    """
    if not log_likelihoods:
        raise LikelihoodError("need at least one likelihood estimate")
    first = np.asarray(log_likelihoods[0], dtype=np.float64)
    combined = first.copy()
    for other in log_likelihoods[1:]:
        other = np.asarray(other, dtype=np.float64)
        if other.shape != first.shape:
            raise LikelihoodError(
                f"shape mismatch: {other.shape} vs {first.shape}"
            )
        combined += other
    return combined


def normalize_log_likelihoods(log_likelihoods: np.ndarray) -> np.ndarray:
    """Shift log-likelihoods so logsumexp = 0 (posterior, flat prior).

    Useful for reporting: exp of the result is a proper probability
    vector over plaintext values.  Shifting by a constant never changes
    candidate ordering.
    """
    arr = np.asarray(log_likelihoods, dtype=np.float64)
    flat = arr.reshape(-1)
    peak = flat.max()
    log_norm = peak + np.log(np.exp(flat - peak).sum())
    return arr - log_norm
