"""Likelihood estimation from ciphertext statistics (paper §4.1-§4.3)."""

from .absab import absab_log_likelihoods, differential_log_likelihoods
from .combine import combine_likelihoods
from .digraph import digraph_log_likelihoods, digraph_log_likelihoods_dense
from .single import single_byte_log_likelihoods

__all__ = [
    "absab_log_likelihoods",
    "combine_likelihoods",
    "differential_log_likelihoods",
    "digraph_log_likelihoods",
    "digraph_log_likelihoods_dense",
    "single_byte_log_likelihoods",
]
