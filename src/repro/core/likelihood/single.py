"""Single-byte plaintext likelihoods (paper §4.1, eqs 10-12).

Given ciphertext byte counts at one keystream position and the keystream
distribution p_k at that position, the log-likelihood of plaintext value
mu is (up to a constant independent of mu)

    log lambda_mu = sum_k N^mu_k log p_k
                  = sum_c N_c log p_{c xor mu}

where N_c counts ciphertext value c.  The whole 256-vector of
log-likelihoods is one gather + matvec.
"""

from __future__ import annotations

import numpy as np

from ...errors import LikelihoodError

#: XOR outer table: _XOR[mu, c] = mu ^ c.  13 KiB, built once.
_XOR = np.bitwise_xor.outer(
    np.arange(256, dtype=np.intp), np.arange(256, dtype=np.intp)
)


def single_byte_log_likelihoods(
    ciphertext_counts: np.ndarray, keystream_dist: np.ndarray
) -> np.ndarray:
    """Log-likelihood of each plaintext value at one position.

    Args:
        ciphertext_counts: length-256 counts of ciphertext byte values.
        keystream_dist: length-256 keystream distribution p_k (strictly
            positive; use Laplace-smoothed empirical distributions).

    Returns:
        float64 length-256 vector: entry mu is ``log Pr[C | P = mu]``.
    """
    counts = np.asarray(ciphertext_counts, dtype=np.float64)
    dist = np.asarray(keystream_dist, dtype=np.float64)
    if counts.shape != (256,) or dist.shape != (256,):
        raise LikelihoodError(
            f"expected length-256 vectors, got {counts.shape} and {dist.shape}"
        )
    if np.any(dist <= 0.0):
        raise LikelihoodError("keystream distribution must be strictly positive")
    log_p = np.log(dist)
    # loglik[mu] = sum_c counts[c] * log_p[mu ^ c]
    return log_p[_XOR] @ counts


def single_byte_log_likelihoods_many(
    ciphertext_counts: np.ndarray, keystream_dists: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`single_byte_log_likelihoods` over many positions.

    Args:
        ciphertext_counts: array (L, 256) of counts per position.
        keystream_dists: array (L, 256) of keystream distributions.

    Returns:
        float64 array (L, 256) of log-likelihoods.
    """
    counts = np.asarray(ciphertext_counts, dtype=np.float64)
    dists = np.asarray(keystream_dists, dtype=np.float64)
    if counts.ndim != 2 or counts.shape[1] != 256 or counts.shape != dists.shape:
        raise LikelihoodError(
            f"expected matching (L, 256) arrays, got {counts.shape} and {dists.shape}"
        )
    if np.any(dists <= 0.0):
        raise LikelihoodError("keystream distributions must be strictly positive")
    log_p = np.log(dists)
    # out[r, mu] = sum_c counts[r, c] * log_p[r, mu ^ c]
    return np.einsum("rmc,rc->rm", log_p[:, _XOR], counts)
