"""High-level plaintext-recovery facade.

The attack modules (:mod:`repro.tkip.attack`, :mod:`repro.tls.attack`)
wire the likelihood and candidate layers together for their specific
protocols; :class:`PlaintextRecovery` is the small, generic front door
used by the quickstart example and by downstream users who just have
"ciphertext counts + a keystream distribution" (the broadcast-RC4
setting of Mantin-Shamir / AlFardan et al.).
"""

from __future__ import annotations

import numpy as np

from ..errors import LikelihoodError
from .candidates.lazy import lazy_candidates
from .candidates.single_list import algorithm1
from .likelihood.single import (
    single_byte_log_likelihoods,
    single_byte_log_likelihoods_many,
)


class PlaintextRecovery:
    """Recover fixed plaintext bytes from many independent encryptions.

    Args:
        keystream_dists: array (L, 256); row r is the keystream
            distribution at the r-th targeted position.
    """

    def __init__(self, keystream_dists: np.ndarray) -> None:
        dists = np.asarray(keystream_dists, dtype=np.float64)
        if dists.ndim != 2 or dists.shape[1] != 256:
            raise LikelihoodError(
                f"keystream_dists must be (L, 256), got {dists.shape}"
            )
        self._dists = dists

    @classmethod
    def single_position(cls, keystream_dist: np.ndarray) -> "PlaintextRecovery":
        """Recovery for one plaintext byte at one keystream position."""
        return cls(np.asarray(keystream_dist)[None, :])

    @property
    def num_positions(self) -> int:
        return self._dists.shape[0]

    def log_likelihoods(self, ciphertext_counts: np.ndarray) -> np.ndarray:
        """Per-position log-likelihood matrix (L, 256) from counts."""
        counts = np.asarray(ciphertext_counts, dtype=np.float64)
        if counts.ndim == 1:
            counts = counts[None, :]
        if counts.shape != self._dists.shape:
            raise LikelihoodError(
                f"counts shape {counts.shape} != distributions "
                f"shape {self._dists.shape}"
            )
        return single_byte_log_likelihoods_many(counts, self._dists)

    def most_likely(self, ciphertext_counts: np.ndarray) -> bytes:
        """The single most likely plaintext (argmax per position)."""
        lam = self.log_likelihoods(ciphertext_counts)
        return bytes(int(v) for v in lam.argmax(axis=1))

    def candidates(
        self, ciphertext_counts: np.ndarray, num_candidates: int
    ) -> tuple[list[bytes], np.ndarray]:
        """The N most likely plaintexts (paper Algorithm 1)."""
        return algorithm1(self.log_likelihoods(ciphertext_counts), num_candidates)

    def iter_candidates(self, ciphertext_counts: np.ndarray):
        """Stream candidates best-first without materialising a list."""
        return lazy_candidates(self.log_likelihoods(ciphertext_counts))


def most_likely_single(
    ciphertext_counts: np.ndarray, keystream_dist: np.ndarray
) -> int:
    """One-position convenience: the most likely plaintext byte value."""
    lam = single_byte_log_likelihoods(ciphertext_counts, keystream_dist)
    return int(lam.argmax())
