"""The paper's primary contribution: Bayesian plaintext recovery (§4).

Pipeline:

1. **Likelihoods** — convert ciphertext statistics into per-position
   log-likelihoods over plaintext values, using keystream bias models:
   single-byte (eq 10-12), digraph with the sparse optimisation of eq 15,
   and Mantin-ABSAB differential likelihoods (eq 17-24).
2. **Combination** — multiply (add, in log domain) likelihoods derived
   from different bias families (eq 25).
3. **Candidates** — enumerate plaintexts in decreasing likelihood:
   Algorithm 1 for single-byte estimates, Algorithm 2 (a list-Viterbi /
   N-best HMM decoding) for double-byte estimates, plus a lazy best-first
   enumerator as a memory-light extension.
"""

from .likelihood.absab import absab_log_likelihoods, differential_log_likelihoods
from .likelihood.combine import combine_likelihoods
from .likelihood.digraph import (
    digraph_log_likelihoods,
    digraph_log_likelihoods_dense,
)
from .likelihood.single import single_byte_log_likelihoods
from .candidates.single_list import algorithm1
from .candidates.lazy import lazy_candidate_blocks, lazy_candidates
from .candidates.matrix import CandidateMatrix, PlaintextView
from .candidates.viterbi import CandidateList, algorithm2
from .candidates.hmm import PlaintextHmm
from .recovery import PlaintextRecovery

__all__ = [
    "CandidateList",
    "CandidateMatrix",
    "PlaintextHmm",
    "PlaintextView",
    "PlaintextRecovery",
    "absab_log_likelihoods",
    "algorithm1",
    "algorithm2",
    "combine_likelihoods",
    "differential_log_likelihoods",
    "digraph_log_likelihoods",
    "digraph_log_likelihoods_dense",
    "lazy_candidate_blocks",
    "lazy_candidates",
    "single_byte_log_likelihoods",
]
