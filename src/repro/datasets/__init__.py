"""Keystream-statistics datasets (paper §3.2) at configurable scale.

The paper generated three main datasets on a distributed cluster:

- ``first16``: Pr[Z_a = x & Z_b = y] for 1 <= a <= 16, 1 <= b <= 256
  (2**44 keys, ~9 CPU-years);
- ``consec512``: Pr[Z_r = x & Z_{r+1} = y] for 1 <= r <= 512
  (2**45 keys, ~16 CPU-years);
- a long-term variant estimating digraphs at positions 256w + a after
  dropping 1023 initial bytes (2**12 keys x 2**40 bytes, ~8 CPU-years).

This package reimplements the counting semantics exactly — per-worker
partial counters merged into a dataset — with fused generate-and-count
kernels (numpy, or compiled C when available) and a ``multiprocessing``
pool reducing into shared-memory counters, substituting for the paper's
80-machine setup.  Sample counts scale with
:class:`repro.config.ReproConfig`; see ROADMAP.md "Performance
architecture" for the measured throughput of each layer.
"""

from .generate import (
    bytewise_row_counts,
    consec_digraph_counts,
    digraph_row_counts,
    equality_counts,
    longterm_digraph_counts,
    pair_counts,
    single_byte_counts,
)
from .manager import DatasetSpec, generate_dataset, merge_counts
from .store import (
    dataset_cache_path,
    load_dataset,
    load_statistics,
    save_dataset,
    save_statistics,
)

__all__ = [
    "DatasetSpec",
    "bytewise_row_counts",
    "consec_digraph_counts",
    "dataset_cache_path",
    "digraph_row_counts",
    "equality_counts",
    "generate_dataset",
    "load_dataset",
    "load_statistics",
    "longterm_digraph_counts",
    "merge_counts",
    "pair_counts",
    "save_dataset",
    "save_statistics",
    "single_byte_counts",
]
