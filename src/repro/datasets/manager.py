"""Worker-pool orchestration for dataset generation (paper §3.2).

The paper used ~80 desktop machines plus three servers, each worker
generating at most 2**30 keystreams before its partial counters were
merged.  This module is the single-machine analogue: a
``multiprocessing`` pool of workers, each deriving its own independent
key stream from a child seed, counting into private int64 arrays, and a
merge step summing the shards.

Workers are plain module-level functions (picklable) parameterised by a
:class:`DatasetSpec`; the kernels live in :mod:`repro.datasets.generate`.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from ..config import ReproConfig
from ..errors import DatasetError
from ..rc4.keygen import derive_keys
from . import generate as kernels

KindName = Literal["single", "consec", "pairs", "equality", "longterm"]

#: Keys processed per kernel invocation inside one worker; sized so the
#: batch RC4 state stays cache-resident.
WORKER_CHUNK = 1 << 14


@dataclass(frozen=True)
class DatasetSpec:
    """Declarative description of a counting job.

    Attributes:
        kind: which kernel to run.
        num_keys: total RC4 keys (for ``longterm``: number of keys, each
            contributing ``stream_len`` digraphs).
        positions: number of leading positions (single/consec kinds).
        pairs: position pairs (pairs/equality kinds).
        stream_len: digraphs per key (longterm kind).
        drop: initial bytes to drop (longterm kind; paper uses 1023).
        gap: digraph gap (longterm kind; 0 = FM digraphs, 1 = w*256 pairs).
        keylen: RC4 key length in bytes.
        label: seed label so distinct datasets use independent keys.
    """

    kind: KindName
    num_keys: int
    positions: int = 0
    pairs: tuple[tuple[int, int], ...] = field(default_factory=tuple)
    stream_len: int = 0
    drop: int = 1023
    gap: int = 0
    keylen: int = 16
    label: str = "dataset"

    def validate(self) -> None:
        if self.num_keys <= 0:
            raise DatasetError(f"num_keys must be positive, got {self.num_keys}")
        if self.kind in ("single", "consec") and self.positions <= 0:
            raise DatasetError(f"{self.kind} dataset needs positions > 0")
        if self.kind in ("pairs", "equality") and not self.pairs:
            raise DatasetError(f"{self.kind} dataset needs position pairs")
        if self.kind == "longterm" and self.stream_len <= 0:
            raise DatasetError("longterm dataset needs stream_len > 0")


def _run_shard(args: tuple[DatasetSpec, ReproConfig, int, int]) -> np.ndarray:
    """Worker entry point: count ``shard_keys`` keystreams for one shard."""
    spec, config, shard_index, shard_keys = args
    out = _empty_counters(spec)
    remaining = shard_keys
    part = 0
    while remaining > 0:
        take = min(WORKER_CHUNK, remaining)
        keys = derive_keys(
            config,
            f"{spec.label}/shard{shard_index}/part{part}",
            take,
            keylen=spec.keylen,
        )
        _accumulate(spec, keys, out)
        remaining -= take
        part += 1
    return out


def _empty_counters(spec: DatasetSpec) -> np.ndarray:
    if spec.kind == "single":
        return np.zeros((spec.positions, 256), dtype=np.int64)
    if spec.kind == "consec":
        return np.zeros((spec.positions, 256, 256), dtype=np.int64)
    if spec.kind == "pairs":
        return np.zeros((len(spec.pairs), 256, 256), dtype=np.int64)
    if spec.kind == "equality":
        return np.zeros((len(spec.pairs), 2), dtype=np.int64)
    if spec.kind == "longterm":
        return np.zeros((256, 256, 256), dtype=np.int64)
    raise DatasetError(f"unknown dataset kind {spec.kind!r}")


def _accumulate(spec: DatasetSpec, keys: np.ndarray, out: np.ndarray) -> None:
    if spec.kind == "single":
        kernels.single_byte_counts(keys, spec.positions, out=out)
    elif spec.kind == "consec":
        kernels.consec_digraph_counts(keys, spec.positions, out=out)
    elif spec.kind == "pairs":
        kernels.pair_counts(keys, list(spec.pairs), out=out)
    elif spec.kind == "equality":
        kernels.equality_counts(keys, list(spec.pairs), out=out)
    elif spec.kind == "longterm":
        kernels.longterm_digraph_counts(
            keys, spec.stream_len, drop=spec.drop, gap=spec.gap, out=out
        )
    else:
        raise DatasetError(f"unknown dataset kind {spec.kind!r}")


def merge_counts(shards: list[np.ndarray]) -> np.ndarray:
    """Merge per-worker counters (the paper's combine step)."""
    if not shards:
        raise DatasetError("no shards to merge")
    total = np.zeros_like(shards[0])
    for shard in shards:
        if shard.shape != total.shape:
            raise DatasetError(
                f"shard shape {shard.shape} != expected {total.shape}"
            )
        total += shard
    return total


def generate_dataset(
    spec: DatasetSpec,
    config: ReproConfig,
    *,
    processes: int | None = None,
) -> np.ndarray:
    """Generate a dataset, optionally in parallel.

    Args:
        spec: the counting job.
        config: run configuration (seeding + scale already applied by the
            caller to ``spec.num_keys``).
        processes: worker processes; None = ``min(cpu, shards)``,
            1 = run inline (no pool — used by tests for determinism of
            coverage tools).
    """
    spec.validate()
    num_shards = max(1, min(32, spec.num_keys // WORKER_CHUNK))
    base, extra = divmod(spec.num_keys, num_shards)
    shard_sizes = [base + (1 if s < extra else 0) for s in range(num_shards)]
    shard_args = [
        (spec, config, index, size)
        for index, size in enumerate(shard_sizes)
        if size > 0
    ]
    if processes is None:
        processes = min(mp.cpu_count(), len(shard_args))
    if processes <= 1 or len(shard_args) == 1:
        shards = [_run_shard(args) for args in shard_args]
    else:
        with mp.get_context("fork").Pool(processes) as pool:
            shards = pool.map(_run_shard, shard_args)
    return merge_counts(shards)
