"""Worker-pool orchestration for dataset generation (paper §3.2).

The paper used ~80 desktop machines plus three servers, each worker
generating at most 2**30 keystreams before its partial counters were
merged.  This module is the single-machine analogue, with two execution
strategies chosen by backend:

- **Threaded native (preferred)**: when the compiled backend
  (:mod:`repro.rc4._native`) is available, one process walks the shard
  list inline and every fused kernel call fans the shard's keys across
  POSIX threads inside C (``threads`` parameter, default
  ``REPRO_NATIVE_THREADS`` or ``os.cpu_count()``).  Per-thread private
  counter blocks are merged in C, so there is no fork, no shared-memory
  segment, and no Python between a key and its counter update.
- **Forked numpy (fallback)**: without the native backend, a
  ``multiprocessing`` fork pool runs one worker per core.  Reduction is
  zero-copy: every worker accumulates into one
  ``multiprocessing.shared_memory`` int64 counter block (created by the
  parent, inherited through ``fork``), and the merge step sums the
  ``processes`` blocks in place — nothing round-trips through pickle.

Both strategies consume the identical shard list (one shard per
cache-sized key chunk, deterministic for a given ``num_keys``), derive
identical per-shard keys, and produce bit-identical counters —
``tests/test_dataset_equivalence.py`` checks every dataset kind across
thread counts and process counts.

Workers are plain module-level functions (picklable) parameterised by a
:class:`DatasetSpec`; fork inheritance carries the shared counter views.

This module is the *generation* layer.  Consumers normally go through
:meth:`repro.api.Session.dataset`, which adds memoisation (in-memory,
plus the on-disk store keyed by spec + seed) and is the path the
experiment registry, the CLI, and the benchmarks share.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Literal

import numpy as np

from ..config import ReproConfig
from ..errors import DatasetError
from ..rc4 import _native
from ..rc4.keygen import derive_keys
from . import generate as kernels

KindName = Literal["single", "consec", "pairs", "equality", "longterm"]

#: Keys processed per kernel invocation inside one worker; sized so the
#: batch RC4 state stays cache-resident.  Also the default shard size —
#: one pool task per chunk keeps workers load-balanced.
WORKER_CHUNK = 1 << 14


@dataclass(frozen=True)
class DatasetSpec:
    """Declarative description of a counting job.

    Attributes:
        kind: which kernel to run.
        num_keys: total RC4 keys (for ``longterm``: number of keys, each
            contributing ``stream_len`` digraphs).
        positions: number of leading positions (single/consec kinds).
        pairs: position pairs (pairs/equality kinds).
        stream_len: digraphs per key (longterm kind).
        drop: initial bytes to drop (longterm kind; paper uses 1023).
        gap: digraph gap (longterm kind; 0 = FM digraphs, 1 = w*256 pairs).
        keylen: RC4 key length in bytes.
        label: seed label so distinct datasets use independent keys.
    """

    kind: KindName
    num_keys: int
    positions: int = 0
    pairs: tuple[tuple[int, int], ...] = field(default_factory=tuple)
    stream_len: int = 0
    drop: int = 1023
    gap: int = 0
    keylen: int = 16
    label: str = "dataset"

    def validate(self) -> None:
        if self.num_keys <= 0:
            raise DatasetError(f"num_keys must be positive, got {self.num_keys}")
        if self.kind in ("single", "consec") and self.positions <= 0:
            raise DatasetError(f"{self.kind} dataset needs positions > 0")
        if self.kind in ("pairs", "equality") and not self.pairs:
            raise DatasetError(f"{self.kind} dataset needs position pairs")
        if self.kind == "longterm" and self.stream_len <= 0:
            raise DatasetError("longterm dataset needs stream_len > 0")


def _counter_shape(spec: DatasetSpec) -> tuple[int, ...]:
    if spec.kind == "single":
        return (spec.positions, 256)
    if spec.kind == "consec":
        return (spec.positions, 256, 256)
    if spec.kind == "pairs":
        return (len(spec.pairs), 256, 256)
    if spec.kind == "equality":
        return (len(spec.pairs), 2)
    if spec.kind == "longterm":
        return (256, 256, 256)
    raise DatasetError(f"unknown dataset kind {spec.kind!r}")


def _empty_counters(spec: DatasetSpec) -> np.ndarray:
    return np.zeros(_counter_shape(spec), dtype=np.int64)


def _accumulate(
    spec: DatasetSpec,
    keys: np.ndarray,
    out: np.ndarray,
    threads: int | None = 1,
    simd: bool | None = None,
) -> None:
    if spec.kind == "single":
        kernels.single_byte_counts(
            keys, spec.positions, out=out, threads=threads, simd=simd
        )
    elif spec.kind == "consec":
        kernels.consec_digraph_counts(
            keys, spec.positions, out=out, threads=threads, simd=simd
        )
    elif spec.kind == "pairs":
        kernels.pair_counts(
            keys, list(spec.pairs), out=out, threads=threads, simd=simd
        )
    elif spec.kind == "equality":
        kernels.equality_counts(
            keys, list(spec.pairs), out=out, threads=threads, simd=simd
        )
    elif spec.kind == "longterm":
        kernels.longterm_digraph_counts(
            keys,
            spec.stream_len,
            drop=spec.drop,
            gap=spec.gap,
            out=out,
            threads=threads,
            simd=simd,
        )
    else:
        raise DatasetError(f"unknown dataset kind {spec.kind!r}")


def _count_shard(
    spec: DatasetSpec,
    config: ReproConfig,
    shard_index: int,
    shard_keys: int,
    worker_chunk: int,
    out: np.ndarray,
    threads: int | None = 1,
) -> None:
    """Count ``shard_keys`` keystreams of one shard into ``out``."""
    remaining = shard_keys
    part = 0
    while remaining > 0:
        take = min(worker_chunk, remaining)
        keys = derive_keys(
            config,
            f"{spec.label}/shard{shard_index}/part{part}",
            take,
            keylen=spec.keylen,
        )
        _accumulate(spec, keys, out, threads=threads, simd=config.native_simd)
        remaining -= take
        part += 1


# --- shared-memory pool plumbing -------------------------------------------
#
# The parent creates one shared counter block per pool process and
# publishes the numpy views in _POOL_COUNTERS *before* forking, so the
# children inherit them without any serialisation.  Each worker claims a
# distinct slot index in its initializer and accumulates every shard it
# is handed into its own block — no locks needed, summation happens once
# in the parent.

_POOL_COUNTERS: list[np.ndarray] | None = None
_WORKER_SLOT: int | None = None


def _claim_slot(slot_counter) -> None:
    global _WORKER_SLOT
    with slot_counter.get_lock():
        _WORKER_SLOT = slot_counter.value
        slot_counter.value += 1


def _run_shard_shm(args: tuple[DatasetSpec, ReproConfig, int, int, int]) -> int:
    """Pool worker: count one shard into this process's shared counter."""
    spec, config, shard_index, shard_keys, worker_chunk = args
    assert _POOL_COUNTERS is not None and _WORKER_SLOT is not None
    out = _POOL_COUNTERS[_WORKER_SLOT]
    _count_shard(spec, config, shard_index, shard_keys, worker_chunk, out)
    return shard_keys


def merge_counts(shards: list[np.ndarray]) -> np.ndarray:
    """Merge per-worker counters (the paper's combine step)."""
    if not shards:
        raise DatasetError("no shards to merge")
    total = np.zeros_like(shards[0])
    for shard in shards:
        if shard.shape != total.shape:
            raise DatasetError(
                f"shard shape {shard.shape} != expected {total.shape}"
            )
        total += shard
    return total


def _generate_pooled(
    spec: DatasetSpec,
    shard_args: list[tuple[DatasetSpec, ReproConfig, int, int, int]],
    processes: int,
) -> np.ndarray:
    """Run the shard list on a fork pool with shared-memory reduction."""
    global _POOL_COUNTERS
    shape = _counter_shape(spec)
    nbytes = int(np.prod(shape)) * np.dtype(np.int64).itemsize
    # Each worker owns a full counter block; cap the aggregate at ~4 GiB
    # so wide machines don't exhaust /dev/shm on 128 MiB longterm counters.
    processes = max(1, min(processes, (4 << 30) // max(nbytes, 1)))
    if processes == 1:
        total = _empty_counters(spec)
        for args in shard_args:
            _count_shard(spec, args[1], args[2], args[3], args[4], total)
        return total
    ctx = mp.get_context("fork")
    blocks = [
        shared_memory.SharedMemory(create=True, size=nbytes)
        for _ in range(processes)
    ]
    try:
        # POSIX shared memory is zero-initialised on creation.
        _POOL_COUNTERS = [
            np.ndarray(shape, dtype=np.int64, buffer=block.buf)
            for block in blocks
        ]
        slot_counter = ctx.Value("i", 0)
        with ctx.Pool(
            processes, initializer=_claim_slot, initargs=(slot_counter,)
        ) as pool:
            counted = pool.map(_run_shard_shm, shard_args)
        if sum(counted) != spec.num_keys:
            raise DatasetError(
                f"workers counted {sum(counted)} keys, expected {spec.num_keys}"
            )
        total = _POOL_COUNTERS[0].copy()
        for counters in _POOL_COUNTERS[1:]:
            total += counters
        return total
    finally:
        # Drop the numpy views before closing, else the exported buffers
        # keep the mappings alive and close() raises BufferError.
        _POOL_COUNTERS = None
        for block in blocks:
            block.close()
            block.unlink()


def generate_dataset(
    spec: DatasetSpec,
    config: ReproConfig,
    *,
    processes: int | None = None,
    worker_chunk: int = WORKER_CHUNK,
    threads: int | None = None,
) -> np.ndarray:
    """Generate a dataset, optionally in parallel.

    Args:
        spec: the counting job.
        config: run configuration (seeding + scale already applied by the
            caller to ``spec.num_keys``).
        processes: worker processes.  ``None`` picks the backend's best
            strategy: a *single* process whose native kernels fan keys
            across POSIX threads when the compiled backend is available
            (in-C merge, no fork), else ``min(cpu, shards)`` forked
            numpy workers with shared-memory reduction.  An explicit
            value forces that many processes; pooled workers always run
            their kernels single-threaded to avoid oversubscription.
        worker_chunk: keys per shard / kernel invocation.  The default
            keeps the batch RC4 state cache-resident; tests shrink it to
            exercise the multi-shard reduction cheaply.  The value
            participates in key derivation (shard labels), so inline and
            pooled runs agree only when it matches.
        threads: native kernel thread count for the single-process
            strategy; ``None`` = ``REPRO_NATIVE_THREADS`` or
            ``os.cpu_count()``, 1 = fully serial.  Counters are
            bit-identical for every value.
    """
    spec.validate()
    if worker_chunk < 1:
        raise DatasetError(f"worker_chunk must be positive, got {worker_chunk}")
    # One shard per cache-sized chunk: shard sizing is workload-derived
    # (deterministic for a given num_keys), parallelism is process-derived.
    num_shards = max(1, -(-spec.num_keys // worker_chunk))
    base, extra = divmod(spec.num_keys, num_shards)
    shard_sizes = [base + (1 if s < extra else 0) for s in range(num_shards)]
    shard_args = [
        (spec, config, index, size, worker_chunk)
        for index, size in enumerate(shard_sizes)
        if size > 0
    ]
    if processes is None:
        # One threaded native process beats N forked workers: threads
        # share the key chunks and the L3, and the counter merge happens
        # once in C instead of across shared-memory segments.
        processes = 1 if _native.available() else mp.cpu_count()
    processes = min(processes, len(shard_args))
    if processes <= 1:
        total = _empty_counters(spec)
        for args in shard_args:
            _count_shard(
                spec, config, args[2], args[3], worker_chunk, total,
                threads=threads,
            )
        return total
    return _generate_pooled(spec, shard_args, processes)
