"""On-disk dataset store: counters plus the spec that produced them.

Thin wrapper over :mod:`repro.utils.serialization` that records the
:class:`~repro.datasets.manager.DatasetSpec` fields in the metadata and
validates them on load, so cached statistics are never silently reused
for a different experiment.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..errors import DatasetError
from ..utils.serialization import load_arrays, save_arrays
from .manager import DatasetSpec


def save_dataset(path: str | Path, counts: np.ndarray, spec: DatasetSpec) -> Path:
    """Persist counters and their generating spec."""
    meta = {"spec": _spec_to_meta(spec)}
    return save_arrays(path, {"counts": counts}, meta)


def load_dataset(
    path: str | Path, expected_spec: DatasetSpec | None = None
) -> tuple[np.ndarray, DatasetSpec]:
    """Load counters; optionally require that the stored spec matches."""
    arrays, meta = load_arrays(path)
    if "counts" not in arrays:
        raise DatasetError(f"{path}: no 'counts' array")
    spec = _spec_from_meta(meta.get("spec"))
    if expected_spec is not None and spec != expected_spec:
        raise DatasetError(
            f"{path}: stored spec {spec} does not match expected {expected_spec}"
        )
    return arrays["counts"], spec


def _spec_to_meta(spec: DatasetSpec) -> dict:
    meta = asdict(spec)
    meta["pairs"] = [list(p) for p in spec.pairs]
    return meta


def _spec_from_meta(meta: object) -> DatasetSpec:
    if not isinstance(meta, dict):
        raise DatasetError("dataset metadata is missing the generating spec")
    fields = dict(meta)
    fields["pairs"] = tuple(tuple(p) for p in fields.get("pairs", ()))
    try:
        return DatasetSpec(**fields)
    except TypeError as exc:
        raise DatasetError(f"bad dataset spec metadata: {meta!r}") from exc
