"""On-disk dataset store: counters plus the spec that produced them.

Thin wrapper over :mod:`repro.utils.serialization` that records the
:class:`~repro.datasets.manager.DatasetSpec` fields in the metadata and
validates them on load, so cached statistics are never silently reused
for a different experiment.  :func:`dataset_cache_path` derives the
deterministic cache location the :class:`repro.api.Session` dataset
cache uses.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..config import ReproConfig
from ..errors import DatasetError
from ..utils.serialization import canonical_json, load_arrays, save_arrays
from .manager import DatasetSpec


def dataset_cache_path(
    root: str | Path, spec: DatasetSpec, config: ReproConfig
) -> Path:
    """Deterministic cache file for ``spec`` generated under ``config``.

    The digest covers every spec field plus the master seed — the two
    inputs that fully determine the counters (scale only influences how
    callers choose ``spec.num_keys``).  The kind and label stay in the
    filename so humans can tell cache entries apart.
    """
    payload = {"spec": _spec_to_meta(spec), "seed": config.seed}
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", spec.label) or "dataset"
    return Path(root) / f"{spec.kind}-{slug}-{digest[:16]}.npz"


def save_dataset(path: str | Path, counts: np.ndarray, spec: DatasetSpec) -> Path:
    """Persist counters and their generating spec."""
    meta = {"spec": _spec_to_meta(spec)}
    return save_arrays(path, {"counts": counts}, meta)


def load_dataset(
    path: str | Path, expected_spec: DatasetSpec | None = None
) -> tuple[np.ndarray, DatasetSpec]:
    """Load counters; optionally require that the stored spec matches."""
    arrays, meta = load_arrays(path)
    if "counts" not in arrays:
        raise DatasetError(f"{path}: no 'counts' array")
    spec = _spec_from_meta(meta.get("spec"))
    if expected_spec is not None and spec != expected_spec:
        raise DatasetError(
            f"{path}: stored spec {spec} does not match expected {expected_spec}"
        )
    return arrays["counts"], spec


def save_statistics(
    path: str | Path,
    kind: str,
    arrays: dict[str, np.ndarray],
    meta: dict,
) -> Path:
    """Persist capture sufficient statistics (see :mod:`repro.capture`).

    Same NPZ container as the dataset store, tagged with a
    ``statistics_kind`` so a capture checkpoint is never mistaken for a
    dataset (or for the other attack's statistics) on load.
    """
    payload = dict(meta)
    if "statistics_kind" in payload:
        raise DatasetError("'statistics_kind' is a reserved metadata key")
    payload["statistics_kind"] = kind
    return save_arrays(path, arrays, payload)


def load_statistics(
    path: str | Path, kind: str
) -> tuple[dict[str, np.ndarray], dict]:
    """Load statistics written by :func:`save_statistics`, checking the kind."""
    arrays, meta = load_arrays(path)
    found = meta.get("statistics_kind")
    if found != kind:
        raise DatasetError(
            f"{path}: statistics kind {found!r} does not match expected {kind!r}"
        )
    return arrays, meta


def _spec_to_meta(spec: DatasetSpec) -> dict:
    meta = asdict(spec)
    meta["pairs"] = [list(p) for p in spec.pairs]
    return meta


def _spec_from_meta(meta: object) -> DatasetSpec:
    if not isinstance(meta, dict):
        raise DatasetError("dataset metadata is missing the generating spec")
    fields = dict(meta)
    fields["pairs"] = tuple(tuple(p) for p in fields.get("pairs", ()))
    try:
        return DatasetSpec(**fields)
    except TypeError as exc:
        raise DatasetError(f"bad dataset spec metadata: {meta!r}") from exc
