"""Counting kernels over batches of RC4 keystreams (paper §3.2).

Each kernel derives counts straight from a key batch and updates int64
counters.  Like the paper's workers we accumulate into per-chunk counters
and merge afterwards; unlike the paper we can afford int64 everywhere
(their 16-bit counters were a cache optimisation at 2**30 keystreams per
worker).

Two implementations sit behind every kernel:

- When the compiled backend (:mod:`repro.rc4._native`) is available, the
  kernels are *fused generate-and-count*: each key's keystream is
  produced and counted in one C loop with the 256-byte state in L1 —
  no keystream block is ever materialised.  Every kernel takes a
  ``threads`` knob (default ``REPRO_NATIVE_THREADS`` or
  ``os.cpu_count()``): the C side splits keys across POSIX threads with
  private counter blocks merged at the end, bit-exact for any thread
  count.
- The pure-numpy fallback streams overlapping windows out of
  :meth:`repro.rc4.batch.BatchRC4.stream_blocks` (one reused buffer, so
  long-term jobs never hold a ``(stream_len, n)`` block) and replaces the
  old per-position ``np.bincount`` loops with grouped flat bincounts over
  combined ``position * width + code`` values — O(positions / group)
  numpy dispatches instead of O(positions), with group sizes chosen so
  codes + bins stay cache-resident.

Both paths are bit-exact with :mod:`repro.rc4.reference`; see
tests/test_dataset_equivalence.py.

The grouped flat-bincount cores are exposed at array level
(:func:`bytewise_row_counts`, :func:`digraph_row_counts`) so consumers
that already hold byte rows — the capture engine in
:mod:`repro.capture` counts *ciphertext* rows — share the exact same
counting code instead of duplicating it.
"""

from __future__ import annotations

import numpy as np

from ..rc4 import _native
from ..rc4.batch import BatchRC4

#: Keystream rows per fused single-byte bincount group (bins = 64 * 256).
SINGLE_GROUP = 64

#: Digraph positions per fused bincount group (bins = 8 * 65536 int64
#: = 4 MiB, still cache-friendly next to the (group, n) int32 codes).
DIGRAPH_GROUP = 8


def _code_scratch(
    scratch: np.ndarray | None, width: int, n: int
) -> np.ndarray:
    """Reuse a caller-hoisted int32 code buffer when it is big enough."""
    if (
        scratch is None
        or scratch.dtype != np.int32
        or scratch.ndim != 2
        or scratch.shape[0] < width
        or scratch.shape[1] != n
    ):
        return np.empty((width, n), dtype=np.int32)
    return scratch


def bytewise_row_counts(
    rows: np.ndarray,
    out: np.ndarray,
    *,
    group: int = SINGLE_GROUP,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Accumulate per-row byte histograms: ``out[r, v] += #{c: rows[r, c] == v}``.

    The array-level form of the single-byte kernel, shared by the numpy
    dataset fallback, the per-TSC distribution measurement, and the
    capture engine (which counts ciphertext rows instead of generated
    keystream).  ``rows`` is uint8 ``(m, n)``; ``out`` must be a
    C-contiguous int64 ``(m, 256)`` accumulator.  One flat bincount over
    combined ``row * 256 + value`` codes per ``group`` rows.  Streaming
    callers pass a hoisted ``(group, n)`` int32 ``scratch`` so per-block
    calls stay allocation-free.
    """
    if not out.flags.c_contiguous:
        raise ValueError("out must be C-contiguous (see _contiguous_target)")
    m, n = rows.shape
    flat = out.reshape(-1)
    width = min(group, m)
    codes = _code_scratch(scratch, width, n)
    offsets = (np.arange(width, dtype=np.int32) * 256)[:, None]
    for start in range(0, m, group):
        g = min(group, m - start)
        np.add(rows[start : start + g], offsets[:g], out=codes[:g], casting="unsafe")
        flat[start * 256 : (start + g) * 256] += np.bincount(
            codes[:g].reshape(-1), minlength=g * 256
        )
    return out


def digraph_row_counts(
    first: np.ndarray,
    second: np.ndarray,
    flat_out: np.ndarray,
    row_offsets: np.ndarray,
    *,
    group: int = DIGRAPH_GROUP,
    scratch: np.ndarray | None = None,
) -> None:
    """Accumulate per-row 2-byte-code histograms into a flat counter.

    For every row r and column c this performs
    ``flat_out[row_offsets[r] + 256 * first[r, c] + second[r, c]] += 1``
    via grouped flat bincounts — the array-level core of every digraph
    kernel, shared by the streamed numpy fallback, :func:`pair_counts`,
    and the capture engine (FM digraph and ABSAB differential cells over
    ciphertext rows).  ``first``/``second`` are uint8 ``(m, n)``;
    ``row_offsets[r]`` is the flat offset of row r's 65536-bin block
    (non-contiguous offsets are fine — the long-term kernel bins by PRGA
    counter).  Streaming callers pass a hoisted ``(group, n)`` int32
    ``scratch`` so per-window calls stay allocation-free.
    """
    m, n = first.shape
    width = min(group, m)
    codes = _code_scratch(scratch, width, n)
    for start in range(0, m, group):
        g = min(group, m - start)
        np.multiply(
            first[start : start + g], 256, out=codes[:g],
            dtype=np.int32, casting="unsafe",
        )
        codes[:g] |= second[start : start + g]
        codes[:g] += (np.arange(g, dtype=np.int32) * 65536)[:, None]
        counts = np.bincount(codes[:g].reshape(-1), minlength=g * 65536)
        counts = counts.reshape(g, 65536)
        for idx in range(g):
            offset = row_offsets[start + idx]
            flat_out[offset : offset + 65536] += counts[idx]


def templated_row_counts(
    rows: np.ndarray,
    templates: np.ndarray,
    out: np.ndarray,
    *,
    group: int = SINGLE_GROUP,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Count ``rows ^ template`` histograms for many templates at once.

    For every template v, row r, and column c this performs
    ``out[v, r, rows[r, c] ^ templates[v, r]] += 1`` — the multi-victim
    single-byte capture kernel.  Because XOR with a constant is a
    permutation of the 256 bins, the shared ``rows`` block is bincounted
    exactly once (:func:`bytewise_row_counts`) and each template then
    scatters the base histogram through its per-row XOR permutation:
    O(rows * n + V * rows * 256) instead of O(V * rows * n), with
    bit-identical int64 results.  ``rows`` is uint8 ``(m, n)``;
    ``templates`` is uint8 ``(V, m)``; ``out`` must be int64
    ``(V, m, 256)`` with C-contiguous per-template blocks.
    """
    m, _ = rows.shape
    num_templates, t_rows = templates.shape
    if t_rows != m:
        raise ValueError(
            f"templates cover {t_rows} rows, rows block has {m}"
        )
    if out.shape != (num_templates, m, 256):
        raise ValueError(
            f"out must be ({num_templates}, {m}, 256), got {out.shape}"
        )
    base = np.zeros((m, 256), dtype=np.int64)
    bytewise_row_counts(rows, base, group=group, scratch=scratch)
    values = np.arange(256, dtype=np.uint8)[None, :]
    row_idx = np.arange(m)[:, None]
    for v in range(num_templates):
        # out[v, r, c] += base[r, c ^ templates[v, r]]: gather the base
        # histogram through this template's per-row bin permutation.
        out[v] += base[row_idx, values ^ templates[v][:, None]]
    return out


def _contiguous_target(out: np.ndarray) -> np.ndarray:
    """Staging counter for caller-provided ``out`` buffers.

    Every counting path accumulates through a flat C-contiguous view (or
    hands the buffer to C); on a non-contiguous ``out`` a plain
    ``reshape`` would silently count into a copy.  Callers add the
    staging array back into ``out`` when it differs.
    """
    if out.flags.c_contiguous:
        return out
    return np.zeros(out.shape, dtype=out.dtype)


def _keystream_block(
    keys: np.ndarray,
    length: int,
    *,
    drop: int = 0,
    threads: int | None = None,
    simd: bool | None = None,
) -> np.ndarray:
    """Full ``(length, n)`` keystream block (pair/equality kernels only)."""
    if _native.available():
        return np.ascontiguousarray(
            _native.batch_keystream(
                keys, length, drop=drop, threads=threads, simd=simd
            ).T
        )
    batch = BatchRC4(keys)
    if drop:
        batch.skip(drop)
    return batch.keystream_rows(length)


def single_byte_counts(
    keys: np.ndarray,
    positions: int,
    *,
    out: np.ndarray | None = None,
    threads: int | None = None,
    simd: bool | None = None,
) -> np.ndarray:
    """Count Z_r = k occurrences for r = 1..positions.

    Returns (or accumulates into ``out``) an int64 array of shape
    ``(positions, 256)``.  ``threads`` and ``simd`` select the native
    backend's thread count and AVX2 tier (the numpy fallback ignores
    both).
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint8)
    if out is None:
        out = np.zeros((positions, 256), dtype=np.int64)
    target = _contiguous_target(out)
    if _native.available():
        _native.count_single(keys, positions, target, threads=threads, simd=simd)
    else:
        scratch = np.empty(
            (min(SINGLE_GROUP, positions), keys.shape[0]), dtype=np.int32
        )
        for start, view in BatchRC4(keys).stream_blocks(
            positions, block=SINGLE_GROUP
        ):
            bytewise_row_counts(
                view, target[start : start + view.shape[0]], scratch=scratch
            )
    if target is not out:
        out += target
    return out


def _streamed_digraph_counts(
    keys: np.ndarray,
    positions: int,
    *,
    drop: int,
    gap: int,
    flat_out: np.ndarray,
    row_offset_codes: np.ndarray,
) -> None:
    """Numpy fallback shared by the consec and long-term kernels.

    Streams windows from one reused buffer and performs one flat bincount
    per group of digraph positions, with ``row_offset_codes[r]`` giving
    the counter-row offset (``row * 65536`` for consec, ``i_of_row *
    65536`` for long-term) added to each digraph code.  For long-term the
    offsets are non-contiguous, so groups accumulate via a 65536-aligned
    scatter-add into ``flat_out``.
    """
    span = 1 + gap
    batch = BatchRC4(keys)
    if drop:
        batch.skip(drop)
    # Wide gaps need windows at least span rows deep to carry the pairs.
    group = max(DIGRAPH_GROUP, span)
    scratch = np.empty(
        (min(DIGRAPH_GROUP, positions), keys.shape[0]), dtype=np.int32
    )
    for start, view in batch.stream_blocks(
        positions + span, block=group, overlap=span
    ):
        g = view.shape[0] - span
        digraph_row_counts(
            view[:g],
            view[span : span + g],
            flat_out,
            row_offset_codes[start : start + g],
            scratch=scratch,
        )


def consec_digraph_counts(
    keys: np.ndarray,
    positions: int,
    *,
    out: np.ndarray | None = None,
    threads: int | None = None,
    simd: bool | None = None,
) -> np.ndarray:
    """Count consecutive digraphs (Z_r, Z_{r+1}) for r = 1..positions.

    This is the paper's ``consec512`` dataset shape: an int64 array of
    shape ``(positions, 256, 256)``.  Note the memory cost: 512 positions
    need 512*65536*8 = 256 MiB; callers choose smaller ranges by default
    (and the native layer clamps ``threads`` so its private per-thread
    counter blocks stay within a 4 GiB scratch budget, the same cap the
    forked shared-memory pool uses).
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint8)
    if out is None:
        out = np.zeros((positions, 256, 256), dtype=np.int64)
    target = _contiguous_target(out)
    if _native.available():
        _native.count_digraph(keys, positions, target, threads=threads, simd=simd)
    else:
        row_offsets = np.arange(positions, dtype=np.int64) * 65536
        _streamed_digraph_counts(
            keys,
            positions,
            drop=0,
            gap=0,
            flat_out=target.reshape(-1),
            row_offset_codes=row_offsets,
        )
    if target is not out:
        out += target
    return out


def pair_counts(
    keys: np.ndarray,
    pairs: list[tuple[int, int]],
    *,
    out: np.ndarray | None = None,
    threads: int | None = None,
    simd: bool | None = None,
) -> np.ndarray:
    """Count joint values of arbitrary position pairs (a, b) with a != b.

    This is the ``first16`` dataset shape restricted to requested pairs:
    an int64 array of shape ``(len(pairs), 256, 256)``.
    """
    if not pairs:
        raise ValueError("pairs must be non-empty")
    for a, b in pairs:
        if a < 1 or b < 1 or a == b:
            raise ValueError(f"invalid position pair ({a}, {b})")
    length = max(max(a, b) for a, b in pairs)
    rows = _keystream_block(keys, length, threads=threads, simd=simd)
    if out is None:
        out = np.zeros((len(pairs), 256, 256), dtype=np.int64)
    target = _contiguous_target(out)
    first = rows[np.asarray([a - 1 for a, _ in pairs], dtype=np.intp)]
    second = rows[np.asarray([b - 1 for _, b in pairs], dtype=np.intp)]
    digraph_row_counts(
        first,
        second,
        target.reshape(-1),
        np.arange(len(pairs), dtype=np.int64) * 65536,
    )
    if target is not out:
        out += target
    return out


def equality_counts(
    keys: np.ndarray,
    pairs: list[tuple[int, int]],
    *,
    out: np.ndarray | None = None,
    threads: int | None = None,
    simd: bool | None = None,
) -> np.ndarray:
    """Count the events Z_a == Z_b for the requested pairs (paper eqs 3-5).

    Returns an int64 array of shape ``(len(pairs), 2)``: column 0 is the
    number of equal observations, column 1 the number of trials.
    """
    if not pairs:
        raise ValueError("pairs must be non-empty")
    for a, b in pairs:
        if a < 1 or b < 1 or a == b:
            raise ValueError(f"invalid position pair ({a}, {b})")
    length = max(max(a, b) for a, b in pairs)
    rows = _keystream_block(keys, length, threads=threads, simd=simd)
    n = keys.shape[0]
    if out is None:
        out = np.zeros((len(pairs), 2), dtype=np.int64)
    for idx, (a, b) in enumerate(pairs):
        out[idx, 0] += int(np.count_nonzero(rows[a - 1] == rows[b - 1]))
        out[idx, 1] += n
    return out


def longterm_digraph_counts(
    keys: np.ndarray,
    stream_len: int,
    *,
    drop: int = 1023,
    gap: int = 0,
    out: np.ndarray | None = None,
    threads: int | None = None,
    simd: bool | None = None,
) -> np.ndarray:
    """Count digraphs (Z_r, Z_{r+1+gap}) aggregated by i = r mod 256.

    This is the long-term dataset of §3.4: initial bytes are dropped, and
    digraph counts are binned by the PRGA counter so biases whose
    periodicity divides 256 (all Fluhrer–McGrew biases, the w*256
    biases) show up.

    Args:
        keys: key batch; every key contributes ``stream_len`` digraphs.
        stream_len: digraph observations per key.
        drop: initial keystream bytes to discard (paper drops 1023).
        gap: 0 for consecutive digraphs (FM), 1 for the w*256 pairs.
        out: optional ``(256, 256, 256)`` int64 accumulator indexed
            ``[i, first, second]``.
        threads: native-backend thread count (numpy fallback ignores it).
        simd: allow the native AVX2 wide kernels (numpy fallback
            ignores it).

    Returns:
        int64 array of shape ``(256, 256, 256)``.
    """
    if drop < 0:
        raise ValueError(f"drop must be non-negative, got {drop}")
    if not 0 <= gap <= 255:
        raise ValueError(f"gap must be 0..255, got {gap}")
    keys = np.ascontiguousarray(keys, dtype=np.uint8)
    if out is None:
        out = np.zeros((256, 256, 256), dtype=np.int64)
    target = _contiguous_target(out)
    if _native.available():
        _native.count_longterm(
            keys, stream_len, drop, gap, target, threads=threads, simd=simd
        )
    else:
        # Position r (1-indexed within this block) sits at absolute
        # position drop + r, so the PRGA counter for its output is
        # (drop + r) mod 256.
        i_of_row = (drop + np.arange(stream_len, dtype=np.int64) + 1) % 256
        _streamed_digraph_counts(
            keys,
            stream_len,
            drop=drop,
            gap=gap,
            flat_out=target.reshape(-1),
            row_offset_codes=i_of_row * 65536,
        )
    if target is not out:
        out += target
    return out
