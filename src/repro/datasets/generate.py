"""Counting kernels over batches of RC4 keystreams (paper §3.2).

Each kernel consumes a ``(length, n)`` keystream block (the row-major
output of :meth:`repro.rc4.batch.BatchRC4.keystream_rows`) and updates
int64 counters.  Like the paper's workers we accumulate into per-chunk
counters and merge afterwards; unlike the paper we can afford int64
everywhere (their 16-bit counters were a cache optimisation at 2**30
keystreams per worker).
"""

from __future__ import annotations

import numpy as np

from ..rc4.batch import BatchRC4


def _keystream_block(keys: np.ndarray, length: int, *, drop: int = 0) -> np.ndarray:
    batch = BatchRC4(keys)
    if drop:
        batch.skip(drop)
    return batch.keystream_rows(length)


def single_byte_counts(
    keys: np.ndarray, positions: int, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Count Z_r = k occurrences for r = 1..positions.

    Returns (or accumulates into ``out``) an int64 array of shape
    ``(positions, 256)``.
    """
    rows = _keystream_block(keys, positions)
    if out is None:
        out = np.zeros((positions, 256), dtype=np.int64)
    for r in range(positions):
        out[r] += np.bincount(rows[r], minlength=256)
    return out


def consec_digraph_counts(
    keys: np.ndarray, positions: int, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Count consecutive digraphs (Z_r, Z_{r+1}) for r = 1..positions.

    This is the paper's ``consec512`` dataset shape: an int64 array of
    shape ``(positions, 256, 256)``.  Note the memory cost: 512 positions
    need 512*65536*8 = 256 MiB; callers choose smaller ranges by default.
    """
    rows = _keystream_block(keys, positions + 1)
    if out is None:
        out = np.zeros((positions, 256, 256), dtype=np.int64)
    flat = out.reshape(positions, 65536)
    for r in range(positions):
        pair = (rows[r].astype(np.int32) << 8) | rows[r + 1]
        flat[r] += np.bincount(pair, minlength=65536)
    return out


def pair_counts(
    keys: np.ndarray,
    pairs: list[tuple[int, int]],
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Count joint values of arbitrary position pairs (a, b) with a < b.

    This is the ``first16`` dataset shape restricted to requested pairs:
    an int64 array of shape ``(len(pairs), 256, 256)``.
    """
    if not pairs:
        raise ValueError("pairs must be non-empty")
    for a, b in pairs:
        if a < 1 or b < 1 or a == b:
            raise ValueError(f"invalid position pair ({a}, {b})")
    length = max(max(a, b) for a, b in pairs)
    rows = _keystream_block(keys, length)
    if out is None:
        out = np.zeros((len(pairs), 256, 256), dtype=np.int64)
    flat = out.reshape(len(pairs), 65536)
    for idx, (a, b) in enumerate(pairs):
        pair = (rows[a - 1].astype(np.int32) << 8) | rows[b - 1]
        flat[idx] += np.bincount(pair, minlength=65536)
    return out


def equality_counts(
    keys: np.ndarray,
    pairs: list[tuple[int, int]],
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Count the events Z_a == Z_b for the requested pairs (paper eqs 3-5).

    Returns an int64 array of shape ``(len(pairs), 2)``: column 0 is the
    number of equal observations, column 1 the number of trials.
    """
    if not pairs:
        raise ValueError("pairs must be non-empty")
    length = max(max(a, b) for a, b in pairs)
    rows = _keystream_block(keys, length)
    n = keys.shape[0]
    if out is None:
        out = np.zeros((len(pairs), 2), dtype=np.int64)
    for idx, (a, b) in enumerate(pairs):
        out[idx, 0] += int(np.count_nonzero(rows[a - 1] == rows[b - 1]))
        out[idx, 1] += n
    return out


def longterm_digraph_counts(
    keys: np.ndarray,
    stream_len: int,
    *,
    drop: int = 1023,
    gap: int = 0,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Count digraphs (Z_r, Z_{r+1+gap}) aggregated by i = r mod 256.

    This is the long-term dataset of §3.4: initial bytes are dropped, and
    digraph counts are binned by the PRGA counter so biases whose
    periodicity divides 256 (all Fluhrer–McGrew biases, the w*256
    biases) show up.

    Args:
        keys: key batch; every key contributes ``stream_len`` digraphs.
        stream_len: digraph observations per key.
        drop: initial keystream bytes to discard (paper drops 1023).
        gap: 0 for consecutive digraphs (FM), 1 for the w*256 pairs.
        out: optional ``(256, 256, 256)`` int64 accumulator indexed
            ``[i, first, second]``.

    Returns:
        int64 array of shape ``(256, 256, 256)``.
    """
    if out is None:
        out = np.zeros((256, 256, 256), dtype=np.int64)
    flat = out.reshape(256, 65536)
    batch = BatchRC4(keys)
    if drop:
        batch.skip(drop)
    rows = batch.keystream_rows(stream_len + 1 + gap)
    # Position r (1-indexed within this block) sits at absolute position
    # drop + r, so the PRGA counter for its output is (drop + r) mod 256.
    for r in range(stream_len):
        i = (drop + r + 1) % 256
        pair = (rows[r].astype(np.int32) << 8) | rows[r + 1 + gap]
        flat[i] += np.bincount(pair, minlength=65536)
    return out
