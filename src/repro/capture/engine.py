"""Batched capture orchestration: checkpoints, shards, progress.

A :class:`CaptureSource` describes one capture campaign as a
deterministic sequence of batches: batch b always derives the same keys
(child-seeded by batch index, never by sequential RNG state) and
accumulates the same counts, so any subsequence of batches is
reproducible in isolation.  :func:`run_capture` walks a batch range,
checkpointing the sufficient statistics every ``checkpoint_every``
batches; rerunning with the same arguments resumes from the last
checkpoint and produces counters bit-identical to an uninterrupted run.

Sharding rides the same property: :func:`shard_batches` splits the batch
space into disjoint ranges, each shard runs ``run_capture(source,
batches=...)`` in its own process, and :func:`merge_shards` combines the
results with the exact int64 merge of the
:class:`~repro.capture.protocol.SufficientStatistics` protocol.
"""

from __future__ import annotations

import hashlib
import os
import warnings
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Protocol, Sequence

from ..errors import CaptureError, DatasetError
from ..utils.serialization import canonical_json
from .protocol import SufficientStatistics

#: Default batches between checkpoint writes.
DEFAULT_CHECKPOINT_EVERY = 16


class CaptureSource(Protocol):
    """One capture campaign, described as deterministic batches."""

    @property
    def num_batches(self) -> int: ...

    @property
    def total_requests(self) -> int: ...

    def fingerprint(self) -> str:
        """Digest of everything that determines the counters."""
        ...

    def empty(self) -> SufficientStatistics: ...

    def capture_batch(self, stats: SufficientStatistics, index: int) -> int:
        """Accumulate batch ``index`` into ``stats``; returns requests added."""
        ...

    def load(self, path: str | Path) -> tuple[SufficientStatistics, dict]:
        """Load a checkpoint written by this source's statistics type."""
        ...


@dataclass(frozen=True)
class CaptureProgress:
    """One progress notification from :func:`run_capture`.

    Attributes:
        batches_done: batches completed within the running range.
        num_batches: batches in the running range.
        requests_done: requests accumulated so far (including resumed).
        total_requests: campaign total across all batches of the source.
        checkpointed: True when a checkpoint was written this batch.
    """

    batches_done: int
    num_batches: int
    requests_done: int
    total_requests: int
    checkpointed: bool = False


ProgressCallback = Callable[[CaptureProgress], None]


def source_fingerprint(descriptor: dict[str, Any]) -> str:
    """Stable digest of a source descriptor (seed, layout, batching)."""
    payload = canonical_json(descriptor).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def shard_batches(num_batches: int, num_shards: int) -> list[range]:
    """Split a batch space into disjoint, near-even contiguous ranges.

    Every returned range is non-empty: asking for more shards than there
    are batches yields exactly ``num_batches`` single-batch shards, and
    an empty batch space yields no shards at all.  (Empty-range shards
    would show up in a fleet manifest as permanently-pending work.)
    """
    if num_batches < 0:
        raise CaptureError(f"num_batches must be >= 0, got {num_batches}")
    if num_shards < 1:
        raise CaptureError(f"num_shards must be >= 1, got {num_shards}")
    if num_batches == 0:
        return []
    num_shards = min(num_shards, num_batches)
    base, extra = divmod(num_batches, num_shards)
    ranges = []
    start = 0
    for shard in range(num_shards):
        size = base + (1 if shard < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


def merge_shards(shards: Iterable[SufficientStatistics]) -> SufficientStatistics:
    """Combine shard statistics with the exact int64 merge."""
    iterator = iter(shards)
    try:
        total = next(iterator).snapshot()
    except StopIteration:
        raise CaptureError("no shards to merge") from None
    for shard in iterator:
        total.merge(shard)
    return total


def batch_digest(batch_list: list[int]) -> str:
    """Compact identity of the batch subsequence a checkpoint covers.

    Public because the fleet coordinator re-derives it per shard to
    verify a worker-written NPZ really covers the manifest's range.
    """
    payload = canonical_json(batch_list).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def fsync_file(path: str | Path) -> None:
    """Flush file contents to stable storage (crash-durable checkpoints)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


#: Exceptions a truncated/corrupted checkpoint NPZ surfaces as: short or
#: garbage zip containers, bad CRCs mid-read, malformed ``__meta__``.
CORRUPT_CHECKPOINT_ERRORS = (
    DatasetError,
    OSError,
    zipfile.BadZipFile,
    ValueError,
    KeyError,
    EOFError,
)


def _checkpoint_path(path: str | Path) -> Path:
    """Normalise to a ``.npz`` path (what ``np.savez`` writes anyway)."""
    path = Path(path)
    return path if path.suffix == ".npz" else Path(str(path) + ".npz")


def run_capture(
    source: CaptureSource,
    *,
    batches: Sequence[int] | None = None,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    progress: ProgressCallback | None = None,
    resume: bool = True,
) -> SufficientStatistics:
    """Run a capture campaign batch by batch.

    The single-process streaming loop every capture consumer builds on:
    acquire one batch of ciphertexts, fold it into the campaign's
    :class:`SufficientStatistics`, optionally checkpoint, repeat.  Fleet
    shards call this with disjoint ``batches`` ranges and merge the
    results bit-exactly.

    Example:

        >>> from repro.capture import run_capture
        >>> from repro.fleet import build_source
        >>> source = build_source("https", num_requests=1 << 12,
        ...                       config=config)            # doctest: +SKIP
        >>> stats = run_capture(source,
        ...                     checkpoint_path="cap.npz")  # doctest: +SKIP
        >>> stats.requests_done                             # doctest: +SKIP
        4096

    Args:
        source: the campaign (acquisition backend + batching).
        batches: batch indices to run (default: every batch).  Shards
            pass disjoint ranges from :func:`shard_batches`.
        checkpoint_path: where to persist the statistics every
            ``checkpoint_every`` batches (atomic replace; ``.npz``
            appended when missing).  ``None`` disables checkpointing.
        checkpoint_every: batches between checkpoint writes; the final
            batch always checkpoints so a completed capture resumes as
            a no-op.
        progress: optional callback receiving :class:`CaptureProgress`
            after every batch.
        resume: when the checkpoint file exists, continue from it after
            validating the source fingerprint and batch range; pass
            ``False`` to start over (overwriting the checkpoint).

    Returns:
        The populated sufficient statistics.

    Raises:
        CaptureError: on invalid arguments, or on a checkpoint whose
            fingerprint/batch range does not match this campaign.
    """
    if checkpoint_every < 1:
        raise CaptureError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    batch_list = (
        list(range(source.num_batches)) if batches is None else list(batches)
    )
    for index in batch_list:
        if not 0 <= index < source.num_batches:
            raise CaptureError(
                f"batch index {index} outside 0..{source.num_batches - 1}"
            )
    if len(set(batch_list)) != len(batch_list):
        raise CaptureError(
            "batches contains duplicate indices — counts would double"
        )
    fingerprint = source.fingerprint()
    path = _checkpoint_path(checkpoint_path) if checkpoint_path else None

    stats: SufficientStatistics | None = None
    done = 0
    requests_done = 0
    if path is not None and resume and path.exists():
        try:
            loaded, extra = source.load(path)
            cursor = extra.get("capture_checkpoint")
            if isinstance(cursor, dict):
                done = int(cursor["batches_done"])
                requests_done = int(cursor["requests_done"])
                stats = loaded
        except CORRUPT_CHECKPOINT_ERRORS as exc:
            # A half-written or truncated checkpoint (worker killed mid
            # write, disk full) must cost a restart of this shard, not
            # an opaque zipfile/numpy traceback for the whole campaign.
            warnings.warn(
                f"checkpoint {path} is corrupted or truncated "
                f"({exc.__class__.__name__}: {exc}); restarting capture "
                "from scratch",
                RuntimeWarning,
                stacklevel=2,
            )
            stats = None
            done = 0
            requests_done = 0
        else:
            # A *readable* NPZ that is not a checkpoint, or one from the
            # wrong campaign, stays a hard error: silently restarting
            # there would hide a caller bug (and could clobber data the
            # caller pointed at by mistake).
            if stats is None:
                raise CaptureError(f"{path} is not a capture checkpoint")
            if cursor.get("fingerprint") != fingerprint:
                raise CaptureError(
                    f"{path} was written by a different capture campaign "
                    "(source fingerprint mismatch)"
                )
            if cursor.get("batch_digest") != batch_digest(batch_list):
                raise CaptureError(
                    f"{path} covers a different batch range than this run"
                )
    if stats is None:
        stats = source.empty()

    def write_checkpoint() -> None:
        cursor = {
            "fingerprint": fingerprint,
            "batch_digest": batch_digest(batch_list),
            "batches_done": done,
            "requests_done": requests_done,
        }
        tmp = path.with_name(path.name[: -len(".npz")] + ".tmp.npz")
        stats.save(tmp, extra={"capture_checkpoint": cursor})
        fsync_file(tmp)
        os.replace(tmp, path)

    for position in range(done, len(batch_list)):
        requests_done += source.capture_batch(stats, batch_list[position])
        done = position + 1
        wrote = False
        if path is not None and (
            done % checkpoint_every == 0 or done == len(batch_list)
        ):
            write_checkpoint()
            wrote = True
        if progress is not None:
            progress(
                CaptureProgress(
                    batches_done=done,
                    num_batches=len(batch_list),
                    requests_done=requests_done,
                    total_requests=source.total_requests,
                    checkpointed=wrote,
                )
            )
    return stats
