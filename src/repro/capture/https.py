"""Batched HTTPS ciphertext acquisition (paper §6.3 at engine speed).

The §6 statistics only depend on the ciphertext bytes of each request at
the layout's positions, and each request's ciphertext is keystream XOR a
*constant* plaintext template.  So a capture batch is three vectorized
steps, with no per-request Python loop anywhere:

1. generate a ``(connections, stream_len)`` keystream block through
   :func:`repro.rc4.batch.batch_keystream` (native backend when
   available) — one RC4 instance per simulated TLS connection, streamed
   deep enough to cover ``reconnect_every`` requests per connection;
2. XOR the broadcast plaintext template;
3. count Fluhrer–McGrew digraph and ABSAB differential cells with the
   grouped flat-bincount kernels from :mod:`repro.datasets.generate`.

``reconnect_every`` models record churn (§6.3): every connection carries
that many requests before the victim rekeys.  ``reconnect_every=1`` is
the fresh-connection regime of Fig 10 (each request starts at keystream
position 1, where the early-position biases live); larger values reuse
one keystream at record-aligned offsets exactly like the persistent
connection the per-request reference path
(:meth:`repro.tls.attack.CookieStatistics.ingest_fragment`) accepts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from ..config import ReproConfig
from ..datasets.generate import DIGRAPH_GROUP, digraph_row_counts
from ..errors import AttackError, CaptureError
from ..rc4.batch import batch_keystream
from ..rc4.keygen import derive_keys
from ..tls.attack import CookieLayout, CookieStatistics
from ..tls.record import MAC_LEN
from ..utils.serialization import canonical_json


def ingest_cipher_rows(
    stats: CookieStatistics, rows: np.ndarray, offset: int = 1
) -> None:
    """Vectorized equivalent of per-row ``ingest_fragment`` calls.

    Args:
        stats: the statistics to accumulate into (its ``absab_matrix``
            backing store must be present — :meth:`CookieStatistics.empty`
            always builds it).
        rows: uint8 ciphertext rows ``(n, >= request_len)``; row k is one
            encrypted request starting at keystream position ``offset``.
        offset: keystream position of column 0, congruent to the layout
            base modulo 256 (the record-padding invariant, §6.3).
    """
    layout = stats.layout
    if (offset - layout.base_offset) % 256 != 0:
        raise AttackError(
            f"row offset {offset} incompatible with layout base "
            f"{layout.base_offset} modulo 256 — add request padding"
        )
    if rows.ndim != 2 or rows.shape[1] < layout.request_len:
        raise AttackError(
            f"rows must be (n, >= {layout.request_len}), got {rows.shape}"
        )
    if stats.absab_matrix is None:
        raise AttackError(
            "batched ingestion needs the absab_matrix backing store "
            "(build statistics with CookieStatistics.empty)"
        )
    columns = np.ascontiguousarray(rows.T)

    transitions = layout.transitions()
    first = transitions[0] - layout.base_offset
    count = len(transitions)
    digraph_row_counts(
        columns[first : first + count],
        columns[first + 1 : first + count + 1],
        stats.fm_counts.reshape(-1),
        np.arange(count, dtype=np.int64) * 65536,
    )

    base = layout.base_offset
    targets, partners = [], []
    for (t, gap, side) in stats.absab_counts:
        r = transitions[t]
        if side == "after":
            p1 = r + 2 + gap
        else:
            p1 = r - 2 - gap
        targets.append(r - base)
        partners.append(p1 - base)
    targets = np.asarray(targets, dtype=np.intp)
    partners = np.asarray(partners, dtype=np.intp)
    flat = stats.absab_matrix.reshape(-1)
    offsets = np.arange(len(targets), dtype=np.int64) * 65536
    # Chunk the alignment axis so the (chunk, n) differential blocks
    # stay cache-sized; a 16-char cookie at max_gap=128 has thousands
    # of alignments.
    chunk = 64
    scratch = np.empty(
        (min(DIGRAPH_GROUP, len(targets)), rows.shape[0]), dtype=np.int32
    )
    for start in range(0, len(targets), chunk):
        t_idx = targets[start : start + chunk]
        p_idx = partners[start : start + chunk]
        d1 = columns[t_idx] ^ columns[p_idx]
        d2 = columns[t_idx + 1] ^ columns[p_idx + 1]
        digraph_row_counts(
            d1, d2, flat, offsets[start : start + chunk], scratch=scratch
        )

    stats.num_requests += rows.shape[0]


@dataclass
class HttpsCaptureSource:
    """Deterministic batched acquisition for the §6 cookie attack.

    Args:
        config: run configuration (key derivation seeds).
        layout: the manipulated request layout (§6.1).
        plaintext: one request's plaintext (constant across the
            campaign) — exactly ``layout.request_len`` bytes.
        num_requests: campaign total.
        batch_size: requests per batch; must be a multiple of
            ``reconnect_every`` so batches hold whole connections.
        reconnect_every: requests each connection carries before the
            victim rekeys (1 = fresh connection per request).
        max_gap: ABSAB gap cap (paper: 128).
        record_overhead: keystream bytes between the end of one request
            and the start of the next on a connection (the RC4-SHA
            record MAC).
        label: key-derivation namespace.
    """

    config: ReproConfig
    layout: CookieLayout
    plaintext: bytes
    num_requests: int
    batch_size: int = 4096
    reconnect_every: int = 1
    max_gap: int = 128
    record_overhead: int = MAC_LEN
    label: str = "https-capture"
    _plaintext_arr: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.plaintext) != self.layout.request_len:
            raise CaptureError(
                f"plaintext is {len(self.plaintext)} bytes, layout expects "
                f"{self.layout.request_len}"
            )
        if self.num_requests < 1:
            raise CaptureError(
                f"num_requests must be positive, got {self.num_requests}"
            )
        if self.reconnect_every < 1:
            raise CaptureError(
                f"reconnect_every must be >= 1, got {self.reconnect_every}"
            )
        if self.batch_size < 1 or self.batch_size % self.reconnect_every:
            raise CaptureError(
                f"batch_size ({self.batch_size}) must be a positive multiple "
                f"of reconnect_every ({self.reconnect_every})"
            )
        if self.reconnect_every > 1 and self._stride % 256 != 0:
            raise CaptureError(
                f"record stride {self._stride} must be a multiple of 256 for "
                "multi-request connections — add request padding (§6.3)"
            )
        self._plaintext_arr = np.frombuffer(self.plaintext, dtype=np.uint8)

    @property
    def _stride(self) -> int:
        """Keystream bytes consumed per request on a connection."""
        return self.layout.request_len + self.record_overhead

    @property
    def num_batches(self) -> int:
        return -(-self.num_requests // self.batch_size)

    @property
    def total_requests(self) -> int:
        return self.num_requests

    def descriptor(self) -> dict:
        """JSON-safe record sufficient to rebuild this source bit-exactly.

        This is exactly what :meth:`fingerprint` hashes, and what a fleet
        manifest ships to workers on other machines (only the seed rides
        along from the config — native-backend knobs stay per-worker and
        cannot affect the counters).
        """
        return {
            "kind": "https-capture",
            "seed": self.config.seed,
            "label": self.label,
            "layout": {
                "prefix": self.layout.prefix.decode("latin-1"),
                "suffix": self.layout.suffix.decode("latin-1"),
                "cookie_len": self.layout.cookie_len,
                "base_offset": self.layout.base_offset,
            },
            "plaintext": self.plaintext.decode("latin-1"),
            "num_requests": self.num_requests,
            "batch_size": self.batch_size,
            "reconnect_every": self.reconnect_every,
            "max_gap": self.max_gap,
            "record_overhead": self.record_overhead,
        }

    @classmethod
    def from_descriptor(
        cls, descriptor: dict, config: ReproConfig
    ) -> "HttpsCaptureSource":
        """Rebuild a source from :meth:`descriptor` output.

        ``config`` supplies the local backend knobs; its seed is
        overridden by the descriptor's so the keystreams match the
        originating campaign.
        """
        if descriptor.get("kind") != "https-capture":
            raise CaptureError(
                f"descriptor kind {descriptor.get('kind')!r} is not "
                "'https-capture'"
            )
        layout = descriptor["layout"]
        return cls(
            config=replace(config, seed=int(descriptor["seed"])),
            layout=CookieLayout(
                prefix=layout["prefix"].encode("latin-1"),
                suffix=layout["suffix"].encode("latin-1"),
                cookie_len=int(layout["cookie_len"]),
                base_offset=int(layout["base_offset"]),
            ),
            plaintext=descriptor["plaintext"].encode("latin-1"),
            num_requests=int(descriptor["num_requests"]),
            batch_size=int(descriptor["batch_size"]),
            reconnect_every=int(descriptor["reconnect_every"]),
            max_gap=int(descriptor["max_gap"]),
            record_overhead=int(descriptor["record_overhead"]),
            label=str(descriptor["label"]),
        )

    def fingerprint(self) -> str:
        payload = canonical_json(self.descriptor()).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def empty(self) -> CookieStatistics:
        return CookieStatistics.empty(self.layout, max_gap=self.max_gap)

    def load(self, path: str | Path) -> tuple[CookieStatistics, dict]:
        return CookieStatistics.load(path)

    def capture_batch(self, stats: CookieStatistics, index: int) -> int:
        """One batch: keystream block -> XOR template -> count cells."""
        first = index * self.batch_size
        count = min(self.batch_size, self.num_requests - first)
        if count <= 0:
            raise CaptureError(f"batch {index} is beyond the campaign")
        per_conn = self.reconnect_every
        connections = -(-count // per_conn)
        keys = derive_keys(
            self.config, f"{self.label}/batch{index}", connections
        )
        length = (per_conn - 1) * self._stride + self.layout.request_len
        stream = batch_keystream(
            keys, length, threads=self.config.native_threads
        )
        for q in range(per_conn):
            # Connections whose q-th request exists (the final connection
            # of the final batch may carry fewer than per_conn requests).
            rows = -(-(count - q) // per_conn)
            if rows <= 0:
                break
            start = q * self._stride
            cipher = (
                stream[:rows, start : start + self.layout.request_len]
                ^ self._plaintext_arr
            )
            ingest_cipher_rows(
                stats, cipher, offset=self.layout.base_offset + start
            )
        return count
