"""Batched HTTPS ciphertext acquisition (paper §6.3 at engine speed).

The §6 statistics only depend on the ciphertext bytes of each request at
the layout's positions, and each request's ciphertext is keystream XOR a
*constant* plaintext template.  So a capture batch is three vectorized
steps, with no per-request Python loop anywhere:

1. generate a ``(connections, stream_len)`` keystream block through
   :func:`repro.rc4.batch.batch_keystream` (native backend when
   available) — one RC4 instance per simulated TLS connection, streamed
   deep enough to cover ``reconnect_every`` requests per connection;
2. XOR the broadcast plaintext template;
3. count Fluhrer–McGrew digraph and ABSAB differential cells with the
   grouped flat-bincount kernels from :mod:`repro.datasets.generate`.

``reconnect_every`` models record churn (§6.3): every connection carries
that many requests before the victim rekeys.  ``reconnect_every=1`` is
the fresh-connection regime of Fig 10 (each request starts at keystream
position 1, where the early-position biases live); larger values reuse
one keystream at record-aligned offsets exactly like the persistent
connection the per-request reference path
(:meth:`repro.tls.attack.CookieStatistics.ingest_fragment`) accepts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from ..config import ReproConfig
from ..errors import AttackError, CaptureError
from ..rc4.batch import batch_keystream
from ..rc4.keygen import derive_keys
from ..tls.attack import CookieLayout, CookieStatistics
from ..tls.record import MAC_LEN
from ..utils.serialization import canonical_json
from .multi import ingest_keystream_columns


def ingest_cipher_rows(
    stats: CookieStatistics, rows: np.ndarray, offset: int = 1
) -> None:
    """Vectorized equivalent of per-row ``ingest_fragment`` calls.

    A single-victim facade over the multi-template core
    (:func:`repro.capture.multi.ingest_keystream_columns`): ciphertext
    rows are keystream rows with the template already folded in, so the
    zero template reproduces the historical counts bit-exactly.

    Args:
        stats: the statistics to accumulate into (its ``absab_matrix``
            backing store must be present — :meth:`CookieStatistics.empty`
            always builds it).
        rows: uint8 ciphertext rows ``(n, >= request_len)``; row k is one
            encrypted request starting at keystream position ``offset``.
        offset: keystream position of column 0, congruent to the layout
            base modulo 256 (the record-padding invariant, §6.3).
    """
    layout = stats.layout
    if (offset - layout.base_offset) % 256 != 0:
        raise AttackError(
            f"row offset {offset} incompatible with layout base "
            f"{layout.base_offset} modulo 256 — add request padding"
        )
    if rows.ndim != 2 or rows.shape[1] < layout.request_len:
        raise AttackError(
            f"rows must be (n, >= {layout.request_len}), got {rows.shape}"
        )
    if stats.absab_matrix is None:
        raise AttackError(
            "batched ingestion needs the absab_matrix backing store "
            "(build statistics with CookieStatistics.empty)"
        )
    columns = np.ascontiguousarray(rows.T)
    template = np.zeros((1, layout.request_len), dtype=np.uint8)
    ingest_keystream_columns([stats], columns, template, offset=offset)


@dataclass
class HttpsCaptureSource:
    """Deterministic batched acquisition for the §6 cookie attack.

    Args:
        config: run configuration (key derivation seeds).
        layout: the manipulated request layout (§6.1).
        plaintext: one request's plaintext (constant across the
            campaign) — exactly ``layout.request_len`` bytes.
        num_requests: campaign total.
        batch_size: requests per batch; must be a multiple of
            ``reconnect_every`` so batches hold whole connections.
        reconnect_every: requests each connection carries before the
            victim rekeys (1 = fresh connection per request).
        max_gap: ABSAB gap cap (paper: 128).
        record_overhead: keystream bytes between the end of one request
            and the start of the next on a connection (the RC4-SHA
            record MAC).
        label: key-derivation namespace.
    """

    config: ReproConfig
    layout: CookieLayout
    plaintext: bytes
    num_requests: int
    batch_size: int = 4096
    reconnect_every: int = 1
    max_gap: int = 128
    record_overhead: int = MAC_LEN
    label: str = "https-capture"
    _plaintext_arr: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.plaintext) != self.layout.request_len:
            raise CaptureError(
                f"plaintext is {len(self.plaintext)} bytes, layout expects "
                f"{self.layout.request_len}"
            )
        if self.num_requests < 1:
            raise CaptureError(
                f"num_requests must be positive, got {self.num_requests}"
            )
        if self.reconnect_every < 1:
            raise CaptureError(
                f"reconnect_every must be >= 1, got {self.reconnect_every}"
            )
        if self.batch_size < 1 or self.batch_size % self.reconnect_every:
            raise CaptureError(
                f"batch_size ({self.batch_size}) must be a positive multiple "
                f"of reconnect_every ({self.reconnect_every})"
            )
        if self.reconnect_every > 1 and self._stride % 256 != 0:
            raise CaptureError(
                f"record stride {self._stride} must be a multiple of 256 for "
                "multi-request connections — add request padding (§6.3)"
            )
        self._plaintext_arr = np.frombuffer(self.plaintext, dtype=np.uint8)

    @property
    def _stride(self) -> int:
        """Keystream bytes consumed per request on a connection."""
        return self.layout.request_len + self.record_overhead

    @property
    def num_batches(self) -> int:
        return -(-self.num_requests // self.batch_size)

    @property
    def total_requests(self) -> int:
        return self.num_requests

    def descriptor(self) -> dict:
        """JSON-safe record sufficient to rebuild this source bit-exactly.

        This is exactly what :meth:`fingerprint` hashes, and what a fleet
        manifest ships to workers on other machines (only the seed rides
        along from the config — native-backend knobs stay per-worker and
        cannot affect the counters).
        """
        return {
            "kind": "https-capture",
            "seed": self.config.seed,
            "label": self.label,
            "layout": {
                "prefix": self.layout.prefix.decode("latin-1"),
                "suffix": self.layout.suffix.decode("latin-1"),
                "cookie_len": self.layout.cookie_len,
                "base_offset": self.layout.base_offset,
            },
            "plaintext": self.plaintext.decode("latin-1"),
            "num_requests": self.num_requests,
            "batch_size": self.batch_size,
            "reconnect_every": self.reconnect_every,
            "max_gap": self.max_gap,
            "record_overhead": self.record_overhead,
        }

    @classmethod
    def from_descriptor(
        cls, descriptor: dict, config: ReproConfig
    ) -> "HttpsCaptureSource":
        """Rebuild a source from :meth:`descriptor` output.

        ``config`` supplies the local backend knobs; its seed is
        overridden by the descriptor's so the keystreams match the
        originating campaign.
        """
        if descriptor.get("kind") != "https-capture":
            raise CaptureError(
                f"descriptor kind {descriptor.get('kind')!r} is not "
                "'https-capture'"
            )
        layout = descriptor["layout"]
        return cls(
            config=replace(config, seed=int(descriptor["seed"])),
            layout=CookieLayout(
                prefix=layout["prefix"].encode("latin-1"),
                suffix=layout["suffix"].encode("latin-1"),
                cookie_len=int(layout["cookie_len"]),
                base_offset=int(layout["base_offset"]),
            ),
            plaintext=descriptor["plaintext"].encode("latin-1"),
            num_requests=int(descriptor["num_requests"]),
            batch_size=int(descriptor["batch_size"]),
            reconnect_every=int(descriptor["reconnect_every"]),
            max_gap=int(descriptor["max_gap"]),
            record_overhead=int(descriptor["record_overhead"]),
            label=str(descriptor["label"]),
        )

    def fingerprint(self) -> str:
        payload = canonical_json(self.descriptor()).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def empty(self) -> CookieStatistics:
        return CookieStatistics.empty(self.layout, max_gap=self.max_gap)

    def load(self, path: str | Path) -> tuple[CookieStatistics, dict]:
        return CookieStatistics.load(path)

    def capture_batch(self, stats: CookieStatistics, index: int) -> int:
        """One batch: keystream block -> XOR template -> count cells."""
        first = index * self.batch_size
        count = min(self.batch_size, self.num_requests - first)
        if count <= 0:
            raise CaptureError(f"batch {index} is beyond the campaign")
        per_conn = self.reconnect_every
        connections = -(-count // per_conn)
        keys = derive_keys(
            self.config, f"{self.label}/batch{index}", connections
        )
        length = (per_conn - 1) * self._stride + self.layout.request_len
        stream = batch_keystream(
            keys, length, threads=self.config.native_threads,
            simd=self.config.native_simd,
        )
        # One transpose for the whole block; each request window is a
        # column view and the template folds inside the multi-template
        # core (single-victim fast path — one XOR, then zero-template
        # counting, bit-identical to XOR-then-count).
        columns = np.ascontiguousarray(stream.T)
        template = self._plaintext_arr[np.newaxis, :]
        for q in range(per_conn):
            # Connections whose q-th request exists (the final connection
            # of the final batch may carry fewer than per_conn requests).
            rows = -(-(count - q) // per_conn)
            if rows <= 0:
                break
            start = q * self._stride
            window = columns[
                start : start + self.layout.request_len, :rows
            ]
            ingest_keystream_columns(
                [stats],
                window,
                template,
                offset=self.layout.base_offset + start,
            )
        return count
