"""Multi-template capture: one keystream batch scored against many victims.

A campaign over N victims who share a keystream *regime* (same browser
layout and reconnect cadence on the TLS side; same packets-per-TSC
budget on the TKIP side) differs per victim only in the plaintext
template — the cookie bytes, or the MIC/ICV of the injected packet.
Ciphertext is ``keystream XOR template``, so the expensive part of a
capture batch (RC4 keystream generation) is shared and only the cheap
template fold is per-victim:

- **HTTPS** (:func:`ingest_keystream_columns`): the ABSAB differential
  ``C[r] ^ C[p] = (Z[r] ^ Z[p]) ^ (T[r] ^ T[p])`` splits into a shared
  keystream differential block computed once per alignment chunk and a
  per-victim XOR with a *scalar* template differential per alignment.
  Fluhrer–McGrew digraph rows (a handful per victim) fold directly.
- **TKIP** (:class:`MultiTkipStatistics`): XOR with a constant permutes
  the 256 histogram bins, so the shared keystream columns are bincounted
  once (:func:`~repro.datasets.generate.bytewise_row_counts`) and every
  victim *gathers* that base histogram through its template's per-row
  permutation (:func:`~repro.datasets.generate.templated_row_counts`) —
  O(P·n + V·P·256) instead of O(V·P·n).

Both paths produce int64 counters bit-identical to N independent
single-template captures run with the same key-derivation label
(`tests/test_campaign.py` holds this cell-for-cell on both
``REPRO_NATIVE`` legs), and the single-victim case (V=1) folds the one
template into the columns up front, making the routed
:class:`~repro.capture.https.HttpsCaptureSource` path exactly as cheap
as before.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Sequence

import numpy as np

from ..config import ReproConfig
from ..datasets.generate import (
    DIGRAPH_GROUP,
    digraph_row_counts,
    templated_row_counts,
)
from ..errors import AttackError, CaptureError
from ..rc4.batch import batch_keystream
from ..rc4.keygen import derive_keys
from ..tkip.injection import CaptureSet
from ..tkip.keymix import simplified_key_batch
from ..tls.attack import CookieLayout, CookieStatistics
from ..tls.record import MAC_LEN
from ..utils.serialization import canonical_json

#: Alignment rows per ABSAB differential chunk (same cache budget as the
#: single-template path in :mod:`repro.capture.https`).
ABSAB_CHUNK = 64


def ingest_keystream_columns(
    stats_list: Sequence[CookieStatistics],
    columns: np.ndarray,
    templates: np.ndarray,
    *,
    offset: int = 1,
) -> None:
    """Score one keystream column block against many plaintext templates.

    The multi-victim core of the §6 capture: ``columns[p, k]`` is the
    keystream byte at request position ``p`` of request ``k`` (or the
    ciphertext byte — any constant XOR folds into the templates), and
    victim v's ciphertext is ``columns[p] ^ templates[v, p]``.  Each
    victim's Fluhrer–McGrew and ABSAB cells accumulate into its own
    :class:`~repro.tls.attack.CookieStatistics`, with the keystream
    differentials computed once and shared across victims.

    Args:
        stats_list: one statistics object per victim; all must share one
            layout and alignment set (same ``max_gap``).
        columns: uint8 ``(>= request_len, n)`` keystream columns.
        templates: uint8 ``(len(stats_list), request_len)`` plaintext
            templates, one row per victim.
        offset: keystream position of row 0, congruent to the layout
            base modulo 256 (the record-padding invariant, §6.3).
    """
    if not stats_list:
        raise AttackError("multi-template ingestion needs at least one victim")
    stats0 = stats_list[0]
    layout = stats0.layout
    if (offset - layout.base_offset) % 256 != 0:
        raise AttackError(
            f"row offset {offset} incompatible with layout base "
            f"{layout.base_offset} modulo 256 — add request padding"
        )
    if columns.ndim != 2 or columns.shape[0] < layout.request_len:
        raise AttackError(
            f"columns must be (>= {layout.request_len}, n), "
            f"got {columns.shape}"
        )
    templates = np.asarray(templates, dtype=np.uint8)
    if templates.shape != (len(stats_list), layout.request_len):
        raise AttackError(
            f"templates must be ({len(stats_list)}, {layout.request_len}), "
            f"got {templates.shape}"
        )
    alignments = list(stats0.absab_counts)
    for stats in stats_list:
        if stats.layout != layout or list(stats.absab_counts) != alignments:
            raise AttackError(
                "multi-template ingestion needs statistics sharing one "
                "layout and alignment set"
            )
        if stats.absab_matrix is None:
            raise AttackError(
                "batched ingestion needs the absab_matrix backing store "
                "(build statistics with CookieStatistics.empty)"
            )
    n = columns.shape[1]

    if len(stats_list) == 1 and templates.any():
        # Single-victim fast path: fold the one template into the
        # columns up front — one XOR, exactly the old per-request cost,
        # and every count below sees a zero template.
        columns = columns[: layout.request_len] ^ templates[0][:, None]
        templates = np.zeros_like(templates)

    transitions = layout.transitions()
    first = transitions[0] - layout.base_offset
    count = len(transitions)
    fm_first = columns[first : first + count]
    fm_second = columns[first + 1 : first + count + 1]
    fm_offsets = np.arange(count, dtype=np.int64) * 65536
    for v, stats in enumerate(stats_list):
        t1 = templates[v, first : first + count]
        t2 = templates[v, first + 1 : first + count + 1]
        if t1.any() or t2.any():
            f, s = fm_first ^ t1[:, None], fm_second ^ t2[:, None]
        else:
            f, s = fm_first, fm_second
        digraph_row_counts(
            f, s, stats.fm_counts.reshape(-1), fm_offsets
        )

    base = layout.base_offset
    targets, partners = [], []
    for (t, gap, side) in alignments:
        r = transitions[t]
        p1 = r + 2 + gap if side == "after" else r - 2 - gap
        targets.append(r - base)
        partners.append(p1 - base)
    targets = np.asarray(targets, dtype=np.intp)
    partners = np.asarray(partners, dtype=np.intp)
    offsets = np.arange(len(targets), dtype=np.int64) * 65536
    # Per-victim template differentials: one scalar per alignment row.
    td1 = templates[:, targets] ^ templates[:, partners]
    td2 = templates[:, targets + 1] ^ templates[:, partners + 1]
    scratch = np.empty(
        (min(DIGRAPH_GROUP, len(targets)), n), dtype=np.int32
    )
    for start in range(0, len(targets), ABSAB_CHUNK):
        t_idx = targets[start : start + ABSAB_CHUNK]
        p_idx = partners[start : start + ABSAB_CHUNK]
        # Shared keystream differentials for this alignment chunk —
        # computed once, reused by every victim.
        d1 = columns[t_idx] ^ columns[p_idx]
        d2 = columns[t_idx + 1] ^ columns[p_idx + 1]
        for v, stats in enumerate(stats_list):
            v1 = td1[v, start : start + ABSAB_CHUNK]
            v2 = td2[v, start : start + ABSAB_CHUNK]
            if v1.any() or v2.any():
                c1, c2 = d1 ^ v1[:, None], d2 ^ v2[:, None]
            else:
                c1, c2 = d1, d2
            digraph_row_counts(
                c1,
                c2,
                stats.absab_matrix.reshape(-1),
                offsets[start : start + ABSAB_CHUNK],
                scratch=scratch,
            )

    for stats in stats_list:
        stats.num_requests += n


def _layout_meta(layout: CookieLayout) -> dict:
    return {
        "prefix": layout.prefix.decode("latin-1"),
        "suffix": layout.suffix.decode("latin-1"),
        "cookie_len": layout.cookie_len,
        "base_offset": layout.base_offset,
    }


def _layout_from_meta(fields: dict) -> CookieLayout:
    return CookieLayout(
        prefix=fields["prefix"].encode("latin-1"),
        suffix=fields["suffix"].encode("latin-1"),
        cookie_len=int(fields["cookie_len"]),
        base_offset=int(fields["base_offset"]),
    )


@dataclass
class MultiTemplateStatistics:
    """Per-victim :class:`CookieStatistics` behind one statistics facade.

    Implements the :class:`repro.capture.SufficientStatistics` protocol
    (snapshot / exact int64 merge / canonical-JSON summary / one-NPZ
    persistence), so multi-victim captures shard, checkpoint, and fleet
    exactly like single-victim ones.  Victim v's counters are an
    ordinary :class:`CookieStatistics` — the per-victim attack code
    needs no multi-victim awareness at all.
    """

    layout: CookieLayout
    max_gap: int
    victim_ids: tuple[str, ...]
    victims: list[CookieStatistics]

    @classmethod
    def empty(
        cls,
        layout: CookieLayout,
        victim_ids: Sequence[str],
        *,
        max_gap: int,
    ) -> "MultiTemplateStatistics":
        return cls(
            layout=layout,
            max_gap=max_gap,
            victim_ids=tuple(victim_ids),
            victims=[
                CookieStatistics.empty(layout, max_gap=max_gap)
                for _ in victim_ids
            ],
        )

    def victim(self, victim_id: str) -> CookieStatistics:
        """The per-victim statistics for one campaign member."""
        try:
            return self.victims[self.victim_ids.index(victim_id)]
        except ValueError:
            raise AttackError(
                f"no victim {victim_id!r} in this capture "
                f"(victims: {list(self.victim_ids)})"
            ) from None

    def snapshot(self) -> "MultiTemplateStatistics":
        return MultiTemplateStatistics(
            layout=self.layout,
            max_gap=self.max_gap,
            victim_ids=self.victim_ids,
            victims=[stats.snapshot() for stats in self.victims],
        )

    def merge(self, other: "MultiTemplateStatistics") -> "MultiTemplateStatistics":
        if (
            self.victim_ids != other.victim_ids
            or self.layout != other.layout
            or self.max_gap != other.max_gap
        ):
            raise AttackError(
                "cannot merge multi-template statistics of different "
                "victim sets or layouts"
            )
        for mine, theirs in zip(self.victims, other.victims):
            mine.merge(theirs)
        return self

    def to_jsonable(self) -> dict:
        return {
            "type": "multi-template-statistics",
            "num_victims": len(self.victims),
            "victim_ids": list(self.victim_ids),
            "max_gap": int(self.max_gap),
            "layout": {
                "prefix_len": len(self.layout.prefix),
                "suffix_len": len(self.layout.suffix),
                "cookie_len": self.layout.cookie_len,
                "base_offset": self.layout.base_offset,
            },
            "num_requests_per_victim": (
                int(self.victims[0].num_requests) if self.victims else 0
            ),
            "fm_total": int(
                sum(int(s.fm_counts.sum()) for s in self.victims)
            ),
            "absab_total": int(
                sum(int(s.absab_matrix.sum()) for s in self.victims)
            ),
        }

    def save(self, path, *, extra: dict | None = None):
        """One NPZ for the whole victim set (stacked counter blocks)."""
        from ..datasets.store import save_statistics

        transitions = len(self.layout.transitions())
        alignments = len(
            CookieStatistics.alignment_keys(self.layout, max_gap=self.max_gap)
        )
        if self.victims:
            fm = np.stack([s.fm_counts for s in self.victims])
            absab = np.stack([s.absab_matrix for s in self.victims])
        else:
            fm = np.zeros((0, transitions, 256, 256), dtype=np.int64)
            absab = np.zeros((0, alignments, 65536), dtype=np.int64)
        requests = np.asarray(
            [s.num_requests for s in self.victims], dtype=np.int64
        )
        meta = {
            "layout": _layout_meta(self.layout),
            "max_gap": self.max_gap,
            "victim_ids": list(self.victim_ids),
            "extra": extra or {},
        }
        return save_statistics(
            path,
            "multi-template-statistics",
            {"fm_counts": fm, "absab_matrix": absab, "num_requests": requests},
            meta,
        )

    @classmethod
    def load(cls, path) -> tuple["MultiTemplateStatistics", dict]:
        from ..datasets.store import load_statistics

        arrays, meta = load_statistics(path, "multi-template-statistics")
        layout = _layout_from_meta(meta["layout"])
        stats = cls.empty(
            layout, meta["victim_ids"], max_gap=int(meta["max_gap"])
        )
        fm, absab = arrays["fm_counts"], arrays["absab_matrix"]
        requests = arrays["num_requests"]
        if len(stats.victims) != fm.shape[0] or len(requests) != fm.shape[0]:
            raise AttackError(f"{path}: victim count mismatch")
        for v, victim in enumerate(stats.victims):
            if fm[v].shape != victim.fm_counts.shape:
                raise AttackError(f"{path}: fm_counts shape mismatch")
            if absab[v].shape != victim.absab_matrix.shape:
                raise AttackError(f"{path}: absab_matrix shape mismatch")
            victim.fm_counts += fm[v]
            victim.absab_matrix += absab[v]
            victim.num_requests = int(requests[v])
        return stats, meta.get("extra", {})


@dataclass
class MultiHttpsCaptureSource:
    """Batched §6 acquisition for many victims sharing a keystream regime.

    Victims in one source share the request layout and reconnect cadence
    (hence the keystream schedule) but each has its own plaintext
    template — its own secret cookie.  Key derivation matches
    :class:`~repro.capture.https.HttpsCaptureSource` exactly, so a
    single-victim source with the same ``label`` produces bit-identical
    per-victim counters (what `tests/test_campaign.py` asserts).

    Args:
        config: run configuration (key derivation seeds).
        layout: the shared request layout (§6.1).
        templates: one request plaintext per victim, each exactly
            ``layout.request_len`` bytes.
        victim_ids: stable per-victim identifiers (campaign bookkeeping).
        num_requests: requests captured *per victim* (shared keystream —
            all victims see every request).
        batch_size / reconnect_every / max_gap / record_overhead /
        label: as on the single-victim source.
    """

    config: ReproConfig
    layout: CookieLayout
    templates: tuple[bytes, ...]
    victim_ids: tuple[str, ...]
    num_requests: int
    batch_size: int = 4096
    reconnect_every: int = 1
    max_gap: int = 128
    record_overhead: int = MAC_LEN
    label: str = "multi-https-capture"
    _template_matrix: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.templates = tuple(self.templates)
        self.victim_ids = tuple(self.victim_ids)
        if not self.templates:
            raise CaptureError("templates must be non-empty")
        if len(self.templates) != len(self.victim_ids):
            raise CaptureError(
                f"{len(self.templates)} templates for "
                f"{len(self.victim_ids)} victim ids"
            )
        for victim_id, template in zip(self.victim_ids, self.templates):
            if len(template) != self.layout.request_len:
                raise CaptureError(
                    f"victim {victim_id!r}: template is {len(template)} "
                    f"bytes, layout expects {self.layout.request_len}"
                )
        if self.num_requests < 1:
            raise CaptureError(
                f"num_requests must be positive, got {self.num_requests}"
            )
        if self.reconnect_every < 1:
            raise CaptureError(
                f"reconnect_every must be >= 1, got {self.reconnect_every}"
            )
        if self.batch_size < 1 or self.batch_size % self.reconnect_every:
            raise CaptureError(
                f"batch_size ({self.batch_size}) must be a positive multiple "
                f"of reconnect_every ({self.reconnect_every})"
            )
        if self.reconnect_every > 1 and self._stride % 256 != 0:
            raise CaptureError(
                f"record stride {self._stride} must be a multiple of 256 for "
                "multi-request connections — add request padding (§6.3)"
            )
        self._template_matrix = np.stack(
            [np.frombuffer(t, dtype=np.uint8) for t in self.templates]
        )

    @property
    def _stride(self) -> int:
        return self.layout.request_len + self.record_overhead

    @property
    def num_batches(self) -> int:
        return -(-self.num_requests // self.batch_size)

    @property
    def total_requests(self) -> int:
        return self.num_requests * len(self.templates)

    def descriptor(self) -> dict:
        return {
            "kind": "multi-https-capture",
            "seed": self.config.seed,
            "label": self.label,
            "layout": _layout_meta(self.layout),
            "templates": [t.decode("latin-1") for t in self.templates],
            "victim_ids": list(self.victim_ids),
            "num_requests": self.num_requests,
            "batch_size": self.batch_size,
            "reconnect_every": self.reconnect_every,
            "max_gap": self.max_gap,
            "record_overhead": self.record_overhead,
        }

    @classmethod
    def from_descriptor(
        cls, descriptor: dict, config: ReproConfig
    ) -> "MultiHttpsCaptureSource":
        if descriptor.get("kind") != "multi-https-capture":
            raise CaptureError(
                f"descriptor kind {descriptor.get('kind')!r} is not "
                "'multi-https-capture'"
            )
        return cls(
            config=replace(config, seed=int(descriptor["seed"])),
            layout=_layout_from_meta(descriptor["layout"]),
            templates=tuple(
                t.encode("latin-1") for t in descriptor["templates"]
            ),
            victim_ids=tuple(str(v) for v in descriptor["victim_ids"]),
            num_requests=int(descriptor["num_requests"]),
            batch_size=int(descriptor["batch_size"]),
            reconnect_every=int(descriptor["reconnect_every"]),
            max_gap=int(descriptor["max_gap"]),
            record_overhead=int(descriptor["record_overhead"]),
            label=str(descriptor["label"]),
        )

    def fingerprint(self) -> str:
        payload = canonical_json(self.descriptor()).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def empty(self) -> MultiTemplateStatistics:
        return MultiTemplateStatistics.empty(
            self.layout, self.victim_ids, max_gap=self.max_gap
        )

    def load(self, path: str | Path) -> tuple[MultiTemplateStatistics, dict]:
        return MultiTemplateStatistics.load(path)

    def capture_batch(
        self, stats: MultiTemplateStatistics, index: int
    ) -> int:
        """One batch: shared keystream block -> per-victim template folds."""
        first = index * self.batch_size
        count = min(self.batch_size, self.num_requests - first)
        if count <= 0:
            raise CaptureError(f"batch {index} is beyond the campaign")
        per_conn = self.reconnect_every
        connections = -(-count // per_conn)
        keys = derive_keys(
            self.config, f"{self.label}/batch{index}", connections
        )
        length = (per_conn - 1) * self._stride + self.layout.request_len
        stream = batch_keystream(
            keys, length, threads=self.config.native_threads,
            simd=self.config.native_simd,
        )
        columns = np.ascontiguousarray(stream.T)
        for q in range(per_conn):
            rows = -(-(count - q) // per_conn)
            if rows <= 0:
                break
            start = q * self._stride
            window = columns[
                start : start + self.layout.request_len, :rows
            ]
            ingest_keystream_columns(
                stats.victims,
                window,
                self._template_matrix,
                offset=self.layout.base_offset + start,
            )
        return count * len(self.templates)


@dataclass
class MultiTkipStatistics:
    """Per-victim TKIP capture sets over shared per-TSC counter banks.

    Counters live in one ``(num_victims, positions, 256)`` int64 block
    per TSC value, filled by the permutation-gather kernel
    (:func:`~repro.datasets.generate.templated_row_counts`);
    :meth:`victim_capture_set` exposes victim v's slice as an ordinary
    :class:`~repro.tkip.injection.CaptureSet` (zero-copy views), so the
    §5 attack code runs unchanged per victim.
    """

    positions: range
    plaintext_len: int
    victim_ids: tuple[str, ...]
    blocks: dict[int, np.ndarray] = field(default_factory=dict)
    num_captured: int = 0

    def _block(self, tsc: int) -> np.ndarray:
        low = tsc & 0xFFFF
        block = self.blocks.get(low)
        if block is None:
            block = np.zeros(
                (len(self.victim_ids), len(self.positions), 256),
                dtype=np.int64,
            )
            self.blocks[low] = block
        return block

    def ingest_rows(
        self, tsc: int, rows: np.ndarray, templates: np.ndarray
    ) -> None:
        """Count keystream ``rows`` XOR each victim template at one TSC.

        ``rows`` is uint8 ``(n, plaintext_len)`` *keystream* (the shared
        part); ``templates`` is uint8 ``(num_victims, plaintext_len)``.
        The keystream columns are bincounted once and each victim
        gathers the base histogram through its template's permutation.
        """
        if rows.ndim != 2 or rows.shape[1] != self.plaintext_len:
            raise AttackError(
                f"rows must be (n, {self.plaintext_len}), got {rows.shape}"
            )
        templates = np.asarray(templates, dtype=np.uint8)
        if templates.shape != (len(self.victim_ids), self.plaintext_len):
            raise AttackError(
                f"templates must be "
                f"({len(self.victim_ids)}, {self.plaintext_len}), "
                f"got {templates.shape}"
            )
        pos_idx = np.asarray(self.positions, dtype=np.intp) - 1
        columns = np.ascontiguousarray(rows.T[pos_idx])
        templated_row_counts(
            columns, templates[:, pos_idx], self._block(tsc)
        )
        self.num_captured += rows.shape[0]

    def victim_capture_set(self, victim_id: str) -> CaptureSet:
        """Victim ``victim_id``'s counters as a zero-copy CaptureSet."""
        try:
            v = self.victim_ids.index(victim_id)
        except ValueError:
            raise AttackError(
                f"no victim {victim_id!r} in this capture "
                f"(victims: {list(self.victim_ids)})"
            ) from None
        return CaptureSet(
            positions=self.positions,
            plaintext_len=self.plaintext_len,
            counts={tsc: block[v] for tsc, block in self.blocks.items()},
            num_captured=self.num_captured,
        )

    def snapshot(self) -> "MultiTkipStatistics":
        return MultiTkipStatistics(
            positions=self.positions,
            plaintext_len=self.plaintext_len,
            victim_ids=self.victim_ids,
            blocks={tsc: block.copy() for tsc, block in self.blocks.items()},
            num_captured=self.num_captured,
        )

    def merge(self, other: "MultiTkipStatistics") -> "MultiTkipStatistics":
        if (
            self.positions != other.positions
            or self.plaintext_len != other.plaintext_len
            or self.victim_ids != other.victim_ids
        ):
            raise AttackError(
                "cannot merge multi-TKIP captures of different shapes "
                "or victim sets"
            )
        for tsc, block in other.blocks.items():
            mine = self.blocks.get(tsc)
            if mine is None:
                self.blocks[tsc] = block.copy()
            else:
                mine += block
        self.num_captured += other.num_captured
        return self

    def to_jsonable(self) -> dict:
        return {
            "type": "multi-tkip-statistics",
            "num_victims": len(self.victim_ids),
            "victim_ids": list(self.victim_ids),
            "num_captured": int(self.num_captured),
            "plaintext_len": int(self.plaintext_len),
            "positions": [
                self.positions.start, self.positions.stop, self.positions.step
            ],
            "num_tsc": len(self.blocks),
            "total_counts": int(
                sum(int(block.sum()) for block in self.blocks.values())
            ),
        }

    def save(self, path, *, extra: dict | None = None):
        from ..datasets.store import save_statistics

        tsc_values = sorted(self.blocks)
        stacked = (
            np.stack([self.blocks[tsc] for tsc in tsc_values])
            if tsc_values
            else np.zeros(
                (0, len(self.victim_ids), len(self.positions), 256),
                dtype=np.int64,
            )
        )
        meta = {
            "positions": [
                self.positions.start, self.positions.stop, self.positions.step
            ],
            "plaintext_len": self.plaintext_len,
            "victim_ids": list(self.victim_ids),
            "num_captured": self.num_captured,
            "extra": extra or {},
        }
        return save_statistics(
            path,
            "multi-tkip-statistics",
            {
                "counts": stacked,
                "tsc_values": np.asarray(tsc_values, np.int64),
            },
            meta,
        )

    @classmethod
    def load(cls, path) -> tuple["MultiTkipStatistics", dict]:
        from ..datasets.store import load_statistics

        arrays, meta = load_statistics(path, "multi-tkip-statistics")
        start, stop, step = meta["positions"]
        stats = cls(
            positions=range(start, stop, step),
            plaintext_len=int(meta["plaintext_len"]),
            victim_ids=tuple(str(v) for v in meta["victim_ids"]),
            num_captured=int(meta["num_captured"]),
        )
        stacked = arrays["counts"]
        expected = (len(stats.victim_ids), len(stats.positions), 256)
        if stacked.shape[1:] != expected:
            raise AttackError(f"{path}: capture counts shape mismatch")
        for tsc, block in zip(arrays["tsc_values"], stacked):
            stats.blocks[int(tsc)] = np.ascontiguousarray(block, np.int64)
        return stats, meta.get("extra", {})


@dataclass
class MultiTkipCaptureSource:
    """Batched §5 acquisition for many victims sharing a TSC budget.

    Victims share the injected packet length, the TSC schedule, and the
    packets-per-TSC budget (the keystream regime); each has its own
    protected plaintext (MIC/ICV differ per victim MIC key).  Key
    derivation matches :class:`~repro.capture.tkip.TkipCaptureSource`
    with the same ``label``, batch for batch, so single-victim runs are
    bit-identical per victim.
    """

    config: ReproConfig
    plaintexts: tuple[bytes, ...]
    victim_ids: tuple[str, ...]
    tsc_values: tuple[int, ...]
    packets_per_tsc: int
    positions: range | None = None
    batch_size: int = 4096
    label: str = "multi-tkip-capture"
    _template_matrix: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.plaintexts = tuple(self.plaintexts)
        self.victim_ids = tuple(self.victim_ids)
        self.tsc_values = tuple(self.tsc_values)
        if not self.plaintexts:
            raise CaptureError("plaintexts must be non-empty")
        if len(self.plaintexts) != len(self.victim_ids):
            raise CaptureError(
                f"{len(self.plaintexts)} plaintexts for "
                f"{len(self.victim_ids)} victim ids"
            )
        lengths = {len(p) for p in self.plaintexts}
        if lengths == {0} or len(lengths) != 1:
            raise CaptureError(
                "victim plaintexts must be non-empty and share one length "
                f"(the unique-length trick), got lengths {sorted(lengths)}"
            )
        if not self.tsc_values:
            raise CaptureError("tsc_values must be non-empty")
        if self.packets_per_tsc < 1:
            raise CaptureError(
                f"packets_per_tsc must be positive, got {self.packets_per_tsc}"
            )
        if self.batch_size < 1:
            raise CaptureError(
                f"batch_size must be positive, got {self.batch_size}"
            )
        plaintext_len = len(self.plaintexts[0])
        if self.positions is None:
            self.positions = range(1, plaintext_len + 1)
        if len(self.positions) == 0:
            raise CaptureError("positions must be a non-empty range")
        for pos in (self.positions.start, self.positions[-1]):
            if not 1 <= pos <= plaintext_len:
                raise CaptureError(
                    f"position {pos} outside the plaintext "
                    f"(1..{plaintext_len})"
                )
        self._template_matrix = np.stack(
            [np.frombuffer(p, dtype=np.uint8) for p in self.plaintexts]
        )

    @property
    def plaintext_len(self) -> int:
        return len(self.plaintexts[0])

    @property
    def _batches_per_tsc(self) -> int:
        return -(-self.packets_per_tsc // self.batch_size)

    @property
    def num_batches(self) -> int:
        return len(self.tsc_values) * self._batches_per_tsc

    @property
    def total_requests(self) -> int:
        return (
            len(self.tsc_values)
            * self.packets_per_tsc
            * len(self.plaintexts)
        )

    def descriptor(self) -> dict:
        return {
            "kind": "multi-tkip-capture",
            "seed": self.config.seed,
            "label": self.label,
            "plaintexts": [p.decode("latin-1") for p in self.plaintexts],
            "victim_ids": list(self.victim_ids),
            "tsc_values": list(self.tsc_values),
            "packets_per_tsc": self.packets_per_tsc,
            "positions": [
                self.positions.start, self.positions.stop, self.positions.step
            ],
            "batch_size": self.batch_size,
        }

    @classmethod
    def from_descriptor(
        cls, descriptor: dict, config: ReproConfig
    ) -> "MultiTkipCaptureSource":
        if descriptor.get("kind") != "multi-tkip-capture":
            raise CaptureError(
                f"descriptor kind {descriptor.get('kind')!r} is not "
                "'multi-tkip-capture'"
            )
        start, stop, step = (int(v) for v in descriptor["positions"])
        return cls(
            config=replace(config, seed=int(descriptor["seed"])),
            plaintexts=tuple(
                p.encode("latin-1") for p in descriptor["plaintexts"]
            ),
            victim_ids=tuple(str(v) for v in descriptor["victim_ids"]),
            tsc_values=tuple(int(t) for t in descriptor["tsc_values"]),
            packets_per_tsc=int(descriptor["packets_per_tsc"]),
            positions=range(start, stop, step),
            batch_size=int(descriptor["batch_size"]),
            label=str(descriptor["label"]),
        )

    def fingerprint(self) -> str:
        payload = canonical_json(self.descriptor()).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def empty(self) -> MultiTkipStatistics:
        return MultiTkipStatistics(
            positions=self.positions,
            plaintext_len=self.plaintext_len,
            victim_ids=self.victim_ids,
        )

    def load(self, path: str | Path) -> tuple[MultiTkipStatistics, dict]:
        return MultiTkipStatistics.load(path)

    def capture_batch(self, stats: MultiTkipStatistics, index: int) -> int:
        """One batch: shared keystream -> per-victim permutation gather."""
        tsc_index, part = divmod(index, self._batches_per_tsc)
        if not 0 <= tsc_index < len(self.tsc_values):
            raise CaptureError(f"batch {index} is beyond the campaign")
        tsc = self.tsc_values[tsc_index]
        first = part * self.batch_size
        count = min(self.batch_size, self.packets_per_tsc - first)
        rng = self.config.rng(self.label, "keys", tsc, part)
        keys = simplified_key_batch(tsc, count, rng)
        stream = batch_keystream(
            keys, self.plaintext_len, threads=self.config.native_threads,
            simd=self.config.native_simd,
        )
        stats.ingest_rows(tsc, stream, self._template_matrix)
        return count * len(self.plaintexts)
