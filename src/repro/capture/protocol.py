"""The ``SufficientStatistics`` protocol unifying capture counters.

Both attacks reduce their captures to small families of int64 count
arrays — digraph/ABSAB cells for §6 (:class:`repro.tls.attack
.CookieStatistics`), per-TSC byte cells for §5
(:class:`repro.tkip.injection.CaptureSet`).  The paper's capture scale
(9·2^27 requests, 2^30 packets) makes two properties non-negotiable:

- **mergeable**: int64 addition is exact, associative and commutative,
  so captures shard across processes (the paper's per-worker counters,
  §3.2) and merge to bit-identical totals in any order;
- **resumable**: a checkpoint is just the counters plus a progress
  cursor, so a multi-hour capture survives session restarts exactly.

This module pins those properties down as a structural
:class:`typing.Protocol` the engine (:mod:`repro.capture.engine`) is
written against; implementations also expose a ``load(path) ->
(stats, extra)`` classmethod the concrete sources wire up.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class SufficientStatistics(Protocol):
    """Structural interface of a capture's sufficient statistics."""

    def snapshot(self) -> "SufficientStatistics":
        """An independent deep copy (safe to keep across later merges)."""
        ...

    def merge(self, other: "SufficientStatistics") -> "SufficientStatistics":
        """Exact in-place int64 merge of another shard's counts."""
        ...

    def to_jsonable(self) -> dict[str, Any]:
        """Small canonical-JSON-ready summary (no raw counters)."""
        ...

    def save(self, path: str | Path, *, extra: dict | None = None) -> Path:
        """Persist counters plus ``extra`` metadata as an NPZ archive."""
        ...
