"""Batched TKIP ciphertext acquisition (paper §5.2 at engine speed).

The §5 attack consumes per-TSC ciphertext byte counts of one constantly
retransmitted packet.  Under the paper's key model (§2.2: three public
TSC-determined key bytes, 13 uniform bytes) a capture batch is the same
three vectorized steps as the HTTPS side: a ``(packets, plaintext_len)``
keystream block through :func:`repro.rc4.batch.batch_keystream` from
:func:`repro.tkip.keymix.simplified_key_batch` keys, XOR the broadcast
plaintext, and grouped flat-bincount counting via
:meth:`repro.tkip.injection.CaptureSet.ingest_rows`.

With an all-zero plaintext the ciphertext *is* the keystream, which is
how the ``bias-sweep-pertsc`` experiment measures raw per-TSC keystream
distributions on the identical engine.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from ..config import ReproConfig
from ..errors import CaptureError
from ..rc4.batch import batch_keystream
from ..tkip.injection import CaptureSet
from ..tkip.keymix import simplified_key_batch
from ..utils.serialization import canonical_json


@dataclass
class TkipCaptureSource:
    """Deterministic batched acquisition for the §5 injection campaign.

    Batches iterate TSC-major: TSC value t owns batches
    ``t * batches_per_tsc .. (t+1) * batches_per_tsc - 1``, so sharding
    by batch range also shards by TSC.

    Args:
        config: run configuration (key-model seeds).
        plaintext: the injected packet's protected plaintext
            (data || MIC || ICV), constant across transmissions.
        tsc_values: low-16-bit TSC values covered by the campaign.
        packets_per_tsc: packets captured at each TSC value.
        positions: 1-indexed keystream positions to collect (default:
            the whole plaintext).
        batch_size: packets per batch.
        label: seed namespace.
    """

    config: ReproConfig
    plaintext: bytes
    tsc_values: tuple[int, ...]
    packets_per_tsc: int
    positions: range | None = None
    batch_size: int = 4096
    label: str = "tkip-capture"
    _plaintext_arr: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.tsc_values = tuple(self.tsc_values)
        if not self.tsc_values:
            raise CaptureError("tsc_values must be non-empty")
        if not self.plaintext:
            raise CaptureError("plaintext must be non-empty")
        if self.packets_per_tsc < 1:
            raise CaptureError(
                f"packets_per_tsc must be positive, got {self.packets_per_tsc}"
            )
        if self.batch_size < 1:
            raise CaptureError(
                f"batch_size must be positive, got {self.batch_size}"
            )
        if self.positions is None:
            self.positions = range(1, len(self.plaintext) + 1)
        if len(self.positions) == 0:
            raise CaptureError("positions must be a non-empty range")
        for pos in (self.positions.start, self.positions[-1]):
            if not 1 <= pos <= len(self.plaintext):
                raise CaptureError(
                    f"position {pos} outside the plaintext "
                    f"(1..{len(self.plaintext)})"
                )
        self._plaintext_arr = np.frombuffer(self.plaintext, dtype=np.uint8)

    @property
    def _batches_per_tsc(self) -> int:
        return -(-self.packets_per_tsc // self.batch_size)

    @property
    def num_batches(self) -> int:
        return len(self.tsc_values) * self._batches_per_tsc

    @property
    def total_requests(self) -> int:
        return len(self.tsc_values) * self.packets_per_tsc

    def descriptor(self) -> dict:
        """JSON-safe record sufficient to rebuild this source bit-exactly.

        Exactly what :meth:`fingerprint` hashes; a fleet manifest ships
        this to workers (the seed rides along, backend knobs stay local).
        """
        return {
            "kind": "tkip-capture",
            "seed": self.config.seed,
            "label": self.label,
            "plaintext": self.plaintext.decode("latin-1"),
            "tsc_values": list(self.tsc_values),
            "packets_per_tsc": self.packets_per_tsc,
            "positions": [
                self.positions.start, self.positions.stop, self.positions.step
            ],
            "batch_size": self.batch_size,
        }

    @classmethod
    def from_descriptor(
        cls, descriptor: dict, config: ReproConfig
    ) -> "TkipCaptureSource":
        """Rebuild a source from :meth:`descriptor` output (seed wins)."""
        if descriptor.get("kind") != "tkip-capture":
            raise CaptureError(
                f"descriptor kind {descriptor.get('kind')!r} is not "
                "'tkip-capture'"
            )
        start, stop, step = (int(v) for v in descriptor["positions"])
        return cls(
            config=replace(config, seed=int(descriptor["seed"])),
            plaintext=descriptor["plaintext"].encode("latin-1"),
            tsc_values=tuple(int(t) for t in descriptor["tsc_values"]),
            packets_per_tsc=int(descriptor["packets_per_tsc"]),
            positions=range(start, stop, step),
            batch_size=int(descriptor["batch_size"]),
            label=str(descriptor["label"]),
        )

    def fingerprint(self) -> str:
        payload = canonical_json(self.descriptor()).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def empty(self) -> CaptureSet:
        return CaptureSet(
            positions=self.positions, plaintext_len=len(self.plaintext)
        )

    def load(self, path: str | Path) -> tuple[CaptureSet, dict]:
        return CaptureSet.load(path)

    def capture_batch(self, stats: CaptureSet, index: int) -> int:
        """One batch: per-TSC keys -> keystream block -> XOR -> count."""
        tsc_index, part = divmod(index, self._batches_per_tsc)
        if not 0 <= tsc_index < len(self.tsc_values):
            raise CaptureError(f"batch {index} is beyond the campaign")
        tsc = self.tsc_values[tsc_index]
        first = part * self.batch_size
        count = min(self.batch_size, self.packets_per_tsc - first)
        rng = self.config.rng(self.label, "keys", tsc, part)
        keys = simplified_key_batch(tsc, count, rng)
        stream = batch_keystream(
            keys, len(self.plaintext), threads=self.config.native_threads,
            simd=self.config.native_simd,
        )
        stats.ingest_rows(tsc, stream ^ self._plaintext_arr)
        return count
