"""Unified streaming capture engine (paper §5.2, §6.3 at scale).

The attacks hinge on capture scale — §6 ingests 9·2^27 encrypted
requests, §5 ingests 2^30 packets — so ciphertext statistics collection
rides the same batched, vectorized machinery as keystream generation:

- **acquisition** (:mod:`.https`, :mod:`.tkip`): generate
  ``(batch, stream_len)`` keystream blocks through
  :func:`repro.rc4.batch.batch_keystream` (native backend when
  available), XOR broadcast plaintext templates, and count
  digraph/ABSAB-differential/single-byte cells with the grouped
  flat-bincount kernels of :mod:`repro.datasets.generate` — no
  per-request Python loop on the hot path;
- **sufficient statistics** (:mod:`.protocol`): a common protocol
  (snapshot / exact int64 merge / canonical-JSON summary / NPZ
  persistence) implemented by :class:`repro.tls.attack.CookieStatistics`
  and :class:`repro.tkip.injection.CaptureSet`, making captures
  shardable across processes and resumable across sessions;
- **orchestration** (:mod:`.engine`): :func:`run_capture` walks
  deterministic per-batch key derivations, checkpoints every N batches,
  and reproduces uninterrupted counts bit-exactly on resume.

The per-request reference paths (``CookieStatistics.ingest_fragment``,
``CaptureSet.add_frame``) remain as bit-exact oracles; see
tests/test_capture_equivalence.py.
"""

from .engine import (
    CaptureProgress,
    CaptureSource,
    batch_digest,
    run_capture,
    merge_shards,
    shard_batches,
    source_fingerprint,
)
from .https import HttpsCaptureSource, ingest_cipher_rows
from .multi import (
    MultiHttpsCaptureSource,
    MultiTemplateStatistics,
    MultiTkipCaptureSource,
    MultiTkipStatistics,
    ingest_keystream_columns,
)
from .protocol import SufficientStatistics
from .tkip import TkipCaptureSource

__all__ = [
    "CaptureProgress",
    "CaptureSource",
    "HttpsCaptureSource",
    "MultiHttpsCaptureSource",
    "MultiTemplateStatistics",
    "MultiTkipCaptureSource",
    "MultiTkipStatistics",
    "SufficientStatistics",
    "TkipCaptureSource",
    "batch_digest",
    "ingest_cipher_rows",
    "ingest_keystream_columns",
    "merge_shards",
    "run_capture",
    "shard_batches",
    "source_fingerprint",
]
