"""802.11 TKIP data-frame framing: addresses, TKIP IV, replay counter.

A TKIP-protected data frame carries the 48-bit TKIP Sequence Counter
(TSC) *unencrypted* in an 8-byte IV / Extended-IV block preceding the
ciphertext (paper §2.2: "The TSC ... is included unencrypted in the MAC
header").  That public TSC is what makes the per-TSC keystream biases
exploitable.  The IV encoding deliberately repeats the WEP-seed bytes:

    iv[0] = TSC1, iv[1] = (TSC1 | 0x20) & 0x7F, iv[2] = TSC0,
    iv[3] = ext-IV flag | key-id,  iv[4..7] = TSC2..TSC5 (little-endian)

We model the frame with the fields the attack needs (addresses, TSC,
ciphertext) rather than the full 802.11 bit layout; the IV block itself
is encoded and parsed exactly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import PacketError
from .keymix import TSC_MAX

EXT_IV_FLAG = 0x20
IV_LEN = 8


def encode_iv(tsc: int, key_id: int = 0) -> bytes:
    """Encode the TKIP IV / Extended-IV block for a TSC value."""
    if not 0 <= tsc <= TSC_MAX:
        raise PacketError(f"TSC must fit in 48 bits, got {tsc:#x}")
    if not 0 <= key_id <= 3:
        raise PacketError(f"key id must be 0..3, got {key_id}")
    tsc0 = tsc & 0xFF
    tsc1 = (tsc >> 8) & 0xFF
    upper = (tsc >> 16) & 0xFFFFFFFF
    return bytes(
        (tsc1, (tsc1 | 0x20) & 0x7F, tsc0, EXT_IV_FLAG | (key_id << 6))
    ) + struct.pack("<I", upper)


def decode_iv(iv: bytes) -> tuple[int, int]:
    """Decode an IV block back to (tsc, key_id); validates the seed bytes."""
    if len(iv) != IV_LEN:
        raise PacketError(f"TKIP IV must be {IV_LEN} bytes, got {len(iv)}")
    tsc1, seed1, tsc0, flags = iv[0], iv[1], iv[2], iv[3]
    if seed1 != (tsc1 | 0x20) & 0x7F:
        raise PacketError("corrupt TKIP IV: WEP-seed byte mismatch")
    if not flags & EXT_IV_FLAG:
        raise PacketError("TKIP frames require the Extended IV flag")
    (upper,) = struct.unpack("<I", iv[4:])
    return (upper << 16) | (tsc1 << 8) | tsc0, (flags >> 6) & 0x3


@dataclass(frozen=True)
class TkipFrame:
    """A captured TKIP data frame, as seen by a passive attacker.

    Attributes:
        ta: transmitter MAC address (input to the key mixing).
        da: destination MAC address (input to the Michael MIC).
        sa: source MAC address (input to the Michael MIC).
        tsc: the public 48-bit sequence counter.
        ciphertext: RC4-encrypted MSDU data || MIC || ICV.
        key_id: TKIP key index (0 for pairwise traffic).
        priority: QoS priority (input to the Michael MIC).
    """

    ta: bytes
    da: bytes
    sa: bytes
    tsc: int
    ciphertext: bytes
    key_id: int = 0
    priority: int = 0

    def __post_init__(self) -> None:
        for name, addr in (("ta", self.ta), ("da", self.da), ("sa", self.sa)):
            if len(addr) != 6:
                raise PacketError(f"{name} must be a 6-byte MAC address")
        if not 0 <= self.tsc <= TSC_MAX:
            raise PacketError(f"TSC must fit in 48 bits, got {self.tsc:#x}")

    def build(self) -> bytes:
        """Wire bytes: IV block followed by the ciphertext."""
        return encode_iv(self.tsc, self.key_id) + self.ciphertext

    @classmethod
    def parse(
        cls,
        data: bytes,
        *,
        ta: bytes,
        da: bytes,
        sa: bytes,
        priority: int = 0,
    ) -> "TkipFrame":
        """Parse wire bytes (addresses come from the MAC header context)."""
        if len(data) < IV_LEN:
            raise PacketError("frame shorter than the TKIP IV block")
        tsc, key_id = decode_iv(data[:IV_LEN])
        return cls(
            ta=ta,
            da=da,
            sa=sa,
            tsc=tsc,
            ciphertext=data[IV_LEN:],
            key_id=key_id,
            priority=priority,
        )
