"""The end-to-end WPA-TKIP attack (paper §5).

Pipeline (paper §5.3):

1. For every unknown plaintext position (the 8 MIC + 4 ICV bytes; the 48
   header bytes and the TCP payload are known or recoverable), combine
   per-TSC single-byte likelihoods over all captured TSC values (§5.1,
   the Paterson et al. estimator).
2. Enumerate 12-byte candidates in decreasing likelihood (Algorithm 1 /
   the lazy streaming variant) and prune with the CRC redundancy: a
   candidate (MIC, ICV) survives only if CRC32(data || MIC) == ICV.
3. From the first surviving candidate, invert Michael to obtain the MIC
   key, which lets the attacker forge packets (§2.2).

The same generate-and-prune trick recovers unknown header fields (client
IP/port, TTL) via the IP and TCP checksums — implemented in
:func:`recover_header_fields_demo` as the paper describes in §5.3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.candidates.lazy import lazy_candidate_blocks
from ..core.likelihood.single import single_byte_log_likelihoods
from ..errors import AttackError
from .crc import Crc32, crc32_rows
from .injection import CaptureSet
from .michael import michael, michael_header, recover_key
from .packets import ICV_LEN, MIC_LEN
from .per_tsc import PerTscDistributions


@dataclass(frozen=True)
class TkipAttackResult:
    """Outcome of a decryption attempt.

    Attributes:
        mic: recovered 8-byte Michael MIC value.
        icv: recovered 4-byte ICV.
        mic_key: MIC key derived by inverting Michael.
        candidates_tried: how deep into the candidate list the first
            CRC-valid candidate sat (paper Fig 9's quantity).
        correct: whether the recovered MIC matches the true MIC (only
            known in simulations; None when ground truth not supplied).
    """

    mic: bytes
    icv: bytes
    mic_key: bytes
    candidates_tried: int
    correct: bool | None = None


def position_log_likelihoods(
    capture: CaptureSet,
    per_tsc: PerTscDistributions,
    unknown_positions: list[int],
) -> np.ndarray:
    """Single-byte log-likelihoods for each unknown position (§5.1).

    Per-TSC estimates are combined by multiplying likelihoods over all
    observed TSC values — summation in log domain.

    Returns:
        float64 array (len(unknown_positions), 256).
    """
    pos_index = {pos: row for row, pos in enumerate(capture.positions)}
    for pos in unknown_positions:
        if pos not in pos_index:
            raise AttackError(f"position {pos} not covered by the capture")
        if pos > per_tsc.length:
            raise AttackError(
                f"position {pos} beyond per-TSC distributions ({per_tsc.length})"
            )
    loglik = np.zeros((len(unknown_positions), 256), dtype=np.float64)
    for tsc_low, counts in capture.counts.items():
        if not per_tsc.covers(tsc_low):
            continue
        dists = per_tsc.for_tsc(tsc_low)
        for out_row, pos in enumerate(unknown_positions):
            row = counts[pos_index[pos]]
            if row.sum() == 0:
                continue
            loglik[out_row] += single_byte_log_likelihoods(row, dists[pos - 1])
    return loglik


def decrypt_mic_icv(
    loglik: np.ndarray,
    known_data: bytes,
    *,
    max_candidates: int,
    true_mic: bytes | None = None,
) -> TkipAttackResult:
    """Search the candidate list for a (MIC, ICV) passing the CRC (§5.3).

    Args:
        loglik: (12, 256) log-likelihoods: 8 MIC bytes then 4 ICV bytes.
        known_data: the known plaintext MSDU data (headers + payload) the
            ICV covers together with the MIC.
        max_candidates: abort after this many candidates (the paper walks
            up to ~2**30; scaled runs use less).
        true_mic: optional ground truth for success accounting.

    Raises:
        AttackError: if no candidate within the budget passes the CRC.
    """
    loglik = np.asarray(loglik, dtype=np.float64)
    if loglik.shape != (MIC_LEN + ICV_LEN, 256):
        raise AttackError(f"expected ({MIC_LEN + ICV_LEN}, 256) likelihoods")
    prefix_state = Crc32().update(known_data).state
    icv_shifts = np.uint32(8) * np.arange(ICV_LEN, dtype=np.uint32)
    seen = 0
    for rows, _scores in lazy_candidate_blocks(loglik):
        rows = rows[: max_candidates - seen]
        # One rolling-CRC pass over the 8 MIC columns, then compare the
        # little-endian digest bytes against the 4 ICV columns.
        crc = crc32_rows(prefix_state, rows[:, :MIC_LEN]) ^ np.uint32(0xFFFFFFFF)
        digest = (crc[:, None] >> icv_shifts) & np.uint32(0xFF)
        hits = np.nonzero((digest == rows[:, MIC_LEN:]).all(axis=1))[0]
        if hits.size:
            hit = int(hits[0])
            mic = rows[hit, :MIC_LEN].tobytes()
            return TkipAttackResult(
                mic=mic,
                icv=rows[hit, MIC_LEN:].tobytes(),
                mic_key=b"",  # filled by the caller with addresses in hand
                candidates_tried=seen + hit + 1,
                correct=None if true_mic is None else mic == true_mic,
            )
        seen += rows.shape[0]
        if seen >= max_candidates:
            break
    raise AttackError(
        f"no CRC-valid candidate within {max_candidates} candidates"
    )


def run_attack(
    capture: CaptureSet,
    per_tsc: PerTscDistributions,
    known_data: bytes,
    da: bytes,
    sa: bytes,
    *,
    priority: int = 0,
    max_candidates: int = 1 << 20,
    true_mic: bytes | None = None,
) -> TkipAttackResult:
    """Full §5 pipeline: likelihoods -> candidate search -> Michael inversion.

    Args:
        capture: ciphertext statistics from the injection campaign.
        per_tsc: per-TSC keystream distributions (§5.1).
        known_data: known plaintext MSDU data of the injected packet.
        da, sa: destination/source MACs (Michael header inputs).
        priority: QoS priority used by the victim.
        max_candidates: candidate budget.
        true_mic: optional ground truth.

    Returns:
        :class:`TkipAttackResult` with the recovered MIC key.
    """
    unknown = list(
        range(len(known_data) + 1, len(known_data) + MIC_LEN + ICV_LEN + 1)
    )
    loglik = position_log_likelihoods(capture, per_tsc, unknown)
    partial = decrypt_mic_icv(
        loglik, known_data, max_candidates=max_candidates, true_mic=true_mic
    )
    mic_key = recover_key(michael_header(da, sa, priority) + known_data, partial.mic)
    # Self-check: the recovered key must reproduce the candidate MIC.
    if michael(mic_key, michael_header(da, sa, priority) + known_data) != partial.mic:
        raise AttackError("Michael inversion self-check failed")
    return TkipAttackResult(
        mic=partial.mic,
        icv=partial.icv,
        mic_key=mic_key,
        candidates_tried=partial.candidates_tried,
        correct=partial.correct,
    )


def biased_position_strength(per_tsc: PerTscDistributions) -> np.ndarray:
    """Per-position bias strength: mean KL divergence from uniform.

    This is the data-driven version of the paper's §5.2 packet-structure
    argument — counting how many strongly biased positions fall under the
    MIC/ICV window for a 0-byte vs a 7-byte TCP payload.

    Returns:
        float64 array (length,): entry r-1 scores position r.
    """
    log_u = -np.log(256.0)
    # Mean over TSC values of sum_k p log(p / u).
    dists = per_tsc.dists
    kl = (dists * (np.log(dists) - log_u)).sum(axis=2)
    return kl.mean(axis=0)


def payload_choice_report(
    per_tsc: PerTscDistributions,
    *,
    threshold_quantile: float = 0.75,
) -> dict[int, int]:
    """Count strongly-biased positions under the MIC/ICV window per
    payload length (0 vs 7), reproducing the §5.2 comparison.

    A position is "strong" if its KL strength exceeds the given quantile
    over the covered range.

    Returns:
        mapping payload_len -> number of strong positions in the window.
    """
    from .packets import icv_positions, mic_positions

    strength = biased_position_strength(per_tsc)
    threshold = float(np.quantile(strength, threshold_quantile))
    report: dict[int, int] = {}
    for payload_len in (0, 7):
        window = list(mic_positions(payload_len)) + list(icv_positions(payload_len))
        in_range = [pos for pos in window if pos <= len(strength)]
        report[payload_len] = int(
            sum(strength[pos - 1] > threshold for pos in in_range)
        )
    return report
