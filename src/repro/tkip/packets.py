"""Plaintext TKIP MSDU construction: LLC/SNAP + IP + TCP + MIC + ICV.

This is the packet of the paper's Figure 2: a TCP payload inside an
IPv4 packet inside LLC/SNAP, followed by the 8-byte Michael MIC and the
4-byte CRC ICV, all of which get RC4-encrypted with the per-packet key.
With a ``payload_len``-byte TCP payload the MIC occupies 1-indexed
keystream positions 49+payload_len .. 56+payload_len and the ICV the four
positions after that (LLC/SNAP 8 + IP 20 + TCP 20 = 48 known bytes);
the paper's §5.2 argument for a 7-byte payload is exactly about where
this window lands.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PacketError
from ..net.ip import HEADER_LEN as IP_HEADER_LEN
from ..net.ip import IPv4Header
from ..net.llc import HEADER_LEN as LLC_HEADER_LEN
from ..net.llc import LLC_SNAP_IPV4, LlcSnapHeader
from ..net.tcp import HEADER_LEN as TCP_HEADER_LEN
from ..net.tcp import TcpHeader
from .crc import icv as compute_icv
from .michael import michael, michael_header

#: Known-plaintext prefix length: LLC/SNAP + IP + TCP headers.
KNOWN_HEADER_LEN = LLC_HEADER_LEN + IP_HEADER_LEN + TCP_HEADER_LEN  # 48
MIC_LEN = 8
ICV_LEN = 4


@dataclass(frozen=True)
class TcpPacketSpec:
    """Everything needed to build the plaintext TCP-in-IP MSDU data."""

    source_ip: str
    dest_ip: str
    source_port: int
    dest_port: int
    payload: bytes = b""
    ttl: int = 64
    seq: int = 0
    ack: int = 0
    ip_id: int = 0

    def msdu_data(self) -> bytes:
        """LLC/SNAP + IPv4 + TCP (+ payload), checksums filled in."""
        tcp = TcpHeader(
            source_port=self.source_port,
            dest_port=self.dest_port,
            seq=self.seq,
            ack=self.ack,
        ).build(
            source_ip=self.source_ip, dest_ip=self.dest_ip, payload=self.payload
        )
        ip = IPv4Header(
            source=self.source_ip,
            destination=self.dest_ip,
            total_length=IP_HEADER_LEN + len(tcp),
            ttl=self.ttl,
            identification=self.ip_id,
        ).build()
        return LLC_SNAP_IPV4.build() + ip + tcp


def build_protected_msdu(
    spec: TcpPacketSpec,
    mic_key: bytes,
    da: bytes,
    sa: bytes,
    *,
    priority: int = 0,
) -> bytes:
    """Plaintext MSDU data || MIC || ICV, ready for RC4 encryption.

    The MIC covers DA || SA || priority || MSDU data; the ICV covers the
    MSDU data plus the MIC (paper Fig. 2 layout).
    """
    data = spec.msdu_data()
    mic = michael(mic_key, michael_header(da, sa, priority) + data)
    return data + mic + compute_icv(data + mic)


def split_protected_msdu(plaintext: bytes) -> tuple[bytes, bytes, bytes]:
    """Split a decrypted MSDU into (data, mic, icv)."""
    if len(plaintext) < MIC_LEN + ICV_LEN + KNOWN_HEADER_LEN:
        raise PacketError(f"protected MSDU too short: {len(plaintext)} bytes")
    data = plaintext[: -(MIC_LEN + ICV_LEN)]
    mic = plaintext[-(MIC_LEN + ICV_LEN) : -ICV_LEN]
    return data, mic, plaintext[-ICV_LEN:]


def icv_valid(plaintext: bytes) -> bool:
    """Check the trailing ICV of a decrypted MSDU."""
    data, mic, icv_bytes = split_protected_msdu(plaintext)
    return compute_icv(data + mic) == icv_bytes


def mic_positions(payload_len: int) -> range:
    """1-indexed keystream positions of the MIC for a TCP payload length."""
    start = KNOWN_HEADER_LEN + payload_len + 1
    return range(start, start + MIC_LEN)


def icv_positions(payload_len: int) -> range:
    """1-indexed keystream positions of the ICV for a TCP payload length."""
    start = KNOWN_HEADER_LEN + payload_len + MIC_LEN + 1
    return range(start, start + ICV_LEN)


def parse_msdu_data(data: bytes) -> tuple[LlcSnapHeader, IPv4Header, TcpHeader, bytes]:
    """Parse MSDU data into its LLC/IP/TCP components plus TCP payload."""
    llc, rest = LlcSnapHeader.parse(data)
    ip = IPv4Header.parse(rest)
    tcp, payload = TcpHeader.parse(rest[IP_HEADER_LEN:])
    return llc, ip, tcp, payload
