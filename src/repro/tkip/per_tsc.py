"""Per-TSC keystream distributions (paper §5.1).

The first three bytes of every TKIP per-packet key are fixed by the
public TSC, which induces strong TSC-dependent biases in the keystream
(Paterson et al.).  The attack therefore needs, for each (TSC0, TSC1)
pair, the distribution Pr[Z_r = k | TSC] of the initial keystream bytes.

The paper generated these for all 65536 TSC pairs with 2**32 keys each
(10 CPU-years).  We expose the same measurement over a *configurable TSC
subspace* and key count (a documented substitution — the ``attack-tkip``
registry entry records both knobs in its result provenance): the attack
machinery is unchanged, only the map is coarser.  Distributions are
cached on disk since they are reused across attack runs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..config import ReproConfig
from ..errors import DatasetError
from ..biases.empirical import counts_to_distribution
from ..datasets.generate import single_byte_counts
from ..utils.serialization import load_arrays, save_arrays
from .keymix import simplified_key_batch


def default_tsc_space(num_pairs: int) -> list[int]:
    """A deterministic, evenly spread subset of the 65536 (TSC0, TSC1)
    pairs, encoded as 16-bit integers ``tsc1 << 8 | tsc0``."""
    if not 1 <= num_pairs <= 65536:
        raise ValueError(f"num_pairs must be 1..65536, got {num_pairs}")
    step = 65536 // num_pairs
    return [i * step for i in range(num_pairs)]


class PerTscDistributions:
    """Keystream distributions conditioned on the low 16 TSC bits.

    Attributes:
        tsc_values: the low-16-bit TSC values covered, sorted.
        dists: float64 array (num_tsc, length, 256); ``dists[t, r-1, k]``
            is Pr[Z_r = k | TSC low bits = tsc_values[t]].
    """

    def __init__(self, tsc_values: list[int], dists: np.ndarray) -> None:
        dists = np.asarray(dists, dtype=np.float64)
        if dists.ndim != 3 or dists.shape[2] != 256:
            raise DatasetError(f"dists must be (tsc, length, 256), got {dists.shape}")
        if len(tsc_values) != dists.shape[0]:
            raise DatasetError("tsc_values length must match dists")
        self.tsc_values = list(tsc_values)
        self.dists = dists
        self._index = {tsc: i for i, tsc in enumerate(self.tsc_values)}

    @property
    def length(self) -> int:
        """Number of covered keystream positions."""
        return self.dists.shape[1]

    def covers(self, tsc: int) -> bool:
        return (tsc & 0xFFFF) in self._index

    def for_tsc(self, tsc: int) -> np.ndarray:
        """Distributions (length, 256) for a TSC (low 16 bits looked up)."""
        low = tsc & 0xFFFF
        if low not in self._index:
            raise DatasetError(f"TSC low bits {low:#06x} not covered")
        return self.dists[self._index[low]]

    def save(self, path: str | Path) -> Path:
        return save_arrays(
            path,
            {"dists": self.dists, "tsc_values": np.asarray(self.tsc_values)},
            {"kind": "per-tsc-distributions", "length": self.length},
        )

    @classmethod
    def load(cls, path: str | Path) -> "PerTscDistributions":
        arrays, meta = load_arrays(path)
        if meta.get("kind") != "per-tsc-distributions":
            raise DatasetError(f"{path} is not a per-TSC distribution file")
        return cls(list(arrays["tsc_values"]), arrays["dists"])


def generate_per_tsc(
    config: ReproConfig,
    tsc_values: list[int],
    keys_per_tsc: int,
    length: int,
    *,
    chunk: int = 1 << 14,
    label: str = "per-tsc",
) -> PerTscDistributions:
    """Measure per-TSC keystream distributions under the §2.2 key model.

    Keys have the three public bytes fixed by the TSC and 13 uniformly
    random bytes (the paper's model of KM); distributions are
    Laplace-smoothed so downstream log-likelihoods stay finite.
    Counting goes through the fused single-byte kernel
    (:func:`repro.datasets.generate.single_byte_counts`), so the native
    backend's generate-and-count path applies here too — bit-identical
    to the historical per-position bincount loop.
    """
    if keys_per_tsc <= 0:
        raise ValueError(f"keys_per_tsc must be positive, got {keys_per_tsc}")
    dists = np.empty((len(tsc_values), length, 256), dtype=np.float64)
    for t, tsc in enumerate(tsc_values):
        counts = np.zeros((length, 256), dtype=np.int64)
        rng = config.rng(label, tsc)
        remaining = keys_per_tsc
        while remaining > 0:
            take = min(chunk, remaining)
            keys = simplified_key_batch(tsc, take, rng)
            single_byte_counts(
                keys, length, out=counts, threads=config.native_threads,
                simd=config.native_simd,
            )
            remaining -= take
        dists[t] = counts_to_distribution(counts)
    return PerTscDistributions(list(tsc_values), dists)
