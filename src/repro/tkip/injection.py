"""Identical-packet injection campaign and capture (paper §5.2, §5.4).

The attack needs many encryptions of *one* TCP packet.  The paper's
technique: make the victim open a TCP connection to an attacker server,
then retransmit the same TCP segment over and over (retransmissions are
valid TCP, so firewalls pass them); each Wi-Fi transmission re-encrypts
the identical plaintext under a fresh TSC.  A 7-byte payload gives the
packet a unique length, so the sniffer identifies it without false
positives, and places the MIC/ICV over more strongly-biased keystream
positions (§5.2).

:class:`InjectionCampaign` simulates the whole loop against a
:class:`~repro.tkip.session.TkipSession` victim and produces a
:class:`CaptureSet` — ciphertext byte counts keyed by the low TSC bits,
which is the attack's sufficient statistic.  Retransmissions seen twice
(same TSC) are filtered exactly as the paper's tool does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import AttackError
from ..rc4.reference import rc4_crypt
from .crc import icv as compute_icv
from .frames import TkipFrame
from .keymix import per_packet_key
from .michael import michael, michael_header
from .packets import ICV_LEN, MIC_LEN, TcpPacketSpec, build_protected_msdu
from .session import TkipSession

#: Packets/second the paper sustained in practice (§5.4).
PAPER_INJECTION_RATE = 2500.0

#: 802.11 allows an MSDU to be split into at most 16 MPDU fragments —
#: the lever of Beck's keystream-reuse injection.
MAX_FRAGMENTS = 16


@dataclass
class CaptureSet:
    """Ciphertext statistics for one injected packet.

    Implements the :class:`repro.capture.SufficientStatistics` protocol:
    snapshots, exact int64 :meth:`merge` (statistic-level shards from
    independent processes combine losslessly), canonical-JSON summaries,
    and NPZ persistence for checkpointed captures.  :meth:`add_frame` is
    the bit-exact per-frame reference path; :meth:`ingest_rows` is the
    batched entry the capture engine drives.

    Attributes:
        positions: 1-indexed keystream positions covered (the full
            encrypted MSDU span in practice).
        counts: maps low-16 TSC bits -> int64 array (len(positions), 256)
            of ciphertext byte counts.
        num_captured: distinct (by TSC) captures accumulated.
        plaintext_len: length of the encrypted plaintext, used to reject
            foreign frames (the unique-length trick).
    """

    positions: range
    plaintext_len: int
    counts: dict[int, np.ndarray] = field(default_factory=dict)
    num_captured: int = 0
    _seen_tsc: set[int] = field(default_factory=set, repr=False)

    def _table(self, tsc: int) -> np.ndarray:
        low = tsc & 0xFFFF
        table = self.counts.get(low)
        if table is None:
            table = np.zeros((len(self.positions), 256), dtype=np.int64)
            self.counts[low] = table
        return table

    def add_frame(self, frame: TkipFrame) -> bool:
        """Ingest a sniffed frame; returns True if it was counted.

        Frames with the wrong length (not our injected packet) and
        retransmissions (TSC already seen) are dropped.
        """
        if len(frame.ciphertext) != self.plaintext_len:
            return False
        if frame.tsc in self._seen_tsc:
            return False
        self._seen_tsc.add(frame.tsc)
        table = self._table(frame.tsc)
        for row, pos in enumerate(self.positions):
            table[row, frame.ciphertext[pos - 1]] += 1
        self.num_captured += 1
        return True

    def ingest_rows(self, tsc: int, rows: np.ndarray) -> None:
        """Count a batch of ciphertext rows captured at one TSC value.

        The vectorized equivalent of :meth:`add_frame` over ``rows`` of
        shape (num_packets, plaintext_len): one grouped flat bincount
        per position block instead of a Python loop per byte.  Rows are
        statistic-level packets (distinct fresh TSCs with the same low
        16 bits), so no per-frame dedup applies.
        """
        from ..datasets.generate import bytewise_row_counts

        if rows.ndim != 2 or rows.shape[1] != self.plaintext_len:
            raise AttackError(
                f"rows must be (n, {self.plaintext_len}), got {rows.shape}"
            )
        pos_idx = np.asarray(self.positions, dtype=np.intp) - 1
        columns = np.ascontiguousarray(rows.T[pos_idx])
        bytewise_row_counts(columns, self._table(tsc))
        self.num_captured += rows.shape[0]

    def snapshot(self) -> "CaptureSet":
        """Independent deep copy (checkpointing / shard seeds)."""
        return CaptureSet(
            positions=self.positions,
            plaintext_len=self.plaintext_len,
            counts={tsc: table.copy() for tsc, table in self.counts.items()},
            num_captured=self.num_captured,
            _seen_tsc=set(self._seen_tsc),
        )

    def merge(self, other: "CaptureSet") -> "CaptureSet":
        """Exact int64 merge of shard counts into ``self`` (in place).

        Associative and commutative.  Packet identities (`_seen_tsc`)
        are unioned; statistic-level shards never carry duplicates, and
        packet-level shards are the caller's responsibility to keep
        disjoint.
        """
        if (
            self.positions != other.positions
            or self.plaintext_len != other.plaintext_len
        ):
            raise AttackError("cannot merge captures of different shapes")
        for tsc, table in other.counts.items():
            mine = self.counts.get(tsc)
            if mine is None:
                self.counts[tsc] = table.copy()
            else:
                mine += table
        self.num_captured += other.num_captured
        self._seen_tsc |= other._seen_tsc
        return self

    def to_jsonable(self) -> dict:
        """Canonical-JSON-ready summary (counters stay in NPZ files)."""
        return {
            "type": "tkip-capture-set",
            "num_captured": int(self.num_captured),
            "plaintext_len": int(self.plaintext_len),
            "positions": [
                self.positions.start, self.positions.stop, self.positions.step
            ],
            "num_tsc": len(self.counts),
            "total_counts": int(
                sum(int(table.sum()) for table in self.counts.values())
            ),
        }

    def save(self, path, *, extra: dict | None = None):
        """NPZ persistence via the dataset store (resumable captures).

        Packet identities (`_seen_tsc`) are not persisted — a saved
        capture is a statistic-level artefact, like the paper's merged
        worker counters.
        """
        from ..datasets.store import save_statistics

        tsc_values = sorted(self.counts)
        stacked = (
            np.stack([self.counts[tsc] for tsc in tsc_values])
            if tsc_values
            else np.zeros((0, len(self.positions), 256), dtype=np.int64)
        )
        meta = {
            "positions": [
                self.positions.start, self.positions.stop, self.positions.step
            ],
            "plaintext_len": self.plaintext_len,
            "num_captured": self.num_captured,
            "extra": extra or {},
        }
        return save_statistics(
            path,
            "tkip-capture-set",
            {"counts": stacked, "tsc_values": np.asarray(tsc_values, np.int64)},
            meta,
        )

    @classmethod
    def load(cls, path) -> tuple["CaptureSet", dict]:
        """Load a capture saved by :meth:`save`; returns (capture, extra)."""
        from ..datasets.store import load_statistics

        arrays, meta = load_statistics(path, "tkip-capture-set")
        start, stop, step = meta["positions"]
        capture = cls(
            positions=range(start, stop, step),
            plaintext_len=meta["plaintext_len"],
            num_captured=meta["num_captured"],
        )
        stacked = arrays["counts"]
        if stacked.shape[1:] != (len(capture.positions), 256):
            raise AttackError(f"{path}: capture counts shape mismatch")
        for tsc, table in zip(arrays["tsc_values"], stacked):
            capture.counts[int(tsc)] = np.ascontiguousarray(table, np.int64)
        return capture, meta.get("extra", {})


@dataclass
class InjectionCampaign:
    """Simulated identical-packet injection against a TKIP victim.

    Args:
        session: the victim's transmitting TKIP session (client -> AP).
        spec: the TCP packet the attacker's server keeps retransmitting.
        da, sa: destination/source MACs of the victim's transmissions.
        rate_pps: injection rate, for wall-clock accounting (§5.4).
    """

    session: TkipSession
    spec: TcpPacketSpec
    da: bytes
    sa: bytes
    rate_pps: float = PAPER_INJECTION_RATE

    def plaintext(self) -> bytes:
        """The protected plaintext (constant across transmissions)."""
        return build_protected_msdu(
            self.spec, self.session.mic_key, self.da, self.sa
        )

    def run(
        self,
        num_packets: int,
        positions: range | None = None,
        *,
        retransmit_fraction: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> CaptureSet:
        """Transmit ``num_packets`` identical packets and capture them.

        Args:
            num_packets: distinct transmissions (each gets a fresh TSC).
            positions: keystream positions to collect (default: whole
                plaintext).
            retransmit_fraction: fraction of frames the sniffer sees
                twice, to exercise the TSC-dedup path.
            rng: randomness for retransmission jitter.

        Returns:
            The populated :class:`CaptureSet`.
        """
        if num_packets <= 0:
            raise AttackError(f"num_packets must be positive, got {num_packets}")
        msdu = self.spec.msdu_data()
        plaintext_len = len(self.plaintext())
        if positions is None:
            positions = range(1, plaintext_len + 1)
        capture = CaptureSet(positions=positions, plaintext_len=plaintext_len)
        for _ in range(num_packets):
            frame = self.session.encapsulate(msdu, self.da, self.sa)
            capture.add_frame(frame)
            if retransmit_fraction > 0.0 and rng is not None:
                if rng.random() < retransmit_fraction:
                    duplicated = capture.add_frame(frame)
                    if duplicated:
                        raise AttackError("TSC dedup failed to drop a retransmission")
        return capture

    def wall_clock_seconds(self, num_packets: int) -> float:
        """Campaign duration at the configured injection rate."""
        return num_packets / self.rate_pps


# ---------------------------------------------------------------------------
# Beck's fragmentation-based keystream reuse (Enhanced TKIP Michael
# Attacks, 2010) — what a recovered plaintext buys beyond the MIC key.
# ---------------------------------------------------------------------------


def recover_keystream(frame: TkipFrame, plaintext: bytes) -> bytes:
    """XOR a known plaintext against a sniffed frame's ciphertext.

    Once the §5 attack decrypts one packet, every further capture of the
    *same* packet (the injection campaign retransmits it constantly)
    hands the attacker the full RC4 keystream for that frame's TSC —
    without ever touching the temporal key.
    """
    if len(plaintext) != len(frame.ciphertext):
        raise AttackError(
            f"plaintext length {len(plaintext)} != ciphertext length "
            f"{len(frame.ciphertext)}"
        )
    return bytes(c ^ p for c, p in zip(frame.ciphertext, plaintext))


@dataclass
class KeystreamPool:
    """Per-TSC keystreams harvested from known-plaintext captures.

    Beck's enhanced attacks bank one keystream per observed TSC; each
    entry lets the attacker encrypt one MPDU of up to
    ``len(keystream) - ICV_LEN`` plaintext bytes at that TSC.  With up
    to :data:`MAX_FRAGMENTS` fragments per MSDU, a pool of short
    keystreams suffices to inject packets far longer than any single
    recovered keystream.
    """

    streams: dict[int, bytes] = field(default_factory=dict)

    def add(self, frame: TkipFrame, plaintext: bytes) -> None:
        """Bank the keystream revealed by a known-plaintext frame."""
        self.streams[frame.tsc] = recover_keystream(frame, plaintext)

    def __len__(self) -> int:
        return len(self.streams)

    def capacity(self, *, max_fragments: int = MAX_FRAGMENTS) -> int:
        """Longest data || MIC blob injectable with the current pool."""
        payloads = sorted(
            (len(ks) - ICV_LEN for ks in self.streams.values()), reverse=True
        )
        return sum(payloads[:max_fragments])

    def take(self, count: int) -> list[tuple[int, bytes]]:
        """The ``count`` longest (tsc, keystream) entries, longest first
        (stable order: longer first, then ascending TSC)."""
        entries = sorted(self.streams.items(), key=lambda kv: (-len(kv[1]), kv[0]))
        if count > len(entries):
            raise AttackError(
                f"pool holds {len(entries)} keystreams, need {count}"
            )
        return entries[:count]


@dataclass(frozen=True)
class TkipFragment:
    """One MPDU of a fragmented, keystream-reused injection.

    Attributes:
        frame: the encrypted fragment as it appears on the air.
        index: 0-based fragment number.
        more: the more-fragments flag (False only on the last MPDU).
    """

    frame: TkipFrame
    index: int
    more: bool


def fragment_msdu(
    msdu_data: bytes,
    mic_key: bytes,
    da: bytes,
    sa: bytes,
    pool: KeystreamPool,
    *,
    priority: int = 0,
    max_fragments: int = MAX_FRAGMENTS,
    ta: bytes | None = None,
) -> list[TkipFragment]:
    """Forge an arbitrary-length MSDU from short reused keystreams.

    Per 802.11: the Michael MIC (computed here with the *recovered* MIC
    key) covers the whole MSDU and travels in the last fragment; the
    data || MIC blob is then split into MPDUs, each carrying its own
    ICV and encrypted — here by XOR with a banked keystream instead of
    a key the attacker does not know.  Fragments reuse their keystream's
    recorded TSC; on the air Beck sends them on a QoS channel whose
    replay counter is still below those values.

    Args:
        msdu_data: plaintext MSDU data (LLC/IP/TCP bytes) to inject.
        mic_key: the recovered Michael key for this direction.
        da, sa: destination/source MACs (Michael header inputs).
        pool: harvested per-TSC keystreams.
        priority: QoS priority (Michael header input / TID).
        max_fragments: fragment budget (802.11 allows 16).
        ta: transmitter address for the forged frames (default ``sa``).

    Raises:
        AttackError: if the pool cannot cover the MSDU within the
            fragment budget.
    """
    if not 1 <= max_fragments <= MAX_FRAGMENTS:
        raise AttackError(
            f"max_fragments must be 1..{MAX_FRAGMENTS}, got {max_fragments}"
        )
    mic = michael(mic_key, michael_header(da, sa, priority) + msdu_data)
    protected = msdu_data + mic
    if pool.capacity(max_fragments=max_fragments) < len(protected):
        raise AttackError(
            f"keystream pool covers {pool.capacity(max_fragments=max_fragments)} "
            f"bytes across {max_fragments} fragments, need {len(protected)}"
        )
    ta = sa if ta is None else ta
    fragments: list[TkipFragment] = []
    offset = 0
    for tsc, keystream in pool.take(min(max_fragments, len(pool.streams))):
        if offset >= len(protected):
            break
        chunk = protected[offset : offset + len(keystream) - ICV_LEN]
        offset += len(chunk)
        plaintext = chunk + compute_icv(chunk)
        ciphertext = bytes(
            p ^ k for p, k in zip(plaintext, keystream)
        )
        fragments.append(
            TkipFragment(
                frame=TkipFrame(
                    ta=ta,
                    da=da,
                    sa=sa,
                    tsc=tsc,
                    ciphertext=ciphertext,
                    priority=priority,
                ),
                index=len(fragments),
                more=True,  # fixed up below
            )
        )
    fragments[-1] = TkipFragment(
        frame=fragments[-1].frame, index=fragments[-1].index, more=False
    )
    return fragments


def reassemble_fragments(tk: bytes, fragments: list[TkipFragment]) -> bytes:
    """Receiver model: decrypt, ICV-check, and reassemble an MSDU.

    Each MPDU is decrypted with the genuine per-packet key (the receiver
    holds the temporal key), its trailing ICV verified, and the payloads
    concatenated in fragment order.  Replay is per QoS TID in a WMM
    receiver, which is exactly why Beck's reused TSC values are accepted
    — the attacker picks a TID whose counter is still below them; this
    model therefore checks fragment ordering and flags, not the
    transmitter's original channel counter.

    Returns:
        The reassembled MSDU data || MIC blob; the caller verifies the
        MIC (:func:`repro.tkip.michael.michael`) against the addresses.

    Raises:
        AttackError: on misnumbered fragments, bad flags, or ICV failure.
    """
    if not fragments:
        raise AttackError("no fragments to reassemble")
    protected = bytearray()
    for position, fragment in enumerate(fragments):
        if fragment.index != position:
            raise AttackError(
                f"fragment {position} carries index {fragment.index}"
            )
        if fragment.more != (position < len(fragments) - 1):
            raise AttackError("more-fragments flag inconsistent with position")
        frame = fragment.frame
        key = per_packet_key(frame.ta, tk, frame.tsc)
        plaintext = rc4_crypt(key, frame.ciphertext)
        if len(plaintext) < ICV_LEN + 1:
            raise AttackError("fragment too short for payload + ICV")
        chunk, icv_bytes = plaintext[:-ICV_LEN], plaintext[-ICV_LEN:]
        if compute_icv(chunk) != icv_bytes:
            raise AttackError(f"fragment {position} failed the ICV check")
        protected.extend(chunk)
    if len(protected) < MIC_LEN + 1:
        raise AttackError("reassembled MSDU shorter than a MIC")
    return bytes(protected)
