"""Identical-packet injection campaign and capture (paper §5.2, §5.4).

The attack needs many encryptions of *one* TCP packet.  The paper's
technique: make the victim open a TCP connection to an attacker server,
then retransmit the same TCP segment over and over (retransmissions are
valid TCP, so firewalls pass them); each Wi-Fi transmission re-encrypts
the identical plaintext under a fresh TSC.  A 7-byte payload gives the
packet a unique length, so the sniffer identifies it without false
positives, and places the MIC/ICV over more strongly-biased keystream
positions (§5.2).

:class:`InjectionCampaign` simulates the whole loop against a
:class:`~repro.tkip.session.TkipSession` victim and produces a
:class:`CaptureSet` — ciphertext byte counts keyed by the low TSC bits,
which is the attack's sufficient statistic.  Retransmissions seen twice
(same TSC) are filtered exactly as the paper's tool does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import AttackError
from .frames import TkipFrame
from .packets import TcpPacketSpec, build_protected_msdu
from .session import TkipSession

#: Packets/second the paper sustained in practice (§5.4).
PAPER_INJECTION_RATE = 2500.0


@dataclass
class CaptureSet:
    """Ciphertext statistics for one injected packet.

    Attributes:
        positions: 1-indexed keystream positions covered (the full
            encrypted MSDU span in practice).
        counts: maps low-16 TSC bits -> int64 array (len(positions), 256)
            of ciphertext byte counts.
        num_captured: distinct (by TSC) captures accumulated.
        plaintext_len: length of the encrypted plaintext, used to reject
            foreign frames (the unique-length trick).
    """

    positions: range
    plaintext_len: int
    counts: dict[int, np.ndarray] = field(default_factory=dict)
    num_captured: int = 0
    _seen_tsc: set[int] = field(default_factory=set, repr=False)

    def add_frame(self, frame: TkipFrame) -> bool:
        """Ingest a sniffed frame; returns True if it was counted.

        Frames with the wrong length (not our injected packet) and
        retransmissions (TSC already seen) are dropped.
        """
        if len(frame.ciphertext) != self.plaintext_len:
            return False
        if frame.tsc in self._seen_tsc:
            return False
        self._seen_tsc.add(frame.tsc)
        low = frame.tsc & 0xFFFF
        table = self.counts.get(low)
        if table is None:
            table = np.zeros((len(self.positions), 256), dtype=np.int64)
            self.counts[low] = table
        for row, pos in enumerate(self.positions):
            table[row, frame.ciphertext[pos - 1]] += 1
        self.num_captured += 1
        return True


@dataclass
class InjectionCampaign:
    """Simulated identical-packet injection against a TKIP victim.

    Args:
        session: the victim's transmitting TKIP session (client -> AP).
        spec: the TCP packet the attacker's server keeps retransmitting.
        da, sa: destination/source MACs of the victim's transmissions.
        rate_pps: injection rate, for wall-clock accounting (§5.4).
    """

    session: TkipSession
    spec: TcpPacketSpec
    da: bytes
    sa: bytes
    rate_pps: float = PAPER_INJECTION_RATE

    def plaintext(self) -> bytes:
        """The protected plaintext (constant across transmissions)."""
        return build_protected_msdu(
            self.spec, self.session.mic_key, self.da, self.sa
        )

    def run(
        self,
        num_packets: int,
        positions: range | None = None,
        *,
        retransmit_fraction: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> CaptureSet:
        """Transmit ``num_packets`` identical packets and capture them.

        Args:
            num_packets: distinct transmissions (each gets a fresh TSC).
            positions: keystream positions to collect (default: whole
                plaintext).
            retransmit_fraction: fraction of frames the sniffer sees
                twice, to exercise the TSC-dedup path.
            rng: randomness for retransmission jitter.

        Returns:
            The populated :class:`CaptureSet`.
        """
        if num_packets <= 0:
            raise AttackError(f"num_packets must be positive, got {num_packets}")
        msdu = self.spec.msdu_data()
        plaintext_len = len(self.plaintext())
        if positions is None:
            positions = range(1, plaintext_len + 1)
        capture = CaptureSet(positions=positions, plaintext_len=plaintext_len)
        for _ in range(num_packets):
            frame = self.session.encapsulate(msdu, self.da, self.sa)
            capture.add_frame(frame)
            if retransmit_fraction > 0.0 and rng is not None:
                if rng.random() < retransmit_fraction:
                    duplicated = capture.add_frame(frame)
                    if duplicated:
                        raise AttackError("TSC dedup failed to drop a retransmission")
        return capture

    def wall_clock_seconds(self, num_packets: int) -> float:
        """Campaign duration at the configured injection rate."""
        return num_packets / self.rate_pps
