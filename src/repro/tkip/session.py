"""TKIP session state: keys, TSC management, encap/decap (paper §2.2).

A :class:`TkipSession` models one direction of a pairwise association:
it holds the 128-bit temporal key (TK), the directional 64-bit Michael
MIC key, the transmitter address, and the 48-bit TKIP sequence counter
(TSC) that increments per transmitted packet.  ``encapsulate`` performs
the full pipeline — Michael MIC, CRC ICV, per-packet key mixing, RC4 —
and ``decapsulate`` the reverse with ICV/MIC/replay checks, raising
:class:`~repro.errors.TkipError` on failure (countermeasures such as MIC
failure reports are modelled by those exceptions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TkipError
from ..rc4.reference import rc4_crypt
from .crc import icv as compute_icv
from .frames import TkipFrame
from .keymix import TSC_MAX, per_packet_key
from .michael import michael, michael_header
from .packets import MIC_LEN, ICV_LEN


@dataclass
class TkipSession:
    """One direction of a TKIP association.

    Attributes:
        tk: 128-bit temporal encryption key.
        mic_key: 64-bit Michael key for this direction.
        ta: transmitter MAC address (key-mixing input).
        tsc: last used sequence counter (increments before each packet).
    """

    tk: bytes
    mic_key: bytes
    ta: bytes
    tsc: int = 0
    replay_window: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if len(self.tk) != 16:
            raise TkipError(f"TK must be 16 bytes, got {len(self.tk)}")
        if len(self.mic_key) != 8:
            raise TkipError(f"MIC key must be 8 bytes, got {len(self.mic_key)}")
        if len(self.ta) != 6:
            raise TkipError("TA must be a 6-byte MAC address")

    @classmethod
    def random(
        cls, rng: np.random.Generator, ta: bytes, *, tsc: int = 0
    ) -> "TkipSession":
        """Fresh session with uniformly random TK and MIC key."""
        tk = rng.integers(0, 256, size=16, dtype=np.uint8).tobytes()
        mic_key = rng.integers(0, 256, size=8, dtype=np.uint8).tobytes()
        return cls(tk=tk, mic_key=mic_key, ta=ta, tsc=tsc)

    def encapsulate(
        self,
        msdu_data: bytes,
        da: bytes,
        sa: bytes,
        *,
        priority: int = 0,
    ) -> TkipFrame:
        """Protect and encrypt one MSDU; increments the TSC."""
        if self.tsc >= TSC_MAX:
            raise TkipError("TSC exhausted; rekey required")
        self.tsc += 1
        mic = michael(self.mic_key, michael_header(da, sa, priority) + msdu_data)
        plaintext = msdu_data + mic + compute_icv(msdu_data + mic)
        key = per_packet_key(self.ta, self.tk, self.tsc)
        return TkipFrame(
            ta=self.ta,
            da=da,
            sa=sa,
            tsc=self.tsc,
            ciphertext=rc4_crypt(key, plaintext),
            priority=priority,
        )

    def decapsulate(self, frame: TkipFrame, *, check_replay: bool = True) -> bytes:
        """Decrypt and verify one frame; returns the MSDU data.

        Raises:
            TkipError: on replay, bad ICV, or bad MIC (in TKIP's
                checking order: ICV first, then replay, then MIC).
        """
        key = per_packet_key(frame.ta, self.tk, frame.tsc)
        plaintext = rc4_crypt(key, frame.ciphertext)
        if len(plaintext) < MIC_LEN + ICV_LEN:
            raise TkipError("frame too short for MIC + ICV")
        data = plaintext[: -(MIC_LEN + ICV_LEN)]
        mic = plaintext[-(MIC_LEN + ICV_LEN) : -ICV_LEN]
        icv_bytes = plaintext[-ICV_LEN:]
        if compute_icv(data + mic) != icv_bytes:
            raise TkipError("ICV check failed")
        if check_replay and frame.tsc <= self.replay_window:
            raise TkipError(f"replayed TSC {frame.tsc:#x}")
        expected_mic = michael(
            self.mic_key, michael_header(frame.da, frame.sa, frame.priority) + data
        )
        if expected_mic != mic:
            raise TkipError("Michael MIC check failed")
        if check_replay:
            self.replay_window = frame.tsc
        return data
