"""The Michael message integrity code and its inversion (paper §2.2, §5).

Michael is TKIP's 64-bit MIC.  Its block function is a tiny unkeyed
Feistel-like mixer; the secret is only the 64-bit initial state.  Because
every step is invertible, knowing a message *and* its MIC value lets an
attacker run the algorithm backwards and recover the MIC key — the
Tews-Beck observation the paper relies on ("Unfortunately Micheal is
straightforward to invert", §2.2).  :func:`recover_key` implements that
inversion; the TKIP attack calls it on the decrypted packet (§5.3).

Michael processes the MSDU header (DA, SA, priority) and payload as
little-endian 32-bit words, padded with 0x5a and zeros.
"""

from __future__ import annotations

import struct

from ..errors import MichaelError
from ..utils.bytesops import rotl32, rotr32, xswap32

_MASK32 = 0xFFFFFFFF


def _block(left: int, right: int) -> tuple[int, int]:
    """The Michael block function b(L, R)."""
    right ^= rotl32(left, 17)
    left = (left + right) & _MASK32
    right ^= xswap32(left)
    left = (left + right) & _MASK32
    right ^= rotl32(left, 3)
    left = (left + right) & _MASK32
    right ^= rotr32(left, 2)
    left = (left + right) & _MASK32
    return left, right


def _block_inverse(left: int, right: int) -> tuple[int, int]:
    """Inverse of :func:`_block` (each step undone in reverse order)."""
    left = (left - right) & _MASK32
    right ^= rotr32(left, 2)
    left = (left - right) & _MASK32
    right ^= rotl32(left, 3)
    left = (left - right) & _MASK32
    right ^= xswap32(left)
    left = (left - right) & _MASK32
    right ^= rotl32(left, 17)
    return left, right


class MichaelState:
    """The 64-bit Michael state machine, runnable in both directions.

    Michael's only secret is its initial (L, R) state — the MIC key —
    and every step is invertible, so the same object supports forward
    MIC computation and the Tews–Beck backward key recovery (paper
    §2.2; Beck, *Enhanced TKIP Michael Attacks*, 2010).  Words are the
    padded little-endian 32-bit message words of
    :func:`message_words`.
    """

    __slots__ = ("left", "right")

    def __init__(self, left: int, right: int) -> None:
        self.left = left & _MASK32
        self.right = right & _MASK32

    @classmethod
    def from_key(cls, key: bytes) -> "MichaelState":
        if len(key) != 8:
            raise MichaelError(f"Michael key must be 8 bytes, got {len(key)}")
        return cls(*struct.unpack("<II", key))

    @classmethod
    def from_mic(cls, mic: bytes) -> "MichaelState":
        if len(mic) != 8:
            raise MichaelError(f"MIC must be 8 bytes, got {len(mic)}")
        return cls(*struct.unpack("<II", mic))

    def copy(self) -> "MichaelState":
        return MichaelState(self.left, self.right)

    def mix(self, word: int) -> "MichaelState":
        """Absorb one message word (forward direction)."""
        self.left ^= word & _MASK32
        self.left, self.right = _block(self.left, self.right)
        return self

    def unmix(self, word: int) -> "MichaelState":
        """Undo :meth:`mix` of ``word`` (backward direction)."""
        self.left, self.right = _block_inverse(self.left, self.right)
        self.left ^= word & _MASK32
        return self

    def digest(self) -> bytes:
        """The packed state — the MIC going forward, the key going back."""
        return struct.pack("<II", self.left, self.right)


def michael_header(da: bytes, sa: bytes, priority: int = 0) -> bytes:
    """The MIC header block: DA || SA || priority || 3 zero bytes."""
    if len(da) != 6 or len(sa) != 6:
        raise MichaelError("DA and SA must be 6-byte MAC addresses")
    if not 0 <= priority <= 15:
        raise MichaelError(f"bad priority {priority}")
    return bytes(da) + bytes(sa) + bytes((priority, 0, 0, 0))


def message_words(message: bytes) -> list[int]:
    """Michael padding: append 0x5a then zeros to a multiple of 4 bytes
    (at least 4 zero bytes follow the 0x5a marker), as little-endian
    32-bit words."""
    padded = bytes(message) + b"\x5a" + b"\x00" * 4
    padded += b"\x00" * ((-len(padded)) % 4)
    return [
        struct.unpack_from("<I", padded, offset)[0]
        for offset in range(0, len(padded), 4)
    ]


#: Backwards-compatible private alias for :func:`message_words`.
_padded_words = message_words


def michael(key: bytes, message: bytes) -> bytes:
    """Compute the 8-byte Michael MIC of ``message`` under ``key``.

    Args:
        key: 8-byte MIC key (one direction's key from the PTK).
        message: header block plus MSDU data (see :func:`michael_header`).
    """
    state = MichaelState.from_key(key)
    for word in message_words(message):
        state.mix(word)
    return state.digest()


def recover_key(message: bytes, mic: bytes) -> bytes:
    """Invert Michael: derive the MIC key from a message and its MIC.

    Runs the algorithm backwards from the final state (the MIC) through
    the message words to the initial state (the key) — the §2.2 attack
    enabling packet injection once one packet is decrypted.
    """
    state = MichaelState.from_mic(mic)
    for word in reversed(message_words(message)):
        state.unmix(word)
    return state.digest()
