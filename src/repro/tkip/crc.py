"""CRC-32 as used for the WEP/TKIP ICV (paper §5.3).

The ICV is the IEEE 802.3 CRC-32 (reflected, polynomial 0xEDB88320) of
the plaintext MSDU data plus MIC, appended little-endian and encrypted
along with the payload.  Because CRC is linear and keyless, it is pure
*redundancy*: the attack exploits it to prune wrong plaintext candidates
("we can detect bad candidates by inspecting their CRC checksum").

Implemented table-driven from the polynomial; the test suite cross-checks
against :func:`zlib.crc32`.  :class:`Crc32` exposes the rolling state so
the attack can precompute the CRC over the known packet prefix once and
extend it per candidate MIC cheaply.
"""

from __future__ import annotations

import struct

_POLY = 0xEDB88320


def _build_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


class Crc32:
    """Incremental CRC-32 (IEEE) with copyable state."""

    def __init__(self, state: int | None = None) -> None:
        self._crc = 0xFFFFFFFF if state is None else state

    def update(self, data: bytes) -> "Crc32":
        crc = self._crc
        for byte in data:
            crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
        self._crc = crc
        return self

    def copy(self) -> "Crc32":
        return Crc32(self._crc)

    @property
    def value(self) -> int:
        """The finalised CRC-32 value."""
        return self._crc ^ 0xFFFFFFFF

    def digest(self) -> bytes:
        """The 4-byte little-endian ICV encoding."""
        return struct.pack("<I", self.value)


def crc32(data: bytes) -> int:
    """One-shot CRC-32 of ``data``."""
    return Crc32().update(data).value


def icv(data: bytes) -> bytes:
    """The 4-byte TKIP/WEP ICV of ``data`` (little-endian CRC-32)."""
    return Crc32().update(data).digest()
