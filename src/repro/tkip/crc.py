"""CRC-32 as used for the WEP/TKIP ICV (paper §5.3).

The ICV is the IEEE 802.3 CRC-32 (reflected, polynomial 0xEDB88320) of
the plaintext MSDU data plus MIC, appended little-endian and encrypted
along with the payload.  Because CRC is linear and keyless, it is pure
*redundancy*: the attack exploits it to prune wrong plaintext candidates
("we can detect bad candidates by inspecting their CRC checksum").

Implemented table-driven from the polynomial; the test suite cross-checks
against :func:`zlib.crc32`.  :class:`Crc32` exposes the rolling state so
the attack can precompute the CRC over the known packet prefix once and
extend it per candidate MIC cheaply.
"""

from __future__ import annotations

import struct

import numpy as np

_POLY = 0xEDB88320


def _build_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


class Crc32:
    """Incremental CRC-32 (IEEE) with copyable state."""

    def __init__(self, state: int | None = None) -> None:
        self._crc = 0xFFFFFFFF if state is None else state

    def update(self, data: bytes) -> "Crc32":
        crc = self._crc
        for byte in data:
            crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
        self._crc = crc
        return self

    def copy(self) -> "Crc32":
        return Crc32(self._crc)

    @property
    def state(self) -> int:
        """The raw rolling state (for :func:`crc32_rows`)."""
        return self._crc

    @property
    def value(self) -> int:
        """The finalised CRC-32 value."""
        return self._crc ^ 0xFFFFFFFF

    def digest(self) -> bytes:
        """The 4-byte little-endian ICV encoding."""
        return struct.pack("<I", self.value)


_TABLE_NP = np.array(_TABLE, dtype=np.uint32)


def crc32_rows(state: int, rows: np.ndarray) -> np.ndarray:
    """Extend one rolling CRC state by every row of a uint8 matrix.

    Vectorized counterpart of ``Crc32(state).update(row)`` for a batch
    of same-length suffixes: one table gather per byte *column* instead
    of one Python loop iteration per byte.

    Args:
        state: the raw (non-finalised) rolling state shared by all rows,
            e.g. ``Crc32().update(prefix).state``.
        rows: uint8 (N, L) matrix of per-candidate suffixes.

    Returns:
        uint32 (N,) of raw rolling states; XOR with ``0xFFFFFFFF`` to
        finalise.
    """
    rows = np.asarray(rows, dtype=np.uint8)
    crc = np.full(rows.shape[0], state, dtype=np.uint32)
    for col in range(rows.shape[1]):
        crc = (crc >> np.uint32(8)) ^ _TABLE_NP[(crc ^ rows[:, col]) & 0xFF]
    return crc


def crc32(data: bytes) -> int:
    """One-shot CRC-32 of ``data``."""
    return Crc32().update(data).value


def icv(data: bytes) -> bytes:
    """The 4-byte TKIP/WEP ICV of ``data`` (little-endian CRC-32)."""
    return Crc32().update(data).digest()
