"""TKIP per-packet key mixing K = KM(TA, TK, TSC) (paper §2.2).

The full two-phase mixing function of IEEE 802.11 (TKIP) is implemented:
phase 1 mixes the temporal key, transmitter address and the upper 32 TSC
bits into the TTAK; phase 2 mixes the TTAK, temporal key and the lower
16 TSC bits into the 16-byte RC4 per-packet key.  The S-box lives in
:mod:`repro.tkip.sbox` (derived from the AES S-box, not pasted).

Two properties matter for the attacks and are enforced by tests:

- the first three RC4 key bytes depend only on the *public* TSC,

      K0 = TSC1,   K1 = (TSC1 | 0x20) & 0x7F,   K2 = TSC0

  (the WEP-weak-key countermeasure that ironically enables the per-TSC
  biases, §2.2);
- the remaining 13 bytes are well modelled as uniformly random over
  packets ([2, 31] — "In practice the output of KM can be modelled as
  uniformly random").

:func:`simplified_per_packet_key` implements that uniform model directly;
the statistics machinery uses it (matching the paper's methodology),
while the protocol stack uses the real mixing.
"""

from __future__ import annotations

import numpy as np

from ..errors import TkipError
from ..utils.bytesops import mk16, rotr16, u16_hi, u16_lo
from .sbox import tkip_s

_PHASE1_LOOPS = 8
TSC_MAX = (1 << 48) - 1


def _check_inputs(ta: bytes, tk: bytes, tsc: int) -> None:
    if len(ta) != 6:
        raise TkipError(f"TA must be a 6-byte MAC address, got {len(ta)} bytes")
    if len(tk) != 16:
        raise TkipError(f"TK must be 16 bytes, got {len(tk)}")
    if not 0 <= tsc <= TSC_MAX:
        raise TkipError(f"TSC must fit in 48 bits, got {tsc:#x}")


def tsc_split(tsc: int) -> tuple[int, int]:
    """Split a 48-bit TSC into (IV32, IV16): upper 32 and lower 16 bits."""
    if not 0 <= tsc <= TSC_MAX:
        raise TkipError(f"TSC must fit in 48 bits, got {tsc:#x}")
    return (tsc >> 16) & 0xFFFFFFFF, tsc & 0xFFFF


def phase1(tk: bytes, ta: bytes, iv32: int) -> tuple[int, ...]:
    """Phase-1 mixing: (TK, TA, IV32) -> 80-bit TTAK (five 16-bit words)."""
    ttak = [
        iv32 & 0xFFFF,
        (iv32 >> 16) & 0xFFFF,
        mk16(ta[1], ta[0]),
        mk16(ta[3], ta[2]),
        mk16(ta[5], ta[4]),
    ]
    for i in range(_PHASE1_LOOPS):
        j = 2 * (i & 1)
        ttak[0] = (ttak[0] + tkip_s(ttak[4] ^ mk16(tk[1 + j], tk[0 + j]))) & 0xFFFF
        ttak[1] = (ttak[1] + tkip_s(ttak[0] ^ mk16(tk[5 + j], tk[4 + j]))) & 0xFFFF
        ttak[2] = (ttak[2] + tkip_s(ttak[1] ^ mk16(tk[9 + j], tk[8 + j]))) & 0xFFFF
        ttak[3] = (ttak[3] + tkip_s(ttak[2] ^ mk16(tk[13 + j], tk[12 + j]))) & 0xFFFF
        ttak[4] = (ttak[4] + tkip_s(ttak[3] ^ mk16(tk[1 + j], tk[0 + j])) + i) & 0xFFFF
    return tuple(ttak)


def phase2(tk: bytes, ttak: tuple[int, ...], iv16: int) -> bytes:
    """Phase-2 mixing: (TK, TTAK, IV16) -> 16-byte RC4 per-packet key."""
    ppk = [
        ttak[0],
        ttak[1],
        ttak[2],
        ttak[3],
        ttak[4],
        (ttak[4] + iv16) & 0xFFFF,
    ]
    ppk[0] = (ppk[0] + tkip_s(ppk[5] ^ mk16(tk[1], tk[0]))) & 0xFFFF
    ppk[1] = (ppk[1] + tkip_s(ppk[0] ^ mk16(tk[3], tk[2]))) & 0xFFFF
    ppk[2] = (ppk[2] + tkip_s(ppk[1] ^ mk16(tk[5], tk[4]))) & 0xFFFF
    ppk[3] = (ppk[3] + tkip_s(ppk[2] ^ mk16(tk[7], tk[6]))) & 0xFFFF
    ppk[4] = (ppk[4] + tkip_s(ppk[3] ^ mk16(tk[9], tk[8]))) & 0xFFFF
    ppk[5] = (ppk[5] + tkip_s(ppk[4] ^ mk16(tk[11], tk[10]))) & 0xFFFF
    ppk[0] = (ppk[0] + rotr16(ppk[5] ^ mk16(tk[13], tk[12]), 1)) & 0xFFFF
    ppk[1] = (ppk[1] + rotr16(ppk[0] ^ mk16(tk[15], tk[14]), 1)) & 0xFFFF
    ppk[2] = (ppk[2] + rotr16(ppk[1], 1)) & 0xFFFF
    ppk[3] = (ppk[3] + rotr16(ppk[2], 1)) & 0xFFFF
    ppk[4] = (ppk[4] + rotr16(ppk[3], 1)) & 0xFFFF
    ppk[5] = (ppk[5] + rotr16(ppk[4], 1)) & 0xFFFF

    key = bytearray(16)
    key[0] = u16_hi(iv16)
    key[1] = (u16_hi(iv16) | 0x20) & 0x7F
    key[2] = u16_lo(iv16)
    key[3] = u16_lo((ppk[5] ^ mk16(tk[1], tk[0])) >> 1)
    for i in range(6):
        key[4 + 2 * i] = u16_lo(ppk[i])
        key[5 + 2 * i] = u16_hi(ppk[i])
    return bytes(key)


def per_packet_key(ta: bytes, tk: bytes, tsc: int) -> bytes:
    """The full mixing K = KM(TA, TK, TSC) (paper §2.2 notation)."""
    _check_inputs(ta, tk, tsc)
    iv32, iv16 = tsc_split(tsc)
    return phase2(tk, phase1(tk, ta, iv32), iv16)


def public_key_bytes(tsc: int) -> tuple[int, int, int]:
    """The three TSC-determined key bytes (K0, K1, K2) — public knowledge."""
    _, iv16 = tsc_split(tsc)
    tsc1, tsc0 = u16_hi(iv16), u16_lo(iv16)
    return tsc1, (tsc1 | 0x20) & 0x7F, tsc0


def simplified_per_packet_key(
    tsc: int, rng: np.random.Generator
) -> bytes:
    """The paper's statistical model of KM: public first three bytes from
    the TSC, remaining 13 bytes uniformly random (§2.2, [2, 31])."""
    k0, k1, k2 = public_key_bytes(tsc)
    tail = rng.integers(0, 256, size=13, dtype=np.uint8)
    return bytes((k0, k1, k2)) + tail.tobytes()


def simplified_key_batch(
    tsc: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Batch of per-packet keys under the uniform model, as (count, 16)."""
    k0, k1, k2 = public_key_bytes(tsc)
    keys = np.empty((count, 16), dtype=np.uint8)
    keys[:, 0], keys[:, 1], keys[:, 2] = k0, k1, k2
    keys[:, 3:] = rng.integers(0, 256, size=(count, 13), dtype=np.uint8)
    return keys
