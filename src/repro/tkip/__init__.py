"""WPA-TKIP substrate and attack (paper §2.2 and §5).

Implements, from scratch: the Michael MIC and its inversion, the CRC-32
ICV, the full two-phase per-packet key mixing (S-box generated from first
principles), TKIP frame/IV encoding, session encap/decap with replay and
integrity checks, per-TSC keystream statistics, the identical-packet
injection campaign, and the decrypt-then-derive-MIC-key attack.
"""

from .attack import (
    TkipAttackResult,
    biased_position_strength,
    decrypt_mic_icv,
    payload_choice_report,
    position_log_likelihoods,
    run_attack,
)
from .crc import Crc32, crc32, icv
from .frames import TkipFrame, decode_iv, encode_iv
from .injection import (
    MAX_FRAGMENTS,
    PAPER_INJECTION_RATE,
    CaptureSet,
    InjectionCampaign,
    KeystreamPool,
    TkipFragment,
    fragment_msdu,
    reassemble_fragments,
    recover_keystream,
)
from .keymix import (
    per_packet_key,
    phase1,
    phase2,
    public_key_bytes,
    simplified_key_batch,
    simplified_per_packet_key,
    tsc_split,
)
from .michael import (
    MichaelState,
    message_words,
    michael,
    michael_header,
    recover_key,
)
from .packets import (
    ICV_LEN,
    KNOWN_HEADER_LEN,
    MIC_LEN,
    TcpPacketSpec,
    build_protected_msdu,
    icv_positions,
    icv_valid,
    mic_positions,
    parse_msdu_data,
    split_protected_msdu,
)
from .per_tsc import PerTscDistributions, default_tsc_space, generate_per_tsc
from .sbox import AES_SBOX, TKIP_SBOX, tkip_s
from .session import TkipSession

__all__ = [
    "AES_SBOX",
    "CaptureSet",
    "Crc32",
    "ICV_LEN",
    "InjectionCampaign",
    "KNOWN_HEADER_LEN",
    "KeystreamPool",
    "MAX_FRAGMENTS",
    "MIC_LEN",
    "MichaelState",
    "PAPER_INJECTION_RATE",
    "PerTscDistributions",
    "TKIP_SBOX",
    "TcpPacketSpec",
    "TkipAttackResult",
    "TkipFragment",
    "TkipFrame",
    "TkipSession",
    "biased_position_strength",
    "build_protected_msdu",
    "crc32",
    "decode_iv",
    "decrypt_mic_icv",
    "default_tsc_space",
    "encode_iv",
    "fragment_msdu",
    "generate_per_tsc",
    "message_words",
    "icv",
    "icv_positions",
    "icv_valid",
    "michael",
    "michael_header",
    "mic_positions",
    "parse_msdu_data",
    "payload_choice_report",
    "per_packet_key",
    "phase1",
    "phase2",
    "position_log_likelihoods",
    "public_key_bytes",
    "reassemble_fragments",
    "recover_key",
    "recover_keystream",
    "run_attack",
    "simplified_key_batch",
    "simplified_per_packet_key",
    "split_protected_msdu",
    "tkip_s",
    "tsc_split",
]
