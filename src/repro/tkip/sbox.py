"""The TKIP key-mixing S-box, derived from first principles.

TKIP's mixing function uses a 16-bit S-box built from the AES S-box:
each entry combines the AES substitution with the MixColumns constants,

    SBOX[k] = (xtime(aes_sbox[k]) << 8) | (xtime(aes_sbox[k]) ^ aes_sbox[k])
            = (2 * s) << 8 | (3 * s)          (GF(2^8) multiplication)

and the 16-bit substitution is ``S(v) = SBOX[lo8(v)] ^ swap16(SBOX[hi8(v)])``.

Rather than pasting the 256-entry table from the standard, we *generate*
the AES S-box (multiplicative inverse in GF(2^8) modulo the Rijndael
polynomial, followed by the affine transform) and derive the TKIP table
from it — the test suite pins known anchor values (SBOX[0] = 0xC6A5,
aes_sbox[0] = 0x63, aes_sbox[0x53] = 0xED) to guard against drift.
"""

from __future__ import annotations

from ..utils.bytesops import xswap16


def _gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(2^8) modulo the Rijndael polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        carry = a & 0x80
        a = (a << 1) & 0xFF
        if carry:
            a ^= 0x1B
        b >>= 1
    return result


def _gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); 0 maps to 0 by convention."""
    if a == 0:
        return 0
    # The multiplicative group has order 255, so a^254 = a^-1.
    result = 1
    power = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = _gf_mul(result, power)
        power = _gf_mul(power, power)
        exponent >>= 1
    return result


def _rotl8(value: int, count: int) -> int:
    return ((value << count) | (value >> (8 - count))) & 0xFF


def build_aes_sbox() -> tuple[int, ...]:
    """The AES S-box: GF(2^8) inverse followed by the affine transform."""
    sbox = []
    for value in range(256):
        inv = _gf_inverse(value)
        affine = (
            inv
            ^ _rotl8(inv, 1)
            ^ _rotl8(inv, 2)
            ^ _rotl8(inv, 3)
            ^ _rotl8(inv, 4)
            ^ 0x63
        )
        sbox.append(affine)
    return tuple(sbox)


AES_SBOX = build_aes_sbox()


def build_tkip_sbox() -> tuple[int, ...]:
    """The 256-entry 16-bit TKIP table: (2*s) << 8 | (3*s)."""
    table = []
    for value in range(256):
        s = AES_SBOX[value]
        table.append((_gf_mul(s, 2) << 8) | _gf_mul(s, 3))
    return tuple(table)


TKIP_SBOX = build_tkip_sbox()


def tkip_s(value: int) -> int:
    """The 16-bit TKIP substitution S(v) used by both mixing phases."""
    value &= 0xFFFF
    return TKIP_SBOX[value & 0xFF] ^ xswap16(TKIP_SBOX[value >> 8])
