"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so callers
can catch one base class.  Subclasses mirror the major subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """Invalid scaling/seed/backend configuration.

    Also a :class:`ValueError`: configuration failures are malformed
    values, and callers validating e.g. ``REPRO_NATIVE_THREADS`` catch
    ``ValueError`` without importing the repro hierarchy.
    """


class KeyLengthError(ReproError):
    """An RC4 key is empty or longer than 256 bytes."""


class DatasetError(ReproError):
    """A keystream-statistics dataset is malformed or incompatible."""


class DistributionError(ReproError):
    """A keystream distribution is malformed (wrong shape, not normalised)."""


class LikelihoodError(ReproError):
    """Likelihood computation received inconsistent inputs."""


class CandidateError(ReproError):
    """Candidate enumeration received inconsistent inputs."""


class PacketError(ReproError):
    """A network packet could not be built or parsed."""


class MichaelError(ReproError):
    """Michael MIC computation or inversion failed."""


class TkipError(ReproError):
    """TKIP encapsulation/decapsulation failure (bad ICV, bad MIC, replay)."""


class TlsError(ReproError):
    """TLS record protocol failure (bad MAC, bad length, bad sequence)."""


class AttackError(ReproError):
    """An attack pipeline could not complete (e.g. no candidate survived)."""


class CaptureError(ReproError):
    """The capture engine was misconfigured or a checkpoint is unusable."""


class CampaignError(ReproError):
    """A victim-population campaign was declared or resumed inconsistently."""


class FleetError(ReproError):
    """The distributed capture fleet hit a coordination failure."""


class ManifestError(FleetError):
    """A fleet job manifest is missing, malformed, or mismatched."""


class LeaseError(FleetError):
    """A shard lease operation failed (lost lease, bad takeover)."""


class WarehouseError(ReproError):
    """The results warehouse hit a malformed store or record."""


class SweepError(WarehouseError):
    """A parameter sweep was declared inconsistently."""


class ExperimentError(ReproError):
    """The experiment registry or an experiment run failed."""


class UnknownExperimentError(ExperimentError):
    """A requested experiment name is not in the registry."""


class ExperimentParamError(ExperimentError):
    """An experiment received an unknown or ill-typed parameter."""
