"""Optional compiled backend for the RC4 statistics pipeline.

``_native.c`` (next to this module) implements per-key RC4 with the
256-byte state in L1 plus fused generate-and-count kernels.  This module
compiles it on demand with the system C compiler (``gcc``/``cc``), caches
the shared object under ``~/.cache/repro-rc4/`` keyed by a hash of the
source *plus* the compiler identity and flags (so pinning a different
``REPRO_NATIVE_CC`` or changing CFLAGS can never load a stale artefact),
and exposes thin ctypes wrappers.

Three performance knobs ride on every kernel:

- ``threads`` (default ``os.cpu_count()``, overridable per call or via
  ``REPRO_NATIVE_THREADS``): the C side splits keys into contiguous
  ranges, one POSIX thread each.  Counting threads accumulate into
  private blocks merged serially at the end, so results are bit-exact
  for any thread count.
- ``interleave`` (default on, ``REPRO_NATIVE_INTERLEAVE=0`` to disable):
  selects the interleaved kernels that advance several independent RC4
  states per loop iteration to hide the serial swap-latency chain.
- ``simd`` (default on, ``REPRO_NATIVE_SIMD=0`` to disable): selects the
  AVX2 wide kernels that advance 32 states per loop in a transposed
  lane-major layout.  The C side re-checks CPU support at runtime
  (``__builtin_cpu_supports("avx2")``), so enabling the knob on non-AVX2
  hardware silently degrades to the interleaved/scalar tiers; every tier
  is bit-exact with every other.

The backend is strictly optional: if no compiler is present, compilation
fails, or ``REPRO_NATIVE=0`` is set, :func:`available` returns False and
callers (``repro.rc4.batch``, ``repro.datasets.generate``) fall back to
the pure-numpy paths.  An unexpected failure (as opposed to an explicit
disable) emits a single :class:`RuntimeWarning` so slow runs are
diagnosable; ``REPRO_NATIVE_CC`` pins the compiler for tests that
simulate a broken toolchain.  Both paths are bit-exact with
:mod:`repro.rc4.reference`; tests/test_dataset_equivalence.py compares
them cell-for-cell.

No third-party dependency is involved — only :mod:`ctypes` and a C
compiler that the pure-python fallback makes optional.  All ``REPRO_*``
environment parsing is delegated to :mod:`repro.config` (the single
env-reading module); this module only consumes the typed accessors.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import warnings
from pathlib import Path

import numpy as np

from ..config import (
    env_native_cc,
    env_native_enabled,
    env_native_interleave,
    env_native_simd,
    env_native_threads,
)
from ..fleet.retry import retry_call

_SOURCE = Path(__file__).with_name("_native.c")

#: Per-invocation wall clock for the compile subprocess, and the backoff
#: before its single retry (timeouts only — a failing compiler is not
#: retried, the next one in the probe order is tried instead).
_CC_TIMEOUT = 120
_CC_RETRY_BACKOFF = 2.0

#: Aggregate private-counter budget across threads (bytes).  Wide
#: machines counting 256 MiB consec blocks would otherwise multiply that
#: by cpu_count; threads are clamped so scratch stays under this.  4 GiB
#: matches the cap the forked shared-memory pool has always used, so the
#: threaded default is never narrower than the pool it replaced (32
#: threads for 128 MiB longterm counters, 16 for 256 MiB consec512).
_THREAD_SCRATCH_BUDGET = 4 << 30

#: Per-thread working set of the AVX2 wide kernels (transposed state,
#: key transpose, digraph window and staging — see rc4_wide/wide_ksa in
#: _native.c).  Charged against the scratch budget alongside the private
#: counter blocks so the wide tier can never push aggregate scratch past
#: the cap that the narrow tiers were sized for.
_SIMD_LANE_SCRATCH = 32 << 10

#: Flags handed to every compiler candidate; part of the cache key.  The
#: AVX2 tier needs no -mavx2 here — the wide kernels carry their own
#: __attribute__((target("avx2"))) so the artefact stays loadable on any
#: x86-64 machine.
_CFLAGS = ("-O3", "-shared", "-fPIC", "-pthread")

_lib: ctypes.CDLL | None = None
_load_attempted = False
_load_error: str | None = None


def _cache_dir() -> Path:
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro-rc4"


def _compilers() -> tuple[str, ...]:
    pinned = env_native_cc()
    if pinned:
        return (pinned,)
    return ("cc", "gcc", "clang")


def _compiler_id(compiler: str) -> str | None:
    """Identity string for the cache key: name plus ``--version`` line.

    Returns None when the compiler cannot be executed at all, so
    :func:`_compile` can skip it without burning a probe-order slot on a
    doomed compile attempt.  The version line (not just the name) is part
    of the identity: ``cc`` may resolve to a different toolchain after a
    system upgrade, and an artefact built by the old one must not be
    reused silently.
    """
    try:
        proc = subprocess.run(
            [compiler, "--version"],
            capture_output=True,
            text=True,
            timeout=_CC_TIMEOUT,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    first = (proc.stdout or proc.stderr).strip().splitlines() or [""]
    return f"{compiler} {first[0]}"


def _cache_key(source: bytes, compiler_id: str) -> str:
    """Cache digest over source, compiler identity, and CFLAGS.

    Keying on the source hash alone (the historical scheme) silently
    loads a stale artefact when ``REPRO_NATIVE_CC`` pins a different
    compiler or the build flags change; all three inputs are folded in.
    """
    blob = b"\0".join(
        [source, compiler_id.encode(), " ".join(_CFLAGS).encode()]
    )
    return hashlib.sha256(blob).hexdigest()[:16]


def _compile() -> Path:
    """Compile ``_native.c`` into the cache, reusing a key-matched build."""
    source = _SOURCE.read_bytes()
    cache = _cache_dir()
    last_error = "no C compiler found"
    for compiler in _compilers():
        compiler_id = _compiler_id(compiler)
        if compiler_id is None:
            last_error = f"{compiler}: not executable"
            continue
        target = cache / f"librc4stats-{_cache_key(source, compiler_id)}.so"
        if target.exists():
            return target
        cache.mkdir(parents=True, exist_ok=True)
        with tempfile.NamedTemporaryFile(
            dir=cache, suffix=".so.tmp", delete=False
        ) as tmp:
            tmp_path = Path(tmp.name)
        cmd = [compiler, *_CFLAGS, str(_SOURCE), "-o", str(tmp_path)]
        try:
            # A wedged compiler (hung license check, dead NFS) gets one
            # bounded retry with backoff instead of hanging the process;
            # other failures fall through to the next compiler.
            proc = retry_call(
                lambda: subprocess.run(
                    cmd, capture_output=True, text=True, timeout=_CC_TIMEOUT
                ),
                attempts=2,
                base=_CC_RETRY_BACKOFF,
                retry_on=(subprocess.TimeoutExpired,),
            )
        except (OSError, subprocess.TimeoutExpired) as exc:
            tmp_path.unlink(missing_ok=True)
            last_error = f"{compiler}: {exc}"
            continue
        if proc.returncode != 0:
            tmp_path.unlink(missing_ok=True)
            last_error = f"{compiler}: {proc.stderr.strip()[:500]}"
            continue
        # A compiler that "succeeds" but writes nothing (or dies mid-write
        # leaving a truncated object) must not poison the cache: CDLL below
        # would fail and _load() records the error, but only a non-empty
        # artefact is ever promoted to the hash-keyed name.
        if tmp_path.stat().st_size == 0:
            tmp_path.unlink(missing_ok=True)
            last_error = f"{compiler}: produced an empty object"
            continue
        os.replace(tmp_path, target)  # atomic: safe under concurrent builds
        return target
    raise RuntimeError(f"native backend compilation failed ({last_error})")


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    u8p = ctypes.POINTER(ctypes.c_uint8)
    i64p = ctypes.POINTER(ctypes.c_int64)
    ssize = ctypes.c_ssize_t
    cint = ctypes.c_int
    lib.rc4_batch_keystream.argtypes = [
        u8p, ssize, ssize, ctypes.c_long, ctypes.c_long, u8p, cint, cint,
        cint,
    ]
    lib.rc4_batch_keystream.restype = None
    lib.rc4_count_single.argtypes = [
        u8p, ssize, ssize, ctypes.c_long, i64p, cint, cint, cint,
    ]
    lib.rc4_count_single.restype = None
    lib.rc4_count_digraph.argtypes = [
        u8p, ssize, ssize, ctypes.c_long, i64p, cint, cint, cint,
    ]
    lib.rc4_count_digraph.restype = None
    lib.rc4_count_longterm.argtypes = [
        u8p, ssize, ssize, ctypes.c_long, ctypes.c_long, ctypes.c_long,
        i64p, cint, cint, cint,
    ]
    lib.rc4_count_longterm.restype = None
    lib.rc4_simd_available.argtypes = []
    lib.rc4_simd_available.restype = cint
    lib.rc4_simd_lanes.argtypes = []
    lib.rc4_simd_lanes.restype = cint
    return lib


def _load() -> ctypes.CDLL | None:
    global _lib, _load_attempted, _load_error
    if _load_attempted:
        return _lib
    _load_attempted = True
    if not env_native_enabled():
        _load_error = "disabled via REPRO_NATIVE"
        return None
    try:
        _lib = _bind(ctypes.CDLL(str(_compile())))
    except Exception as exc:  # any failure => pure-numpy fallback
        _load_error = str(exc)
        _lib = None
        warnings.warn(
            "repro native backend unavailable, falling back to the pure-"
            f"numpy engine (expect a slower statistics pipeline): {exc}",
            RuntimeWarning,
            stacklevel=2,
        )
    return _lib


def available() -> bool:
    """True when the compiled backend loaded (callers branch on this)."""
    return _load() is not None


def status() -> str:
    """Human-readable backend state for diagnostics and bench records.

    Never raises: a malformed ``REPRO_NATIVE_THREADS`` is something this
    function should report, not die from.
    """
    if available():
        try:
            threads = str(resolve_threads(None))
        except ValueError as exc:  # malformed REPRO_NATIVE_THREADS
            threads = f"invalid ({exc})"
        if not _simd(None):
            simd = "off"
        elif simd_available():
            simd = f"avx2 x{simd_lanes()}"
        else:
            simd = "unsupported"
        return (
            f"native backend loaded (threads={threads}, "
            f"interleave={'on' if _interleave(None) else 'off'}, "
            f"simd={simd})"
        )
    return f"native backend unavailable: {_load_error}"


def simd_available() -> bool:
    """True when the loaded backend can run the AVX2 wide kernels.

    False when the backend is unavailable, was compiled without the SIMD
    tier (non-GCC/Clang or non-x86-64), or the CPU lacks AVX2 — the
    runtime check is the C side's ``__builtin_cpu_supports("avx2")``.
    This reports hardware/build capability only; the ``REPRO_NATIVE_SIMD``
    knob is resolved separately per call.
    """
    lib = _load()
    return lib is not None and bool(lib.rc4_simd_available())


def simd_lanes() -> int:
    """RC4 states per SIMD group (0 when the wide tier is compiled out)."""
    lib = _load()
    return int(lib.rc4_simd_lanes()) if lib is not None else 0


def resolve_threads(
    threads: int | None, counter_bytes: int = 0, lane_bytes: int = 0
) -> int:
    """Effective thread count for a kernel call.

    ``None`` means "the configured default": ``REPRO_NATIVE_THREADS`` if
    set, else ``os.cpu_count()``.  The result is clamped to at least 1
    and, for counting kernels, so that
    ``threads * (counter_bytes + lane_bytes)`` of private scratch stays
    within the 4 GiB ``_THREAD_SCRATCH_BUDGET``.  ``counter_bytes`` is
    the per-thread private counter block; ``lane_bytes`` the per-thread
    SIMD working set (pass :data:`_SIMD_LANE_SCRATCH` when the wide tier
    may run) so wide kernels can't blow the cap the narrow tiers were
    sized for.
    """
    if threads is None:
        # env_native_threads raises ConfigError (a ValueError) when the
        # variable is set but malformed.
        threads = env_native_threads()
        if threads is None:
            threads = os.cpu_count() or 1
    threads = max(1, int(threads))
    scratch = counter_bytes + lane_bytes
    if scratch > 0:
        threads = min(threads, max(1, _THREAD_SCRATCH_BUDGET // scratch))
    return threads


def _interleave(interleave: bool | None) -> int:
    """Resolve the interleave knob (per-call override beats the env)."""
    if interleave is None:
        return 1 if env_native_interleave() else 0
    return 1 if interleave else 0


def _simd(simd: bool | None) -> int:
    """Resolve the SIMD knob (per-call override beats the env)."""
    if simd is None:
        return 1 if env_native_simd() else 0
    return 1 if simd else 0


def _check_keys(keys: np.ndarray) -> np.ndarray:
    keys = np.ascontiguousarray(keys, dtype=np.uint8)
    if keys.ndim != 2 or keys.shape[1] < 1:
        raise ValueError(f"keys must be 2-D (n, keylen), got shape {keys.shape}")
    return keys


def _u8p(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8))


def _i64p(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def batch_keystream(
    keys: np.ndarray,
    length: int,
    *,
    drop: int = 0,
    threads: int | None = None,
    interleave: bool | None = None,
    simd: bool | None = None,
) -> np.ndarray:
    """Compiled equivalent of :func:`repro.rc4.batch.batch_keystream`."""
    keys = _check_keys(keys)
    n = keys.shape[0]
    out = np.empty((n, length), dtype=np.uint8)
    lib = _load()
    assert lib is not None, "call available() first"
    use_simd = _simd(simd)
    lib.rc4_batch_keystream(
        _u8p(keys), n, keys.shape[1], drop, length, _u8p(out),
        resolve_threads(
            threads, lane_bytes=_SIMD_LANE_SCRATCH if use_simd else 0
        ),
        _interleave(interleave), use_simd,
    )
    return out


def count_single(
    keys: np.ndarray,
    positions: int,
    out: np.ndarray,
    *,
    threads: int | None = None,
    interleave: bool | None = None,
    simd: bool | None = None,
) -> None:
    """Accumulate single-byte counts into ``out`` (positions, 256) int64."""
    keys = _check_keys(keys)
    lib = _load()
    assert lib is not None, "call available() first"
    assert out.dtype == np.int64 and out.flags.c_contiguous
    use_simd = _simd(simd)
    lib.rc4_count_single(
        _u8p(keys), keys.shape[0], keys.shape[1], positions, _i64p(out),
        resolve_threads(
            threads, out.nbytes,
            lane_bytes=_SIMD_LANE_SCRATCH if use_simd else 0,
        ),
        _interleave(interleave), use_simd,
    )


def count_digraph(
    keys: np.ndarray,
    positions: int,
    out: np.ndarray,
    *,
    threads: int | None = None,
    interleave: bool | None = None,
    simd: bool | None = None,
) -> None:
    """Accumulate consecutive-digraph counts into (positions, 256, 256)."""
    keys = _check_keys(keys)
    lib = _load()
    assert lib is not None, "call available() first"
    assert out.dtype == np.int64 and out.flags.c_contiguous
    use_simd = _simd(simd)
    lib.rc4_count_digraph(
        _u8p(keys), keys.shape[0], keys.shape[1], positions, _i64p(out),
        resolve_threads(
            threads, out.nbytes,
            lane_bytes=_SIMD_LANE_SCRATCH if use_simd else 0,
        ),
        _interleave(interleave), use_simd,
    )


def count_longterm(
    keys: np.ndarray,
    stream_len: int,
    drop: int,
    gap: int,
    out: np.ndarray,
    *,
    threads: int | None = None,
    interleave: bool | None = None,
    simd: bool | None = None,
) -> None:
    """Accumulate counter-binned long-term digraphs into (256, 256, 256)."""
    if not 0 <= gap <= 255:
        raise ValueError(f"gap must be 0..255, got {gap}")
    keys = _check_keys(keys)
    lib = _load()
    assert lib is not None, "call available() first"
    assert out.dtype == np.int64 and out.flags.c_contiguous
    use_simd = _simd(simd)
    lib.rc4_count_longterm(
        _u8p(keys), keys.shape[0], keys.shape[1], stream_len, drop, gap,
        _i64p(out),
        resolve_threads(
            threads, out.nbytes,
            lane_bytes=_SIMD_LANE_SCRATCH if use_simd else 0,
        ),
        _interleave(interleave), use_simd,
    )
