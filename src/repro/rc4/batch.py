"""Vectorised batch RC4: run many independent RC4 instances in lock-step.

The paper's bias statistics (§3.2) were produced by a distributed C setup
generating 2**44+ keystreams.  This module is the Python-scale equivalent:
all instances share the public counter ``i``, so one PRGA round for *n*
keys costs a handful of numpy gather/scatter operations instead of a
Python-level loop per key.

Performance notes (these dominate the whole statistics pipeline):

- The permutation is stored transposed as a ``(256, n)`` uint8 array so
  the row ``S[i]`` — the same ``i`` for every instance, since ``i`` is the
  public counter — is contiguous.  (The per-instance-contiguous
  ``(n, 256)`` layout was measured 2x slower here: numpy fancy-indexing
  overhead on the three per-round gathers outweighs its cache locality.)
- Per-instance accesses ``S[j_k]`` use flat indexing into the underlying
  buffer (``j * n + instance``); every index and scratch buffer is
  allocated once in ``__init__`` and reused, so steady-state rounds are
  allocation-free.
- ``j`` is kept as uint8: RC4's additions wrap modulo 256 natively, which
  removes the explicit masking op and shrinks the add traffic 8x; only
  the flat index vectors are widened to ``intp`` (via widening
  ``np.multiply``).
- :meth:`skip` is a dedicated fast path: it performs the swap without the
  output gather ``S[S[i]+S[j]]``, saving 4 of the 12 per-round dispatches
  (including the most expensive one) across e.g. the 1023 dropped rounds
  of every long-term statistics chunk.
- :meth:`stream_blocks` yields overlapping windows from a single reused
  buffer so counting kernels can consume arbitrarily long streams without
  materialising a ``(stream_len, n)`` block.

Batch sizes around 2**13..2**15 keys keep the state in L2/L3 and amortise
numpy call overhead; :func:`batch_keystream` transparently splits larger
requests into chunks of ``chunk`` keys.

When the optional compiled backend (:mod:`repro.rc4._native`) is
available, :func:`batch_keystream` routes through it — per-key scalar C
with the 256-byte state in L1, several times faster again.  The
class-based API below is the portable fallback and the only stateful
(round-by-round) interface.

All paths are bit-exact with :mod:`repro.rc4.reference` (cross-checked in
the test suite, including property-based tests).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..errors import KeyLengthError
from . import _native

#: Default number of instances stepped together; chosen so the transposed
#: state (256 * chunk bytes) fits comfortably in L2/L3 cache.
DEFAULT_CHUNK = 1 << 14


class BatchRC4:
    """A batch of independent RC4 instances advanced one round at a time.

    Args:
        keys: uint8 array of shape ``(n, keylen)``; row k is instance k's key.

    The constructor runs the KSA for all instances; keystream bytes are
    then produced round by round with :meth:`next_bytes` or in bulk with
    :meth:`keystream` / :meth:`keystream_rows` / :meth:`stream_blocks`.
    """

    def __init__(self, keys: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.uint8)
        if keys.ndim != 2:
            raise KeyLengthError(
                f"keys must be 2-D (n, keylen), got shape {keys.shape}"
            )
        n, keylen = keys.shape
        if not 1 <= keylen <= 256:
            raise KeyLengthError(f"RC4 key must be 1..256 bytes, got {keylen}")
        self._n = n
        self._ids = np.arange(n, dtype=np.intp)
        # Transposed state: row i holds S[i] for every instance (contiguous).
        state = np.empty((256, n), dtype=np.uint8)
        state[:] = np.arange(256, dtype=np.uint8)[:, None]
        self._state = state
        self._flat = state.reshape(-1)
        # Scratch buffers reused every round to avoid per-round allocation.
        self._jflat = np.empty(n, dtype=np.intp)
        self._tflat = np.empty(n, dtype=np.intp)
        self._si = np.empty(n, dtype=np.uint8)
        self._sj = np.empty(n, dtype=np.uint8)
        self._t8 = np.empty(n, dtype=np.uint8)
        self._run_ksa(keys)
        self._i = 0
        self._j = np.zeros(n, dtype=np.uint8)

    @property
    def n(self) -> int:
        """Number of RC4 instances in the batch."""
        return self._n

    def _run_ksa(self, keys: np.ndarray) -> None:
        n = self._n
        ids = self._ids
        state = self._state
        flat = self._flat
        jflat = self._jflat
        s_i = self._si
        s_j = self._sj
        keylen = keys.shape[1]
        # Key bytes transposed so each KSA round reads a contiguous row.
        keys_t = np.ascontiguousarray(keys.T)
        j = np.zeros(n, dtype=np.uint8)
        for i in range(256):
            np.add(j, state[i], out=j)
            np.add(j, keys_t[i % keylen], out=j)
            np.multiply(j, n, out=jflat, dtype=np.intp, casting="unsafe")
            jflat += ids
            s_i[:] = state[i]
            np.take(flat, jflat, out=s_j)
            state[i] = s_j
            flat[jflat] = s_i

    def next_bytes(self, out: np.ndarray | None = None) -> np.ndarray:
        """Advance one PRGA round; return the keystream byte per instance.

        Args:
            out: optional uint8 buffer of length ``n`` to write into.
        """
        n = self._n
        ids = self._ids
        state = self._state
        flat = self._flat
        jflat = self._jflat
        tflat = self._tflat
        s_i = self._si
        s_j = self._sj
        t8 = self._t8
        self._i = (self._i + 1) & 0xFF
        i = self._i
        j = self._j
        np.add(j, state[i], out=j)
        np.multiply(j, n, out=jflat, dtype=np.intp, casting="unsafe")
        jflat += ids
        s_i[:] = state[i]
        np.take(flat, jflat, out=s_j)
        state[i] = s_j
        flat[jflat] = s_i
        # t = (S[i] + S[j]) mod 256: uint8 addition wraps natively.
        np.add(s_i, s_j, out=t8)
        np.multiply(t8, n, out=tflat, dtype=np.intp, casting="unsafe")
        tflat += ids
        if out is None:
            return flat[tflat]
        np.take(flat, tflat, out=out)
        return out

    def _fill_rows(self, out: np.ndarray, start: int, count: int) -> None:
        """Run ``count`` fused PRGA rounds writing rows ``start..start+count-1``.

        This is :meth:`next_bytes` with the loop body inlined (no method
        dispatch or attribute lookups per round) writing straight into the
        caller's buffer.
        """
        n = self._n
        ids = self._ids
        state = self._state
        flat = self._flat
        jflat = self._jflat
        tflat = self._tflat
        s_i = self._si
        s_j = self._sj
        t8 = self._t8
        j = self._j
        i = self._i
        for r in range(start, start + count):
            i = (i + 1) & 0xFF
            np.add(j, state[i], out=j)
            np.multiply(j, n, out=jflat, dtype=np.intp, casting="unsafe")
            jflat += ids
            s_i[:] = state[i]
            np.take(flat, jflat, out=s_j)
            state[i] = s_j
            flat[jflat] = s_i
            np.add(s_i, s_j, out=t8)
            np.multiply(t8, n, out=tflat, dtype=np.intp, casting="unsafe")
            tflat += ids
            np.take(flat, tflat, out=out[r])
        self._i = i

    def keystream(self, length: int) -> np.ndarray:
        """Return the next ``length`` keystream bytes of every instance.

        Returns a uint8 array of shape ``(n, length)`` where column r holds
        Z_{r+1} (matching the paper's 1-indexed keystream positions).
        """
        return np.ascontiguousarray(self.keystream_rows(length).T)

    def keystream_rows(
        self, length: int, *, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Like :meth:`keystream` but shaped ``(length, n)`` without the
        final transpose — faster when the consumer reduces over instances
        (e.g. the counting kernels in :mod:`repro.datasets`).

        Args:
            length: rounds to run.
            out: optional caller-provided ``(length, n)`` uint8 buffer,
                written in place (avoids a block allocation per chunk).
        """
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        if out is None:
            out = np.empty((length, self._n), dtype=np.uint8)
        elif out.shape != (length, self._n) or out.dtype != np.uint8:
            raise ValueError(
                f"out must be uint8 of shape {(length, self._n)}, "
                f"got {out.dtype} {out.shape}"
            )
        self._fill_rows(out, 0, length)
        return out

    def skip(self, length: int) -> None:
        """Discard the next ``length`` keystream bytes of every instance.

        Fast path: performs only the state swap, not the output gather
        ``S[S[i]+S[j]]`` — 8 dispatches per round instead of 12 and no
        16 KiB-per-round output traffic, which matters for the 1023-byte
        drop of every long-term statistics chunk.
        """
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        n = self._n
        ids = self._ids
        state = self._state
        flat = self._flat
        jflat = self._jflat
        s_i = self._si
        s_j = self._sj
        j = self._j
        i = self._i
        for _ in range(length):
            i = (i + 1) & 0xFF
            np.add(j, state[i], out=j)
            np.multiply(j, n, out=jflat, dtype=np.intp, casting="unsafe")
            jflat += ids
            s_i[:] = state[i]
            np.take(flat, jflat, out=s_j)
            state[i] = s_j
            flat[jflat] = s_i
        self._i = i

    def stream_blocks(
        self, rows: int, *, block: int = 64, overlap: int = 0
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``rows`` keystream rows as overlapping windows.

        A single ``(block + overlap, n)`` buffer is reused for every
        window, so consumers (digraph counting over long streams) never
        hold more than one window in memory.

        Yields ``(start, view)`` pairs where ``view[m]`` is absolute row
        ``start + m`` of the stream.  The final ``overlap`` rows of each
        window reappear as the first ``overlap`` rows of the next, so a
        digraph consumer with pair span ``overlap`` can process
        ``view.shape[0] - overlap`` first-positions per window without
        losing pairs at window boundaries.

        Args:
            rows: total distinct keystream rows to generate.
            block: new rows generated per window.
            overlap: rows carried over between consecutive windows.
        """
        if rows < 0:
            raise ValueError(f"rows must be non-negative, got {rows}")
        if block < 1:
            raise ValueError(f"block must be positive, got {block}")
        if overlap < 0:
            raise ValueError(f"overlap must be non-negative, got {overlap}")
        if block < overlap:
            # Keeps the carried rows and the fresh rows disjoint in the
            # reused buffer (the carry copy below must not self-overlap).
            raise ValueError(f"block ({block}) must be >= overlap ({overlap})")
        if rows <= overlap:
            return
        buf = np.empty((min(block + overlap, rows), self._n), dtype=np.uint8)
        first = buf.shape[0]
        self._fill_rows(buf, 0, first)
        yield 0, buf[:first]
        produced = first
        while produced < rows:
            fresh = min(block, rows - produced)
            if overlap:
                buf[:overlap] = buf[first - overlap : first]
            self._fill_rows(buf, overlap, fresh)
            first = overlap + fresh
            yield produced - overlap, buf[:first]
            produced += fresh


def batch_keystream(
    keys: np.ndarray,
    length: int,
    *,
    drop: int = 0,
    chunk: int = DEFAULT_CHUNK,
    threads: int | None = None,
    simd: bool | None = None,
) -> np.ndarray:
    """Generate ``length`` keystream bytes for each key row in ``keys``.

    Routes through the compiled backend when available; otherwise splits
    the work into cache-friendly chunks of at most ``chunk`` keys (see
    :class:`BatchRC4` for layout details).  Both paths are bit-exact.

    Args:
        keys: uint8 array of shape ``(n, keylen)``.
        length: keystream bytes per key.
        drop: initial bytes to discard per key.
        chunk: numpy-path batch size (native path ignores it).
        threads: native-path thread count; ``None`` uses the configured
            default (``REPRO_NATIVE_THREADS`` or ``os.cpu_count()``).
            The numpy fallback is single-threaded and ignores it.
        simd: allow the native AVX2 wide kernels; ``None`` uses the
            configured default (``REPRO_NATIVE_SIMD``, on).  Bit-exact
            either way; the numpy fallback ignores it.
    """
    keys = np.asarray(keys, dtype=np.uint8)
    if keys.ndim != 2:
        raise KeyLengthError(f"keys must be 2-D (n, keylen), got shape {keys.shape}")
    n, keylen = keys.shape
    if not 1 <= keylen <= 256:
        raise KeyLengthError(f"RC4 key must be 1..256 bytes, got {keylen}")
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    if drop < 0:
        raise ValueError(f"drop must be non-negative, got {drop}")
    if _native.available():
        return _native.batch_keystream(
            keys, length, drop=drop, threads=threads, simd=simd
        )
    if n <= chunk:
        batch = BatchRC4(keys)
        if drop:
            batch.skip(drop)
        return batch.keystream(length)
    out = np.empty((n, length), dtype=np.uint8)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        batch = BatchRC4(keys[start:stop])
        if drop:
            batch.skip(drop)
        out[start:stop] = batch.keystream(length)
    return out
