"""Vectorised batch RC4: run many independent RC4 instances in lock-step.

The paper's bias statistics (§3.2) were produced by a distributed C setup
generating 2**44+ keystreams.  This module is the Python-scale equivalent:
all instances share the public counter ``i``, so one PRGA round for *n*
keys costs a handful of numpy gather/scatter operations instead of a
Python-level loop per key.

Performance notes (these dominate the whole statistics pipeline):

- The permutation is stored transposed as a ``(256, n)`` uint8 array so
  the row ``S[i]`` — the same ``i`` for every instance, since ``i`` is the
  public counter — is contiguous, and the full state stays small enough
  to be cache-resident for moderate ``n``.
- Per-instance accesses ``S[j_k]`` use flat indexing into the underlying
  buffer (``j * n + instance``); index and scratch buffers are allocated
  once and reused every round.
- uint8 arithmetic wraps modulo 256 natively, which is exactly RC4's
  addition; only index vectors are widened to ``intp``.

Batch sizes around 2**13..2**15 keys keep the state in L2/L3 and amortise
numpy call overhead; :func:`batch_keystream` transparently splits larger
requests into chunks of ``chunk`` keys.

The output is bit-exact with :mod:`repro.rc4.reference` (cross-checked in
the test suite, including property-based tests).
"""

from __future__ import annotations

import numpy as np

from ..errors import KeyLengthError

#: Default number of instances stepped together; chosen so the transposed
#: state (256 * chunk bytes) fits comfortably in L2/L3 cache.
DEFAULT_CHUNK = 1 << 14


class BatchRC4:
    """A batch of independent RC4 instances advanced one round at a time.

    Args:
        keys: uint8 array of shape ``(n, keylen)``; row k is instance k's key.

    The constructor runs the KSA for all instances; keystream bytes are
    then produced round by round with :meth:`next_bytes` or in bulk with
    :meth:`keystream`.
    """

    def __init__(self, keys: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.uint8)
        if keys.ndim != 2:
            raise KeyLengthError(f"keys must be 2-D (n, keylen), got shape {keys.shape}")
        n, keylen = keys.shape
        if not 1 <= keylen <= 256:
            raise KeyLengthError(f"RC4 key must be 1..256 bytes, got {keylen}")
        self._n = n
        self._ids = np.arange(n, dtype=np.intp)
        # Transposed state: row i holds S[i] for every instance (contiguous).
        state = np.empty((256, n), dtype=np.uint8)
        state[:] = np.arange(256, dtype=np.uint8)[:, None]
        self._state = state
        self._flat = state.reshape(-1)
        # Scratch buffers reused every round to avoid per-round allocation.
        self._jflat = np.empty(n, dtype=np.intp)
        self._tflat = np.empty(n, dtype=np.intp)
        self._si = np.empty(n, dtype=np.uint8)
        self._run_ksa(keys)
        self._i = 0
        self._j = np.zeros(n, dtype=np.intp)

    @property
    def n(self) -> int:
        """Number of RC4 instances in the batch."""
        return self._n

    def _run_ksa(self, keys: np.ndarray) -> None:
        n = self._n
        ids = self._ids
        state = self._state
        flat = self._flat
        jflat = self._jflat
        s_i = self._si
        keylen = keys.shape[1]
        # Key bytes transposed so each KSA round reads a contiguous row.
        keys_t = np.ascontiguousarray(keys.T)
        j = np.zeros(n, dtype=np.intp)
        for i in range(256):
            j += state[i]
            j += keys_t[i % keylen]
            j &= 0xFF
            np.multiply(j, n, out=jflat)
            jflat += ids
            s_i[:] = state[i]
            state[i] = flat[jflat]
            flat[jflat] = s_i

    def next_bytes(self, out: np.ndarray | None = None) -> np.ndarray:
        """Advance one PRGA round; return the keystream byte per instance.

        Args:
            out: optional uint8 buffer of length ``n`` to write into.
        """
        n = self._n
        state = self._state
        flat = self._flat
        jflat = self._jflat
        tflat = self._tflat
        s_i = self._si
        self._i = (self._i + 1) & 0xFF
        i = self._i
        j = self._j
        j += state[i]
        j &= 0xFF
        np.multiply(j, n, out=jflat)
        jflat += self._ids
        s_i[:] = state[i]
        s_j = flat[jflat]
        state[i] = s_j
        flat[jflat] = s_i
        # t = (S[i] + S[j]) mod 256: uint8 addition wraps natively.
        t = s_i + s_j
        np.multiply(t, n, out=tflat, dtype=np.intp, casting="unsafe")
        tflat += self._ids
        if out is None:
            return flat[tflat]
        np.take(flat, tflat, out=out)
        return out

    def keystream(self, length: int) -> np.ndarray:
        """Return the next ``length`` keystream bytes of every instance.

        Returns a uint8 array of shape ``(n, length)`` where column r holds
        Z_{r+1} (matching the paper's 1-indexed keystream positions).
        """
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        out = np.empty((length, self._n), dtype=np.uint8)
        for r in range(length):
            self.next_bytes(out=out[r])
        return np.ascontiguousarray(out.T)

    def keystream_rows(self, length: int) -> np.ndarray:
        """Like :meth:`keystream` but shaped ``(length, n)`` without the
        final transpose — faster when the consumer reduces over instances
        (e.g. the counting kernels in :mod:`repro.datasets`)."""
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        out = np.empty((length, self._n), dtype=np.uint8)
        for r in range(length):
            self.next_bytes(out=out[r])
        return out

    def skip(self, length: int) -> None:
        """Discard the next ``length`` keystream bytes of every instance."""
        for _ in range(length):
            self.next_bytes()


def batch_keystream(
    keys: np.ndarray,
    length: int,
    *,
    drop: int = 0,
    chunk: int = DEFAULT_CHUNK,
) -> np.ndarray:
    """Generate ``length`` keystream bytes for each key row in ``keys``.

    Splits the work into cache-friendly chunks of at most ``chunk`` keys;
    see :class:`BatchRC4` for layout details.
    """
    keys = np.asarray(keys, dtype=np.uint8)
    if keys.ndim != 2:
        raise KeyLengthError(f"keys must be 2-D (n, keylen), got shape {keys.shape}")
    n = keys.shape[0]
    if n <= chunk:
        batch = BatchRC4(keys)
        if drop:
            batch.skip(drop)
        return batch.keystream(length)
    out = np.empty((n, length), dtype=np.uint8)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        batch = BatchRC4(keys[start:stop])
        if drop:
            batch.skip(drop)
        out[start:stop] = batch.keystream(length)
    return out
