"""Reference RC4: Key Scheduling Algorithm and PRGA (paper §2.1, Fig. 1).

This implementation favours being an executable specification: `ksa` and
`prga` mirror Listings 1 and 2 of the paper line for line.  The
:class:`RC4` class wraps them in a stateful cipher object used by the TKIP
and TLS substrates.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import KeyLengthError


def _check_key(key: bytes) -> bytes:
    key = bytes(key)
    if not 1 <= len(key) <= 256:
        raise KeyLengthError(f"RC4 key must be 1..256 bytes, got {len(key)}")
    return key


def ksa(key: bytes) -> list[int]:
    """Run the Key Scheduling Algorithm; return the initial permutation S.

    Mirrors Listing 1 of the paper: ``j += S[i] + key[i % len(key)]``
    followed by ``swap(S[i], S[j])`` for ``i`` in ``0..255`` (mod 256).
    """
    key = _check_key(key)
    state = list(range(256))
    j = 0
    for i in range(256):
        j = (j + state[i] + key[i % len(key)]) & 0xFF
        state[i], state[j] = state[j], state[i]
    return state


def prga(state: list[int]) -> Iterator[int]:
    """Yield keystream bytes Z_1, Z_2, ... from permutation ``state``.

    Mirrors Listing 2 of the paper.  The input list is copied, so callers
    may reuse the KSA output.
    """
    state = list(state)
    i = j = 0
    while True:
        i = (i + 1) & 0xFF
        j = (j + state[i]) & 0xFF
        state[i], state[j] = state[j], state[i]
        yield state[(state[i] + state[j]) & 0xFF]


def rc4_keystream(key: bytes, length: int, *, drop: int = 0) -> bytes:
    """Return ``length`` keystream bytes for ``key``.

    Args:
        key: RC4 key (1..256 bytes).
        length: number of keystream bytes to produce.
        drop: number of initial keystream bytes to discard first
            (RC4-drop[n]; Mironov recommends n = 12*256, paper §7).
    """
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    gen = prga(ksa(key))
    for _ in range(drop):
        next(gen)
    return bytes(next(gen) for _ in range(length))


def rc4_crypt(key: bytes, data: bytes, *, drop: int = 0) -> bytes:
    """Encrypt (= decrypt) ``data`` under ``key``: C_r = P_r xor Z_r."""
    stream = rc4_keystream(key, len(data), drop=drop)
    return bytes(p ^ z for p, z in zip(data, stream))


class RC4:
    """Stateful RC4 cipher: repeated calls continue the same keystream.

    This is the object the TLS record layer holds per direction — RC4 in
    TLS is initialised once per connection and never rekeyed (paper §2.3).
    """

    def __init__(self, key: bytes, *, drop: int = 0) -> None:
        self._generator = prga(ksa(key))
        self._position = 0
        for _ in range(drop):
            next(self._generator)

    @property
    def position(self) -> int:
        """Number of keystream bytes consumed so far (after any drop)."""
        return self._position

    def keystream(self, length: int) -> bytes:
        """Consume and return the next ``length`` keystream bytes."""
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        out = bytes(next(self._generator) for _ in range(length))
        self._position += length
        return out

    def crypt(self, data: bytes) -> bytes:
        """Encrypt/decrypt ``data``, advancing the keystream."""
        stream = self.keystream(len(data))
        return bytes(p ^ z for p, z in zip(data, stream))
