/* Native RC4 statistics kernels (compiled on demand by _native.py).
 *
 * The numpy batch generator in batch.py pays ~10 array dispatches per
 * PRGA round; at 256 KSA rounds + 1023 drop rounds per long-term chunk
 * that overhead dominates the whole statistics pipeline.  Here each key
 * is run start-to-finish with its 256-byte state in L1, which is the
 * same layout the paper's C workers used (§3.2).
 *
 * Two levels of parallelism sit on top of the scalar per-key loops:
 *
 * - Interleaving: the PRGA recurrence (i, j, two state loads, a swap, an
 *   output gather) is a serial dependency chain, so a single state leaves
 *   most of the core idle.  The interleaved kernels advance RC4_IL
 *   independent states per loop iteration; their chains overlap and the
 *   four 256-byte states still fit in L1 together.
 * - POSIX threads: keys split into contiguous ranges, one range per
 *   thread.  Keystream threads write disjoint output rows; counting
 *   threads accumulate into private zero-initialised counter blocks that
 *   the caller's thread merges serially at the end.  int64 addition is
 *   exact and commutative, so the merged counters are bit-identical to a
 *   single-threaded run for any thread count and any key partition.
 *
 * Everything is bit-exact with repro.rc4.reference; the Python side
 * cross-checks this in tests/test_dataset_equivalence.py across thread
 * counts and across the interleaved vs scalar kernels.
 *
 * Build contract (see _native.py): plain C99, no dependencies beyond
 * libc + pthreads, compiled with `cc -O3 -shared -fPIC -pthread`.
 */

#include <pthread.h>
#include <stddef.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Independent RC4 states advanced per interleaved loop iteration.  4 x
 * 256 B of state stays L1-resident while giving the out-of-order core
 * four independent swap chains to overlap. */
#define RC4_IL 4

static void rc4_init(uint8_t *S, const uint8_t *key, ptrdiff_t keylen)
{
    int k;
    uint8_t j = 0, tmp;
    for (k = 0; k < 256; k++)
        S[k] = (uint8_t)k;
    for (k = 0; k < 256; k++) {
        j = (uint8_t)(j + S[k] + key[k % keylen]);
        tmp = S[k];
        S[k] = S[j];
        S[j] = tmp;
    }
}

#define RC4_STEP(S, i, j, tmp)                                               \
    do {                                                                     \
        (i) = (uint8_t)((i) + 1);                                            \
        (j) = (uint8_t)((j) + (S)[(i)]);                                     \
        (tmp) = (S)[(i)];                                                    \
        (S)[(i)] = (S)[(j)];                                                 \
        (S)[(j)] = (tmp);                                                    \
    } while (0)

#define RC4_OUT(S, i, j) ((S)[(uint8_t)((S)[(i)] + (S)[(j)])])

/* Interleaved working set: RC4_IL states advanced in lock-step within
 * one thread.  All loops below iterate k = 0..RC4_IL-1 over fixed-size
 * arrays, which the compiler fully unrolls at -O3. */
typedef struct {
    uint8_t S[RC4_IL][256];
    uint8_t i[RC4_IL];
    uint8_t j[RC4_IL];
} rc4_lanes;

static void lanes_init(rc4_lanes *L, const uint8_t *keys, ptrdiff_t keylen,
                       long drop)
{
    int k;
    long r;
    uint8_t tmp;
    for (k = 0; k < RC4_IL; k++) {
        rc4_init(L->S[k], keys + k * keylen, keylen);
        L->i[k] = 0;
        L->j[k] = 0;
    }
    for (r = 0; r < drop; r++)
        for (k = 0; k < RC4_IL; k++)
            RC4_STEP(L->S[k], L->i[k], L->j[k], tmp);
}

/* ---- keystream ---------------------------------------------------------- */

static void keystream_scalar(const uint8_t *keys, ptrdiff_t n,
                             ptrdiff_t keylen, long drop, long length,
                             uint8_t *out)
{
    ptrdiff_t k;
    long r;
    for (k = 0; k < n; k++) {
        uint8_t S[256];
        uint8_t i = 0, j = 0, tmp;
        uint8_t *dst = out + k * length;
        rc4_init(S, keys + k * keylen, keylen);
        for (r = 0; r < drop; r++)
            RC4_STEP(S, i, j, tmp);
        for (r = 0; r < length; r++) {
            RC4_STEP(S, i, j, tmp);
            dst[r] = RC4_OUT(S, i, j);
        }
    }
}

static void keystream_interleaved(const uint8_t *keys, ptrdiff_t n,
                                  ptrdiff_t keylen, long drop, long length,
                                  uint8_t *out)
{
    ptrdiff_t g;
    for (g = 0; g + RC4_IL <= n; g += RC4_IL) {
        rc4_lanes L;
        uint8_t tmp;
        int k;
        long r;
        lanes_init(&L, keys + g * keylen, keylen, drop);
        for (r = 0; r < length; r++)
            for (k = 0; k < RC4_IL; k++) {
                RC4_STEP(L.S[k], L.i[k], L.j[k], tmp);
                out[(g + k) * length + r] = RC4_OUT(L.S[k], L.i[k], L.j[k]);
            }
    }
    keystream_scalar(keys + g * keylen, n - g, keylen, drop, length,
                     out + g * length);
}

/* ---- single-byte counts ------------------------------------------------- */

static void single_scalar(const uint8_t *keys, ptrdiff_t n, ptrdiff_t keylen,
                          long positions, int64_t *out)
{
    ptrdiff_t k;
    long r;
    for (k = 0; k < n; k++) {
        uint8_t S[256];
        uint8_t i = 0, j = 0, tmp;
        rc4_init(S, keys + k * keylen, keylen);
        for (r = 0; r < positions; r++) {
            RC4_STEP(S, i, j, tmp);
            out[r * 256 + RC4_OUT(S, i, j)] += 1;
        }
    }
}

static void single_interleaved(const uint8_t *keys, ptrdiff_t n,
                               ptrdiff_t keylen, long positions, int64_t *out)
{
    ptrdiff_t g;
    for (g = 0; g + RC4_IL <= n; g += RC4_IL) {
        rc4_lanes L;
        uint8_t tmp;
        int k;
        long r;
        lanes_init(&L, keys + g * keylen, keylen, 0);
        for (r = 0; r < positions; r++) {
            int64_t *row = out + r * 256;
            for (k = 0; k < RC4_IL; k++) {
                RC4_STEP(L.S[k], L.i[k], L.j[k], tmp);
                row[RC4_OUT(L.S[k], L.i[k], L.j[k])] += 1;
            }
        }
    }
    single_scalar(keys + g * keylen, n - g, keylen, positions, out);
}

/* ---- consecutive digraph counts ----------------------------------------- */

static void digraph_scalar(const uint8_t *keys, ptrdiff_t n, ptrdiff_t keylen,
                           long positions, int64_t *out)
{
    ptrdiff_t k;
    long r;
    for (k = 0; k < n; k++) {
        uint8_t S[256];
        uint8_t i = 0, j = 0, tmp, prev, z;
        rc4_init(S, keys + k * keylen, keylen);
        RC4_STEP(S, i, j, tmp);
        prev = RC4_OUT(S, i, j);
        for (r = 0; r < positions; r++) {
            RC4_STEP(S, i, j, tmp);
            z = RC4_OUT(S, i, j);
            out[r * 65536 + (ptrdiff_t)prev * 256 + z] += 1;
            prev = z;
        }
    }
}

static void digraph_interleaved(const uint8_t *keys, ptrdiff_t n,
                                ptrdiff_t keylen, long positions, int64_t *out)
{
    ptrdiff_t g;
    for (g = 0; g + RC4_IL <= n; g += RC4_IL) {
        rc4_lanes L;
        uint8_t tmp, z;
        uint8_t prev[RC4_IL];
        int k;
        long r;
        lanes_init(&L, keys + g * keylen, keylen, 0);
        for (k = 0; k < RC4_IL; k++) {
            RC4_STEP(L.S[k], L.i[k], L.j[k], tmp);
            prev[k] = RC4_OUT(L.S[k], L.i[k], L.j[k]);
        }
        for (r = 0; r < positions; r++) {
            int64_t *row = out + r * 65536;
            for (k = 0; k < RC4_IL; k++) {
                RC4_STEP(L.S[k], L.i[k], L.j[k], tmp);
                z = RC4_OUT(L.S[k], L.i[k], L.j[k]);
                row[(ptrdiff_t)prev[k] * 256 + z] += 1;
                prev[k] = z;
            }
        }
    }
    digraph_scalar(keys + g * keylen, n - g, keylen, positions, out);
}

/* ---- long-term digraph counts ------------------------------------------- */

/* Long-term digraphs binned by the PRGA counter (§3.4):
 * out[i*65536 + Z_r*256 + Z_{r+1+gap}] += 1 where i = (drop+r+1) mod 256
 * and r = 1..stream_len (1-indexed past the dropped prefix).  A rolling
 * window of gap+1 bytes supplies the first element of each pair. */
static void longterm_scalar(const uint8_t *keys, ptrdiff_t n,
                            ptrdiff_t keylen, long stream_len, long drop,
                            long gap, int64_t *out)
{
    ptrdiff_t k;
    long r;
    long width = gap + 1;
    for (k = 0; k < n; k++) {
        uint8_t S[256];
        uint8_t window[256]; /* gap is validated <= 255 on the Python side */
        uint8_t i = 0, j = 0, tmp, z, first;
        uint8_t bin = (uint8_t)(drop & 0xFF);
        rc4_init(S, keys + k * keylen, keylen);
        for (r = 0; r < drop; r++)
            RC4_STEP(S, i, j, tmp);
        for (r = 0; r < width; r++) {
            RC4_STEP(S, i, j, tmp);
            window[r] = RC4_OUT(S, i, j);
        }
        for (r = 0; r < stream_len; r++) {
            RC4_STEP(S, i, j, tmp);
            z = RC4_OUT(S, i, j);
            first = window[r % width];
            window[r % width] = z;
            bin = (uint8_t)(bin + 1); /* (drop + r + 1) mod 256 */
            out[(ptrdiff_t)bin * 65536 + (ptrdiff_t)first * 256 + z] += 1;
        }
    }
}

static void longterm_interleaved(const uint8_t *keys, ptrdiff_t n,
                                 ptrdiff_t keylen, long stream_len, long drop,
                                 long gap, int64_t *out)
{
    long width = gap + 1;
    ptrdiff_t g;
    for (g = 0; g + RC4_IL <= n; g += RC4_IL) {
        rc4_lanes L;
        uint8_t window[RC4_IL][256];
        uint8_t tmp, z, first;
        /* The counter bin depends only on drop and r, so it is shared by
         * all lanes. */
        uint8_t bin = (uint8_t)(drop & 0xFF);
        int k;
        long r;
        lanes_init(&L, keys + g * keylen, keylen, drop);
        for (r = 0; r < width; r++)
            for (k = 0; k < RC4_IL; k++) {
                RC4_STEP(L.S[k], L.i[k], L.j[k], tmp);
                window[k][r] = RC4_OUT(L.S[k], L.i[k], L.j[k]);
            }
        for (r = 0; r < stream_len; r++) {
            long slot = r % width;
            int64_t *row;
            bin = (uint8_t)(bin + 1);
            row = out + (ptrdiff_t)bin * 65536;
            for (k = 0; k < RC4_IL; k++) {
                RC4_STEP(L.S[k], L.i[k], L.j[k], tmp);
                z = RC4_OUT(L.S[k], L.i[k], L.j[k]);
                first = window[k][slot];
                window[k][slot] = z;
                row[(ptrdiff_t)first * 256 + z] += 1;
            }
        }
    }
    longterm_scalar(keys + g * keylen, n - g, keylen, stream_len, drop, gap,
                    out);
}

/* ---- thread fan-out ----------------------------------------------------- */

enum job_kind { JOB_KEYSTREAM, JOB_SINGLE, JOB_DIGRAPH, JOB_LONGTERM };

typedef struct {
    enum job_kind kind;
    int interleave;
    const uint8_t *keys; /* this range's first key */
    ptrdiff_t n;         /* keys in this range */
    ptrdiff_t keylen;
    long length; /* keystream length / positions / stream_len */
    long drop;
    long gap;
    uint8_t *out_u8;   /* keystream rows for this range (disjoint) */
    int64_t *out_i64;  /* private counter block for this range */
} rc4_job;

static void run_job(const rc4_job *job)
{
    switch (job->kind) {
    case JOB_KEYSTREAM:
        if (job->interleave)
            keystream_interleaved(job->keys, job->n, job->keylen, job->drop,
                                  job->length, job->out_u8);
        else
            keystream_scalar(job->keys, job->n, job->keylen, job->drop,
                             job->length, job->out_u8);
        break;
    case JOB_SINGLE:
        if (job->interleave)
            single_interleaved(job->keys, job->n, job->keylen, job->length,
                               job->out_i64);
        else
            single_scalar(job->keys, job->n, job->keylen, job->length,
                          job->out_i64);
        break;
    case JOB_DIGRAPH:
        if (job->interleave)
            digraph_interleaved(job->keys, job->n, job->keylen, job->length,
                                job->out_i64);
        else
            digraph_scalar(job->keys, job->n, job->keylen, job->length,
                           job->out_i64);
        break;
    case JOB_LONGTERM:
        if (job->interleave)
            longterm_interleaved(job->keys, job->n, job->keylen, job->length,
                                 job->drop, job->gap, job->out_i64);
        else
            longterm_scalar(job->keys, job->n, job->keylen, job->length,
                            job->drop, job->gap, job->out_i64);
        break;
    }
}

static void *thread_main(void *arg)
{
    run_job((const rc4_job *)arg);
    return NULL;
}

/* Split `template` (covering all n keys) into `threads` contiguous key
 * ranges and run them concurrently.  For counting jobs each range gets a
 * private zeroed counter block of `counter_cells` int64 cells, merged
 * serially into `template->out_i64` afterwards; keystream jobs write
 * disjoint rows and need no merge.  Any allocation or spawn failure
 * degrades to running the remaining work on the calling thread — the
 * result is identical either way. */
static void run_threaded(const rc4_job *template, int threads,
                         ptrdiff_t counter_cells)
{
    ptrdiff_t n = template->n;
    rc4_job *jobs;
    pthread_t *tids;
    char *spawned;
    int64_t *blocks = NULL;
    ptrdiff_t base, extra, start;
    int t;

    if (threads > n)
        threads = (int)(n > 0 ? n : 1);
    if (threads <= 1) {
        run_job(template);
        return;
    }
    jobs = malloc((size_t)threads * sizeof(rc4_job));
    tids = malloc((size_t)threads * sizeof(pthread_t));
    spawned = malloc((size_t)threads);
    if (template->kind != JOB_KEYSTREAM)
        blocks = calloc((size_t)threads * (size_t)counter_cells,
                        sizeof(int64_t));
    if (!jobs || !tids || !spawned ||
        (template->kind != JOB_KEYSTREAM && !blocks)) {
        free(jobs);
        free(tids);
        free(spawned);
        free(blocks);
        run_job(template);
        return;
    }

    base = n / threads;
    extra = n % threads;
    start = 0;
    for (t = 0; t < threads; t++) {
        ptrdiff_t count = base + (t < extra ? 1 : 0);
        jobs[t] = *template;
        jobs[t].keys = template->keys + start * template->keylen;
        jobs[t].n = count;
        if (template->kind == JOB_KEYSTREAM)
            jobs[t].out_u8 = template->out_u8 + start * template->length;
        else
            jobs[t].out_i64 = blocks + (ptrdiff_t)t * counter_cells;
        start += count;
    }
    for (t = 0; t < threads; t++)
        spawned[t] = pthread_create(&tids[t], NULL, thread_main, &jobs[t]) == 0;
    for (t = 0; t < threads; t++) {
        if (spawned[t])
            pthread_join(tids[t], NULL);
        else
            run_job(&jobs[t]); /* degraded but still correct */
    }
    if (template->kind != JOB_KEYSTREAM) {
        int64_t *out = template->out_i64;
        for (t = 0; t < threads; t++) {
            const int64_t *block = blocks + (ptrdiff_t)t * counter_cells;
            ptrdiff_t c;
            for (c = 0; c < counter_cells; c++)
                out[c] += block[c];
        }
    }
    free(jobs);
    free(tids);
    free(spawned);
    free(blocks);
}

/* ---- exported entry points ---------------------------------------------- */

/* Generate `length` keystream bytes per key into `out` (n x length,
 * row-major: out[k*length + r] = Z_{r+1} of key k), after discarding
 * `drop` initial bytes. */
void rc4_batch_keystream(const uint8_t *keys, ptrdiff_t n, ptrdiff_t keylen,
                         long drop, long length, uint8_t *out, int threads,
                         int interleave)
{
    rc4_job job = {JOB_KEYSTREAM, interleave, keys, n,    keylen,
                   length,        drop,       0,    out,  NULL};
    run_threaded(&job, threads, 0);
}

/* Single-byte counts: out[r*256 + Z_{r+1}] += 1 for r = 0..positions-1. */
void rc4_count_single(const uint8_t *keys, ptrdiff_t n, ptrdiff_t keylen,
                      long positions, int64_t *out, int threads,
                      int interleave)
{
    rc4_job job = {JOB_SINGLE, interleave, keys, n,    keylen,
                   positions,  0,          0,    NULL, out};
    run_threaded(&job, threads, (ptrdiff_t)positions * 256);
}

/* Consecutive digraphs: out[r*65536 + Z_{r+1}*256 + Z_{r+2}] += 1 for
 * r = 0..positions-1 (needs positions+1 keystream bytes per key). */
void rc4_count_digraph(const uint8_t *keys, ptrdiff_t n, ptrdiff_t keylen,
                       long positions, int64_t *out, int threads,
                       int interleave)
{
    rc4_job job = {JOB_DIGRAPH, interleave, keys, n,    keylen,
                   positions,   0,          0,    NULL, out};
    run_threaded(&job, threads, (ptrdiff_t)positions * 65536);
}

/* Long-term digraphs (see longterm_scalar above for the binning). */
void rc4_count_longterm(const uint8_t *keys, ptrdiff_t n, ptrdiff_t keylen,
                        long stream_len, long drop, long gap, int64_t *out,
                        int threads, int interleave)
{
    rc4_job job = {JOB_LONGTERM, interleave, keys, n,    keylen,
                   stream_len,   drop,       gap,  NULL, out};
    run_threaded(&job, threads, (ptrdiff_t)256 * 65536);
}
