/* Native RC4 statistics kernels (compiled on demand by _native.py).
 *
 * The numpy batch generator in batch.py pays ~10 array dispatches per
 * PRGA round; at 256 KSA rounds + 1023 drop rounds per long-term chunk
 * that overhead dominates the whole statistics pipeline.  Here each key
 * is run start-to-finish with its 256-byte state in L1, which is the
 * same layout the paper's C workers used (§3.2).
 *
 * Everything is bit-exact with repro.rc4.reference; the Python side
 * cross-checks this in tests/test_dataset_equivalence.py.
 *
 * Build contract (see _native.py): plain C99, no includes beyond the
 * two below, compiled with `cc -O3 -shared -fPIC`.
 */

#include <stddef.h>
#include <stdint.h>

static void rc4_init(uint8_t *S, const uint8_t *key, ptrdiff_t keylen)
{
    int k;
    uint8_t j = 0, tmp;
    for (k = 0; k < 256; k++)
        S[k] = (uint8_t)k;
    for (k = 0; k < 256; k++) {
        j = (uint8_t)(j + S[k] + key[k % keylen]);
        tmp = S[k];
        S[k] = S[j];
        S[j] = tmp;
    }
}

#define RC4_STEP(S, i, j, tmp)                                               \
    do {                                                                     \
        (i) = (uint8_t)((i) + 1);                                            \
        (j) = (uint8_t)((j) + (S)[(i)]);                                     \
        (tmp) = (S)[(i)];                                                    \
        (S)[(i)] = (S)[(j)];                                                 \
        (S)[(j)] = (tmp);                                                    \
    } while (0)

#define RC4_OUT(S, i, j) ((S)[(uint8_t)((S)[(i)] + (S)[(j)])])

/* Generate `length` keystream bytes per key into `out` (n x length,
 * row-major: out[k*length + r] = Z_{r+1} of key k), after discarding
 * `drop` initial bytes. */
void rc4_batch_keystream(const uint8_t *keys, ptrdiff_t n, ptrdiff_t keylen,
                         long drop, long length, uint8_t *out)
{
    ptrdiff_t k;
    long r;
    for (k = 0; k < n; k++) {
        uint8_t S[256];
        uint8_t i = 0, j = 0, tmp;
        uint8_t *dst = out + k * length;
        rc4_init(S, keys + k * keylen, keylen);
        for (r = 0; r < drop; r++)
            RC4_STEP(S, i, j, tmp);
        for (r = 0; r < length; r++) {
            RC4_STEP(S, i, j, tmp);
            dst[r] = RC4_OUT(S, i, j);
        }
    }
}

/* Single-byte counts: out[r*256 + Z_{r+1}] += 1 for r = 0..positions-1. */
void rc4_count_single(const uint8_t *keys, ptrdiff_t n, ptrdiff_t keylen,
                      long positions, int64_t *out)
{
    ptrdiff_t k;
    long r;
    for (k = 0; k < n; k++) {
        uint8_t S[256];
        uint8_t i = 0, j = 0, tmp;
        rc4_init(S, keys + k * keylen, keylen);
        for (r = 0; r < positions; r++) {
            RC4_STEP(S, i, j, tmp);
            out[r * 256 + RC4_OUT(S, i, j)] += 1;
        }
    }
}

/* Consecutive digraphs: out[r*65536 + Z_{r+1}*256 + Z_{r+2}] += 1 for
 * r = 0..positions-1 (needs positions+1 keystream bytes per key). */
void rc4_count_digraph(const uint8_t *keys, ptrdiff_t n, ptrdiff_t keylen,
                       long positions, int64_t *out)
{
    ptrdiff_t k;
    long r;
    for (k = 0; k < n; k++) {
        uint8_t S[256];
        uint8_t i = 0, j = 0, tmp, prev, z;
        rc4_init(S, keys + k * keylen, keylen);
        RC4_STEP(S, i, j, tmp);
        prev = RC4_OUT(S, i, j);
        for (r = 0; r < positions; r++) {
            RC4_STEP(S, i, j, tmp);
            z = RC4_OUT(S, i, j);
            out[r * 65536 + (ptrdiff_t)prev * 256 + z] += 1;
            prev = z;
        }
    }
}

/* Long-term digraphs binned by the PRGA counter (§3.4):
 * out[i*65536 + Z_r*256 + Z_{r+1+gap}] += 1 where i = (drop+r+1) mod 256
 * and r = 1..stream_len (1-indexed past the dropped prefix).  A rolling
 * window of gap+1 bytes supplies the first element of each pair. */
void rc4_count_longterm(const uint8_t *keys, ptrdiff_t n, ptrdiff_t keylen,
                        long stream_len, long drop, long gap, int64_t *out)
{
    ptrdiff_t k;
    long r;
    long width = gap + 1;
    for (k = 0; k < n; k++) {
        uint8_t S[256];
        uint8_t window[256]; /* gap is validated <= 255 on the Python side */
        uint8_t i = 0, j = 0, tmp, z, first;
        uint8_t bin = (uint8_t)(drop & 0xFF);
        rc4_init(S, keys + k * keylen, keylen);
        for (r = 0; r < drop; r++)
            RC4_STEP(S, i, j, tmp);
        for (r = 0; r < width; r++) {
            RC4_STEP(S, i, j, tmp);
            window[r] = RC4_OUT(S, i, j);
        }
        for (r = 0; r < stream_len; r++) {
            RC4_STEP(S, i, j, tmp);
            z = RC4_OUT(S, i, j);
            first = window[r % width];
            window[r % width] = z;
            bin = (uint8_t)(bin + 1); /* (drop + r + 1) mod 256 */
            out[(ptrdiff_t)bin * 65536 + (ptrdiff_t)first * 256 + z] += 1;
        }
    }
}
