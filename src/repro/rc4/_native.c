/* Native RC4 statistics kernels (compiled on demand by _native.py).
 *
 * The numpy batch generator in batch.py pays ~10 array dispatches per
 * PRGA round; at 256 KSA rounds + 1023 drop rounds per long-term chunk
 * that overhead dominates the whole statistics pipeline.  Here each key
 * is run start-to-finish with its 256-byte state in L1, which is the
 * same layout the paper's C workers used (§3.2).
 *
 * Three levels of parallelism sit on top of the scalar per-key loops:
 *
 * - Interleaving: the PRGA recurrence (i, j, two state loads, a swap, an
 *   output gather) is a serial dependency chain, so a single state leaves
 *   most of the core idle.  The interleaved kernels advance RC4_IL
 *   independent states per loop iteration; their chains overlap and the
 *   four 256-byte states still fit in L1 together.
 * - AVX2 SIMD (runtime-dispatched): the wide kernels advance RC4_WIDE
 *   (32) independent states per loop iteration in a lane-major
 *   transposed layout ST[value][lane].  Because every instance shares
 *   the public counter i, the row ST[i] is one aligned 32-byte vector
 *   load and the per-lane j update is a single vpaddb — the adds and the
 *   S[i] row traffic vanish into vector ops.  The per-lane S[j] reads
 *   and the output reads S[S[i]+S[j]] run as vpgatherdd dword gathers
 *   (4 x 8 lanes, masked to the low byte, repacked with packus/vpshufb);
 *   measured against scalar byte loads staged through a store-forwarded
 *   buffer, the gathers won on every fused kernel — the staging variant
 *   stalls each round on 32 narrow reloads of a just-stored vector.
 *   Only the swap scatter S[j] = old S[i] stays scalar, because AVX2 has
 *   no byte scatter.  (A vpshufb-binned counting pass for the fused
 *   kernels was rejected at the design stage: 256-bin histograms need 16
 *   shuffle/compare rounds per 32-byte vector, so the counter increments
 *   stay scalar and the SIMD win comes from generation.)  Selection is
 *   strictly runtime: the wide
 *   kernels compile behind __attribute__((target("avx2"))) and only run
 *   when __builtin_cpu_supports("avx2") says the CPU has them, so one
 *   artefact serves every x86-64 machine and non-x86 builds skip the
 *   tier entirely at preprocessing time.
 * - POSIX threads: keys split into contiguous ranges, one range per
 *   thread.  Keystream threads write disjoint output rows; counting
 *   threads accumulate into private zero-initialised counter blocks that
 *   the caller's thread merges serially at the end.  int64 addition is
 *   exact and commutative, so the merged counters are bit-identical to a
 *   single-threaded run for any thread count and any key partition.
 *
 * Every tier processes whole keys independently, so any dispatch choice
 * (SIMD groups of 32 with an interleaved/scalar remainder, or no SIMD at
 * all) yields bit-identical keystreams and counters.  The Python side
 * cross-checks this in tests/test_dataset_equivalence.py across thread
 * counts, the interleaved vs scalar kernels, and the SIMD tier.
 *
 * Build contract (see _native.py): plain C99, no dependencies beyond
 * libc + pthreads, compiled with `cc -O3 -shared -fPIC -pthread`.  The
 * AVX2 tier uses GCC/Clang target attributes, available since GCC 4.9;
 * other compilers or architectures fall back to the portable kernels.
 */

#include <pthread.h>
#include <stddef.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#if defined(__GNUC__) && defined(__x86_64__) && !defined(RC4_NO_SIMD)
#define RC4_HAVE_SIMD 1
#include <immintrin.h>
#else
#define RC4_HAVE_SIMD 0
#endif

/* Independent RC4 states advanced per interleaved loop iteration.  4 x
 * 256 B of state stays L1-resident while giving the out-of-order core
 * four independent swap chains to overlap. */
#define RC4_IL 4

/* Independent RC4 states per SIMD group (one AVX2 register of lanes).
 * 32 x 256 B of transposed state is 8 KiB — still L1-resident next to
 * the per-group scratch. */
#define RC4_WIDE 32

static void rc4_init(uint8_t *S, const uint8_t *key, ptrdiff_t keylen)
{
    int k;
    uint8_t j = 0, tmp;
    for (k = 0; k < 256; k++)
        S[k] = (uint8_t)k;
    for (k = 0; k < 256; k++) {
        j = (uint8_t)(j + S[k] + key[k % keylen]);
        tmp = S[k];
        S[k] = S[j];
        S[j] = tmp;
    }
}

#define RC4_STEP(S, i, j, tmp)                                               \
    do {                                                                     \
        (i) = (uint8_t)((i) + 1);                                            \
        (j) = (uint8_t)((j) + (S)[(i)]);                                     \
        (tmp) = (S)[(i)];                                                    \
        (S)[(i)] = (S)[(j)];                                                 \
        (S)[(j)] = (tmp);                                                    \
    } while (0)

#define RC4_OUT(S, i, j) ((S)[(uint8_t)((S)[(i)] + (S)[(j)])])

/* Interleaved working set: RC4_IL states advanced in lock-step within
 * one thread.  All loops below iterate k = 0..RC4_IL-1 over fixed-size
 * arrays, which the compiler fully unrolls at -O3. */
typedef struct {
    uint8_t S[RC4_IL][256];
    uint8_t i[RC4_IL];
    uint8_t j[RC4_IL];
} rc4_lanes;

static void lanes_init(rc4_lanes *L, const uint8_t *keys, ptrdiff_t keylen,
                       long drop)
{
    int k;
    long r;
    uint8_t tmp;
    for (k = 0; k < RC4_IL; k++) {
        rc4_init(L->S[k], keys + k * keylen, keylen);
        L->i[k] = 0;
        L->j[k] = 0;
    }
    for (r = 0; r < drop; r++)
        for (k = 0; k < RC4_IL; k++)
            RC4_STEP(L->S[k], L->i[k], L->j[k], tmp);
}

/* ---- keystream ---------------------------------------------------------- */

static void keystream_scalar(const uint8_t *keys, ptrdiff_t n,
                             ptrdiff_t keylen, long drop, long length,
                             uint8_t *out)
{
    ptrdiff_t k;
    long r;
    for (k = 0; k < n; k++) {
        uint8_t S[256];
        uint8_t i = 0, j = 0, tmp;
        uint8_t *dst = out + k * length;
        rc4_init(S, keys + k * keylen, keylen);
        for (r = 0; r < drop; r++)
            RC4_STEP(S, i, j, tmp);
        for (r = 0; r < length; r++) {
            RC4_STEP(S, i, j, tmp);
            dst[r] = RC4_OUT(S, i, j);
        }
    }
}

static void keystream_interleaved(const uint8_t *keys, ptrdiff_t n,
                                  ptrdiff_t keylen, long drop, long length,
                                  uint8_t *out)
{
    ptrdiff_t g;
    for (g = 0; g + RC4_IL <= n; g += RC4_IL) {
        rc4_lanes L;
        uint8_t tmp;
        int k;
        long r;
        lanes_init(&L, keys + g * keylen, keylen, drop);
        for (r = 0; r < length; r++)
            for (k = 0; k < RC4_IL; k++) {
                RC4_STEP(L.S[k], L.i[k], L.j[k], tmp);
                out[(g + k) * length + r] = RC4_OUT(L.S[k], L.i[k], L.j[k]);
            }
    }
    keystream_scalar(keys + g * keylen, n - g, keylen, drop, length,
                     out + g * length);
}

/* ---- single-byte counts ------------------------------------------------- */

static void single_scalar(const uint8_t *keys, ptrdiff_t n, ptrdiff_t keylen,
                          long positions, int64_t *out)
{
    ptrdiff_t k;
    long r;
    for (k = 0; k < n; k++) {
        uint8_t S[256];
        uint8_t i = 0, j = 0, tmp;
        rc4_init(S, keys + k * keylen, keylen);
        for (r = 0; r < positions; r++) {
            RC4_STEP(S, i, j, tmp);
            out[r * 256 + RC4_OUT(S, i, j)] += 1;
        }
    }
}

static void single_interleaved(const uint8_t *keys, ptrdiff_t n,
                               ptrdiff_t keylen, long positions, int64_t *out)
{
    ptrdiff_t g;
    for (g = 0; g + RC4_IL <= n; g += RC4_IL) {
        rc4_lanes L;
        uint8_t tmp;
        int k;
        long r;
        lanes_init(&L, keys + g * keylen, keylen, 0);
        for (r = 0; r < positions; r++) {
            int64_t *row = out + r * 256;
            for (k = 0; k < RC4_IL; k++) {
                RC4_STEP(L.S[k], L.i[k], L.j[k], tmp);
                row[RC4_OUT(L.S[k], L.i[k], L.j[k])] += 1;
            }
        }
    }
    single_scalar(keys + g * keylen, n - g, keylen, positions, out);
}

/* ---- consecutive digraph counts ----------------------------------------- */

static void digraph_scalar(const uint8_t *keys, ptrdiff_t n, ptrdiff_t keylen,
                           long positions, int64_t *out)
{
    ptrdiff_t k;
    long r;
    for (k = 0; k < n; k++) {
        uint8_t S[256];
        uint8_t i = 0, j = 0, tmp, prev, z;
        rc4_init(S, keys + k * keylen, keylen);
        RC4_STEP(S, i, j, tmp);
        prev = RC4_OUT(S, i, j);
        for (r = 0; r < positions; r++) {
            RC4_STEP(S, i, j, tmp);
            z = RC4_OUT(S, i, j);
            out[r * 65536 + (ptrdiff_t)prev * 256 + z] += 1;
            prev = z;
        }
    }
}

static void digraph_interleaved(const uint8_t *keys, ptrdiff_t n,
                                ptrdiff_t keylen, long positions, int64_t *out)
{
    ptrdiff_t g;
    for (g = 0; g + RC4_IL <= n; g += RC4_IL) {
        rc4_lanes L;
        uint8_t tmp, z;
        uint8_t prev[RC4_IL];
        int k;
        long r;
        lanes_init(&L, keys + g * keylen, keylen, 0);
        for (k = 0; k < RC4_IL; k++) {
            RC4_STEP(L.S[k], L.i[k], L.j[k], tmp);
            prev[k] = RC4_OUT(L.S[k], L.i[k], L.j[k]);
        }
        for (r = 0; r < positions; r++) {
            int64_t *row = out + r * 65536;
            for (k = 0; k < RC4_IL; k++) {
                RC4_STEP(L.S[k], L.i[k], L.j[k], tmp);
                z = RC4_OUT(L.S[k], L.i[k], L.j[k]);
                row[(ptrdiff_t)prev[k] * 256 + z] += 1;
                prev[k] = z;
            }
        }
    }
    digraph_scalar(keys + g * keylen, n - g, keylen, positions, out);
}

/* ---- long-term digraph counts ------------------------------------------- */

/* Long-term digraphs binned by the PRGA counter (§3.4):
 * out[i*65536 + Z_r*256 + Z_{r+1+gap}] += 1 where i = (drop+r+1) mod 256
 * and r = 1..stream_len (1-indexed past the dropped prefix).  A rolling
 * window of gap+1 bytes supplies the first element of each pair. */
static void longterm_scalar(const uint8_t *keys, ptrdiff_t n,
                            ptrdiff_t keylen, long stream_len, long drop,
                            long gap, int64_t *out)
{
    ptrdiff_t k;
    long r;
    long width = gap + 1;
    for (k = 0; k < n; k++) {
        uint8_t S[256];
        uint8_t window[256]; /* gap is validated <= 255 on the Python side */
        uint8_t i = 0, j = 0, tmp, z, first;
        uint8_t bin = (uint8_t)(drop & 0xFF);
        rc4_init(S, keys + k * keylen, keylen);
        for (r = 0; r < drop; r++)
            RC4_STEP(S, i, j, tmp);
        for (r = 0; r < width; r++) {
            RC4_STEP(S, i, j, tmp);
            window[r] = RC4_OUT(S, i, j);
        }
        for (r = 0; r < stream_len; r++) {
            RC4_STEP(S, i, j, tmp);
            z = RC4_OUT(S, i, j);
            first = window[r % width];
            window[r % width] = z;
            bin = (uint8_t)(bin + 1); /* (drop + r + 1) mod 256 */
            out[(ptrdiff_t)bin * 65536 + (ptrdiff_t)first * 256 + z] += 1;
        }
    }
}

static void longterm_interleaved(const uint8_t *keys, ptrdiff_t n,
                                 ptrdiff_t keylen, long stream_len, long drop,
                                 long gap, int64_t *out)
{
    long width = gap + 1;
    ptrdiff_t g;
    for (g = 0; g + RC4_IL <= n; g += RC4_IL) {
        rc4_lanes L;
        uint8_t window[RC4_IL][256];
        uint8_t tmp, z, first;
        /* The counter bin depends only on drop and r, so it is shared by
         * all lanes. */
        uint8_t bin = (uint8_t)(drop & 0xFF);
        int k;
        long r;
        lanes_init(&L, keys + g * keylen, keylen, drop);
        for (r = 0; r < width; r++)
            for (k = 0; k < RC4_IL; k++) {
                RC4_STEP(L.S[k], L.i[k], L.j[k], tmp);
                window[k][r] = RC4_OUT(L.S[k], L.i[k], L.j[k]);
            }
        for (r = 0; r < stream_len; r++) {
            long slot = r % width;
            int64_t *row;
            bin = (uint8_t)(bin + 1);
            row = out + (ptrdiff_t)bin * 65536;
            for (k = 0; k < RC4_IL; k++) {
                RC4_STEP(L.S[k], L.i[k], L.j[k], tmp);
                z = RC4_OUT(L.S[k], L.i[k], L.j[k]);
                first = window[k][slot];
                window[k][slot] = z;
                row[(ptrdiff_t)first * 256 + z] += 1;
            }
        }
    }
    longterm_scalar(keys + g * keylen, n - g, keylen, stream_len, drop, gap,
                    out);
}

/* ---- AVX2 wide kernels (runtime-dispatched) ------------------------------ */

/* Is the SIMD tier usable on this machine?  Compile-time support AND a
 * runtime CPU check — callers (Python and run_job below) treat a zero as
 * "fall through to the interleaved/scalar tier". */
int rc4_simd_available(void)
{
#if RC4_HAVE_SIMD
    return __builtin_cpu_supports("avx2") ? 1 : 0;
#else
    return 0;
#endif
}

/* States per SIMD group, 0 when the tier is compiled out.  The Python
 * side uses this for scratch accounting (resolve_threads lane_bytes). */
int rc4_simd_lanes(void)
{
#if RC4_HAVE_SIMD
    return RC4_WIDE;
#else
    return 0;
#endif
}

#if RC4_HAVE_SIMD

/* Transposed working set for one SIMD group: ST[v * RC4_WIDE + k] is
 * S_k[v] (byte v of lane k's permutation), so the row for the shared
 * public counter i is contiguous and 32-byte aligned.  zb hands the
 * round's output bytes to the scalar consumers (row writes / counter
 * increments).  The 4-byte tail pad keeps the dword gathers below
 * in-bounds when they touch the last state byte of the last lane. */
typedef struct {
    uint8_t zb[RC4_WIDE];
    uint8_t ST[256 * RC4_WIDE];
    uint8_t pad[4];
} __attribute__((aligned(32))) rc4_wide;

/* Gather one byte per lane from the transposed state: 4x vpgatherdd over
 * dword indices j*RC4_WIDE + lane (built straight from the packed j
 * bytes in `jq`, an array of 4 qwords = 32 lanes), masked to the low
 * byte.  Each lane keeps only the byte of its own column, so the 3
 * bytes over-read per element (covered by rc4_wide.pad at the very end)
 * never leak across lanes.  Measured against 32 scalar byte loads
 * staged through a store-forwarded buffer this is the faster S-box read
 * on the AVX2 cores this targets.  acc[q] receives 8 dwords, each the
 * gathered byte for lane 8q+0..8q+7. */
#define WIDE_GATHER(V, jq, acc)                                              \
    do {                                                                     \
        const __m256i lanes_ = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);    \
        const __m256i mask_ = _mm256_set1_epi32(0xFF);                       \
        int q_;                                                              \
        for (q_ = 0; q_ < 4; q_++) {                                         \
            __m256i idx_ = _mm256_cvtepu8_epi32(                             \
                _mm_cvtsi64_si128((long long)(jq)[q_]));                     \
            idx_ = _mm256_add_epi32(                                         \
                _mm256_slli_epi32(idx_, 5),                                  \
                _mm256_add_epi32(lanes_, _mm256_set1_epi32(8 * q_)));        \
            (acc)[q_] = _mm256_and_si256(                                    \
                _mm256_i32gather_epi32((const int *)(V)->ST, idx_, 1),       \
                mask_);                                                      \
        }                                                                    \
    } while (0)

/* Repack 4x8 gathered dwords into one 32-byte vector (lane order).  The
 * packus pair interleaves the 128-bit halves, which the final
 * permutevar8x32 undoes. */
#define WIDE_PACK(acc)                                                       \
    _mm256_permutevar8x32_epi32(                                             \
        _mm256_packus_epi16(_mm256_packus_epi32((acc)[0], (acc)[1]),         \
                            _mm256_packus_epi32((acc)[2], (acc)[3])),        \
        _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7))

/* Unpack a j/t byte vector into 4 qwords for scalar address arithmetic.
 * Register extracts, not a staged store: 32 dependent byte reloads of a
 * just-stored vector stall on store-forwarding. */
#define WIDE_QWORDS(v, q)                                                    \
    do {                                                                     \
        __m128i lo_ = _mm256_castsi256_si128(v);                             \
        __m128i hi_ = _mm256_extracti128_si256(v, 1);                        \
        (q)[0] = (uint64_t)_mm_cvtsi128_si64(lo_);                           \
        (q)[1] = (uint64_t)_mm_cvtsi128_si64(_mm_srli_si128(lo_, 8));        \
        (q)[2] = (uint64_t)_mm_cvtsi128_si64(hi_);                           \
        (q)[3] = (uint64_t)_mm_cvtsi128_si64(_mm_srli_si128(hi_, 8));        \
    } while (0)

/* The swap for one round, after vj has been fully updated: gather the
 * old S[j] bytes (pre-scatter), scatter old S[i] into row j with scalar
 * byte stores (AVX2 has no byte scatter), then store the gathered bytes
 * as the new row S[i] in one vector store.  Lane k only ever touches
 * column k, so the scalar scatter and the row store cannot interfere
 * across lanes (and a j == i lane rewrites its byte with the same
 * value).  vsj_out receives the packed old-S[j] vector. */
#define WIDE_SWAP(V, i, vj, vsj_out)                                         \
    do {                                                                     \
        __m256i acc_[4];                                                     \
        uint64_t jq_[4];                                                     \
        int k_, b_;                                                          \
        WIDE_QWORDS(vj, jq_);                                                \
        WIDE_GATHER(V, jq_, acc_);                                           \
        for (k_ = 0; k_ < 4; k_++) {                                         \
            uint64_t q_ = jq_[k_];                                           \
            for (b_ = 0; b_ < 8; b_++) {                                     \
                int lane_ = k_ * 8 + b_;                                     \
                (V)->ST[(size_t)((q_ >> (8 * b_)) & 0xFF) * RC4_WIDE         \
                        + (size_t)lane_] =                                   \
                    (V)->ST[(size_t)(i) * RC4_WIDE + (size_t)lane_];         \
            }                                                                \
        }                                                                    \
        (vsj_out) = WIDE_PACK(acc_);                                         \
        _mm256_store_si256(                                                  \
            (__m256i *)((V)->ST + (size_t)(i) * RC4_WIDE), (vsj_out));       \
    } while (0)

/* One PRGA round for all RC4_WIDE lanes.  i is the shared public counter
 * (already advanced), vj the per-lane j vector (updated in place: one
 * vpaddb against the contiguous row S[i]).  When emit is nonzero the
 * output bytes S[S[i] + S[j]] (gathered post-swap) land in V->zb. */
#define WIDE_STEP(V, i, vj, emit)                                            \
    do {                                                                     \
        __m256i vsi_ = _mm256_load_si256(                                    \
            (const __m256i *)((V)->ST + (size_t)(i) * RC4_WIDE));            \
        __m256i vsj_;                                                        \
        (vj) = _mm256_add_epi8((vj), vsi_);                                  \
        WIDE_SWAP(V, i, vj, vsj_);                                           \
        if (emit) {                                                          \
            __m256i vt_ = _mm256_add_epi8(vsi_, vsj_);                       \
            __m256i zacc_[4];                                                \
            uint64_t tq_[4];                                                 \
            int q_;                                                          \
            WIDE_QWORDS(vt_, tq_);                                           \
            WIDE_GATHER(V, tq_, zacc_);                                      \
            for (q_ = 0; q_ < 4; q_++) {                                     \
                uint32_t lo32_ = (uint32_t)_mm256_extract_epi32(             \
                    _mm256_shuffle_epi8(                                     \
                        zacc_[q_],                                           \
                        _mm256_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1,    \
                                         -1, -1, -1, -1, -1, -1, -1, 0, 4,   \
                                         8, 12, -1, -1, -1, -1, -1, -1, -1,  \
                                         -1, -1, -1, -1, -1)),               \
                    0);                                                      \
                uint32_t hi32_ = (uint32_t)_mm256_extract_epi32(             \
                    _mm256_shuffle_epi8(                                     \
                        zacc_[q_],                                           \
                        _mm256_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1,    \
                                         -1, -1, -1, -1, -1, -1, -1, 0, 4,   \
                                         8, 12, -1, -1, -1, -1, -1, -1, -1,  \
                                         -1, -1, -1, -1, -1)),               \
                    4);                                                      \
                memcpy((V)->zb + 8 * q_, &lo32_, 4);                         \
                memcpy((V)->zb + 8 * q_ + 4, &hi32_, 4);                     \
            }                                                                \
        }                                                                    \
    } while (0)

/* KSA for all lanes: key bytes are transposed once into KT so the
 * per-round key addend is one aligned vector load; the swap is the same
 * gather/scatter/row-store as the PRGA rounds. */
__attribute__((target("avx2")))
static void wide_ksa(rc4_wide *V, const uint8_t *keys, ptrdiff_t keylen)
{
    uint8_t KT[256 * RC4_WIDE] __attribute__((aligned(32)));
    __m256i vj;
    int i, k;
    for (i = 0; i < (int)keylen; i++)
        for (k = 0; k < RC4_WIDE; k++)
            KT[(size_t)i * RC4_WIDE + k] = keys[(size_t)k * keylen + i];
    for (i = 0; i < 256; i++)
        _mm256_store_si256((__m256i *)(V->ST + (size_t)i * RC4_WIDE),
                           _mm256_set1_epi8((char)i));
    vj = _mm256_setzero_si256();
    for (i = 0; i < 256; i++) {
        __m256i vsi = _mm256_load_si256(
            (const __m256i *)(V->ST + (size_t)i * RC4_WIDE));
        __m256i vsj;
        vj = _mm256_add_epi8(vj, vsi);
        vj = _mm256_add_epi8(
            vj, _mm256_load_si256(
                    (const __m256i *)(KT + (size_t)(i % keylen) * RC4_WIDE)));
        WIDE_SWAP(V, i, vj, vsj);
        (void)vsj;
    }
}

/* Keystream for one full SIMD group; lane k writes out[k*length + r]. */
__attribute__((target("avx2")))
static void keystream_wide(const uint8_t *keys, ptrdiff_t keylen, long drop,
                           long length, uint8_t *out)
{
    rc4_wide V;
    __m256i vj = _mm256_setzero_si256();
    unsigned i = 0;
    long r;
    int k;
    wide_ksa(&V, keys, keylen);
    for (r = 0; r < drop; r++) {
        i = (i + 1) & 0xFF;
        WIDE_STEP(&V, i, vj, 0);
    }
    for (r = 0; r < length; r++) {
        i = (i + 1) & 0xFF;
        WIDE_STEP(&V, i, vj, 1);
        for (k = 0; k < RC4_WIDE; k++)
            out[(ptrdiff_t)k * length + r] = V.zb[k];
    }
}

__attribute__((target("avx2")))
static void single_wide(const uint8_t *keys, ptrdiff_t keylen, long positions,
                        int64_t *out)
{
    rc4_wide V;
    __m256i vj = _mm256_setzero_si256();
    unsigned i = 0;
    long r;
    int k;
    wide_ksa(&V, keys, keylen);
    for (r = 0; r < positions; r++) {
        int64_t *row = out + r * 256;
        i = (i + 1) & 0xFF;
        WIDE_STEP(&V, i, vj, 1);
        for (k = 0; k < RC4_WIDE; k++)
            row[V.zb[k]] += 1;
    }
}

__attribute__((target("avx2")))
static void digraph_wide(const uint8_t *keys, ptrdiff_t keylen,
                         long positions, int64_t *out)
{
    rc4_wide V;
    uint8_t prev[RC4_WIDE];
    __m256i vj = _mm256_setzero_si256();
    unsigned i = 0;
    long r;
    int k;
    wide_ksa(&V, keys, keylen);
    i = (i + 1) & 0xFF;
    WIDE_STEP(&V, i, vj, 1);
    memcpy(prev, V.zb, RC4_WIDE);
    for (r = 0; r < positions; r++) {
        int64_t *row = out + r * 65536;
        i = (i + 1) & 0xFF;
        WIDE_STEP(&V, i, vj, 1);
        for (k = 0; k < RC4_WIDE; k++) {
            row[(ptrdiff_t)prev[k] * 256 + V.zb[k]] += 1;
            prev[k] = V.zb[k];
        }
    }
}

/* Long-term digraphs, same binning as longterm_scalar; the rolling
 * window is transposed (slot-major) so each slot's lane row is a plain
 * memcpy against V.zb. */
__attribute__((target("avx2")))
static void longterm_wide(const uint8_t *keys, ptrdiff_t keylen,
                          long stream_len, long drop, long gap, int64_t *out)
{
    long width = gap + 1;
    rc4_wide V;
    uint8_t WT[256 * RC4_WIDE]; /* gap validated <= 255 on the Python side */
    __m256i vj = _mm256_setzero_si256();
    unsigned i = 0;
    uint8_t bin = (uint8_t)(drop & 0xFF);
    long r;
    int k;
    wide_ksa(&V, keys, keylen);
    for (r = 0; r < drop; r++) {
        i = (i + 1) & 0xFF;
        WIDE_STEP(&V, i, vj, 0);
    }
    for (r = 0; r < width; r++) {
        i = (i + 1) & 0xFF;
        WIDE_STEP(&V, i, vj, 1);
        memcpy(WT + (size_t)r * RC4_WIDE, V.zb, RC4_WIDE);
    }
    for (r = 0; r < stream_len; r++) {
        uint8_t *slot = WT + (size_t)(r % width) * RC4_WIDE;
        int64_t *row;
        i = (i + 1) & 0xFF;
        WIDE_STEP(&V, i, vj, 1);
        bin = (uint8_t)(bin + 1); /* (drop + r + 1) mod 256 */
        row = out + (ptrdiff_t)bin * 65536;
        for (k = 0; k < RC4_WIDE; k++) {
            row[(ptrdiff_t)slot[k] * 256 + V.zb[k]] += 1;
            slot[k] = V.zb[k];
        }
    }
}

#endif /* RC4_HAVE_SIMD */

/* ---- thread fan-out ----------------------------------------------------- */

enum job_kind { JOB_KEYSTREAM, JOB_SINGLE, JOB_DIGRAPH, JOB_LONGTERM };

typedef struct {
    enum job_kind kind;
    int interleave;
    int simd;            /* request the AVX2 tier (still runtime-gated) */
    const uint8_t *keys; /* this range's first key */
    ptrdiff_t n;         /* keys in this range */
    ptrdiff_t keylen;
    long length; /* keystream length / positions / stream_len */
    long drop;
    long gap;
    uint8_t *out_u8;   /* keystream rows for this range (disjoint) */
    int64_t *out_i64;  /* private counter block for this range */
} rc4_job;

/* The portable (interleaved / scalar) tier for one key range. */
static void run_job_narrow(const rc4_job *job)
{
    switch (job->kind) {
    case JOB_KEYSTREAM:
        if (job->interleave)
            keystream_interleaved(job->keys, job->n, job->keylen, job->drop,
                                  job->length, job->out_u8);
        else
            keystream_scalar(job->keys, job->n, job->keylen, job->drop,
                             job->length, job->out_u8);
        break;
    case JOB_SINGLE:
        if (job->interleave)
            single_interleaved(job->keys, job->n, job->keylen, job->length,
                               job->out_i64);
        else
            single_scalar(job->keys, job->n, job->keylen, job->length,
                          job->out_i64);
        break;
    case JOB_DIGRAPH:
        if (job->interleave)
            digraph_interleaved(job->keys, job->n, job->keylen, job->length,
                                job->out_i64);
        else
            digraph_scalar(job->keys, job->n, job->keylen, job->length,
                           job->out_i64);
        break;
    case JOB_LONGTERM:
        if (job->interleave)
            longterm_interleaved(job->keys, job->n, job->keylen, job->length,
                                 job->drop, job->gap, job->out_i64);
        else
            longterm_scalar(job->keys, job->n, job->keylen, job->length,
                            job->drop, job->gap, job->out_i64);
        break;
    }
}

/* Dispatch one key range across the tiers: full groups of RC4_WIDE keys
 * through the AVX2 kernels when requested AND supported by this CPU,
 * the remainder (or everything otherwise) through the portable tier.
 * Keys are independent, so the split is invisible in the results. */
static void run_job(const rc4_job *job)
{
    ptrdiff_t done = 0;
#if RC4_HAVE_SIMD
    if (job->simd && rc4_simd_available()) {
        ptrdiff_t g;
        for (g = 0; g + RC4_WIDE <= job->n; g += RC4_WIDE) {
            const uint8_t *keys = job->keys + g * job->keylen;
            switch (job->kind) {
            case JOB_KEYSTREAM:
                keystream_wide(keys, job->keylen, job->drop, job->length,
                               job->out_u8 + g * job->length);
                break;
            case JOB_SINGLE:
                single_wide(keys, job->keylen, job->length, job->out_i64);
                break;
            case JOB_DIGRAPH:
                digraph_wide(keys, job->keylen, job->length, job->out_i64);
                break;
            case JOB_LONGTERM:
                longterm_wide(keys, job->keylen, job->length, job->drop,
                              job->gap, job->out_i64);
                break;
            }
        }
        done = g;
    }
#endif
    if (done < job->n) {
        rc4_job rest = *job;
        rest.keys = job->keys + done * job->keylen;
        rest.n = job->n - done;
        if (job->kind == JOB_KEYSTREAM)
            rest.out_u8 = job->out_u8 + done * job->length;
        run_job_narrow(&rest);
    }
}

static void *thread_main(void *arg)
{
    run_job((const rc4_job *)arg);
    return NULL;
}

/* Split `template` (covering all n keys) into `threads` contiguous key
 * ranges and run them concurrently.  For counting jobs each range gets a
 * private zeroed counter block of `counter_cells` int64 cells, merged
 * serially into `template->out_i64` afterwards; keystream jobs write
 * disjoint rows and need no merge.  Any allocation or spawn failure
 * degrades to running the remaining work on the calling thread — the
 * result is identical either way. */
static void run_threaded(const rc4_job *template, int threads,
                         ptrdiff_t counter_cells)
{
    ptrdiff_t n = template->n;
    rc4_job *jobs;
    pthread_t *tids;
    char *spawned;
    int64_t *blocks = NULL;
    ptrdiff_t base, extra, start;
    int t;

    if (threads > n)
        threads = (int)(n > 0 ? n : 1);
    if (threads <= 1) {
        run_job(template);
        return;
    }
    jobs = malloc((size_t)threads * sizeof(rc4_job));
    tids = malloc((size_t)threads * sizeof(pthread_t));
    spawned = malloc((size_t)threads);
    if (template->kind != JOB_KEYSTREAM)
        blocks = calloc((size_t)threads * (size_t)counter_cells,
                        sizeof(int64_t));
    if (!jobs || !tids || !spawned ||
        (template->kind != JOB_KEYSTREAM && !blocks)) {
        free(jobs);
        free(tids);
        free(spawned);
        free(blocks);
        run_job(template);
        return;
    }

    base = n / threads;
    extra = n % threads;
    start = 0;
    for (t = 0; t < threads; t++) {
        ptrdiff_t count = base + (t < extra ? 1 : 0);
        jobs[t] = *template;
        jobs[t].keys = template->keys + start * template->keylen;
        jobs[t].n = count;
        if (template->kind == JOB_KEYSTREAM)
            jobs[t].out_u8 = template->out_u8 + start * template->length;
        else
            jobs[t].out_i64 = blocks + (ptrdiff_t)t * counter_cells;
        start += count;
    }
    for (t = 0; t < threads; t++)
        spawned[t] = pthread_create(&tids[t], NULL, thread_main, &jobs[t]) == 0;
    for (t = 0; t < threads; t++) {
        if (spawned[t])
            pthread_join(tids[t], NULL);
        else
            run_job(&jobs[t]); /* degraded but still correct */
    }
    if (template->kind != JOB_KEYSTREAM) {
        int64_t *out = template->out_i64;
        for (t = 0; t < threads; t++) {
            const int64_t *block = blocks + (ptrdiff_t)t * counter_cells;
            ptrdiff_t c;
            for (c = 0; c < counter_cells; c++)
                out[c] += block[c];
        }
    }
    free(jobs);
    free(tids);
    free(spawned);
    free(blocks);
}

/* ---- exported entry points ---------------------------------------------- */

/* Generate `length` keystream bytes per key into `out` (n x length,
 * row-major: out[k*length + r] = Z_{r+1} of key k), after discarding
 * `drop` initial bytes. */
void rc4_batch_keystream(const uint8_t *keys, ptrdiff_t n, ptrdiff_t keylen,
                         long drop, long length, uint8_t *out, int threads,
                         int interleave, int simd)
{
    rc4_job job = {JOB_KEYSTREAM, interleave, simd, keys, n,    keylen,
                   length,        drop,       0,    out,  NULL};
    run_threaded(&job, threads, 0);
}

/* Single-byte counts: out[r*256 + Z_{r+1}] += 1 for r = 0..positions-1. */
void rc4_count_single(const uint8_t *keys, ptrdiff_t n, ptrdiff_t keylen,
                      long positions, int64_t *out, int threads,
                      int interleave, int simd)
{
    rc4_job job = {JOB_SINGLE, interleave, simd, keys, n,    keylen,
                   positions,  0,          0,    NULL, out};
    run_threaded(&job, threads, (ptrdiff_t)positions * 256);
}

/* Consecutive digraphs: out[r*65536 + Z_{r+1}*256 + Z_{r+2}] += 1 for
 * r = 0..positions-1 (needs positions+1 keystream bytes per key). */
void rc4_count_digraph(const uint8_t *keys, ptrdiff_t n, ptrdiff_t keylen,
                       long positions, int64_t *out, int threads,
                       int interleave, int simd)
{
    rc4_job job = {JOB_DIGRAPH, interleave, simd, keys, n,    keylen,
                   positions,   0,          0,    NULL, out};
    run_threaded(&job, threads, (ptrdiff_t)positions * 65536);
}

/* Long-term digraphs (see longterm_scalar above for the binning). */
void rc4_count_longterm(const uint8_t *keys, ptrdiff_t n, ptrdiff_t keylen,
                        long stream_len, long drop, long gap, int64_t *out,
                        int threads, int interleave, int simd)
{
    rc4_job job = {JOB_LONGTERM, interleave, simd, keys, n,    keylen,
                   stream_len,   drop,       gap,  NULL, out};
    run_threaded(&job, threads, (ptrdiff_t)256 * 65536);
}
