"""Deterministic generation of independent random RC4 keys.

The paper's workers derived random 128-bit RC4 keys from a per-worker AES
key using AES in counter mode (§3.2).  No AES primitive is available in
this offline environment, so we substitute SHA-256 in counter mode — also
a PRF, and interchangeable for the purpose of producing independent
uniform keys (a documented substitution).  For bulk statistics we expose a
numpy-PCG64 fast path; PCG64 passes the statistical test batteries that
matter at our sample sizes and is orders of magnitude faster.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

from ..config import ReproConfig


class KeystreamKeySource:
    """Produces batches of uniform RC4 keys, mirroring one paper worker.

    Args:
        worker_seed: bytes identifying this worker (the paper used a
            cryptographically random AES key per worker).
        keylen: RC4 key length in bytes (the paper uses 16 = 128-bit).
        cryptographic: if True, derive keys with SHA-256 counter mode; if
            False (default), use numpy's PCG64 seeded from ``worker_seed``.
    """

    def __init__(
        self,
        worker_seed: bytes,
        *,
        keylen: int = 16,
        cryptographic: bool = False,
    ) -> None:
        if keylen < 1 or keylen > 256:
            raise ValueError(f"keylen must be 1..256, got {keylen}")
        self._seed = bytes(worker_seed)
        self._keylen = keylen
        self._cryptographic = cryptographic
        self._counter = 0
        digest = hashlib.sha256(b"repro-keysource" + self._seed).digest()
        self._rng = np.random.default_rng(np.frombuffer(digest, dtype=np.uint64))

    @property
    def keylen(self) -> int:
        return self._keylen

    def next_keys(self, count: int) -> np.ndarray:
        """Return a ``(count, keylen)`` uint8 array of fresh keys."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if self._cryptographic:
            return self._next_keys_sha256(count)
        return self._rng.integers(0, 256, size=(count, self._keylen), dtype=np.uint8)

    def _next_keys_sha256(self, count: int) -> np.ndarray:
        needed = count * self._keylen
        blocks = []
        produced = 0
        while produced < needed:
            block = hashlib.sha256(
                self._seed + struct.pack(">Q", self._counter)
            ).digest()
            self._counter += 1
            blocks.append(block)
            produced += len(block)
        material = b"".join(blocks)[:needed]
        flat = np.frombuffer(material, dtype=np.uint8)
        return flat.reshape(count, self._keylen).copy()


def derive_keys(
    config: ReproConfig,
    label: str,
    count: int,
    *,
    keylen: int = 16,
) -> np.ndarray:
    """Derive ``count`` deterministic uniform RC4 keys for a named purpose.

    Child-seeded from the run configuration so different labels never share
    key streams (the batch-generation analogue of the paper's independent
    workers).
    """
    rng = config.rng("rc4-keys", label)
    return rng.integers(0, 256, size=(count, keylen), dtype=np.uint8)
