"""RC4 cipher substrate (paper §2.1).

Two implementations are provided and cross-tested against each other:

- :mod:`repro.rc4.reference` — a byte-at-a-time pure-Python RC4 that reads
  like the paper's Figure 1 pseudo-code.  Used for correctness and for
  encrypting individual protocol messages.
- :mod:`repro.rc4.batch` — a numpy implementation that steps many RC4
  instances in lock-step, one vectorised operation per PRGA round.  Used
  to regenerate keystream statistics at the largest scale this
  reproduction can afford (paper §3.2 used a distributed C setup).

A third, optional layer — :mod:`repro.rc4._native`, per-key C compiled
on demand with the system compiler — transparently accelerates
:func:`batch_keystream` and the dataset counting kernels when a C
compiler is available (``native_status()`` reports the backend state;
``REPRO_NATIVE=0`` disables it).  All layers are bit-exact.
"""

from ._native import status as native_status
from .batch import BatchRC4, batch_keystream
from .keygen import KeystreamKeySource, derive_keys
from .reference import RC4, ksa, prga, rc4_crypt, rc4_keystream
from .stream import RC4Stream

__all__ = [
    "RC4",
    "BatchRC4",
    "KeystreamKeySource",
    "RC4Stream",
    "batch_keystream",
    "derive_keys",
    "ksa",
    "native_status",
    "prga",
    "rc4_crypt",
    "rc4_keystream",
]
