"""Global scaling and randomness configuration.

The paper's statistics were computed from 2**44 .. 2**47 RC4 keystreams on
a distributed cluster; this reproduction exposes the same code paths at
laptop scale.  Two environment variables control every sample count in the
benchmark and example layer:

``REPRO_SCALE``
    A positive float multiplying the default sample counts (default 1.0).
    Benchmarks are sized so the whole suite finishes in minutes at 1.0;
    set e.g. ``REPRO_SCALE=16`` to spend more CPU and tighten the
    statistics.

``REPRO_SEED``
    Master seed for deterministic runs (default 20150812, the USENIX'15
    presentation date).  Every component derives child seeds from this
    via :func:`child_seed`, so independent subsystems never share streams.

Library code never reads the environment directly — it goes through
:func:`get_config` — so tests can construct explicit :class:`ReproConfig`
instances.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from .errors import ConfigError

DEFAULT_SEED = 20150812
_ENV_SCALE = "REPRO_SCALE"
_ENV_SEED = "REPRO_SEED"


@dataclass(frozen=True)
class ReproConfig:
    """Immutable run configuration.

    Attributes:
        scale: multiplier applied to default sample counts (> 0).
        seed: master seed from which all child RNG streams derive.
    """

    scale: float = 1.0
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if not (self.scale > 0.0):
            raise ConfigError(f"scale must be positive, got {self.scale!r}")
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ConfigError(f"seed must be a non-negative int, got {self.seed!r}")

    def scaled(
        self, count: int, *, minimum: int = 1, maximum: int | None = None
    ) -> int:
        """Scale a default sample count by ``self.scale``, with clamping."""
        value = max(minimum, int(round(count * self.scale)))
        if maximum is not None:
            value = min(value, maximum)
        return value

    def rng(self, *labels: object) -> np.random.Generator:
        """Return a child RNG uniquely determined by ``(seed, *labels)``."""
        return np.random.default_rng(child_seed(self.seed, *labels))


def child_seed(master: int, *labels: object) -> int:
    """Derive a deterministic 63-bit child seed from a master seed and labels.

    Uses ``numpy``'s SeedSequence entropy spawning keyed by a stable hash of
    the labels, so distinct label tuples give independent streams.
    """
    key = [master]
    for label in labels:
        data = repr(label).encode("utf-8")
        acc = 2166136261
        for byte in data:
            acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
        key.append(acc)
    seq = np.random.SeedSequence(key)
    return int(seq.generate_state(1, dtype=np.uint64)[0] >> 1)


def get_config() -> ReproConfig:
    """Build a :class:`ReproConfig` from the environment (or defaults)."""
    raw_scale = os.environ.get(_ENV_SCALE, "1.0")
    raw_seed = os.environ.get(_ENV_SEED, str(DEFAULT_SEED))
    try:
        scale = float(raw_scale)
    except ValueError as exc:
        raise ConfigError(f"{_ENV_SCALE} must be a float, got {raw_scale!r}") from exc
    try:
        seed = int(raw_seed)
    except ValueError as exc:
        raise ConfigError(f"{_ENV_SEED} must be an int, got {raw_seed!r}") from exc
    return ReproConfig(scale=scale, seed=seed)
