"""Global scaling, randomness, and backend configuration.

The paper's statistics were computed from 2**44 .. 2**47 RC4 keystreams on
a distributed cluster; this reproduction exposes the same code paths at
laptop scale.  A handful of environment variables control every sample
count and backend knob in the library:

``REPRO_SCALE``
    A positive float multiplying the default sample counts (default 1.0).
    Benchmarks are sized so the whole suite finishes in minutes at 1.0;
    set e.g. ``REPRO_SCALE=16`` to spend more CPU and tighten the
    statistics.

``REPRO_SEED``
    Master seed for deterministic runs (default 20150812, the USENIX'15
    presentation date).  Every component derives child seeds from this
    via :func:`child_seed`, so independent subsystems never share streams.

``REPRO_NATIVE`` / ``REPRO_NATIVE_THREADS`` / ``REPRO_NATIVE_INTERLEAVE``
/ ``REPRO_NATIVE_SIMD`` / ``REPRO_NATIVE_CC``
    The compiled statistics backend (:mod:`repro.rc4._native`): enabled
    flag, kernel thread count (default ``os.cpu_count()``), interleaved
    vs scalar kernels, the runtime-dispatched AVX2 wide kernels (on by
    default, harmless on hardware without AVX2), and a compiler pin.
    All results are bit-exact for every setting.

``REPRO_FLEET_LEASE_TTL`` / ``REPRO_FLEET_RETRY_BUDGET`` /
``REPRO_FLEET_BACKOFF_BASE`` / ``REPRO_FLEET_WORKERS``
    The distributed capture fleet (:mod:`repro.fleet`): seconds without
    a heartbeat before a shard lease is considered stale and reclaimed,
    attempts per shard before it is marked failed, base delay of the
    capped exponential retry backoff, and the default local worker
    count for ``distributed`` experiment runs.

``REPRO_CANDIDATE_MEM``
    Peak scratch-memory budget in bytes for the candidate-recovery
    engine's selection passes (Algorithm 2's pooled top-N merges; see
    :mod:`repro.core.candidates.viterbi`).  Accepts a plain byte count
    or a ``K``/``M``/``G`` suffix (e.g. ``512M``); default 2 GiB —
    enough to run the paper's N=2^23 Fig 10 budget without segmented
    selection while staying inside a CI-class machine.

This module is the *only* place in ``src/repro`` that reads ``REPRO_*``
environment variables.  Library code goes through :func:`get_config` (or
the ``env_native_*`` accessors for the process-global backend), so tests
can construct explicit :class:`ReproConfig` instances.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from .errors import ConfigError

DEFAULT_SEED = 20150812
_ENV_SCALE = "REPRO_SCALE"
_ENV_SEED = "REPRO_SEED"
_ENV_NATIVE = "REPRO_NATIVE"
_ENV_NATIVE_THREADS = "REPRO_NATIVE_THREADS"
_ENV_NATIVE_INTERLEAVE = "REPRO_NATIVE_INTERLEAVE"
_ENV_NATIVE_SIMD = "REPRO_NATIVE_SIMD"
_ENV_NATIVE_CC = "REPRO_NATIVE_CC"
_ENV_FLEET_LEASE_TTL = "REPRO_FLEET_LEASE_TTL"
_ENV_FLEET_RETRY_BUDGET = "REPRO_FLEET_RETRY_BUDGET"
_ENV_FLEET_BACKOFF_BASE = "REPRO_FLEET_BACKOFF_BASE"
_ENV_FLEET_WORKERS = "REPRO_FLEET_WORKERS"
_ENV_CANDIDATE_MEM = "REPRO_CANDIDATE_MEM"

#: Fleet defaults (see :mod:`repro.fleet`): a lease whose heartbeat is
#: older than the TTL is stale and reclaimable; a shard is retried up to
#: the budget with capped exponential backoff starting at the base.
DEFAULT_FLEET_LEASE_TTL = 30.0
DEFAULT_FLEET_RETRY_BUDGET = 3
DEFAULT_FLEET_BACKOFF_BASE = 0.25

#: Default candidate-engine scratch budget: 2 GiB covers the paper's
#: full N=2^23 Algorithm 2 runs without falling back to segmented
#: selection, and fits CI-class machines.
DEFAULT_CANDIDATE_MEM = 1 << 31

#: Values that switch a boolean knob off (matching the historical
#: behaviour of REPRO_NATIVE=0 / REPRO_NATIVE_INTERLEAVE=0).
_OFF_VALUES = ("0", "off", "false")


@dataclass(frozen=True)
class ReproConfig:
    """Immutable run configuration.

    Attributes:
        scale: multiplier applied to default sample counts (> 0).
        seed: master seed from which all child RNG streams derive.
        native: whether the compiled statistics backend may be used
            (it silently falls back to numpy when unavailable anyway).
        native_threads: thread count for the native kernels; ``None``
            means the backend default (``os.cpu_count()``).
        native_interleave: use the interleaved PRGA kernels (multiple
            independent RC4 states per loop iteration).
        native_simd: allow the runtime-dispatched AVX2 wide kernels (32
            states per loop); silently degrades to the interleaved or
            scalar tier on hardware or builds without AVX2.
        native_cc: pinned C compiler for the on-demand build, or ``None``
            for the ``cc``/``gcc``/``clang`` probe order.
        fleet_lease_ttl: seconds without a heartbeat before a fleet
            shard lease is stale and reclaimable (> 0).
        fleet_retry_budget: attempts per fleet shard before it is marked
            failed (>= 1).
        fleet_backoff_base: base delay in seconds of the capped
            exponential retry backoff (>= 0).
        fleet_workers: default local worker count for ``distributed``
            experiment runs; ``None`` means ``os.cpu_count()``.
        candidate_mem: peak scratch bytes the candidate-recovery engine
            may use per selection pass (>= 1; default 2 GiB).
    """

    scale: float = 1.0
    seed: int = DEFAULT_SEED
    native: bool = True
    native_threads: int | None = None
    native_interleave: bool = True
    native_simd: bool = True
    native_cc: str | None = None
    fleet_lease_ttl: float = DEFAULT_FLEET_LEASE_TTL
    fleet_retry_budget: int = DEFAULT_FLEET_RETRY_BUDGET
    fleet_backoff_base: float = DEFAULT_FLEET_BACKOFF_BASE
    fleet_workers: int | None = None
    candidate_mem: int = DEFAULT_CANDIDATE_MEM

    def __post_init__(self) -> None:
        if not (self.scale > 0.0):
            raise ConfigError(f"scale must be positive, got {self.scale!r}")
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ConfigError(f"seed must be a non-negative int, got {self.seed!r}")
        if self.native_threads is not None:
            if not isinstance(self.native_threads, int) or self.native_threads < 1:
                raise ConfigError(
                    f"native_threads must be a positive int or None, "
                    f"got {self.native_threads!r}"
                )
        if not (self.fleet_lease_ttl > 0.0):
            raise ConfigError(
                f"fleet_lease_ttl must be positive, got {self.fleet_lease_ttl!r}"
            )
        if not isinstance(self.fleet_retry_budget, int) or self.fleet_retry_budget < 1:
            raise ConfigError(
                f"fleet_retry_budget must be a positive int, "
                f"got {self.fleet_retry_budget!r}"
            )
        if not (self.fleet_backoff_base >= 0.0):
            raise ConfigError(
                f"fleet_backoff_base must be >= 0, got {self.fleet_backoff_base!r}"
            )
        if self.fleet_workers is not None:
            if not isinstance(self.fleet_workers, int) or self.fleet_workers < 1:
                raise ConfigError(
                    f"fleet_workers must be a positive int or None, "
                    f"got {self.fleet_workers!r}"
                )
        if not isinstance(self.candidate_mem, int) or self.candidate_mem < 1:
            raise ConfigError(
                f"candidate_mem must be a positive int (bytes), "
                f"got {self.candidate_mem!r}"
            )

    def scaled(
        self, count: int, *, minimum: int = 1, maximum: int | None = None
    ) -> int:
        """Scale a default sample count by ``self.scale``, with clamping."""
        value = max(minimum, int(round(count * self.scale)))
        if maximum is not None:
            value = min(value, maximum)
        return value

    def rng(self, *labels: object) -> np.random.Generator:
        """Return a child RNG uniquely determined by ``(seed, *labels)``."""
        return np.random.default_rng(child_seed(self.seed, *labels))


def child_seed(master: int, *labels: object) -> int:
    """Derive a deterministic 63-bit child seed from a master seed and labels.

    Uses ``numpy``'s SeedSequence entropy spawning keyed by a stable hash of
    the labels, so distinct label tuples give independent streams.
    """
    key = [master]
    for label in labels:
        data = repr(label).encode("utf-8")
        acc = 2166136261
        for byte in data:
            acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
        key.append(acc)
    seq = np.random.SeedSequence(key)
    return int(seq.generate_state(1, dtype=np.uint64)[0] >> 1)


def env_native_enabled() -> bool:
    """``REPRO_NATIVE``: False only on an explicit 0/off/false."""
    return os.environ.get(_ENV_NATIVE, "").strip() not in _OFF_VALUES


def env_native_threads() -> int | None:
    """``REPRO_NATIVE_THREADS`` as an int, or ``None`` when unset."""
    raw = os.environ.get(_ENV_NATIVE_THREADS, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError as exc:
        raise ConfigError(
            f"{_ENV_NATIVE_THREADS} must be an integer, got {raw!r}"
        ) from exc


def env_native_interleave() -> bool:
    """``REPRO_NATIVE_INTERLEAVE``: False only on an explicit 0/off/false."""
    return os.environ.get(_ENV_NATIVE_INTERLEAVE, "").strip() not in _OFF_VALUES


def env_native_simd() -> bool:
    """``REPRO_NATIVE_SIMD``: False only on an explicit 0/off/false."""
    return os.environ.get(_ENV_NATIVE_SIMD, "").strip() not in _OFF_VALUES


def env_native_cc() -> str | None:
    """``REPRO_NATIVE_CC``: pinned compiler path, or ``None`` when unset."""
    pinned = os.environ.get(_ENV_NATIVE_CC, "").strip()
    return pinned or None


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError as exc:
        raise ConfigError(f"{name} must be a float, got {raw!r}") from exc


def _env_int(name: str, default: int | None) -> int | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise ConfigError(f"{name} must be an integer, got {raw!r}") from exc


def env_fleet_lease_ttl() -> float:
    """``REPRO_FLEET_LEASE_TTL`` in seconds (default 30)."""
    return _env_float(_ENV_FLEET_LEASE_TTL, DEFAULT_FLEET_LEASE_TTL)


def env_fleet_retry_budget() -> int:
    """``REPRO_FLEET_RETRY_BUDGET`` attempts per shard (default 3)."""
    value = _env_int(_ENV_FLEET_RETRY_BUDGET, DEFAULT_FLEET_RETRY_BUDGET)
    assert value is not None
    return value


def env_fleet_backoff_base() -> float:
    """``REPRO_FLEET_BACKOFF_BASE`` in seconds (default 0.25)."""
    return _env_float(_ENV_FLEET_BACKOFF_BASE, DEFAULT_FLEET_BACKOFF_BASE)


def env_fleet_workers() -> int | None:
    """``REPRO_FLEET_WORKERS`` as an int, or ``None`` when unset."""
    return _env_int(_ENV_FLEET_WORKERS, None)


#: Byte-count suffixes accepted by ``REPRO_CANDIDATE_MEM``.
_MEM_SUFFIXES = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}


def env_candidate_mem() -> int:
    """``REPRO_CANDIDATE_MEM`` in bytes (default 2 GiB).

    Accepts a plain integer byte count or a ``K``/``M``/``G``-suffixed
    value such as ``512M``.
    """
    raw = os.environ.get(_ENV_CANDIDATE_MEM, "").strip()
    if not raw:
        return DEFAULT_CANDIDATE_MEM
    unit = 1
    body = raw
    if raw[-1].upper() in _MEM_SUFFIXES:
        unit = _MEM_SUFFIXES[raw[-1].upper()]
        body = raw[:-1]
    try:
        value = int(float(body) * unit) if unit > 1 else int(body)
    except ValueError as exc:
        raise ConfigError(
            f"{_ENV_CANDIDATE_MEM} must be a byte count "
            f"(optionally K/M/G-suffixed), got {raw!r}"
        ) from exc
    if value < 1:
        raise ConfigError(
            f"{_ENV_CANDIDATE_MEM} must be >= 1 byte, got {raw!r}"
        )
    return value


def get_config() -> ReproConfig:
    """Build a :class:`ReproConfig` from the environment (or defaults)."""
    raw_scale = os.environ.get(_ENV_SCALE, "1.0")
    raw_seed = os.environ.get(_ENV_SEED, str(DEFAULT_SEED))
    try:
        scale = float(raw_scale)
    except ValueError as exc:
        raise ConfigError(f"{_ENV_SCALE} must be a float, got {raw_scale!r}") from exc
    try:
        seed = int(raw_seed)
    except ValueError as exc:
        raise ConfigError(f"{_ENV_SEED} must be an int, got {raw_seed!r}") from exc
    threads = env_native_threads()
    if threads is not None:
        # The kernels clamp to >= 1 themselves; the typed field validates.
        threads = max(1, threads)
    fleet_workers = env_fleet_workers()
    if fleet_workers is not None:
        fleet_workers = max(1, fleet_workers)
    return ReproConfig(
        scale=scale,
        seed=seed,
        native=env_native_enabled(),
        native_threads=threads,
        native_interleave=env_native_interleave(),
        native_simd=env_native_simd(),
        native_cc=env_native_cc(),
        fleet_lease_ttl=env_fleet_lease_ttl(),
        fleet_retry_budget=max(1, env_fleet_retry_budget()),
        fleet_backoff_base=max(0.0, env_fleet_backoff_base()),
        fleet_workers=fleet_workers,
        candidate_mem=env_candidate_mem(),
    )
