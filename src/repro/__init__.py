"""repro — reproduction of Vanhoef & Piessens' RC4 attacks on WPA-TKIP and TLS.

The package is organised by subsystem (``python -m repro info`` prints
the live inventory; README.md documents usage):

- :mod:`repro.api` — the unified experiment API: a declarative registry
  of every reproducible unit and the :class:`repro.api.Session` facade
  that the CLI, the examples, and the benchmarks all drive.

- :mod:`repro.rc4` — the cipher, reference and vectorised batch forms.
- :mod:`repro.stats` — hypothesis-testing framework for bias hunting.
- :mod:`repro.biases` — catalog of known keystream biases and
  distribution models built from them.
- :mod:`repro.datasets` — keystream-statistics generation (the paper's
  ``first16`` / ``consec512`` datasets at configurable scale).
- :mod:`repro.core` — the paper's primary contribution: Bayesian
  plaintext likelihoods, bias combination, and candidate enumeration
  (Algorithms 1 and 2).
- :mod:`repro.net` / :mod:`repro.tkip` / :mod:`repro.tls` — the protocol
  substrates and the two end-to-end attacks.
- :mod:`repro.simulate` — traffic/capture simulators and exact
  sufficient-statistic samplers used by the benchmark harness.
- :mod:`repro.analysis` — paper-style rendering of results.
"""

from ._version import __version__
from .config import ReproConfig, get_config
from .errors import ReproError

__all__ = ["ReproConfig", "ReproError", "__version__", "get_config"]
