"""LLC/SNAP encapsulation for 802.11 data frames (IEEE 802.2).

Encrypted TKIP payloads start with an 8-byte LLC/SNAP header
(AA AA 03 00 00 00 + ethertype); the attack counts on these bytes being
known plaintext (paper §5.2-§5.3: "the total size of the LLC/SNAP, IP,
and TCP header is 48 bytes").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import PacketError

ETHERTYPE_IPV4 = 0x0800
HEADER_LEN = 8


@dataclass(frozen=True)
class LlcSnapHeader:
    """The 8-byte LLC/SNAP header."""

    ethertype: int = ETHERTYPE_IPV4

    def build(self) -> bytes:
        if not 0 <= self.ethertype <= 0xFFFF:
            raise PacketError(f"bad ethertype {self.ethertype:#x}")
        return b"\xaa\xaa\x03\x00\x00\x00" + struct.pack(">H", self.ethertype)

    @classmethod
    def parse(cls, data: bytes) -> tuple["LlcSnapHeader", bytes]:
        if len(data) < HEADER_LEN:
            raise PacketError(f"LLC/SNAP needs {HEADER_LEN} bytes, got {len(data)}")
        if data[:6] != b"\xaa\xaa\x03\x00\x00\x00":
            raise PacketError(f"not an LLC/SNAP header: {data[:6].hex()}")
        (ethertype,) = struct.unpack(">H", data[6:8])
        return cls(ethertype=ethertype), data[HEADER_LEN:]


#: The standard header for IPv4 payloads.
LLC_SNAP_IPV4 = LlcSnapHeader(ETHERTYPE_IPV4)
