"""The Internet checksum (RFC 1071) used by IPv4 and TCP."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """One's-complement sum of 16-bit words, complemented.

    Odd-length input is padded with a trailing zero byte, per RFC 1071.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for offset in range(0, len(data), 2):
        total += (data[offset] << 8) | data[offset + 1]
    # Fold carries until the sum fits 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF
