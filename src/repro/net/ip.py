"""IPv4 header construction and parsing (RFC 791, no options)."""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from ..errors import PacketError
from .checksum import internet_checksum

PROTO_TCP = 6
_FORMAT = ">BBHHHBBH4s4s"
HEADER_LEN = struct.calcsize(_FORMAT)  # 20


def _pack_addr(addr: str) -> bytes:
    parts = addr.split(".")
    if len(parts) != 4:
        raise PacketError(f"bad IPv4 address {addr!r}")
    try:
        octets = bytes(int(p) for p in parts)
    except ValueError as exc:
        raise PacketError(f"bad IPv4 address {addr!r}") from exc
    if any(int(p) > 255 or int(p) < 0 for p in parts):
        raise PacketError(f"bad IPv4 address {addr!r}")
    return octets


def _unpack_addr(raw: bytes) -> str:
    return ".".join(str(b) for b in raw)


@dataclass(frozen=True)
class IPv4Header:
    """A 20-byte IPv4 header (no options).

    ``checksum = None`` means "compute on build"; a stored value is
    emitted verbatim so tests can construct corrupt packets.
    """

    source: str
    destination: str
    total_length: int
    ttl: int = 64
    protocol: int = PROTO_TCP
    identification: int = 0
    flags_fragment: int = 0x4000  # don't-fragment, offset 0
    tos: int = 0
    checksum: int | None = None

    def build(self) -> bytes:
        """Serialise, computing the checksum unless one was forced."""
        if not 0 <= self.ttl <= 255:
            raise PacketError(f"bad TTL {self.ttl}")
        if self.total_length < HEADER_LEN or self.total_length > 0xFFFF:
            raise PacketError(f"bad total length {self.total_length}")
        header = struct.pack(
            _FORMAT,
            (4 << 4) | 5,  # version 4, IHL 5 words
            self.tos,
            self.total_length,
            self.identification,
            self.flags_fragment,
            self.ttl,
            self.protocol,
            0,
            _pack_addr(self.source),
            _pack_addr(self.destination),
        )
        csum = self.checksum
        if csum is None:
            csum = internet_checksum(header)
        return header[:10] + struct.pack(">H", csum) + header[12:]

    @classmethod
    def parse(cls, data: bytes) -> "IPv4Header":
        """Parse the first 20 bytes; raises on version/IHL mismatch."""
        if len(data) < HEADER_LEN:
            raise PacketError(f"IPv4 header needs {HEADER_LEN} bytes, got {len(data)}")
        (
            ver_ihl,
            tos,
            total_length,
            identification,
            flags_fragment,
            ttl,
            protocol,
            checksum,
            src,
            dst,
        ) = struct.unpack(_FORMAT, data[:HEADER_LEN])
        if ver_ihl != ((4 << 4) | 5):
            raise PacketError(f"unsupported version/IHL byte {ver_ihl:#x}")
        return cls(
            source=_unpack_addr(src),
            destination=_unpack_addr(dst),
            total_length=total_length,
            ttl=ttl,
            protocol=protocol,
            identification=identification,
            flags_fragment=flags_fragment,
            tos=tos,
            checksum=checksum,
        )

    def checksum_valid(self) -> bool:
        """True if the stored checksum matches the header contents."""
        if self.checksum is None:
            return True
        rebuilt = replace(self, checksum=None).build()
        return rebuilt[10:12] == struct.pack(">H", self.checksum)
