"""TCP header construction and parsing (RFC 793, no options)."""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from ..errors import PacketError
from .checksum import internet_checksum
from .ip import PROTO_TCP, _pack_addr

_FORMAT = ">HHIIBBHHH"
HEADER_LEN = struct.calcsize(_FORMAT)  # 20

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10


def tcp_checksum(
    source_ip: str, dest_ip: str, segment: bytes
) -> int:
    """TCP checksum over the IPv4 pseudo-header plus the segment."""
    pseudo = (
        _pack_addr(source_ip)
        + _pack_addr(dest_ip)
        + struct.pack(">BBH", 0, PROTO_TCP, len(segment))
    )
    return internet_checksum(pseudo + segment)


@dataclass(frozen=True)
class TcpHeader:
    """A 20-byte TCP header (no options).

    ``checksum = None`` means "compute on build" (requires the IP
    endpoints and payload); a stored value is emitted verbatim.
    """

    source_port: int
    dest_port: int
    seq: int = 0
    ack: int = 0
    flags: int = FLAG_ACK | FLAG_PSH
    window: int = 0xFFFF
    urgent: int = 0
    checksum: int | None = None

    def build(
        self,
        *,
        source_ip: str | None = None,
        dest_ip: str | None = None,
        payload: bytes = b"",
    ) -> bytes:
        """Serialise header + payload, computing the checksum if needed."""
        for name, value, limit in (
            ("source_port", self.source_port, 0xFFFF),
            ("dest_port", self.dest_port, 0xFFFF),
            ("seq", self.seq, 0xFFFFFFFF),
            ("ack", self.ack, 0xFFFFFFFF),
        ):
            if not 0 <= value <= limit:
                raise PacketError(f"bad {name} {value}")
        header = struct.pack(
            _FORMAT,
            self.source_port,
            self.dest_port,
            self.seq,
            self.ack,
            (HEADER_LEN // 4) << 4,  # data offset, no options
            self.flags,
            self.window,
            0,
            self.urgent,
        )
        csum = self.checksum
        if csum is None:
            if source_ip is None or dest_ip is None:
                raise PacketError("need IP endpoints to compute TCP checksum")
            csum = tcp_checksum(source_ip, dest_ip, header + payload)
        return header[:16] + struct.pack(">H", csum) + header[18:] + payload

    @classmethod
    def parse(cls, data: bytes) -> tuple["TcpHeader", bytes]:
        """Parse header and return (header, payload)."""
        if len(data) < HEADER_LEN:
            raise PacketError(f"TCP header needs {HEADER_LEN} bytes, got {len(data)}")
        (
            source_port,
            dest_port,
            seq,
            ack,
            offset_byte,
            flags,
            window,
            checksum,
            urgent,
        ) = struct.unpack(_FORMAT, data[:HEADER_LEN])
        offset = (offset_byte >> 4) * 4
        if offset < HEADER_LEN or offset > len(data):
            raise PacketError(f"bad TCP data offset {offset}")
        header = cls(
            source_port=source_port,
            dest_port=dest_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            urgent=urgent,
            checksum=checksum,
        )
        return header, data[offset:]

    def checksum_valid(
        self, source_ip: str, dest_ip: str, payload: bytes
    ) -> bool:
        """True if the stored checksum matches header + payload."""
        if self.checksum is None:
            return True
        segment = replace(self, checksum=0).build(
            source_ip=source_ip, dest_ip=dest_ip, payload=payload
        )
        # Rebuild with zero checksum field and recompute.
        zeroed = segment[:16] + b"\x00\x00" + segment[18:]
        return tcp_checksum(source_ip, dest_ip, zeroed) == self.checksum
