"""Network packet substrate: LLC/SNAP, IPv4 and TCP with checksums.

The TKIP attack (paper §5) decrypts a TCP packet carried in an 802.11
frame; the pruning trick relies on the IP and TCP checksums being
verifiable redundancy.  This package implements exactly the header
building/parsing the attack needs, from scratch, with the standard
Internet checksum.
"""

from .checksum import internet_checksum
from .ip import IPv4Header
from .llc import LLC_SNAP_IPV4, LlcSnapHeader
from .tcp import TcpHeader, tcp_checksum

__all__ = [
    "IPv4Header",
    "LLC_SNAP_IPV4",
    "LlcSnapHeader",
    "TcpHeader",
    "internet_checksum",
    "tcp_checksum",
]
