"""Parameter-grid sweeps over the experiment registry.

A sweep is declared, not scripted: a :class:`SweepSpec` names a
registered experiment, a ``grid`` of parameter value lists (expanded as
a cartesian product), and fixed ``base`` overrides shared by every
point.  :func:`plan_sweep` validates the declaration against the
registry — every grid/base key must be a declared parameter — resolves
each point to its full parameter dict, and computes the run fingerprint
*before* anything executes.

That up-front fingerprinting is what makes sweeps crash-tolerant:
:func:`run_sweep` skips every plan whose fingerprint the
:class:`~repro.warehouse.RunStore` already holds, so re-launching a
killed sweep re-runs only the missing points — the warehouse analogue
of the fleet's lease/requeue resume (shards there, whole runs here).

Sweep points run through the ordinary :meth:`~repro.api.Session.run`
path, so a point with ``distributed=N`` in its grid fans out through
the :mod:`repro.fleet` coordinator exactly as a hand-typed CLI run
would.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from ..api.registry import get_experiment
from ..config import ReproConfig
from ..errors import ReproError, SweepError
from .store import RunStore, StoredRun, run_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..api.session import Session


@dataclass(frozen=True)
class SweepSpec:
    """One experiment's leg of a sweep.

    Attributes:
        experiment: registry name (must exist; checked at plan time).
        grid: ``{param: [value, ...]}`` — expanded as a cartesian
            product.  Values pass through the parameter's declared
            coercion, so CLI strings and Python literals both work.
        base: fixed overrides applied to every grid point (e.g.
            ``{"capture": "batched"}`` for a distributed leg).
    """

    experiment: str
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    base: Mapping[str, Any] = field(default_factory=dict)

    def points(self) -> list[dict[str, Any]]:
        """Expand the grid into override dicts (base merged in).

        Deterministic order: grid keys sorted, values in declared order.
        An empty grid yields the single ``base`` point.
        """
        overlap = sorted(set(self.grid) & set(self.base))
        if overlap:
            raise SweepError(
                f"sweep over {self.experiment!r}: parameter(s) "
                f"{', '.join(map(repr, overlap))} appear in both grid and base"
            )
        names = sorted(self.grid)
        for name in names:
            values = self.grid[name]
            if isinstance(values, (str, bytes)) or not isinstance(
                values, (Sequence, list, tuple)
            ):
                raise SweepError(
                    f"sweep over {self.experiment!r}: grid values for "
                    f"{name!r} must be a sequence, got {values!r}"
                )
            if len(values) == 0:
                raise SweepError(
                    f"sweep over {self.experiment!r}: grid for {name!r} is empty"
                )
        product = itertools.product(*(self.grid[name] for name in names))
        return [
            {**dict(self.base), **dict(zip(names, combo))} for combo in product
        ]


@dataclass(frozen=True)
class PlannedRun:
    """One fully resolved sweep point, fingerprinted before execution.

    Attributes:
        experiment: registry name.
        overrides: the grid/base overrides that produced this point.
        params: the complete resolved parameter dict (defaults filled,
            values coerced) — what the stored result will record.
        fingerprint: :func:`~repro.warehouse.run_fingerprint` of the
            resolved run; the resume/skip key.
    """

    experiment: str
    overrides: dict[str, Any]
    params: dict[str, Any]
    fingerprint: str


def plan_sweep(
    specs: Iterable[SweepSpec], config: ReproConfig
) -> list[PlannedRun]:
    """Expand and validate sweep specs into fingerprinted planned runs.

    Raises:
        SweepError: a grid is malformed, an override names an unknown
            parameter, or the expansion contains duplicate runs.
    """
    plans: list[PlannedRun] = []
    seen: dict[str, PlannedRun] = {}
    for spec in specs:
        experiment = get_experiment(spec.experiment)
        for overrides in spec.points():
            try:
                params = experiment.resolve_params(config, dict(overrides))
            except ReproError as exc:
                raise SweepError(
                    f"sweep over {spec.experiment!r}: {exc}"
                ) from exc
            fingerprint = run_fingerprint(
                spec.experiment, params, seed=config.seed, scale=config.scale
            )
            if fingerprint in seen:
                raise SweepError(
                    f"sweep expands to duplicate runs of {spec.experiment!r} "
                    f"(params {params!r} appear more than once)"
                )
            plan = PlannedRun(
                experiment=spec.experiment,
                overrides=dict(overrides),
                params=params,
                fingerprint=fingerprint,
            )
            seen[fingerprint] = plan
            plans.append(plan)
    if not plans:
        raise SweepError("sweep expands to zero runs")
    return plans


#: Outcome labels recorded per planned run.
SWEEP_STATUSES = ("ran", "skipped", "failed")


@dataclass(frozen=True)
class SweepOutcome:
    """What happened to one planned run.

    Attributes:
        plan: the planned run.
        status: ``"ran"`` (executed and stored), ``"skipped"`` (its
            fingerprint was already in the store), or ``"failed"``.
        run: the stored run for ran/skipped outcomes, else ``None``.
        error: the failure message for failed outcomes, else ``None``.
    """

    plan: PlannedRun
    status: str
    run: StoredRun | None = None
    error: str | None = None


@dataclass(frozen=True)
class SweepReport:
    """The full record of one :func:`run_sweep` invocation."""

    outcomes: tuple[SweepOutcome, ...]

    @property
    def ran(self) -> tuple[SweepOutcome, ...]:
        return tuple(o for o in self.outcomes if o.status == "ran")

    @property
    def skipped(self) -> tuple[SweepOutcome, ...]:
        return tuple(o for o in self.outcomes if o.status == "skipped")

    @property
    def failed(self) -> tuple[SweepOutcome, ...]:
        return tuple(o for o in self.outcomes if o.status == "failed")

    def counts(self) -> dict[str, int]:
        return {status: 0 for status in SWEEP_STATUSES} | {
            status: sum(1 for o in self.outcomes if o.status == status)
            for status in {o.status for o in self.outcomes}
        }


SweepProgress = Callable[[PlannedRun, str], None]


def run_sweep(
    session: "Session",
    specs: Iterable[SweepSpec] | Sequence[PlannedRun],
    store: RunStore,
    *,
    progress: SweepProgress | None = None,
) -> SweepReport:
    """Execute a sweep against ``store``, skipping already-stored runs.

    Every planned run whose fingerprint is already warehoused is
    skipped without executing — kill this function at any point and a
    re-invocation resumes exactly where the store left off.  A run that
    raises a :class:`~repro.errors.ReproError` is recorded as failed
    and the sweep continues; infrastructure errors (anything else)
    propagate.

    Args:
        session: the :class:`~repro.api.Session` to run points under
            (its seed/scale are part of every fingerprint).
        specs: sweep declarations, or pre-planned runs from
            :func:`plan_sweep`.
        store: destination :class:`~repro.warehouse.RunStore`.
        progress: optional ``callback(plan, status)`` invoked once per
            point with its final status.
    """
    items = list(specs)
    if items and isinstance(items[0], PlannedRun):
        plans = items  # pre-planned (e.g. by the CLI, for dry-run display)
    else:
        plans = plan_sweep(items, session.config)
    outcomes: list[SweepOutcome] = []
    for plan in plans:
        existing = store.get(plan.fingerprint)
        if existing is not None:
            outcomes.append(
                SweepOutcome(plan=plan, status="skipped", run=existing)
            )
            if progress is not None:
                progress(plan, "skipped")
            continue
        try:
            result = session.run(plan.experiment, **plan.params)
        except ReproError as exc:
            outcomes.append(
                SweepOutcome(plan=plan, status="failed", error=str(exc))
            )
            if progress is not None:
                progress(plan, "failed")
            continue
        stored = store.append(result)
        if stored.fingerprint != plan.fingerprint:
            raise SweepError(
                f"run of {plan.experiment!r} stored under fingerprint "
                f"{stored.fingerprint[:16]} but was planned as "
                f"{plan.fingerprint[:16]} — seed/scale changed mid-sweep?"
            )
        outcomes.append(SweepOutcome(plan=plan, status="ran", run=stored))
        if progress is not None:
            progress(plan, "ran")
    return SweepReport(outcomes=tuple(outcomes))
