"""Results warehouse: persistent run storage and sweep orchestration.

The warehouse turns one-shot :class:`~repro.api.ExperimentResult`
records into a durable, queryable corpus (:class:`RunStore`) and
expands declarative parameter grids into crash-tolerant sweeps
(:class:`SweepSpec` / :func:`run_sweep`).  Reports over stored runs
live in :mod:`repro.analysis.report`.

Typical use::

    from repro.api import Session
    from repro.warehouse import RunStore, SweepSpec, run_sweep

    store = RunStore("runs/")
    session = Session(store=store)
    report = run_sweep(
        session,
        [SweepSpec("dataset-single", grid={"num_keys": [4096, 8192]})],
        store,
    )
"""

from .store import (
    STORE_FORMAT_VERSION,
    RunStore,
    StoredRun,
    result_fingerprint,
    run_fingerprint,
)
from .sweep import (
    SWEEP_STATUSES,
    PlannedRun,
    SweepOutcome,
    SweepReport,
    SweepSpec,
    plan_sweep,
    run_sweep,
)

__all__ = [
    "STORE_FORMAT_VERSION",
    "SWEEP_STATUSES",
    "PlannedRun",
    "RunStore",
    "StoredRun",
    "SweepOutcome",
    "SweepReport",
    "SweepSpec",
    "plan_sweep",
    "result_fingerprint",
    "run_fingerprint",
    "run_sweep",
]
