"""Append-only persistent run store: the results warehouse.

Every :class:`~repro.api.ExperimentResult` is already a canonical-JSON
record; this module gives those records a durable home so cross-run
comparisons, trend reports, and figure regeneration never require
re-running anything.  The layout under a store root is deliberately
boring:

- ``runs.jsonl`` — one canonical-JSON line per stored run, appended
  with a single fsync'd ``O_APPEND`` write (atomic between concurrent
  appenders; see :func:`repro.utils.serialization.append_jsonl`).
- ``blobs/<fingerprint>/<name>.npz`` — optional sidecar arrays (raw
  counters, capture statistics) persisted through the versioned NPZ
  container of :mod:`repro.utils.serialization`.

Runs are keyed by a **fingerprint**: the SHA-256 of the canonical JSON
of ``{experiment, params, seed, scale}`` — exactly the inputs that
determine a run's metrics bit-for-bit (the capture/dataset equivalence
suites hold the backend and thread count out of the story).  Appending
a result whose fingerprint is already stored is a no-op, which is what
makes sweeps resumable: a re-launched sweep skips every fingerprint the
store already holds.

Corrupt index lines (torn writes, truncation) are skipped with a
:class:`RuntimeWarning` on load — one damaged record never hides the
rest of the warehouse.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
import warnings
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from ..api.result import ExperimentResult
from ..errors import ReproError, WarehouseError
from ..utils.serialization import (
    append_jsonl,
    canonical_json,
    load_arrays,
    save_arrays,
    to_jsonable,
)

#: Bumped when the index-line layout changes incompatibly.
STORE_FORMAT_VERSION = 1

INDEX_NAME = "runs.jsonl"
BLOBS_DIR = "blobs"

_BLOB_NAME = re.compile(r"[A-Za-z0-9._-]+")


def run_fingerprint(
    experiment: str,
    params: Mapping[str, Any],
    *,
    seed: Any,
    scale: Any,
) -> str:
    """Deterministic identity of a run: what makes its metrics unique.

    The digest covers the experiment name, the fully resolved
    parameters, and the seed/scale provenance — the exact inputs a
    :class:`~repro.api.Session` needs to reproduce the run bit-for-bit.
    Timings and backend facts are deliberately excluded: two executions
    of the same run are the *same* run.
    """
    payload = {
        "experiment": experiment,
        "params": params,
        "seed": seed,
        "scale": scale,
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def result_fingerprint(result: ExperimentResult) -> str:
    """Fingerprint of an existing result record (see :func:`run_fingerprint`)."""
    return run_fingerprint(
        result.experiment,
        result.params,
        seed=result.provenance.get("seed"),
        scale=result.provenance.get("scale"),
    )


def _as_timestamp(value: Any) -> float:
    """Accept a unix timestamp, a ``datetime``, or an ISO-8601 string.

    Naive datetimes/strings are interpreted as UTC so a query means the
    same thing on every machine that mounts the store.
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    if isinstance(value, datetime):
        dt = value
    elif isinstance(value, str):
        try:
            dt = datetime.fromisoformat(value)
        except ValueError as exc:
            raise WarehouseError(
                f"not a timestamp or ISO-8601 date: {value!r}"
            ) from exc
    else:
        raise WarehouseError(f"not a timestamp: {value!r}")
    if dt.tzinfo is None:
        dt = dt.replace(tzinfo=timezone.utc)
    return dt.timestamp()


def _subset_matches(container: Mapping[str, Any], wanted: Mapping[str, Any]) -> bool:
    """True when every wanted key is present with a jsonably-equal value."""
    for key, value in wanted.items():
        if key not in container:
            return False
        if to_jsonable(container[key]) != to_jsonable(value):
            return False
    return True


@dataclass(frozen=True)
class StoredRun:
    """One warehoused run: the result plus its storage envelope.

    Attributes:
        fingerprint: identity digest (see :func:`run_fingerprint`).
        stored_at: unix timestamp of the append (storage metadata only —
            never part of the fingerprint).
        result: the stored :class:`~repro.api.ExperimentResult`.
        blobs: names of sidecar NPZ arrays under ``blobs/<fingerprint>/``.
    """

    fingerprint: str
    stored_at: float
    result: ExperimentResult
    blobs: tuple[str, ...] = ()

    @property
    def stored_at_iso(self) -> str:
        return datetime.fromtimestamp(self.stored_at, tz=timezone.utc).isoformat()

    def to_record(self) -> dict[str, Any]:
        return {
            "format_version": STORE_FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "stored_at": self.stored_at,
            "blobs": list(self.blobs),
            "result": self.result.to_dict(),
        }

    @classmethod
    def from_record(cls, payload: Any) -> "StoredRun":
        if not isinstance(payload, dict):
            raise WarehouseError(
                f"run record must be a JSON object, got {type(payload).__name__}"
            )
        version = payload.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise WarehouseError(
                f"unsupported run-record format version {version!r} "
                f"(expected {STORE_FORMAT_VERSION})"
            )
        fingerprint = payload.get("fingerprint")
        stored_at = payload.get("stored_at")
        blobs = payload.get("blobs", [])
        if not isinstance(fingerprint, str) or not fingerprint:
            raise WarehouseError("run record has no fingerprint")
        if not isinstance(stored_at, (int, float)) or isinstance(stored_at, bool):
            raise WarehouseError("run record has no stored_at timestamp")
        if not isinstance(blobs, list) or not all(
            isinstance(b, str) for b in blobs
        ):
            raise WarehouseError("run record blobs must be a list of names")
        result = ExperimentResult.from_dict(payload.get("result"))
        expected = result_fingerprint(result)
        if fingerprint != expected:
            raise WarehouseError(
                f"run record fingerprint {fingerprint[:16]} does not match "
                f"its result ({expected[:16]}) — tampered or miswritten"
            )
        return cls(
            fingerprint=fingerprint,
            stored_at=float(stored_at),
            result=result,
            blobs=tuple(blobs),
        )


class RunStore:
    """Append-only, fingerprint-deduplicated store of experiment runs.

    Safe for concurrent appenders (every append is one atomic fsync'd
    ``O_APPEND`` write) and cheap for long-lived readers: the index is
    re-read incrementally, only the bytes appended since the last look.

    Example:

        >>> from repro.api import Session
        >>> from repro.warehouse import RunStore
        >>> store = RunStore("runs/")                        # doctest: +SKIP
        >>> session = Session(store=store)                   # doctest: +SKIP
        >>> session.run("dataset-single", num_keys=1 << 14)  # doctest: +SKIP
        >>> [r.result.metrics["total_counts"]
        ...  for r in store.query(experiment="dataset-single")]  # doctest: +SKIP
        [524288]
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.index_path = self.root / INDEX_NAME
        self.blobs_root = self.root / BLOBS_DIR
        self._runs: dict[str, StoredRun] = {}
        self._order: list[str] = []
        self._offset = 0  # bytes of the index consumed so far
        self._lineno = 0  # complete lines consumed so far
        #: Lines skipped as corrupt across all loads of this instance.
        self.corrupt_records = 0

    # --- index maintenance ------------------------------------------------

    def _refresh(self) -> None:
        """Fold index lines appended since the last refresh into memory.

        Incremental: only bytes past the last consumed offset are read,
        and only *complete* lines (ending in a newline) are consumed — a
        line another process is mid-append on is left for the next look
        rather than misread as corrupt.
        """
        if not self.index_path.exists():
            return
        with open(self.index_path, "rb") as fh:
            fh.seek(self._offset)
            chunk = fh.read()
        end = chunk.rfind(b"\n")
        if end < 0:
            return
        complete = chunk[: end + 1]
        self._offset += len(complete)
        for raw in complete.split(b"\n")[:-1]:
            self._lineno += 1
            raw = raw.strip()
            if not raw:
                continue
            try:
                run = StoredRun.from_record(
                    json.loads(raw.decode("utf-8", errors="replace"))
                )
            except (json.JSONDecodeError, ReproError) as exc:
                self.corrupt_records += 1
                warnings.warn(
                    f"{self.index_path}:{self._lineno}: skipping corrupt "
                    f"run record ({exc})",
                    RuntimeWarning,
                    stacklevel=3,
                )
                continue
            if run.fingerprint not in self._runs:  # first record wins
                self._runs[run.fingerprint] = run
                self._order.append(run.fingerprint)

    # --- writing ----------------------------------------------------------

    def append(
        self,
        result: ExperimentResult,
        *,
        blobs: Mapping[str, tuple[Mapping[str, np.ndarray], Mapping[str, Any]]]
        | None = None,
        stored_at: float | None = None,
    ) -> StoredRun:
        """Store a result; a duplicate fingerprint is a no-op.

        Args:
            result: the run record to persist.
            blobs: optional sidecar arrays, ``{name: (arrays, metadata)}``,
                written as NPZ files under ``blobs/<fingerprint>/`` before
                the index line lands (so a record never references a blob
                that does not exist).
            stored_at: override the append timestamp (testing only).

        Returns:
            The stored run — the pre-existing one when deduplicated, so
            ``store.append(r).stored_at`` is stable across re-runs.
        """
        fingerprint = result_fingerprint(result)
        self._refresh()
        existing = self._runs.get(fingerprint)
        if existing is not None:
            return existing
        blob_names: tuple[str, ...] = ()
        if blobs:
            for name in blobs:
                if not _BLOB_NAME.fullmatch(name):
                    raise WarehouseError(
                        f"blob name {name!r} must match {_BLOB_NAME.pattern}"
                    )
            blob_names = tuple(sorted(blobs))
            for name in blob_names:
                arrays, meta = blobs[name]
                save_arrays(
                    self.blob_path(fingerprint, name),
                    dict(arrays),
                    {"run_fingerprint": fingerprint, **dict(meta)},
                )
        run = StoredRun(
            fingerprint=fingerprint,
            stored_at=time.time() if stored_at is None else float(stored_at),
            result=result,
            blobs=blob_names,
        )
        append_jsonl(self.index_path, run.to_record())
        self._runs[fingerprint] = run
        self._order.append(fingerprint)
        return run

    # --- blobs ------------------------------------------------------------

    def blob_path(self, fingerprint: str, name: str) -> Path:
        return self.blobs_root / fingerprint[:16] / f"{name}.npz"

    def load_blob(
        self, run: StoredRun | str, name: str
    ) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
        """Load a sidecar NPZ previously attached via ``append(blobs=...)``."""
        fingerprint = run.fingerprint if isinstance(run, StoredRun) else run
        arrays, meta = load_arrays(self.blob_path(fingerprint, name))
        if meta.get("run_fingerprint") != fingerprint:
            raise WarehouseError(
                f"blob {name!r} does not belong to run {fingerprint[:16]}"
            )
        return arrays, meta

    # --- reading ----------------------------------------------------------

    def __len__(self) -> int:
        self._refresh()
        return len(self._order)

    def __contains__(self, fingerprint: str) -> bool:
        self._refresh()
        return fingerprint in self._runs

    def get(self, fingerprint: str) -> StoredRun | None:
        self._refresh()
        return self._runs.get(fingerprint)

    def runs(self) -> list[StoredRun]:
        """Every stored run, in append order."""
        self._refresh()
        return [self._runs[fp] for fp in self._order]

    def query(
        self,
        *,
        experiment: str | None = None,
        params: Mapping[str, Any] | None = None,
        provenance: Mapping[str, Any] | None = None,
        since: Any = None,
        until: Any = None,
    ) -> list[StoredRun]:
        """Stored runs matching every given filter, in append order.

        Args:
            experiment: exact registry name.
            params: subset match against the resolved parameters
                (values compared after JSON normalisation, so tuples
                and lists agree).
            provenance: subset match against the provenance block
                (e.g. ``{"seed": 97}``).
            since / until: inclusive ``stored_at`` bounds — unix
                timestamps, datetimes, or ISO-8601 strings (naive values
                read as UTC).
        """
        lo = _as_timestamp(since) if since is not None else None
        hi = _as_timestamp(until) if until is not None else None
        matches = []
        for run in self.runs():
            if experiment is not None and run.result.experiment != experiment:
                continue
            if params and not _subset_matches(run.result.params, params):
                continue
            if provenance and not _subset_matches(
                run.result.provenance, provenance
            ):
                continue
            if lo is not None and run.stored_at < lo:
                continue
            if hi is not None and run.stored_at > hi:
                continue
            matches.append(run)
        return matches

    def experiments(self) -> list[str]:
        """Distinct experiment names present in the store, sorted."""
        return sorted({run.result.experiment for run in self.runs()})


def results(runs: Iterable[StoredRun | ExperimentResult]) -> list[ExperimentResult]:
    """Normalise a mixed run sequence down to bare results."""
    return [run.result if isinstance(run, StoredRun) else run for run in runs]
