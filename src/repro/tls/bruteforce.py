"""Cookie brute-forcing against the web server (paper §6.2-§6.3).

Websites rarely rate-limit cookies the way they rate-limit passwords — a
properly random cookie is "unguessable", so nobody guards it.  The
candidate list voids that assumption: the attacker walks candidates in
decreasing likelihood and tests each against the server over persistent,
pipelined connections.  The paper's tool sustained >20000 tests/second,
covering all 2**23 candidates in under 7 minutes.

:class:`BruteForceOracle` simulates the server side: it accepts or
rejects a candidate, counts attempts, and converts attempt counts into
wall-clock time at a configurable test rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from ..errors import AttackError

if TYPE_CHECKING:
    from .attack import CookieLayout

#: Candidate tests per second the paper's tool reached (§6.3).
PAPER_TEST_RATE = 20000.0


@dataclass
class CandidatePruner:
    """Layout-aware candidate filter applied before the server oracle.

    The paper's §6.2 observation — restricting Algorithm 2 to the
    RFC 6265 alphabet tightens the ciphertext bound — extends to any
    tighter alphabet the layout metadata declares (base64 session
    tokens, hex API tokens; see
    :data:`repro.tls.http.BROWSER_PROFILES`).  When candidates were
    generated over a broader alphabet, dropping the values the site
    could never have issued saves oracle round-trips at the paper's
    20000 tests/second for free.

    Attributes:
        cookie_len: expected cookie value length from the layout.
        charset: allowed byte values for the cookie.
        pruned: candidates dropped so far.
    """

    cookie_len: int
    charset: bytes
    pruned: int = field(default=0, init=False)
    _allowed: frozenset = field(init=False, repr=False)
    _allowed_lut: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._allowed = frozenset(self.charset)
        lut = np.zeros(256, dtype=bool)
        lut[np.frombuffer(bytes(self.charset), dtype=np.uint8)] = True
        self._allowed_lut = lut

    @classmethod
    def for_layout(cls, layout: "CookieLayout", charset: bytes) -> "CandidatePruner":
        """Build a pruner from a request layout plus a cookie alphabet."""
        return cls(cookie_len=layout.cookie_len, charset=bytes(charset))

    def admits(self, candidate: bytes) -> bool:
        """True if the candidate is consistent with the layout metadata."""
        return len(candidate) == self.cookie_len and self._allowed.issuperset(
            candidate
        )

    def filter(self, candidates: Iterable[bytes]) -> Iterator[bytes]:
        """Lazily yield admissible candidates, counting the dropped ones."""
        for candidate in candidates:
            if self.admits(candidate):
                yield candidate
            else:
                self.pruned += 1

    def admit_mask(self, candidates: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`admits` over a uint8 (N, L) candidate matrix.

        Does **not** update :attr:`pruned` — batched callers account for
        drops themselves so early-stopping walks count exactly the
        candidates a scalar :meth:`filter` stream would have consumed.
        """
        rows = np.asarray(candidates)
        if rows.ndim != 2:
            raise AttackError(
                f"candidate matrix must be 2-D, got shape {rows.shape}"
            )
        if rows.shape[1] != self.cookie_len:
            return np.zeros(rows.shape[0], dtype=bool)
        return self._allowed_lut[rows].all(axis=1)


@dataclass
class BruteForceOracle:
    """A server that accepts exactly one cookie value.

    Attributes:
        secret: the true cookie value.
        test_rate: candidate tests per second (wall-clock model).
        attempts: number of candidates tested so far.
    """

    secret: bytes
    test_rate: float = PAPER_TEST_RATE
    attempts: int = field(default=0, init=False)

    def check(self, candidate: bytes) -> bool:
        """Test one candidate (one pipelined HTTPS request)."""
        self.attempts += 1
        return bytes(candidate) == self.secret

    def search(
        self, candidates: Iterable[bytes], *, budget: int | None = None
    ) -> tuple[bytes, int]:
        """Walk candidates best-first until the server accepts one.

        Args:
            candidates: candidate values in decreasing likelihood.
            budget: optional cap on attempts.

        Returns:
            ``(cookie, attempts_used)``.

        Raises:
            AttackError: if the budget is exhausted without a hit.
        """
        start = self.attempts
        for candidate in candidates:
            if budget is not None and self.attempts - start >= budget:
                break
            if self.check(candidate):
                return bytes(candidate), self.attempts - start
        raise AttackError(
            f"brute force failed after {self.attempts - start} attempts"
        )

    def search_matrix(
        self,
        candidates: np.ndarray,
        *,
        pruner: "CandidatePruner | None" = None,
        budget: int | None = None,
        block_size: int = 1 << 16,
    ) -> tuple[bytes, int, int]:
        """Batched :meth:`search` over a uint8 (N, L) candidate matrix.

        Tests candidates block-by-block with one vectorized comparison
        per block instead of one Python call per candidate, reproducing
        the exact accounting of ``search(pruner.filter(...))``: the
        same ``attempts``, the same ``pruner.pruned`` (including the
        drops a scalar stream consumes while pulling the first
        over-budget candidate), and the same :class:`AttackError`
        messages.

        Args:
            candidates: uint8 (N, L) matrix, rows in decreasing
                likelihood.
            pruner: optional layout-aware filter; inadmissible rows are
                skipped and counted in ``pruner.pruned``.
            budget: optional cap on attempts.

        Returns:
            ``(cookie, attempts_used, row_index)`` where ``row_index``
            is the hit's position in the full matrix (its rank).

        Raises:
            AttackError: if the budget or matrix is exhausted without a
                hit.
        """
        rows_all = np.asarray(candidates)
        if rows_all.ndim != 2:
            raise AttackError(
                f"candidate matrix must be 2-D, got shape {rows_all.shape}"
            )
        width = rows_all.shape[1]
        secret_row = (
            np.frombuffer(self.secret, dtype=np.uint8)
            if width == len(self.secret)
            else None
        )
        admitted_before = 0
        for start in range(0, rows_all.shape[0], block_size):
            block = rows_all[start : start + block_size]
            if pruner is not None:
                admit = pruner.admit_mask(block)
            else:
                admit = np.ones(block.shape[0], dtype=bool)
            adm_cum = np.cumsum(admit)
            in_block = int(adm_cum[-1]) if block.shape[0] else 0
            remaining = (
                None if budget is None else max(budget - admitted_before, 0)
            )
            if secret_row is not None:
                hits = np.nonzero((block == secret_row).all(axis=1) & admit)[0]
            else:
                hits = np.empty(0, dtype=np.intp)
            if hits.size:
                hit = int(hits[0])
                hit_admitted = int(adm_cum[hit])
                if remaining is None or hit_admitted <= remaining:
                    if pruner is not None:
                        pruner.pruned += hit - (hit_admitted - 1)
                    attempts_used = admitted_before + hit_admitted
                    self.attempts += attempts_used
                    return block[hit].tobytes(), attempts_used, start + hit
            if remaining is not None and in_block > remaining:
                # The scalar stream pulls the first over-budget
                # candidate before breaking, consuming the drops in
                # front of it.
                over = int(np.searchsorted(adm_cum, remaining + 1))
                if pruner is not None:
                    pruner.pruned += over - remaining
                tested = admitted_before + remaining
                self.attempts += tested
                raise AttackError(f"brute force failed after {tested} attempts")
            if pruner is not None:
                pruner.pruned += block.shape[0] - in_block
            admitted_before += in_block
        self.attempts += admitted_before
        raise AttackError(
            f"brute force failed after {admitted_before} attempts"
        )

    def wall_clock_seconds(self, attempts: int | None = None) -> float:
        """Time to test ``attempts`` candidates (default: attempts so far)."""
        count = self.attempts if attempts is None else attempts
        return count / self.test_rate
