"""Cookie brute-forcing against the web server (paper §6.2-§6.3).

Websites rarely rate-limit cookies the way they rate-limit passwords — a
properly random cookie is "unguessable", so nobody guards it.  The
candidate list voids that assumption: the attacker walks candidates in
decreasing likelihood and tests each against the server over persistent,
pipelined connections.  The paper's tool sustained >20000 tests/second,
covering all 2**23 candidates in under 7 minutes.

:class:`BruteForceOracle` simulates the server side: it accepts or
rejects a candidate, counts attempts, and converts attempt counts into
wall-clock time at a configurable test rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from ..errors import AttackError

if TYPE_CHECKING:
    from .attack import CookieLayout

#: Candidate tests per second the paper's tool reached (§6.3).
PAPER_TEST_RATE = 20000.0


@dataclass
class CandidatePruner:
    """Layout-aware candidate filter applied before the server oracle.

    The paper's §6.2 observation — restricting Algorithm 2 to the
    RFC 6265 alphabet tightens the ciphertext bound — extends to any
    tighter alphabet the layout metadata declares (base64 session
    tokens, hex API tokens; see
    :data:`repro.tls.http.BROWSER_PROFILES`).  When candidates were
    generated over a broader alphabet, dropping the values the site
    could never have issued saves oracle round-trips at the paper's
    20000 tests/second for free.

    Attributes:
        cookie_len: expected cookie value length from the layout.
        charset: allowed byte values for the cookie.
        pruned: candidates dropped so far.
    """

    cookie_len: int
    charset: bytes
    pruned: int = field(default=0, init=False)
    _allowed: frozenset = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._allowed = frozenset(self.charset)

    @classmethod
    def for_layout(cls, layout: "CookieLayout", charset: bytes) -> "CandidatePruner":
        """Build a pruner from a request layout plus a cookie alphabet."""
        return cls(cookie_len=layout.cookie_len, charset=bytes(charset))

    def admits(self, candidate: bytes) -> bool:
        """True if the candidate is consistent with the layout metadata."""
        return len(candidate) == self.cookie_len and self._allowed.issuperset(
            candidate
        )

    def filter(self, candidates: Iterable[bytes]) -> Iterator[bytes]:
        """Lazily yield admissible candidates, counting the dropped ones."""
        for candidate in candidates:
            if self.admits(candidate):
                yield candidate
            else:
                self.pruned += 1


@dataclass
class BruteForceOracle:
    """A server that accepts exactly one cookie value.

    Attributes:
        secret: the true cookie value.
        test_rate: candidate tests per second (wall-clock model).
        attempts: number of candidates tested so far.
    """

    secret: bytes
    test_rate: float = PAPER_TEST_RATE
    attempts: int = field(default=0, init=False)

    def check(self, candidate: bytes) -> bool:
        """Test one candidate (one pipelined HTTPS request)."""
        self.attempts += 1
        return bytes(candidate) == self.secret

    def search(
        self, candidates: Iterable[bytes], *, budget: int | None = None
    ) -> tuple[bytes, int]:
        """Walk candidates best-first until the server accepts one.

        Args:
            candidates: candidate values in decreasing likelihood.
            budget: optional cap on attempts.

        Returns:
            ``(cookie, attempts_used)``.

        Raises:
            AttackError: if the budget is exhausted without a hit.
        """
        start = self.attempts
        for candidate in candidates:
            if budget is not None and self.attempts - start >= budget:
                break
            if self.check(candidate):
                return bytes(candidate), self.attempts - start
        raise AttackError(
            f"brute force failed after {self.attempts - start} attempts"
        )

    def wall_clock_seconds(self, attempts: int | None = None) -> float:
        """Time to test ``attempts`` candidates (default: attempts so far)."""
        count = self.attempts if attempts is None else attempts
        return count / self.test_rate
