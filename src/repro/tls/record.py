"""The TLS record protocol with RC4 (paper §2.3, Fig. 3).

A record of type application-data carries version, length, payload and an
HMAC; payload and HMAC are RC4-encrypted.  RC4 is initialised once per
connection and *no initial keystream bytes are discarded* — the property
all the attacks build on.  The HMAC covers an 8-byte sequence number, the
record header fields, and the plaintext.

MAC-then-encrypt, exactly as RFC 5246 §6.2.3.1 specifies for stream
ciphers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import TlsError
from ..rc4.reference import RC4
from .hmac import hmac_sha1

CONTENT_APPLICATION_DATA = 23
VERSION_TLS12 = (3, 3)
MAC_LEN = 20
HEADER_LEN = 5
MAX_PLAINTEXT = 1 << 14


@dataclass(frozen=True)
class TlsRecord:
    """A wire-format TLS record (header + opaque fragment)."""

    content_type: int
    version: tuple[int, int]
    fragment: bytes

    def build(self) -> bytes:
        if len(self.fragment) > MAX_PLAINTEXT + 2048:
            raise TlsError(f"fragment too long: {len(self.fragment)}")
        return (
            struct.pack(
                ">BBBH",
                self.content_type,
                self.version[0],
                self.version[1],
                len(self.fragment),
            )
            + self.fragment
        )

    @classmethod
    def parse(cls, data: bytes) -> tuple["TlsRecord", bytes]:
        """Parse one record off the front of ``data``; returns (record, rest)."""
        if len(data) < HEADER_LEN:
            raise TlsError("truncated record header")
        content_type, major, minor, length = struct.unpack(">BBBH", data[:HEADER_LEN])
        end = HEADER_LEN + length
        if len(data) < end:
            raise TlsError("truncated record fragment")
        return (
            cls(
                content_type=content_type,
                version=(major, minor),
                fragment=data[HEADER_LEN:end],
            ),
            data[end:],
        )


class Rc4RecordLayer:
    """One direction of an RC4-SHA record layer.

    Args:
        rc4_key: 16-byte connection RC4 key (used as-is; no drop).
        mac_key: 20-byte HMAC-SHA1 key.

    The sequence number starts at 0 and increments per record; the RC4
    keystream is continuous across records (paper §2.3: a persistent
    connection encrypts every HTTP request under one evolving keystream).
    """

    def __init__(self, rc4_key: bytes, mac_key: bytes) -> None:
        if len(mac_key) != MAC_LEN:
            raise TlsError(f"MAC key must be {MAC_LEN} bytes, got {len(mac_key)}")
        self._cipher = RC4(rc4_key)
        self._mac_key = mac_key
        self._seq = 0

    @property
    def sequence_number(self) -> int:
        return self._seq

    @property
    def keystream_position(self) -> int:
        """1-indexed position of the *next* keystream byte — used by the
        attack to align targeted plaintext with bias positions."""
        return self._cipher.position + 1

    def _mac(self, content_type: int, plaintext: bytes) -> bytes:
        header = struct.pack(
            ">QBBBH",
            self._seq,
            content_type,
            VERSION_TLS12[0],
            VERSION_TLS12[1],
            len(plaintext),
        )
        return hmac_sha1(self._mac_key, header + plaintext)

    def protect(
        self, plaintext: bytes, *, content_type: int = CONTENT_APPLICATION_DATA
    ) -> TlsRecord:
        """MAC-then-encrypt one record; advances sequence and keystream."""
        if len(plaintext) > MAX_PLAINTEXT:
            raise TlsError(f"plaintext too long: {len(plaintext)}")
        mac = self._mac(content_type, plaintext)
        fragment = self._cipher.crypt(plaintext + mac)
        self._seq += 1
        return TlsRecord(
            content_type=content_type, version=VERSION_TLS12, fragment=fragment
        )

    def unprotect(self, record: TlsRecord) -> bytes:
        """Decrypt and verify one record; returns the plaintext.

        Raises:
            TlsError: on records too short for a MAC or on MAC mismatch.
        """
        if len(record.fragment) < MAC_LEN:
            raise TlsError("record shorter than the MAC")
        decrypted = self._cipher.crypt(record.fragment)
        plaintext, mac = decrypted[:-MAC_LEN], decrypted[-MAC_LEN:]
        expected = self._mac(record.content_type, plaintext)
        self._seq += 1
        if mac != expected:
            raise TlsError("record MAC verification failed")
        return plaintext
