"""TLS substrate and the HTTPS cookie attack (paper §2.3 and §6).

Implements, from scratch: HMAC over hashlib digests, the TLS 1.2 PRF and
RC4-SHA key derivation, the MAC-then-encrypt record layer with a
continuous RC4 keystream, persistent connections, HTTP request layout
control (header prediction, cookie-jar manipulation, keystream
alignment), the JavaScript-driven traffic-generation model, the combined
Fluhrer-McGrew + ABSAB likelihood attack, and the candidate brute-force
oracle.
"""

from .attack import (
    CookieAttackResult,
    CookieLayout,
    CookieStatistics,
    recover_candidates,
    run_attack,
    transition_log_likelihoods,
)
from .bruteforce import PAPER_TEST_RATE, BruteForceOracle, CandidatePruner
from .connection import RecordSniffer, TlsConnection
from .cookies import (
    BASE64_CHARSET,
    CHARSETS,
    COOKIE_CHARSET,
    HEX_CHARSET,
    charset,
    is_valid_cookie_value,
    random_cookie,
)
from .hmac import hmac_digest, hmac_sha1, hmac_sha256
from .http import (
    BROWSER_PROFILES,
    BrowserProfile,
    CookieJar,
    HttpRequestTemplate,
    browser_profile,
    pad_to_alignment,
)
from .mitm import (
    PAPER_REQUEST_RATE,
    PAPER_REQUEST_RATE_BUSY,
    MitmCampaign,
)
from .prf import ConnectionKeys, derive_keys, p_hash, prf
from .record import (
    CONTENT_APPLICATION_DATA,
    Rc4RecordLayer,
    TlsRecord,
)

__all__ = [
    "BASE64_CHARSET",
    "BROWSER_PROFILES",
    "BrowserProfile",
    "BruteForceOracle",
    "CHARSETS",
    "CONTENT_APPLICATION_DATA",
    "COOKIE_CHARSET",
    "CandidatePruner",
    "ConnectionKeys",
    "CookieAttackResult",
    "CookieJar",
    "CookieLayout",
    "CookieStatistics",
    "HEX_CHARSET",
    "HttpRequestTemplate",
    "MitmCampaign",
    "browser_profile",
    "charset",
    "PAPER_REQUEST_RATE",
    "PAPER_REQUEST_RATE_BUSY",
    "PAPER_TEST_RATE",
    "Rc4RecordLayer",
    "RecordSniffer",
    "TlsConnection",
    "TlsRecord",
    "derive_keys",
    "hmac_digest",
    "hmac_sha1",
    "hmac_sha256",
    "is_valid_cookie_value",
    "p_hash",
    "pad_to_alignment",
    "prf",
    "random_cookie",
    "recover_candidates",
    "run_attack",
    "transition_log_likelihoods",
]
