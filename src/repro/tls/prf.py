"""The TLS 1.2 pseudo-random function (RFC 5246 §5) and key derivation.

After the handshake the 48-byte master secret is expanded into the
connection key block; for TLS_RSA_WITH_RC4_128_SHA that is two 20-byte
MAC keys and two 16-byte RC4 keys (client- and server-write).  The paper
models the resulting RC4 key as uniformly random (§2.3); implementing
the real expansion keeps the record layer faithful end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TlsError
from .hmac import hmac_sha256

MASTER_SECRET_LEN = 48
MAC_KEY_LEN = 20  # SHA-1
RC4_KEY_LEN = 16


def p_hash(secret: bytes, seed: bytes, length: int) -> bytes:
    """P_SHA256 expansion: HMAC chaining until ``length`` bytes."""
    if length < 0:
        raise TlsError(f"length must be non-negative, got {length}")
    output = bytearray()
    a_value = seed
    while len(output) < length:
        a_value = hmac_sha256(secret, a_value)
        output.extend(hmac_sha256(secret, a_value + seed))
    return bytes(output[:length])


def prf(secret: bytes, label: bytes, seed: bytes, length: int) -> bytes:
    """TLS 1.2 PRF(secret, label, seed) = P_SHA256(secret, label + seed)."""
    return p_hash(secret, label + seed, length)


@dataclass(frozen=True)
class ConnectionKeys:
    """Key block for TLS_RSA_WITH_RC4_128_SHA."""

    client_mac_key: bytes
    server_mac_key: bytes
    client_rc4_key: bytes
    server_rc4_key: bytes


def derive_keys(
    master_secret: bytes, client_random: bytes, server_random: bytes
) -> ConnectionKeys:
    """Expand the master secret into the RC4-SHA key block (RFC 5246 §6.3).

    Note the seed order for key expansion is server_random + client_random.
    """
    if len(master_secret) != MASTER_SECRET_LEN:
        raise TlsError(
            f"master secret must be {MASTER_SECRET_LEN} bytes, got {len(master_secret)}"
        )
    if len(client_random) != 32 or len(server_random) != 32:
        raise TlsError("client/server randoms must be 32 bytes")
    block = prf(
        master_secret,
        b"key expansion",
        server_random + client_random,
        2 * MAC_KEY_LEN + 2 * RC4_KEY_LEN,
    )
    offset = 0
    client_mac = block[offset : offset + MAC_KEY_LEN]
    offset += MAC_KEY_LEN
    server_mac = block[offset : offset + MAC_KEY_LEN]
    offset += MAC_KEY_LEN
    client_key = block[offset : offset + RC4_KEY_LEN]
    offset += RC4_KEY_LEN
    server_key = block[offset : offset + RC4_KEY_LEN]
    return ConnectionKeys(
        client_mac_key=client_mac,
        server_mac_key=server_mac,
        client_rc4_key=client_key,
        server_rc4_key=server_key,
    )
