"""Man-in-the-middle traffic generation for the cookie attack (paper §6.1, §6.3).

The attacker holds an active MiTM position on the victim's *plaintext*
HTTP traffic (not the TLS channel): they inject JavaScript that issues
cross-origin HTTPS requests from HTML5 WebWorkers in the background.
The browser attaches the secure cookie to each request; the same-origin
policy blocks reading responses, but the attack only needs the requests
on the wire.  The paper sustained ~4450 requests/second this way.

:class:`MitmCampaign` simulates that loop against a real
:class:`~repro.tls.connection.TlsConnection`: each generated request is
encrypted by the victim's record layer and observed by a
:class:`~repro.tls.connection.RecordSniffer`.  For statistics at scales
where running real RC4 per request is infeasible, the benchmark layer
swaps in the sufficient-statistic samplers (see :mod:`repro.simulate`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TlsError
from .connection import RecordSniffer, TlsConnection
from .http import (
    DEFAULT_HEADERS,
    CookieJar,
    HttpRequestTemplate,
    pad_to_alignment,
)

#: Requests/second the paper measured with an idle browser (§6.3).
PAPER_REQUEST_RATE = 4450.0
#: ... and while the victim watched videos.
PAPER_REQUEST_RATE_BUSY = 4100.0


@dataclass
class MitmCampaign:
    """JavaScript-driven HTTPS request generation, simulated.

    Args:
        template: the manipulated request layout (cookie isolated and
            surrounded by known plaintext, §6.1).
        cookie_value: the victim's secret cookie (ground truth held by
            the simulation, never read by the attack code).
        request_rate: requests/second for wall-clock accounting.
    """

    template: HttpRequestTemplate
    cookie_value: bytes
    request_rate: float = PAPER_REQUEST_RATE

    @classmethod
    def prepare(
        cls,
        jar: CookieJar,
        target_cookie: str,
        host: str,
        *,
        injected: list[tuple[str, bytes]] | None = None,
        align_to: int | None = None,
        modulus: int = 256,
        stream_align: bool = True,
        headers: tuple[tuple[str, str], ...] | None = None,
    ) -> "MitmCampaign":
        """Perform the §6.1 jar manipulation and build the campaign.

        Isolates the target cookie, injects known cookies after it,
        optionally pads the layout so the cookie starts at ``align_to``
        modulo ``modulus``, and (by default) pads the *record* length to
        a multiple of 256 so every request on a persistent connection
        sees identical PRGA counter values (the paper's 512-byte
        requests, §6.3).  Record padding goes into a trailing injected
        cookie, after the target, so it never moves the cookie.

        ``headers`` overrides the victim's sniffed header block (one of
        the :data:`repro.tls.http.BROWSER_PROFILES` layouts); ``None``
        keeps the generic Listing-3 template.
        """
        jar.attacker_isolate(target_cookie)
        injected = injected or [
            ("injected1", b"known1"),
            ("injected2", b"knownplaintext2"),
        ]
        jar.attacker_inject(injected)
        cookie_value = jar.cookies[target_cookie]
        template = HttpRequestTemplate(
            host=host,
            headers=DEFAULT_HEADERS if headers is None else tuple(headers),
            cookie_name=target_cookie,
            injected_cookies=tuple(
                (name, value.decode("latin-1")) for name, value in injected
            ),
        )
        if align_to is not None:
            template = pad_to_alignment(
                template, len(cookie_value), align_to, modulus=modulus
            )
        if stream_align:
            template = cls._pad_record_length(template, len(cookie_value))
        return cls(template=template, cookie_value=cookie_value)

    @staticmethod
    def _pad_record_length(
        template: HttpRequestTemplate, cookie_len: int
    ) -> HttpRequestTemplate:
        """Pad with a trailing cookie so record length ≡ 0 (mod 256).

        The encrypted fragment is plaintext + 20-byte HMAC-SHA1; the
        attacker observes the unpadded length on the wire (RC4 adds no
        padding) and sizes the filler accordingly.
        """
        from .record import MAC_LEN

        base_len = (
            len(template.prefix()) + cookie_len + len(template.suffix()) + MAC_LEN
        )
        overhead = len("; pad=")
        needed = (-base_len) % 256
        if needed < overhead + 1:
            needed += 256
        filler = "x" * (needed - overhead)
        return HttpRequestTemplate(
            host=template.host,
            path=template.path,
            headers=template.headers,
            cookie_name=template.cookie_name,
            injected_cookies=template.injected_cookies + (("pad", filler),),
        )

    def request_plaintext(self) -> bytes:
        """One request's plaintext (constant across the campaign)."""
        return self.template.build(self.cookie_value)

    def run(
        self,
        num_requests: int,
        rng: np.random.Generator,
        *,
        reconnect_every: int | None = None,
    ) -> RecordSniffer:
        """Generate ``num_requests`` requests over real TLS connections.

        Args:
            num_requests: requests to send.
            rng: randomness for the (abstracted) handshakes.
            reconnect_every: simulate connection churn by rekeying after
                this many requests (None = one persistent connection).
                The attack tolerates rekeying (§6.3): every fresh
                connection restarts the keystream at position 1, which is
                exactly what the per-position statistics assume.

        Returns:
            A :class:`RecordSniffer` holding every encrypted fragment.
        """
        if num_requests <= 0:
            raise TlsError(f"num_requests must be positive, got {num_requests}")
        sniffer = RecordSniffer()
        plaintext = self.request_plaintext()
        connection = TlsConnection.handshake(rng)
        sent_on_connection = 0
        for _ in range(num_requests):
            if reconnect_every is not None and sent_on_connection >= reconnect_every:
                connection = TlsConnection.handshake(rng)
                sniffer._position = 1  # fresh keystream
                sent_on_connection = 0
            record = connection.client_send(plaintext)
            sniffer.observe(record)
            sent_on_connection += 1
        return sniffer

    def wall_clock_seconds(self, num_requests: int) -> float:
        """Campaign duration at the configured request rate."""
        return num_requests / self.request_rate
