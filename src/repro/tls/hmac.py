"""HMAC (RFC 2104) implemented over hashlib digests.

The TLS record layer MACs every record with HMAC-SHA1 when the
RC4-SHA cipher suite is negotiated (paper §2.3).  We implement the HMAC
construction itself — the test suite cross-checks against the stdlib
``hmac`` module.
"""

from __future__ import annotations

import hashlib

_IPAD = 0x36
_OPAD = 0x5C


def hmac_digest(key: bytes, message: bytes, algorithm: str = "sha1") -> bytes:
    """Compute HMAC(key, message) with the named hashlib algorithm."""
    hasher = getattr(hashlib, algorithm, None)
    if hasher is None:
        raise ValueError(f"unknown hash algorithm {algorithm!r}")
    block_size = hasher().block_size
    if len(key) > block_size:
        key = hasher(key).digest()
    key = key.ljust(block_size, b"\x00")
    inner = hasher(bytes(k ^ _IPAD for k in key) + message).digest()
    return hasher(bytes(k ^ _OPAD for k in key) + inner).digest()


def hmac_sha1(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA1 — the MAC of the RC4-SHA cipher suite (20 bytes)."""
    return hmac_digest(key, message, "sha1")


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 — used by the TLS 1.2 PRF."""
    return hmac_digest(key, message, "sha256")
