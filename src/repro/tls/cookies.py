"""Cookie values and the RFC 6265 character-set restriction (paper §6.2).

RFC 6265 allows a cookie value at most 90 distinct characters (ASCII
without controls, whitespace, double quote, comma, semicolon and
backslash).  The paper uses this to shrink Algorithm 2's search space —
"a tighter bound on the required number of ciphertexts ... even in the
general case" — by looping only over allowed characters.
"""

from __future__ import annotations

import numpy as np


def _build_charset() -> bytes:
    allowed = []
    for code in range(0x21, 0x7F):  # printable, no space, no DEL
        if code in (0x22, 0x2C, 0x3B, 0x5C):  # " , ; \
            continue
        allowed.append(code)
    return bytes(allowed)


#: The 90-character cookie-octet alphabet of RFC 6265 §4.1.1.
COOKIE_CHARSET = _build_charset()

#: Base64-style alphabet many frameworks use for session tokens; a
#: stricter subset callers can opt into for even tighter bounds.
BASE64_CHARSET = bytes(
    sorted(
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/="
    )
)

#: Lowercase-hex alphabet (PHP session ids, many API tokens).  With only
#: 16 allowed values per byte, Algorithm 2's effective search space per
#: position shrinks by a factor ~5.6 vs the RFC 6265 bound.
HEX_CHARSET = b"0123456789abcdef"

#: Named cookie alphabets, from the general RFC 6265 bound down to the
#: framework-specific ones.  Layout metadata (see
#: :data:`repro.tls.http.BROWSER_PROFILES`) references these by name so
#: candidate pruning can be driven declaratively.
CHARSETS: dict[str, bytes] = {
    "rfc6265": COOKIE_CHARSET,
    "base64": BASE64_CHARSET,
    "hex": HEX_CHARSET,
}


def charset(name: str) -> bytes:
    """Look up a named cookie alphabet from :data:`CHARSETS`."""
    try:
        return CHARSETS[name]
    except KeyError:
        known = ", ".join(sorted(CHARSETS))
        raise ValueError(f"unknown cookie charset {name!r}; known: {known}") from None


def random_cookie(
    rng: np.random.Generator, length: int = 16, *, charset: bytes = COOKIE_CHARSET
) -> bytes:
    """A uniformly random cookie value over the given alphabet."""
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if not charset:
        raise ValueError("charset must be non-empty")
    idx = rng.integers(0, len(charset), size=length)
    return bytes(charset[i] for i in idx)


def is_valid_cookie_value(value: bytes, *, charset: bytes = COOKIE_CHARSET) -> bool:
    """True if every byte of ``value`` is in the allowed alphabet."""
    allowed = set(charset)
    return all(b in allowed for b in value)
