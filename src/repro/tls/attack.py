"""The end-to-end HTTPS cookie-recovery attack (paper §6).

Pipeline:

1. **Layout** (§6.1): the MiTM manipulation fixes the cookie's keystream
   position and surrounds it with known plaintext
   (:class:`CookieLayout` captures the result).
2. **Statistics** (§6.3): from each captured encrypted request, collect
   (a) digraph counts at every position pair overlapping the cookie and
   (b) ABSAB differential counts against known digraphs before and after
   the cookie, for every usable gap up to 128.
3. **Likelihoods** (§4.1-§4.3): per position pair, combine the
   Fluhrer–McGrew likelihood (sparse eq 15) with one ABSAB likelihood
   per gap (eq 24) by summation in log domain (eq 25).
4. **Candidates** (§4.4, §6.2): run Algorithm 2 restricted to the
   RFC 6265 cookie alphabet, producing candidates in decreasing
   likelihood.
5. **Brute force** (§6.2): walk the list against the server oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..biases.fluhrer_mcgrew import fm_biased_cells, position_to_counter
from ..biases.mantin_absab import MAX_GAP, absab_alpha, usable_gaps
from ..core.candidates.matrix import CandidateMatrix
from ..core.candidates.viterbi import algorithm2
from ..core.likelihood.digraph import digraph_log_likelihoods
from ..errors import AttackError
from .bruteforce import BruteForceOracle, CandidatePruner
from .connection import RecordSniffer
from .cookies import COOKIE_CHARSET
from .http import HttpRequestTemplate


@dataclass(frozen=True)
class CookieLayout:
    """Where the unknown cookie sits inside the known request plaintext.

    Attributes:
        prefix: known plaintext before the cookie value.
        suffix: known plaintext after the cookie value.
        cookie_len: number of unknown bytes.
        base_offset: 1-indexed keystream position of the first request
            byte (1 for a fresh connection).
    """

    prefix: bytes
    suffix: bytes
    cookie_len: int
    base_offset: int = 1

    @classmethod
    def from_template(
        cls, template: HttpRequestTemplate, cookie_len: int, *, base_offset: int = 1
    ) -> "CookieLayout":
        return cls(
            prefix=template.prefix(),
            suffix=template.suffix(),
            cookie_len=cookie_len,
            base_offset=base_offset,
        )

    @property
    def request_len(self) -> int:
        return len(self.prefix) + self.cookie_len + len(self.suffix)

    @property
    def cookie_span(self) -> tuple[int, int]:
        """Inclusive 1-indexed keystream span of the unknown bytes."""
        start = self.base_offset + len(self.prefix)
        return start, start + self.cookie_len - 1

    @property
    def stream_len(self) -> int:
        """Last keystream position covered by the request."""
        return self.base_offset + self.request_len - 1

    def known_byte(self, position: int) -> int:
        """The known plaintext byte at a keystream position.

        Raises:
            AttackError: if the position is inside the unknown span or
                outside the request.
        """
        start, end = self.cookie_span
        if start <= position <= end:
            raise AttackError(f"position {position} is unknown (cookie byte)")
        index = position - self.base_offset
        if index < 0 or index >= self.request_len:
            raise AttackError(f"position {position} outside the request")
        if position < start:
            return self.prefix[index]
        return self.suffix[index - len(self.prefix) - self.cookie_len]

    def transitions(self) -> list[int]:
        """First positions r of the digraphs (r, r+1) Algorithm 2 needs:
        from (last prefix byte, first cookie byte) through (last cookie
        byte, first suffix byte)."""
        start, end = self.cookie_span
        if start <= self.base_offset:
            raise AttackError("cookie must not start at the first keystream byte")
        return list(range(start - 1, end + 1))


@dataclass
class CookieStatistics:
    """Sufficient statistics for the §6 attack.

    Implements the :class:`repro.capture.SufficientStatistics` protocol:
    snapshots, exact int64 :meth:`merge` (so captures shard across
    processes), canonical-JSON summaries, and NPZ persistence (so
    captures checkpoint and resume across sessions).

    Attributes:
        layout: the request layout these counts belong to.
        fm_counts: int64 (num_transitions, 256, 256) ciphertext digraph
            counts; row t is the digraph at transitions()[t].
        absab_counts: maps (transition_index, gap, side) -> int64 65536
            vector of ciphertext differential counts.  The vectors are
            row views into ``absab_matrix``, one backing int64 array of
            shape (num_alignments, 65536), so the batched capture engine
            and the merge/persistence paths operate on a single
            contiguous block while per-request code keeps the dict API.
        num_requests: requests accumulated.
        max_gap: ABSAB gap cap the alignment set was built with.
    """

    layout: CookieLayout
    fm_counts: np.ndarray
    absab_counts: dict[tuple[int, int, str], np.ndarray]
    num_requests: int = 0
    max_gap: int = MAX_GAP
    absab_matrix: np.ndarray | None = None

    @classmethod
    def empty(
        cls, layout: CookieLayout, *, max_gap: int = MAX_GAP
    ) -> "CookieStatistics":
        transitions = layout.transitions()
        fm_counts = np.zeros((len(transitions), 256, 256), dtype=np.int64)
        keys = cls.alignment_keys(layout, max_gap=max_gap)
        matrix = np.zeros((len(keys), 65536), dtype=np.int64)
        absab = {key: matrix[row] for row, key in enumerate(keys)}
        return cls(
            layout=layout,
            fm_counts=fm_counts,
            absab_counts=absab,
            max_gap=max_gap,
            absab_matrix=matrix,
        )

    @staticmethod
    def alignment_keys(
        layout: CookieLayout, *, max_gap: int = MAX_GAP
    ) -> list[tuple[int, int, str]]:
        """Deterministic (transition, gap, side) order of the ABSAB rows."""
        keys: list[tuple[int, int, str]] = []
        span = layout.cookie_span
        for t, r in enumerate(layout.transitions()):
            for gap, side in usable_gaps(
                r, span, layout.stream_len, max_gap=max_gap
            ):
                keys.append((t, gap, side))
        return keys

    def snapshot(self) -> "CookieStatistics":
        """Independent deep copy (checkpointing / shard seeds)."""
        copy = CookieStatistics.empty(self.layout, max_gap=self.max_gap)
        copy.fm_counts += self.fm_counts
        if self.absab_matrix is not None:
            copy.absab_matrix += self.absab_matrix
        else:
            for key, counts in self.absab_counts.items():
                copy.absab_counts[key] += counts
        copy.num_requests = self.num_requests
        return copy

    def merge(self, other: "CookieStatistics") -> "CookieStatistics":
        """Exact int64 merge of shard counts into ``self`` (in place).

        Associative and commutative — shards captured by independent
        processes combine to the same counters in any order.
        """
        if self.layout != other.layout or self.max_gap != other.max_gap:
            raise AttackError("cannot merge statistics of different layouts")
        if list(self.absab_counts) != list(other.absab_counts):
            raise AttackError("cannot merge statistics with different alignments")
        self.fm_counts += other.fm_counts
        if self.absab_matrix is not None and other.absab_matrix is not None:
            self.absab_matrix += other.absab_matrix
        else:
            for key, counts in other.absab_counts.items():
                self.absab_counts[key] += counts
        self.num_requests += other.num_requests
        return self

    def to_jsonable(self) -> dict:
        """Canonical-JSON-ready summary (counters stay in NPZ files)."""
        return {
            "type": "cookie-statistics",
            "num_requests": int(self.num_requests),
            "max_gap": int(self.max_gap),
            "layout": {
                "prefix_len": len(self.layout.prefix),
                "suffix_len": len(self.layout.suffix),
                "cookie_len": self.layout.cookie_len,
                "base_offset": self.layout.base_offset,
            },
            "fm_transitions": int(self.fm_counts.shape[0]),
            "fm_total": int(self.fm_counts.sum()),
            "absab_alignments": len(self.absab_counts),
            "absab_total": int(
                sum(int(c.sum()) for c in self.absab_counts.values())
            ),
        }

    def save(self, path, *, extra: dict | None = None):
        """NPZ persistence via the dataset store (resumable captures)."""
        from ..datasets.store import save_statistics

        matrix = self.absab_matrix
        if matrix is None:
            matrix = np.stack(list(self.absab_counts.values())) if (
                self.absab_counts
            ) else np.zeros((0, 65536), dtype=np.int64)
        meta = {
            "layout": {
                "prefix": self.layout.prefix.decode("latin-1"),
                "suffix": self.layout.suffix.decode("latin-1"),
                "cookie_len": self.layout.cookie_len,
                "base_offset": self.layout.base_offset,
            },
            "max_gap": self.max_gap,
            "num_requests": self.num_requests,
            "extra": extra or {},
        }
        return save_statistics(
            path,
            "cookie-statistics",
            {"fm_counts": self.fm_counts, "absab_matrix": matrix},
            meta,
        )

    @classmethod
    def load(cls, path) -> tuple["CookieStatistics", dict]:
        """Load statistics saved by :meth:`save`; returns (stats, extra)."""
        from ..datasets.store import load_statistics

        arrays, meta = load_statistics(path, "cookie-statistics")
        fields = meta["layout"]
        layout = CookieLayout(
            prefix=fields["prefix"].encode("latin-1"),
            suffix=fields["suffix"].encode("latin-1"),
            cookie_len=fields["cookie_len"],
            base_offset=fields["base_offset"],
        )
        stats = cls.empty(layout, max_gap=meta["max_gap"])
        if arrays["fm_counts"].shape != stats.fm_counts.shape:
            raise AttackError(f"{path}: fm_counts shape mismatch")
        if arrays["absab_matrix"].shape != stats.absab_matrix.shape:
            raise AttackError(f"{path}: absab_matrix shape mismatch")
        stats.fm_counts += arrays["fm_counts"]
        stats.absab_matrix += arrays["absab_matrix"]
        stats.num_requests = meta["num_requests"]
        return stats, meta.get("extra", {})

    def ingest_fragment(self, fragment: bytes, offset: int = 1) -> None:
        """Update counts from one encrypted request fragment.

        On a persistent connection successive requests start deeper in
        the keystream; the attacker pads records to a multiple of 256
        (the paper's 512-byte requests, §6.3) so every request sees the
        same PRGA counter values.  Accordingly any offset congruent to
        the layout's base modulo 256 is accepted — the Fluhrer–McGrew
        model depends only on r mod 256 and ABSAB is position-free.

        Args:
            fragment: the RC4-encrypted record fragment (ciphertext).
            offset: keystream position of the fragment's first byte.
        """
        layout = self.layout
        if (offset - layout.base_offset) % 256 != 0:
            raise AttackError(
                f"fragment offset {offset} incompatible with layout base "
                f"{layout.base_offset} modulo 256 — add request padding"
            )
        if len(fragment) < layout.request_len:
            raise AttackError("fragment shorter than the request layout")

        def cbyte(position: int) -> int:
            return fragment[position - layout.base_offset]

        transitions = layout.transitions()
        for t, r in enumerate(transitions):
            self.fm_counts[t, cbyte(r), cbyte(r + 1)] += 1
        for (t, gap, side), counts in self.absab_counts.items():
            r = transitions[t]
            if side == "after":
                p1, p2 = r + 2 + gap, r + 3 + gap
            else:
                p1, p2 = r - 2 - gap, r - 1 - gap
            d1 = cbyte(r) ^ cbyte(p1)
            d2 = cbyte(r + 1) ^ cbyte(p2)
            counts[(d1 << 8) | d2] += 1
        self.num_requests += 1

    def ingest_sniffer(self, sniffer: RecordSniffer) -> None:
        """Ingest every fragment a passive observer collected."""
        for fragment, offset in zip(sniffer.fragments, sniffer.offsets):
            self.ingest_fragment(fragment, offset)


#: Flat differential index (mu1 << 8) | mu2 of every (mu1, mu2) cell;
#: XORing it with a known-pair key gives eq 24's gather index directly.
_BASE_IDX = (
    (np.arange(256, dtype=np.intp)[:, None] << 8)
    | np.arange(256, dtype=np.intp)[None, :]
).reshape(-1)


def transition_log_likelihoods(stats: CookieStatistics) -> np.ndarray:
    """Combined FM + ABSAB log-likelihoods per transition (§4.3, eq 25).

    The ABSAB estimates (eq 22/24) are computed for *all* alignments at
    once on the contiguous ``(A, 65536)`` backing matrix — one
    broadcast multiply-add for every eq 22 vector, then one 65536-entry
    gather per alignment via the XOR identity
    ``((mu1^k1)<<8) | (mu2^k2) == ((mu1<<8)|mu2) ^ ((k1<<8)|k2)`` —
    instead of re-deriving each alignment from its dict entry.  The
    per-element operations and the eq 25 accumulation order match the
    per-alignment reference (:func:`absab_log_likelihoods` +
    :func:`combine_likelihoods`) bit for bit.

    Returns:
        float64 (num_transitions, 256, 256) ready for Algorithm 2.
    """
    layout = stats.layout
    transitions = layout.transitions()
    total = float(stats.num_requests)
    if total <= 0:
        raise AttackError("no requests ingested")

    keys = list(stats.absab_counts)
    if stats.absab_matrix is not None:
        counts_all = stats.absab_matrix.astype(np.float64)
    elif keys:
        counts_all = np.stack(
            [np.asarray(c, dtype=np.float64) for c in stats.absab_counts.values()]
        )
    else:
        counts_all = np.zeros((0, 65536), dtype=np.float64)
    # Eq 22 for every alignment row at once.  The per-gap scalars are
    # computed exactly as the scalar reference does, so the broadcast
    # multiply-add below reproduces its rows bitwise.
    gap_scalars: dict[int, tuple[float, float]] = {}
    coef = np.empty(len(keys), dtype=np.float64)
    offset = np.empty(len(keys), dtype=np.float64)
    for row, (_, gap, _) in enumerate(keys):
        if gap not in gap_scalars:
            alpha = absab_alpha(gap)
            log_alpha = np.log(alpha)
            log_u = np.log((1.0 - alpha) / (65536 - 1))
            gap_scalars[gap] = (log_alpha - log_u, total * log_u)
        coef[row], offset[row] = gap_scalars[gap]
    lam_hat = counts_all * coef[:, None] + offset[:, None]

    rows_by_transition: dict[int, list[int]] = {}
    for row, (t, _, _) in enumerate(keys):
        rows_by_transition.setdefault(t, []).append(row)

    loglik = np.empty((len(transitions), 256, 256), dtype=np.float64)
    for t, r in enumerate(transitions):
        cells = fm_biased_cells(position_to_counter(r))
        mass = sum(p for _, p in cells)
        uniform_p = (1.0 - mass) / (65536 - len(cells))
        combined = digraph_log_likelihoods(
            stats.fm_counts[t], cells, uniform_p, total
        )
        for row in rows_by_transition.get(t, ()):
            _, gap, side = keys[row]
            if side == "after":
                known = (layout.known_byte(r + 2 + gap), layout.known_byte(r + 3 + gap))
            else:
                known = (layout.known_byte(r - 2 - gap), layout.known_byte(r - 1 - gap))
            key = (known[0] << 8) | known[1]
            combined += lam_hat[row, _BASE_IDX ^ key].reshape(256, 256)
        loglik[t] = combined
    return loglik


def recover_candidates(
    stats: CookieStatistics,
    num_candidates: int,
    *,
    charset: bytes = COOKIE_CHARSET,
) -> CandidateMatrix:
    """Likelihoods -> Algorithm 2 candidate matrix over the cookie alphabet."""
    layout = stats.layout
    loglik = transition_log_likelihoods(stats)
    start, end = layout.cookie_span
    first = layout.known_byte(start - 1)
    last = layout.known_byte(end + 1)
    return algorithm2(loglik, first, last, num_candidates, charset=charset)


@dataclass(frozen=True)
class CookieAttackResult:
    """Outcome of the full §6 pipeline.

    ``pruned`` counts the candidates the layout-aware pruner dropped
    before they reached the server oracle (0 when no pruner ran or the
    generation alphabet already matched the layout's).
    """

    cookie: bytes
    rank: int
    attempts: int
    num_requests: int
    pruned: int = 0


def run_attack(
    stats: CookieStatistics,
    oracle: BruteForceOracle,
    *,
    num_candidates: int = 1 << 23,
    charset: bytes = COOKIE_CHARSET,
    pruner: CandidatePruner | None = None,
) -> CookieAttackResult:
    """Candidate generation plus brute force against the server oracle.

    Args:
        stats: sufficient statistics of the captured requests.
        oracle: the server accepting exactly one cookie value.
        num_candidates: Algorithm 2 list size.
        charset: alphabet Algorithm 2 enumerates over (§6.2).
        pruner: optional layout-aware filter applied between candidate
            generation and the oracle — used when the layout metadata
            declares a tighter alphabet than ``charset``.
    """
    candidates = recover_candidates(stats, num_candidates, charset=charset)
    cookie, attempts, rank = oracle.search_matrix(candidates.matrix, pruner=pruner)
    return CookieAttackResult(
        cookie=cookie,
        rank=rank,
        attempts=attempts,
        num_requests=stats.num_requests,
        pruned=pruner.pruned if pruner is not None else 0,
    )
