"""A persistent TLS connection carrying HTTP requests (paper §2.3, §6.3).

Wires the PRF key derivation and the RC4 record layer into a
client/server pair sharing one master secret.  Persistence matters to the
attack twice over: RC4 is initialised once per connection (so long-term
biases accumulate within a connection) and HTTP keep-alive removes
per-request handshakes (so the victim can reach thousands of requests per
second, §6.3).
"""

from __future__ import annotations

import numpy as np

from ..errors import TlsError
from .prf import MASTER_SECRET_LEN, derive_keys
from .record import Rc4RecordLayer, TlsRecord


class TlsConnection:
    """Both endpoints of one RC4-SHA TLS connection (post-handshake).

    The handshake itself (RSA key exchange, etc.) is out of scope for the
    attack — the paper assumes it completed — so the constructor starts
    from the negotiated master secret and randoms.
    """

    def __init__(
        self,
        master_secret: bytes,
        client_random: bytes,
        server_random: bytes,
    ) -> None:
        keys = derive_keys(master_secret, client_random, server_random)
        self._client_write = Rc4RecordLayer(keys.client_rc4_key, keys.client_mac_key)
        self._server_read = Rc4RecordLayer(keys.client_rc4_key, keys.client_mac_key)
        self._server_write = Rc4RecordLayer(keys.server_rc4_key, keys.server_mac_key)
        self._client_read = Rc4RecordLayer(keys.server_rc4_key, keys.server_mac_key)
        self.client_rc4_key = keys.client_rc4_key

    @classmethod
    def handshake(cls, rng: np.random.Generator) -> "TlsConnection":
        """Fresh connection with random secret/randoms (abstracted handshake)."""
        master = rng.integers(0, 256, MASTER_SECRET_LEN, dtype=np.uint8).tobytes()
        c_rand = rng.integers(0, 256, 32, dtype=np.uint8).tobytes()
        s_rand = rng.integers(0, 256, 32, dtype=np.uint8).tobytes()
        return cls(master, c_rand, s_rand)

    @property
    def client_keystream_position(self) -> int:
        """1-indexed next client-write keystream position (attack alignment)."""
        return self._client_write.keystream_position

    def client_send(self, plaintext: bytes) -> TlsRecord:
        """Client encrypts one application-data record."""
        return self._client_write.protect(plaintext)

    def server_receive(self, record: TlsRecord) -> bytes:
        """Server decrypts and MAC-verifies one client record."""
        return self._server_read.unprotect(record)

    def server_send(self, plaintext: bytes) -> TlsRecord:
        """Server encrypts one response record."""
        return self._server_write.protect(plaintext)

    def client_receive(self, record: TlsRecord) -> bytes:
        """Client decrypts and MAC-verifies one server record."""
        return self._client_read.unprotect(record)


class RecordSniffer:
    """A passive observer of the client->server record stream.

    Collects the raw encrypted fragments along with the absolute
    keystream offset at which each began — everything the §6 attack needs
    from its man-in-the-middle position.
    """

    def __init__(self) -> None:
        self.fragments: list[bytes] = []
        self.offsets: list[int] = []
        self._position = 1

    def observe(self, record: TlsRecord) -> None:
        if not record.fragment:
            raise TlsError("observed an empty record")
        self.fragments.append(record.fragment)
        self.offsets.append(self._position)
        self._position += len(record.fragment)
