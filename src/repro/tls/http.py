"""HTTP request layout control for the cookie attack (paper §6.1, Listing 3).

The attacker needs the targeted cookie at a *predictable keystream
position*, surrounded by known plaintext on both sides.  Three levers
accomplish this, all implemented here:

- **header prediction**: the request line and headers preceding the
  Cookie header are constant per browser/site and sniffable from
  parallel plaintext HTTP traffic;
- **cookie-jar manipulation**: an insecure HTTP channel can overwrite or
  remove ``secure`` cookies (they are confidential, not integrity
  protected), pushing the target to the front of the Cookie header and
  injecting attacker cookies after it;
- **alignment padding**: the length of injected cookie values is tuned
  so the target sits at a fixed position modulo 256 (Fluhrer–McGrew
  positions repeat with the PRGA counter).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TlsError

#: The header block of the paper's generic Listing-3 victim; kept as the
#: default (and the ``generic`` browser profile) so layouts derived from
#: it stay byte-identical across releases.
DEFAULT_HEADERS: tuple[tuple[str, str], ...] = (
    ("User-Agent", "Mozilla/5.0 (X11; Linux i686; rv:32.0) Gecko/20100101"),
    ("Accept", "text/html,application/xhtml+xml"),
    ("Accept-Language", "en-US,en;q=0.5"),
    ("Accept-Encoding", "gzip, deflate"),
    ("Connection", "keep-alive"),
)


@dataclass(frozen=True)
class HttpRequestTemplate:
    """A deterministic HTTP GET request with a controlled Cookie header.

    Attributes:
        host: target host (e.g. ``site.com``).
        path: request path.
        headers: ordered headers before the Cookie header (name, value);
            constant per victim browser, hence known plaintext.
        cookie_name: name of the targeted cookie (e.g. ``auth``).
        injected_cookies: attacker-injected (name, value) pairs appearing
            after the target in the Cookie header.
    """

    host: str
    path: str = "/"
    headers: tuple[tuple[str, str], ...] = DEFAULT_HEADERS
    cookie_name: str = "auth"
    injected_cookies: tuple[tuple[str, str], ...] = ()

    def prefix(self) -> bytes:
        """Everything before the cookie value — known plaintext."""
        lines = [f"GET {self.path} HTTP/1.1", f"Host: {self.host}"]
        lines.extend(f"{name}: {value}" for name, value in self.headers)
        head = "\r\n".join(lines) + "\r\n"
        return (head + f"Cookie: {self.cookie_name}=").encode("ascii")

    def suffix(self) -> bytes:
        """Everything after the cookie value — also known plaintext."""
        parts = "".join(
            f"; {name}={value}" for name, value in self.injected_cookies
        )
        return (parts + "\r\n\r\n").encode("ascii")

    def build(self, cookie_value: bytes) -> bytes:
        """The full request plaintext for a given cookie value."""
        return self.prefix() + cookie_value + self.suffix()

    def cookie_span(self, cookie_len: int) -> tuple[int, int]:
        """1-indexed (first, last) plaintext positions of the cookie value."""
        start = len(self.prefix()) + 1
        return start, start + cookie_len - 1


@dataclass(frozen=True)
class BrowserProfile:
    """Layout metadata for one victim client (paper §6.1, header prediction).

    The request line and headers a browser emits are constant per
    browser/site and sniffable from parallel plaintext HTTP traffic, so
    each profile pins a different amount of known plaintext before the
    Cookie header — shifting the cookie's keystream offset and thereby
    the set of Fluhrer–McGrew transitions the attack combines.

    Profiles also record the *cookie alphabet* the simulated victim site
    issues to that client (RFC 6265 in general; tighter for the
    framework-token scenarios), which is what layout-aware candidate
    pruning (:class:`repro.tls.bruteforce.CandidatePruner`) consumes.

    Attributes:
        name: profile key in :data:`BROWSER_PROFILES`.
        headers: ordered request headers preceding the Cookie header.
        cookie_charset_name: named alphabet in
            :data:`repro.tls.cookies.CHARSETS` for this scenario's
            cookie values.
    """

    name: str
    headers: tuple[tuple[str, str], ...]
    cookie_charset_name: str = "rfc6265"

    @property
    def cookie_charset(self) -> bytes:
        from .cookies import charset

        return charset(self.cookie_charset_name)

    def template(
        self,
        host: str,
        *,
        path: str = "/",
        cookie_name: str = "auth",
        injected_cookies: tuple[tuple[str, str], ...] = (),
    ) -> HttpRequestTemplate:
        """Build this browser's request template for a target host."""
        return HttpRequestTemplate(
            host=host,
            path=path,
            headers=self.headers,
            cookie_name=cookie_name,
            injected_cookies=injected_cookies,
        )


#: Per-client request templates (era-appropriate header blocks), each
#: shifting the cookie offset and the surrounding known plaintext.  The
#: ``generic`` profile is the paper's Listing-3 victim and stays the
#: default everywhere; ``safari``/``curl`` model sites that hand those
#: clients base64 session tokens / hex API tokens, giving the pruner a
#: tighter alphabet than the RFC 6265 bound.
BROWSER_PROFILES: dict[str, BrowserProfile] = {
    "generic": BrowserProfile(name="generic", headers=DEFAULT_HEADERS),
    "chrome": BrowserProfile(
        name="chrome",
        headers=(
            ("User-Agent",
             "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 "
             "(KHTML, like Gecko) Chrome/43.0.2357.65 Safari/537.36"),
            ("Accept",
             "text/html,application/xhtml+xml,application/xml;q=0.9,"
             "image/webp,*/*;q=0.8"),
            ("Accept-Language", "en-US,en;q=0.8"),
            ("Accept-Encoding", "gzip, deflate, sdch"),
            ("Connection", "keep-alive"),
            ("Upgrade-Insecure-Requests", "1"),
        ),
    ),
    "firefox": BrowserProfile(
        name="firefox",
        headers=(
            ("User-Agent",
             "Mozilla/5.0 (X11; Linux x86_64; rv:38.0) Gecko/20100101 "
             "Firefox/38.0"),
            ("Accept",
             "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8"),
            ("Accept-Language", "en-US,en;q=0.5"),
            ("Accept-Encoding", "gzip, deflate"),
            ("Connection", "keep-alive"),
        ),
    ),
    "safari": BrowserProfile(
        name="safari",
        headers=(
            ("User-Agent",
             "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_10_3) "
             "AppleWebKit/600.6.3 (KHTML, like Gecko) Version/8.0.6 "
             "Safari/600.6.3"),
            ("Accept",
             "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8"),
            ("Accept-Language", "en-us"),
            ("Accept-Encoding", "gzip, deflate"),
            ("Connection", "keep-alive"),
        ),
        cookie_charset_name="base64",
    ),
    "curl": BrowserProfile(
        name="curl",
        headers=(
            ("User-Agent", "curl/7.38.0"),
            ("Accept", "*/*"),
        ),
        cookie_charset_name="hex",
    ),
}


def browser_profile(name: str) -> BrowserProfile:
    """Look up a browser profile, with a helpful failure mode."""
    try:
        return BROWSER_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(BROWSER_PROFILES))
        raise TlsError(
            f"unknown browser profile {name!r}; known: {known}"
        ) from None


def pad_to_alignment(
    template: HttpRequestTemplate,
    cookie_len: int,
    target_offset: int,
    *,
    modulus: int = 256,
    pad_cookie_name: str = "p",
) -> HttpRequestTemplate:
    """Inject a padding cookie so the target lands on ``target_offset``
    (mod ``modulus``) in the keystream (paper §6.3).

    The attacker learns the unpadded request length by observing one
    encrypted request (RC4 adds no padding, so lengths are visible), then
    pads with an extra injected cookie.  Padding is *prepended* to the
    injected-cookie list but placed after the target in the Cookie
    header, so the known-plaintext suffix remains known.

    Args:
        template: the base request template.
        cookie_len: length of the targeted cookie value.
        target_offset: desired 1-indexed start position mod ``modulus``.
        modulus: alignment modulus (256 aligns Fluhrer–McGrew positions).
        pad_cookie_name: name for the padding cookie.

    Returns:
        A new template whose cookie start satisfies the alignment.
    """
    if not 0 <= target_offset < modulus:
        raise TlsError(f"target_offset must be in [0, {modulus}), got {target_offset}")
    current, _ = template.cookie_span(cookie_len)
    shift = (target_offset - current) % modulus
    if shift == 0:
        return template
    # Injected cookies sit *after* the target, so they cannot move it;
    # the shift comes from lengthening a header that precedes the Cookie
    # line.  Extending the User-Agent value by exactly `shift` bytes
    # (one space + shift-1 filler chars) is invisible to the server.
    name, value = template.headers[0]
    padded_headers = ((name, value + " " + "x" * (shift - 1)),)
    new_headers = padded_headers + template.headers[1:]
    padded = HttpRequestTemplate(
        host=template.host,
        path=template.path,
        headers=new_headers,
        cookie_name=template.cookie_name,
        injected_cookies=template.injected_cookies,
    )
    got, _ = padded.cookie_span(cookie_len)
    if got % modulus != target_offset % modulus:
        raise TlsError("alignment padding failed to land on the target offset")
    return padded


@dataclass
class CookieJar:
    """The victim browser's cookie jar for one site, with the §6.1
    manipulations an active attacker can perform over plain HTTP."""

    cookies: dict[str, bytes] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)

    def set_cookie(self, name: str, value: bytes, *, secure: bool = False) -> None:
        """Set a cookie (the ``secure`` attribute does not protect
        integrity: the insecure channel may still overwrite it)."""
        if name not in self.cookies:
            self.order.append(name)
        self.cookies[name] = bytes(value)

    def remove_cookie(self, name: str) -> None:
        self.cookies.pop(name, None)
        if name in self.order:
            self.order.remove(name)

    def attacker_isolate(self, target: str) -> None:
        """Remove every cookie except the target, pushing it to the front
        of the Cookie header (paper §6.1)."""
        if target not in self.cookies:
            raise TlsError(f"target cookie {target!r} not present")
        for name in list(self.order):
            if name != target:
                self.remove_cookie(name)

    def attacker_inject(self, pairs: list[tuple[str, bytes]]) -> None:
        """Append attacker-chosen cookies after the target."""
        for name, value in pairs:
            self.set_cookie(name, value)

    def cookie_header(self) -> str:
        """The Cookie header value in jar order."""
        return "; ".join(
            f"{name}={self.cookies[name].decode('latin-1')}" for name in self.order
        )
