"""Sample-size / power arithmetic for bias detection.

The paper could afford 2**44+ keystreams; this reproduction cannot, so we
make the trade-off explicit: for a target relative bias q on a cell with
null probability p, how many samples are needed before a two-sided
proportion test at level alpha rejects with the desired power?  These
functions size the scaled-down benchmarks and let the benchmark notes state
precisely which paper biases are detectable at which scale.

Standard normal-approximation power analysis for a one-sample proportion:
to detect p1 = p (1 + q) against p0 = p with two-sided level alpha and
power 1 - beta,

    N ~= ( z_{alpha/2} sqrt(p0 (1-p0)) + z_beta sqrt(p1 (1-p1)) )^2
         / (p1 - p0)^2
"""

from __future__ import annotations

import numpy as np
from scipy import stats as _scipy_stats


def required_samples(
    null_p: float,
    relative_bias: float,
    *,
    alpha: float = 1e-4,
    power: float = 0.95,
) -> int:
    """Samples needed to detect a relative bias ``q`` on a cell of prob ``p``."""
    if not 0.0 < null_p < 1.0:
        raise ValueError(f"null_p must be in (0, 1), got {null_p}")
    if relative_bias == 0.0:
        raise ValueError("relative_bias must be non-zero")
    if not 0.0 < alpha < 1.0 or not 0.0 < power < 1.0:
        raise ValueError("alpha and power must be in (0, 1)")
    alt_p = null_p * (1.0 + relative_bias)
    if not 0.0 < alt_p < 1.0:
        raise ValueError(f"alternative probability {alt_p} out of range")
    z_alpha = _scipy_stats.norm.isf(alpha / 2.0)
    z_beta = _scipy_stats.norm.isf(1.0 - power)
    numer = z_alpha * np.sqrt(null_p * (1 - null_p)) + z_beta * np.sqrt(
        alt_p * (1 - alt_p)
    )
    return int(np.ceil((numer / (alt_p - null_p)) ** 2))


def detectable_relative_bias(
    null_p: float,
    samples: int,
    *,
    alpha: float = 1e-4,
    power: float = 0.95,
) -> float:
    """The smallest relative bias detectable with ``samples`` observations.

    Inverse of :func:`required_samples` (via the symmetric approximation
    p1(1-p1) ~= p0(1-p0), accurate for the tiny cell probabilities we deal
    with).
    """
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    if not 0.0 < null_p < 1.0:
        raise ValueError(f"null_p must be in (0, 1), got {null_p}")
    z_alpha = _scipy_stats.norm.isf(alpha / 2.0)
    z_beta = _scipy_stats.norm.isf(1.0 - power)
    delta = (z_alpha + z_beta) * np.sqrt(null_p * (1 - null_p) / samples)
    return float(delta / null_p)
