"""Holm's step-down method for family-wise error control (paper §3.1).

The paper runs thousands of hypothesis tests per dataset and controls the
probability of even a single false positive with Holm's method.  Holm's
procedure is uniformly more powerful than plain Bonferroni and needs no
independence assumptions.
"""

from __future__ import annotations

import numpy as np


def holm(p_values: np.ndarray, alpha: float) -> np.ndarray:
    """Holm step-down multiple-testing correction.

    Sorts the p-values ascending and rejects H_(i) while
    ``p_(i) <= alpha / (m - i)`` (0-indexed); the first failure stops the
    procedure, guaranteeing FWER <= alpha.

    Args:
        p_values: 1-D array of raw p-values.
        alpha: family-wise error rate to control.

    Returns:
        Boolean array, True where the hypothesis is rejected.
    """
    p_values = np.asarray(p_values, dtype=np.float64)
    if p_values.ndim != 1:
        raise ValueError(f"p_values must be 1-D, got shape {p_values.shape}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    m = p_values.size
    if m == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(p_values)
    thresholds = alpha / (m - np.arange(m))
    sorted_ok = p_values[order] <= thresholds
    # Step-down: rejection stops at the first failure.
    cutoff = int(np.argmin(sorted_ok)) if not sorted_ok.all() else m
    rejected = np.zeros(m, dtype=bool)
    rejected[order[:cutoff]] = True
    return rejected


def holm_adjusted(p_values: np.ndarray) -> np.ndarray:
    """Holm-adjusted p-values (monotone, comparable directly to alpha)."""
    p_values = np.asarray(p_values, dtype=np.float64)
    if p_values.ndim != 1:
        raise ValueError(f"p_values must be 1-D, got shape {p_values.shape}")
    m = p_values.size
    if m == 0:
        return np.zeros(0)
    order = np.argsort(p_values)
    scaled = p_values[order] * (m - np.arange(m))
    adjusted_sorted = np.minimum(1.0, np.maximum.accumulate(scaled))
    adjusted = np.empty(m)
    adjusted[order] = adjusted_sorted
    return adjusted
