"""Statistical hypothesis-testing framework for bias hunting (paper §3.1).

The paper detects biases by rejecting one of two null hypotheses:

- *single-byte*: a keystream byte is uniformly distributed — tested with
  a chi-squared goodness-of-fit test (:func:`chi2_uniformity_test`);
- *double-byte*: two keystream bytes are independent — tested with the
  Fuchs–Kenett M-test (:func:`m_test`), which is asymptotically more
  powerful than the chi-squared independence test when only a few cells
  are outliers (exactly the Fluhrer–McGrew situation: at most 8 of 65536
  pairs biased).

Per-cell follow-up uses two-sided proportion tests
(:func:`proportion_test`), and the family-wise error rate over many tests
is controlled with Holm's method (:func:`holm`).  The rejection threshold
used throughout the paper — p < 1e-4 — is exposed as
:data:`PAPER_ALPHA`.
"""

from .chi2 import chi2_gof_test, chi2_uniformity_test
from .detect import (
    BiasDetector,
    DetectedCell,
    DetectionReport,
    relative_bias,
)
from .llr import llr_model_comparison
from .mtest import m_test
from .multiple import holm
from .power import required_samples, detectable_relative_bias
from .proportion import proportion_test, proportion_test_many

PAPER_ALPHA = 1e-4

__all__ = [
    "PAPER_ALPHA",
    "BiasDetector",
    "DetectedCell",
    "DetectionReport",
    "chi2_gof_test",
    "chi2_uniformity_test",
    "detectable_relative_bias",
    "holm",
    "llr_model_comparison",
    "m_test",
    "proportion_test",
    "proportion_test_many",
    "relative_bias",
    "required_samples",
]
