"""The M-test of Fuchs and Kenett (paper §3.1, double-byte hypothesis).

Fuchs & Kenett (1980) propose testing a multinomial (or two-way
contingency table) against a null model via the *maximum* absolute
adjusted standardized residual rather than the sum of squares.  When only
a few cells deviate — the situation for RC4 digraph biases, where at most
8 of 65536 value pairs are clearly biased — the M-test is asymptotically
more powerful than the chi-squared test.

For a table of counts ``n_kl`` with total N and null cell probabilities
``p_kl`` (here: the independence model built from the table's margins),
the adjusted standardized residual of cell (k, l) is::

    z_kl = (n_kl - N p_kl) / sqrt(N p_kl (1 - p_row)(1 - p_col))

and the M statistic is ``max |z_kl|``.  Under the null each ``z_kl`` is
asymptotically standard normal, so a conservative p-value follows from
the Bonferroni/union bound ``p <= K * 2 * Phi(-M)`` for K cells (this is
the form Fuchs & Kenett give for practical use).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class MTestResult:
    """Outcome of an M-test for independence of a two-way table."""

    statistic: float
    p_value: float
    worst_cell: tuple[int, int]
    residuals: np.ndarray

    def rejects(self, alpha: float) -> bool:
        """True if independence is rejected at level ``alpha``."""
        return self.p_value < alpha


def m_test(table: np.ndarray) -> MTestResult:
    """Fuchs–Kenett M-test for independence of a two-way count table.

    The null hypothesis is the paper's double-byte hypothesis: the two
    keystream bytes are independent (NOT that the pair is uniform — see
    §3.1 for why uniformity is the wrong null when single-byte biases
    exist).  The independence model is estimated from the margins.

    Args:
        table: 2-D array of non-negative counts, shape (K, L).

    Returns:
        An :class:`MTestResult` with the max |adjusted residual|, its
        Bonferroni-bounded p-value, the offending cell, and the full
        residual matrix for follow-up analysis.
    """
    table = np.asarray(table, dtype=np.float64)
    if table.ndim != 2:
        raise ValueError(f"table must be 2-D, got shape {table.shape}")
    if np.any(table < 0):
        raise ValueError("counts must be non-negative")
    total = table.sum()
    if total <= 0:
        raise ValueError("table must contain at least one observation")
    row_p = table.sum(axis=1) / total
    col_p = table.sum(axis=0) / total
    expected = total * np.outer(row_p, col_p)
    # Adjusted standardized residuals (Haberman); cells with an empty row
    # or column have no information and get residual 0.
    denom = expected * np.outer(1.0 - row_p, 1.0 - col_p)
    with np.errstate(divide="ignore", invalid="ignore"):
        residuals = np.where(denom > 0, (table - expected) / np.sqrt(denom), 0.0)
    flat_idx = int(np.argmax(np.abs(residuals)))
    worst = np.unravel_index(flat_idx, residuals.shape)
    statistic = float(abs(residuals[worst]))
    cells = residuals.size
    # Union bound over cells; two-sided.
    p_value = float(min(1.0, cells * 2.0 * _scipy_stats.norm.sf(statistic)))
    return MTestResult(
        statistic=statistic,
        p_value=p_value,
        worst_cell=(int(worst[0]), int(worst[1])),
        residuals=residuals,
    )
