"""Bias detection pipeline (paper §3.1 end-to-end).

Given counter arrays from :mod:`repro.datasets`, the detector runs:

1. a chi-squared uniformity test per single-byte position;
2. a Fuchs–Kenett M-test per position pair (null = independence);
3. per-cell two-sided proportion tests for flagged pairs, against the
   *independence-expected* probability (product of the empirical margins),
   so detected cells measure dependency rather than single-byte bias;
4. Holm's correction across each family of tests;
5. relative-bias reporting: the |q| of ``s = p (1 + q)`` where ``p`` is
   the single-byte-expected probability and ``s`` the observed pair
   probability (this is the y-axis of the paper's Figures 4 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .chi2 import chi2_uniformity_test
from .mtest import m_test
from .multiple import holm
from .proportion import proportion_test_many


@dataclass(frozen=True)
class DetectedCell:
    """A value pair flagged as dependent by the per-cell follow-up test."""

    positions: tuple[int, int]
    values: tuple[int, int]
    observed_p: float
    expected_p: float
    relative_bias: float
    p_value: float

    @property
    def sign(self) -> int:
        """+1 for a positive bias, -1 for a negative bias (paper §2.1.1)."""
        return 1 if self.relative_bias >= 0 else -1


@dataclass
class DetectionReport:
    """Aggregated output of a detection run."""

    biased_positions: list[int] = field(default_factory=list)
    position_p_values: dict[int, float] = field(default_factory=dict)
    dependent_pairs: list[tuple[int, int]] = field(default_factory=list)
    pair_p_values: dict[tuple[int, int], float] = field(default_factory=dict)
    cells: list[DetectedCell] = field(default_factory=list)

    def cells_for(self, positions: tuple[int, int]) -> list[DetectedCell]:
        """All flagged cells for one position pair."""
        return [c for c in self.cells if c.positions == positions]


def relative_bias(observed_p: float | np.ndarray, expected_p: float | np.ndarray):
    """The q of ``s = p (1 + q)``: how far the pair probability deviates
    from the single-byte-expected probability (paper §3.1)."""
    return np.asarray(observed_p) / np.asarray(expected_p) - 1.0


class BiasDetector:
    """Runs the paper's detection methodology over counter arrays.

    Args:
        alpha: rejection threshold for p-values (paper uses 1e-4).
        max_cells_per_pair: cap on reported cells per dependent pair,
            keeping reports readable when a pair has broad dependence.
    """

    def __init__(self, alpha: float = 1e-4, *, max_cells_per_pair: int = 32) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self._alpha = alpha
        self._max_cells = max_cells_per_pair

    @property
    def alpha(self) -> float:
        return self._alpha

    def scan_single_bytes(
        self, counts: np.ndarray, positions: list[int] | None = None
    ) -> DetectionReport:
        """Test each position's byte distribution for uniformity.

        Args:
            counts: array of shape ``(num_positions, 256)``.
            positions: keystream position labels per row (default 1-based).
        """
        counts = np.asarray(counts)
        if counts.ndim != 2 or counts.shape[1] != 256:
            raise ValueError(f"counts must be (positions, 256), got {counts.shape}")
        if positions is None:
            positions = list(range(1, counts.shape[0] + 1))
        if len(positions) != counts.shape[0]:
            raise ValueError("positions length must match counts rows")
        report = DetectionReport()
        p_values = np.array(
            [chi2_uniformity_test(row).p_value for row in counts]
        )
        rejected = holm(p_values, self._alpha)
        for pos, p_val, rej in zip(positions, p_values, rejected):
            report.position_p_values[pos] = float(p_val)
            if rej:
                report.biased_positions.append(pos)
        return report

    def scan_pair(
        self,
        table: np.ndarray,
        positions: tuple[int, int],
        report: DetectionReport | None = None,
    ) -> DetectionReport:
        """Test one position pair for dependence and locate biased cells.

        Args:
            table: 256x256 counts of (Z_a, Z_b) value pairs.
            positions: the (a, b) keystream positions, for labelling.
            report: optional report to extend.
        """
        table = np.asarray(table)
        if table.shape != (256, 256):
            raise ValueError(f"pair table must be 256x256, got {table.shape}")
        if report is None:
            report = DetectionReport()
        result = m_test(table)
        report.pair_p_values[positions] = result.p_value
        if not result.rejects(self._alpha):
            return report
        report.dependent_pairs.append(positions)
        total = table.sum()
        # Independence-expected cell probabilities from the margins: this
        # is the paper's point that the proper null accounts for
        # single-byte biases.
        row_p = table.sum(axis=1) / total
        col_p = table.sum(axis=0) / total
        expected_p = np.outer(row_p, col_p)
        z, p_values = proportion_test_many(table, int(total), expected_p)
        rejected = holm(p_values.ravel(), self._alpha).reshape(p_values.shape)
        flagged = np.argwhere(rejected)
        if flagged.size:
            # Keep the most significant cells.
            strengths = np.abs(z[rejected])
            order = np.argsort(strengths)[::-1][: self._max_cells]
            for idx in np.asarray(flagged)[order]:
                k, l = int(idx[0]), int(idx[1])
                obs_p = table[k, l] / total
                exp_p = expected_p[k, l]
                report.cells.append(
                    DetectedCell(
                        positions=positions,
                        values=(k, l),
                        observed_p=float(obs_p),
                        expected_p=float(exp_p),
                        relative_bias=float(relative_bias(obs_p, exp_p)),
                        p_value=float(p_values[k, l]),
                    )
                )
        return report

    def scan_pairs(
        self,
        tables: np.ndarray,
        position_pairs: list[tuple[int, int]],
    ) -> DetectionReport:
        """Run :meth:`scan_pair` over a stack of pair tables."""
        tables = np.asarray(tables)
        if tables.ndim != 3 or tables.shape[1:] != (256, 256):
            raise ValueError(f"tables must be (pairs, 256, 256), got {tables.shape}")
        if len(position_pairs) != tables.shape[0]:
            raise ValueError("position_pairs length must match tables")
        report = DetectionReport()
        for table, positions in zip(tables, position_pairs):
            self.scan_pair(table, positions, report)
        return report
