"""Two-sided proportion tests over value pairs (paper §3.1).

After the M-test flags two positions as dependent, the paper determines
*which* value pairs are biased by running a proportion test per cell.  For
cell counts this large a normal approximation is exact enough; the test
suite cross-checks small cases against scipy's binomtest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class ProportionResult:
    """Outcome of a two-sided one-sample proportion (z) test."""

    observed: int
    trials: int
    null_p: float
    z: float
    p_value: float

    def rejects(self, alpha: float) -> bool:
        return self.p_value < alpha


def proportion_test(observed: int, trials: int, null_p: float) -> ProportionResult:
    """Two-sided z-test of ``observed`` successes in ``trials`` vs ``null_p``."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0.0 < null_p < 1.0:
        raise ValueError(f"null_p must be in (0, 1), got {null_p}")
    if not 0 <= observed <= trials:
        raise ValueError(f"observed must be in [0, {trials}], got {observed}")
    se = np.sqrt(null_p * (1.0 - null_p) / trials)
    z = (observed / trials - null_p) / se
    p_value = float(2.0 * _scipy_stats.norm.sf(abs(z)))
    return ProportionResult(
        observed=observed, trials=trials, null_p=null_p, z=float(z), p_value=p_value
    )


def proportion_test_many(
    observed: np.ndarray,
    trials: int,
    null_p: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised two-sided proportion tests over many cells.

    Args:
        observed: counts per cell.
        trials: common number of trials.
        null_p: null probability per cell (broadcastable to observed).

    Returns:
        ``(z, p_values)`` arrays of the same shape as ``observed``.
    """
    observed = np.asarray(observed, dtype=np.float64)
    null_p = np.broadcast_to(np.asarray(null_p, dtype=np.float64), observed.shape)
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if np.any((null_p <= 0.0) | (null_p >= 1.0)):
        raise ValueError("null probabilities must be in (0, 1)")
    se = np.sqrt(null_p * (1.0 - null_p) / trials)
    z = (observed / trials - null_p) / se
    p_values = 2.0 * _scipy_stats.norm.sf(np.abs(z))
    return z, p_values
