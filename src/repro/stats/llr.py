"""Log-likelihood-ratio model comparison for weak-bias validation.

Per-cell proportion tests need on the order of ``9 / (q^2 p)`` samples to
resolve a relative bias q on a cell of probability p — for the
Fluhrer–McGrew digraphs (q = 2^-8, p = 2^-16) that is ~2^35 digraphs,
beyond a laptop run.  But *validating* a known bias model is much cheaper
than discovering it: we can ask whether the observed counts are better
explained by the paper's biased model than by the uniform model, pooling
evidence across every cell and position.

For counts N_c and two candidate models p and u the evidence is

    LLR = sum_c N_c log(p_c / u_c)

Under data ~ u the LLR has mean  -N * KL(u || p)·ln2 ... more usefully we
report the normal-approximation z-score of the LLR against its
distribution under each model, so the bench can assert "data prefers the
biased model by k sigma".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LlrResult:
    """Evidence comparison between two fully-specified multinomial models."""

    llr: float
    mean_under_alt: float
    std_under_alt: float
    mean_under_null: float
    std_under_null: float

    @property
    def z_against_null(self) -> float:
        """How many null-model sigmas the observed LLR sits above the
        null-model mean; large positive values favour the alternative."""
        if self.std_under_null == 0:
            return 0.0
        return (self.llr - self.mean_under_null) / self.std_under_null

    @property
    def prefers_alternative(self) -> bool:
        return self.llr > 0.0


def llr_model_comparison(
    counts: np.ndarray,
    alt_p: np.ndarray,
    null_p: np.ndarray,
) -> LlrResult:
    """Compare two multinomial models on observed counts.

    Args:
        counts: observed counts per cell (any shape).
        alt_p: alternative-model (e.g. paper bias model) cell probabilities.
        null_p: null-model (e.g. uniform) cell probabilities.

    Returns:
        :class:`LlrResult` with the observed log-likelihood ratio and its
        mean/std under both models, enabling z-score statements.
    """
    counts = np.asarray(counts, dtype=np.float64).ravel()
    alt_p = np.asarray(alt_p, dtype=np.float64).ravel()
    null_p = np.asarray(null_p, dtype=np.float64).ravel()
    if not (counts.shape == alt_p.shape == null_p.shape):
        raise ValueError("counts and model shapes must match")
    if np.any(alt_p <= 0) or np.any(null_p <= 0):
        raise ValueError("model probabilities must be strictly positive")
    for name, p in (("alt_p", alt_p), ("null_p", null_p)):
        total = p.sum()
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"{name} must sum to 1, got {total}")
    n = counts.sum()
    log_ratio = np.log(alt_p) - np.log(null_p)
    llr = float(counts @ log_ratio)

    def moments(model_p: np.ndarray) -> tuple[float, float]:
        mean = float(n * (model_p @ log_ratio))
        var = float(n * (model_p @ log_ratio**2 - (model_p @ log_ratio) ** 2))
        return mean, float(np.sqrt(max(var, 0.0)))

    mean_alt, std_alt = moments(alt_p)
    mean_null, std_null = moments(null_p)
    return LlrResult(
        llr=llr,
        mean_under_alt=mean_alt,
        std_under_alt=std_alt,
        mean_under_null=mean_null,
        std_under_null=std_null,
    )
