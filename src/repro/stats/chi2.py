"""Chi-squared goodness-of-fit tests (paper §3.1, single-byte hypothesis).

The null hypothesis for a single keystream position is that the byte is
uniform over {0..255}.  We implement the statistic directly (it is three
numpy lines) and take the survival function from scipy; the test suite
cross-checks against :func:`scipy.stats.chisquare`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class Chi2Result:
    """Outcome of a chi-squared goodness-of-fit test."""

    statistic: float
    dof: int
    p_value: float

    def rejects(self, alpha: float) -> bool:
        """True if the null hypothesis is rejected at level ``alpha``."""
        return self.p_value < alpha


def chi2_gof_test(observed: np.ndarray, expected: np.ndarray) -> Chi2Result:
    """Chi-squared goodness-of-fit of ``observed`` counts to ``expected``.

    Args:
        observed: integer counts per category.
        expected: expected counts per category (same total as observed).
    """
    observed = np.asarray(observed, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if observed.shape != expected.shape:
        raise ValueError(f"shape mismatch: {observed.shape} vs {expected.shape}")
    if np.any(expected <= 0):
        raise ValueError("expected counts must be positive")
    total_obs, total_exp = observed.sum(), expected.sum()
    if not np.isclose(total_obs, total_exp, rtol=1e-8):
        raise ValueError(
            f"observed total {total_obs} != expected total {total_exp}; "
            "chi-squared GoF requires matching totals"
        )
    statistic = float(((observed - expected) ** 2 / expected).sum())
    dof = observed.size - 1
    p_value = float(_scipy_stats.chi2.sf(statistic, dof))
    return Chi2Result(statistic=statistic, dof=dof, p_value=p_value)


def chi2_uniformity_test(observed: np.ndarray) -> Chi2Result:
    """Test ``observed`` counts against the uniform distribution.

    This is the paper's single-byte null hypothesis: keystream byte values
    are uniform over the 256 possible values.
    """
    observed = np.asarray(observed, dtype=np.float64)
    expected = np.full_like(observed, observed.sum() / observed.size)
    return chi2_gof_test(observed, expected)
