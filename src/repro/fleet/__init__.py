"""Crash-tolerant distributed capture fleet (paper §3.2 at any scale).

The paper generated its 2**44-plus keystreams on ~80 machines that
crashed, stalled, and rebooted over days.  This package coordinates the
same campaign shape over the PR-5 capture engine using nothing but a
shared directory:

- :mod:`.manifest` — a durable JSON job record expanding a capture
  source into batch-range shards, each with a ``pending → leased →
  done/failed`` state machine persisted atomically;
- :mod:`.lease` — O_EXCL lockfiles with heartbeat mtimes; stale leases
  are reclaimed with an atomic-rename takeover so dead workers never
  wedge a job;
- :mod:`.worker` — the pull-based claim/capture/promote loop behind the
  ``python -m repro fleet-worker`` entry point;
- :mod:`.coordinator` — expand / drive / verify / exactly-merge, with
  quarantine-and-requeue for corrupt shards and graceful degradation to
  partial-but-exact merges plus a :class:`~.coordinator.CoverageReport`;
- :mod:`.retry` — the capped exponential backoff schedule everything
  above (and the native-backend compile probe) shares.

Exports resolve lazily: :mod:`repro.rc4._native` imports
:mod:`repro.fleet.retry` at the bottom of the dependency graph, so this
``__init__`` must not eagerly pull the coordinator (which imports the
capture engine, which imports the RC4 batch kernels) back in.
"""

from __future__ import annotations

from typing import Any

_EXPORTS = {
    "JobManifest": ".manifest",
    "JobPaths": ".manifest",
    "JobStatus": ".manifest",
    "ShardSpec": ".manifest",
    "ShardState": ".manifest",
    "SHARD_STATES": ".manifest",
    "STATE_DESCRIPTIONS": ".manifest",
    "job_status": ".manifest",
    "Lease": ".lease",
    "try_acquire": ".lease",
    "backoff_delay": ".retry",
    "backoff_delays": ".retry",
    "retry_call": ".retry",
    "build_source": ".sources",
    "register_source": ".sources",
    "WorkerReport": ".worker",
    "run_worker": ".worker",
    "Coordinator": ".coordinator",
    "CoverageReport": ".coordinator",
    "FleetProgress": ".coordinator",
    "fleet_capture": ".coordinator",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.fleet' has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(module, __name__), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
