"""Capped exponential backoff, shared by the fleet and the toolchain.

The paper's capture cluster (§3.2) ran for days on machines that
stalled and rebooted; long campaigns survive by *retrying with bounded
patience*, not by optimism.  This module pins that policy down in one
place: :func:`backoff_delay` is the pure schedule (``base * 2**attempt``
capped), and :func:`retry_call` wraps a callable with it.

Deliberately a leaf module — standard library only — so low-level
consumers (:mod:`repro.rc4._native`'s compile subprocess, the fleet
worker loop) can import it without dragging in the capture engine.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, TypeVar

#: Default multiplier between consecutive retry delays.
BACKOFF_FACTOR = 2.0

#: Default ceiling on a single retry delay (seconds).
DEFAULT_BACKOFF_CAP = 30.0

T = TypeVar("T")


def backoff_delay(
    attempt: int,
    *,
    base: float,
    cap: float = DEFAULT_BACKOFF_CAP,
    factor: float = BACKOFF_FACTOR,
) -> float:
    """Delay before retry number ``attempt`` (0-indexed), capped.

    ``backoff_delay(0)`` is the wait after the first failure.  Negative
    attempts are clamped to 0; a non-positive ``base`` yields 0 (retry
    immediately — what tight test loops want).
    """
    if base <= 0.0:
        return 0.0
    return min(cap, base * factor ** max(0, attempt))


def backoff_delays(
    attempts: int,
    *,
    base: float,
    cap: float = DEFAULT_BACKOFF_CAP,
    factor: float = BACKOFF_FACTOR,
) -> Iterator[float]:
    """The full delay schedule for ``attempts`` retries."""
    for attempt in range(max(0, attempts)):
        yield backoff_delay(attempt, base=base, cap=cap, factor=factor)


def retry_call(
    fn: Callable[[], T],
    *,
    attempts: int,
    base: float,
    cap: float = DEFAULT_BACKOFF_CAP,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn`` up to ``attempts`` times with capped backoff between.

    Args:
        fn: zero-argument callable to invoke.
        attempts: total invocations allowed (>= 1).
        base / cap: backoff schedule (see :func:`backoff_delay`).
        retry_on: exception types that trigger a retry; anything else
            propagates immediately.
        sleep: injectable for tests.
        on_retry: optional hook ``(attempt_index, exception)`` called
            before each backoff sleep.

    Returns:
        ``fn()``'s result from the first successful invocation.

    Raises:
        The last exception when every attempt failed, or ``ValueError``
        for a non-positive ``attempts``.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    last: BaseException | None = None
    for attempt in range(attempts):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if attempt + 1 >= attempts:
                break
            if on_retry is not None:
                on_retry(attempt, exc)
            delay = backoff_delay(attempt, base=base, cap=cap)
            if delay > 0.0:
                sleep(delay)
    assert last is not None
    raise last
