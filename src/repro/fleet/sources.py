"""Descriptor → :class:`~repro.capture.engine.CaptureSource` factories.

A fleet manifest carries only a JSON descriptor; every worker — possibly
on another machine — rebuilds the live source from it.  The mapping from
``descriptor["kind"]`` to a factory lives here, and is extensible so the
fault-injection tests can register deliberately broken sources without
touching production code.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..config import ReproConfig
from ..errors import ManifestError

SourceFactory = Callable[[dict, ReproConfig], Any]

_FACTORIES: Dict[str, SourceFactory] = {}


def register_source(kind: str, factory: SourceFactory) -> None:
    """Register (or override) the factory for a descriptor kind."""
    _FACTORIES[kind] = factory


def _https_factory(descriptor: dict, config: ReproConfig):
    from ..capture.https import HttpsCaptureSource

    return HttpsCaptureSource.from_descriptor(descriptor, config)


def _tkip_factory(descriptor: dict, config: ReproConfig):
    from ..capture.tkip import TkipCaptureSource

    return TkipCaptureSource.from_descriptor(descriptor, config)


def _multi_https_factory(descriptor: dict, config: ReproConfig):
    from ..capture.multi import MultiHttpsCaptureSource

    return MultiHttpsCaptureSource.from_descriptor(descriptor, config)


def _multi_tkip_factory(descriptor: dict, config: ReproConfig):
    from ..capture.multi import MultiTkipCaptureSource

    return MultiTkipCaptureSource.from_descriptor(descriptor, config)


register_source("https-capture", _https_factory)
register_source("tkip-capture", _tkip_factory)
register_source("multi-https-capture", _multi_https_factory)
register_source("multi-tkip-capture", _multi_tkip_factory)


def build_source(descriptor: dict, config: ReproConfig):
    """Rebuild the capture source a manifest descriptor records.

    The returned source must reproduce the originating campaign
    bit-exactly (the caller verifies ``source.fingerprint()`` against
    the manifest before trusting it).
    """
    kind = descriptor.get("kind")
    factory = _FACTORIES.get(kind)
    if factory is None:
        raise ManifestError(
            f"no capture-source factory registered for kind {kind!r} "
            f"(known: {sorted(_FACTORIES)})"
        )
    return factory(descriptor, config)
